"""Multipath CFR synthesis: the core channel substrate.

``MultipathChannel`` computes the Channel Frequency Response between a fixed
transmit antenna and a batch of receive positions, as the coherent sum of a
LOS ray and one ray per scatterer:

    H(f, p_rx) = a_los(p_rx) e^{-j2πf d_los/c}
               + Σ_k a_k(p_rx) e^{-j2πf (d_tx,k + d_k,rx + x_k)/c}

Amplitudes follow image-source spreading — 1 / (total path length) — which
matches specular indoor reflections and, unlike per-leg 1/(d₁·d₂) point
scattering, keeps any single ray from dominating when a scatterer sits next
to an antenna (a dominant ray would freeze the TRRS spatial decay, because
the common carrier phase cancels in the magnitude).  ``x_k`` is the
scatterer's excess multi-bounce length.  Paths are attenuated per wall
crossing by the floorplan.  The per-tone complex exponential is
evaluated with a multiplicative recurrence over consecutive tone indices,
which makes synthesizing a (T, S) CFR block two `exp` evaluations plus S
complex multiplies — fast enough to simulate minutes of 200 Hz CSI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.ofdm import SubcarrierGrid, make_grid
from repro.channel.scatterers import ScattererField
from repro.env.floorplan import Floorplan


def _tone_phasor_block(total_delay_m: np.ndarray, grid: SubcarrierGrid) -> np.ndarray:
    """Per-tone phasors via the consecutive-index recurrence.

    Args:
        total_delay_m: (T, K) total path lengths in meters.
        grid: Subcarrier grid.

    Returns:
        (T, K, S) complex64 phasors e^{-j 2π f_s d / c}.
    """
    base_phase = -2.0 * np.pi * total_delay_m / SPEED_OF_LIGHT
    carrier = np.exp(1j * (base_phase * grid.carrier_frequency)).astype(np.complex64)
    step = np.exp(1j * (base_phase * grid.spacing)).astype(np.complex64)

    indices = grid.index_array.astype(np.int64)
    t, k = total_delay_m.shape
    out = np.empty((t, k, len(indices)), dtype=np.complex64)

    current = carrier * _integer_power(step, int(indices[0]))
    out[..., 0] = current
    for s in range(1, len(indices)):
        gap = int(indices[s] - indices[s - 1])
        if gap == 1:
            current = current * step
        else:
            current = current * _integer_power(step, gap)
        out[..., s] = current
    return out


def _integer_power(base: np.ndarray, exponent: int) -> np.ndarray:
    """base**exponent for complex arrays, handling negative exponents."""
    if exponent == 0:
        return np.ones_like(base)
    if exponent < 0:
        return np.conj(base) ** (-exponent)
    return base**exponent


@dataclass
class MultipathChannel:
    """A static multipath channel over a 2D environment.

    Attributes:
        scatterers: The scatterer field.
        grid: OFDM tone grid the CFR is evaluated on.
        floorplan: Optional floorplan providing per-wall attenuation.
        los_gain: Amplitude of the direct ray relative to scatterer rays
            (0 disables the LOS ray entirely).
        reference_distance: Distance floor (m) to avoid amplitude blow-up
            when a ray endpoint approaches a scatterer.
        attenuation_refresh: Re-evaluate wall attenuation after the receiver
            moves this far (m); between refreshes the last value is reused.
            Local moves of centimeters never change wall-crossing counts, so
            this is exact in practice and much faster.
    """

    scatterers: ScattererField
    grid: SubcarrierGrid = field(default_factory=make_grid)
    floorplan: Optional[Floorplan] = None
    los_gain: float = 1.0
    reference_distance: float = 0.3
    attenuation_refresh: float = 1.0

    def cfr(self, tx_position, rx_positions) -> np.ndarray:
        """Synthesize the CFR for one TX antenna across RX positions.

        Args:
            tx_position: (2,) transmit antenna location.
            rx_positions: (T, 2) receive antenna locations (one per packet).

        Returns:
            (T, S) complex64 CFR matrix.
        """
        tx = np.asarray(tx_position, dtype=np.float64)
        rx = np.atleast_2d(np.asarray(rx_positions, dtype=np.float64))
        if tx.shape != (2,):
            raise ValueError(f"tx_position must be (2,), got {tx.shape}")
        if rx.ndim != 2 or rx.shape[1] != 2:
            raise ValueError(f"rx_positions must be (T, 2), got {rx.shape}")

        scat = self.scatterers.positions
        d_tx = np.linalg.norm(scat - tx[None, :], axis=1)
        tx_att = self._attenuation_from(tx, scat)

        h = np.zeros((rx.shape[0], self.grid.n_subcarriers), dtype=np.complex64)
        for start, stop in self._blocks(rx):
            block = rx[start:stop]
            h[start:stop] = self._cfr_block(tx, block, d_tx, tx_att)
        return h

    def _blocks(self, rx: np.ndarray, max_block: int = 512):
        """Yield index ranges over which wall attenuation is held constant."""
        n = rx.shape[0]
        start = 0
        while start < n:
            stop = min(start + max_block, n)
            # Shrink the block if the receiver moved too far within it.
            anchor = rx[start]
            offsets = np.linalg.norm(rx[start:stop] - anchor[None, :], axis=1)
            beyond = np.nonzero(offsets > self.attenuation_refresh)[0]
            if beyond.size:
                stop = start + max(int(beyond[0]), 1)
            yield start, stop
            start = stop

    def _cfr_block(
        self,
        tx: np.ndarray,
        rx_block: np.ndarray,
        d_tx: np.ndarray,
        tx_att: np.ndarray,
    ) -> np.ndarray:
        scat = self.scatterers.positions
        refl = self.scatterers.reflectivity
        excess = self.scatterers.excess_lengths

        d_rx = np.linalg.norm(rx_block[:, None, :] - scat[None, :, :], axis=2)
        anchor = rx_block[0]
        rx_att = self._attenuation_from(anchor, scat)

        total_delay = np.maximum(
            d_tx[None, :] + d_rx + excess[None, :], self.reference_distance
        )
        amp = (refl * tx_att * rx_att)[None, :] / total_delay
        weights = amp.astype(np.complex64)

        phasors = _tone_phasor_block(total_delay, self.grid)
        h = np.einsum("tk,tks->ts", weights, phasors)

        if self.los_gain > 0.0:
            d_los = np.maximum(
                np.linalg.norm(rx_block - tx[None, :], axis=1), self.reference_distance
            )
            los_att = self._attenuation_from(anchor, tx[None, :])[0]
            los_amp = (self.los_gain * los_att / d_los).astype(np.complex64)
            los_phasors = _tone_phasor_block(d_los[:, None], self.grid)[:, 0, :]
            h = h + los_amp[:, None] * los_phasors
        return h.astype(np.complex64)

    def _attenuation_from(self, origin: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Wall attenuation of paths from one origin to each target point."""
        targets = np.atleast_2d(targets)
        if self.floorplan is None:
            return np.ones(targets.shape[0])
        origins = np.broadcast_to(origin, targets.shape)
        return self.floorplan.path_attenuation(origins, targets)
