"""Benches for the §7 extension features.

Not figures from the paper's evaluation, but quantified versions of its
discussion section: WiBall-style direction-free distance vs RIM, packet
loss robustness, and finer-than-grid heading resolution.
"""

from repro.eval.extensions import (
    run_fine_direction,
    run_loss_robustness,
    run_wiball_vs_rim,
)
from repro.eval.report import print_report


def test_ext_wiball_vs_rim(benchmark, quick):
    result = benchmark.pedantic(
        run_wiball_vs_rim, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Extension — WiBall decay vs RIM retracing", result)
    m = result["measured"]
    assert m["rim_wins"]
    assert m["wiball_median_error_cm"] < 200.0  # decimeter-class, not garbage


def test_ext_packet_loss_robustness(benchmark, quick):
    result = benchmark.pedantic(
        run_loss_robustness, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Extension — packet loss robustness", result)
    medians = result["measured"]["median_error_cm_by_loss"]
    # Moderate loss must not blow the error up by an order of magnitude.
    assert medians[max(medians)] < 10 * max(1.0, medians[0.0])


def test_ext_fine_direction(benchmark, quick):
    result = benchmark.pedantic(
        run_fine_direction, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Extension — fine direction resolution", result)
    m = result["measured"]
    # The refinement should help on average (and must not be catastrophic).
    assert m["refined_mean_error_deg"] <= m["grid_mean_error_deg"] + 5.0
