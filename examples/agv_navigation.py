#!/usr/bin/env python
"""Closed-loop AGV navigation on RIM feedback (the §6.3.3 motivation).

A simulated warehouse cart is steered to a sequence of waypoints using
ONLY RIM's streaming estimates — the controller never sees ground truth.
The cart translates without turning (the sideway-move regime where
gyroscopes and magnetometers are blind), re-aiming every half second.

Run:  python examples/agv_navigation.py
"""

import numpy as np

from repro.apps.navigation import WaypointNavigator
from repro.arrays.geometry import hexagonal_array
from repro.eval.setup import make_testbed


def main():
    bed = make_testbed(seed=9)
    navigator = WaypointNavigator(
        bed.sampler,
        hexagonal_array(),
        speed=0.5,
        control_seconds=0.5,
        rng=np.random.default_rng(9),
    )

    start = (8.0, 13.5)
    waypoints = [(12.0, 13.5), (12.0, 14.8), (16.0, 14.8)]
    print(f"AGV starts at {start}; waypoints: {waypoints}")
    print("steering on RIM estimates only (single unknown AP, NLOS)...\n")

    result = navigator.navigate(start, waypoints, max_steps=120)

    for k, (target, ok, err) in enumerate(
        zip(waypoints, result.reached, result.arrival_errors)
    ):
        status = f"reached, true error {err * 100:.0f} cm" if ok else "NOT reached"
        print(f"  waypoint {k + 1} {target}: {status}")

    drift = np.linalg.norm(result.true_path[-1] - result.believed_path[-1])
    print(f"\ndrove {result.total_true_distance:.1f} m in "
          f"{result.true_path.shape[0] - 1} control steps")
    print(f"final belief-vs-truth gap: {drift * 100:.0f} cm")


if __name__ == "__main__":
    main()
