#!/usr/bin/env python
"""Shard-scaling gate: sessions/sec must scale ≥ 0.7x-linearly with shards.

Replays one pre-sampled receiver workload through fresh ``repro.shard``
fleets at each requested shard count and derives per-count scaling
efficiency (``(rate_S / rate_1) / S``; 1.0 is perfectly linear).  The CI
``shard-scaling`` job runs this on a multi-core runner and fails the
build when any *demonstrable* row — one whose shard count does not
exceed the host's cores — falls below ``--min-efficiency`` (default
0.7, :data:`repro.shard.fleet.MIN_LINEAR_EFFICIENCY`).  Rows the
hardware cannot demonstrate (more shards than cores) are reported but
never gated, so the script is safe to run anywhere.

Usage::

    PYTHONPATH=src python benchmarks/shard_scaling.py --shards 1,2,4 \\
        --out shard_scaling.json --table shard_scaling.txt

``--out``/``--table`` write the JSON payload and the human-readable run
table CI uploads as artifacts.  ``--no-gate`` measures and reports
without failing (the nightly soak uses it for trend data).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards", default="1,2,4", metavar="LIST",
        help="comma-separated shard counts to measure (default 1,2,4)",
    )
    parser.add_argument(
        "--sessions", type=int, default=8, metavar="N",
        help="receiver sessions in the workload (default 8)",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0, metavar="SEC",
        help="simulated trace duration per session (default 2.0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--min-efficiency", type=float, default=None, metavar="FRAC",
        help="linear-scaling efficiency floor for demonstrable rows "
        "(default: repro.shard.fleet.MIN_LINEAR_EFFICIENCY = 0.7)",
    )
    parser.add_argument(
        "--start-method", default=None, metavar="NAME",
        help="multiprocessing start method (default: fork when available)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON scaling payload here (CI artifact)",
    )
    parser.add_argument(
        "--table", default=None, metavar="PATH",
        help="write the human-readable run table here (CI artifact)",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="measure and report only; never fail on efficiency",
    )
    args = parser.parse_args(argv)

    from repro.shard.fleet import (
        MIN_LINEAR_EFFICIENCY,
        measure_shard_scaling,
        render_scaling_table,
    )

    try:
        shard_counts = sorted(
            {int(s) for s in args.shards.split(",") if s.strip()}
        )
    except ValueError:
        parser.error(f"--shards must be a comma-separated int list, "
                     f"got {args.shards!r}")
    if not shard_counts:
        parser.error("--shards is empty")
    floor = (
        MIN_LINEAR_EFFICIENCY
        if args.min_efficiency is None
        else args.min_efficiency
    )

    scaling = measure_shard_scaling(
        shard_counts=shard_counts,
        n_sessions=args.sessions,
        seed=args.seed,
        duration_s=args.duration,
        start_method=args.start_method,
    )
    table = render_scaling_table(scaling)
    print(table)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(scaling, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.table:
        with open(args.table, "w", encoding="utf-8") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.table}")

    n_cpus = int(scaling["n_cpus"])
    failures = []
    skipped = []
    for row in scaling["rows"]:
        shards = int(row["shards"])
        eff = row["efficiency"]
        if shards <= 1 or eff is None:
            continue
        if shards > n_cpus:
            skipped.append(
                f"{shards} shards on a {n_cpus}-cpu host "
                f"(efficiency {eff:.2f} recorded, not gated)"
            )
            continue
        if eff < floor:
            failures.append(
                f"{shards} shards scaled at {eff:.2f}x-linear "
                f"({row['sessions_per_second']:.2f} sessions/s; "
                f"floor {floor:.2f})"
            )
    for line in skipped:
        print(f"skipped gate: {line}")
    if args.no_gate:
        print("gate disabled (--no-gate)")
        return 0
    if failures:
        print(f"\nshard-scaling gate: FAIL (floor {floor:.2f})",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    gated = sum(
        1 for row in scaling["rows"]
        if int(row["shards"]) > 1 and int(row["shards"]) <= n_cpus
    )
    print(f"\nshard-scaling gate: ok ({gated} row(s) gated at "
          f"≥ {floor:.2f}x-linear, {len(skipped)} skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
