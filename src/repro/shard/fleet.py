"""Sharded serve simulation + scaling measurement: ``serve-sim --shards``.

The single-manager simulator (:mod:`repro.serve.simulate`) replays N
receivers through one in-process :class:`~repro.serve.session.
SessionManager`; this module replays the same receivers through a
:class:`~repro.shard.router.ShardRouter` fleet, and measures how
sessions/sec scales with shard count — the number the CI
``shard-scaling`` job gates at ≥ 0.7x-linear.

The timed window starts after :meth:`ShardRouter.wait_ready` and session
creation, so worker startup (interpreter spawn, numpy import) never
pollutes a throughput measurement; it covers pushes, the end-of-stream
flush, and update delivery — the full serving round-trip.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.channel.sampler import CsiTrace
from repro.core.config import RimConfig
from repro.serve.session import ServeConfig
from repro.serve.simulate import simulated_receivers, store_receivers
from repro.shard.router import ShardRouter

# Efficiency the CI gate enforces when the host has the cores to show it.
MIN_LINEAR_EFFICIENCY = 0.7


def _replay_into_router(
    router: ShardRouter,
    name: str,
    trace: CsiTrace,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Dict[str, Any]:
    """Push one receiver's packets to its shard, then poll its updates."""
    t0 = time.perf_counter()
    n_pushed = 0
    for k in range(trace.n_samples):
        if should_stop is not None and should_stop():
            break
        router.push(name, trace.data[k], float(trace.times[k]))
        n_pushed += 1
    updates = router.poll(name)
    wall = time.perf_counter() - t0
    return {
        "session": name,
        "n_samples": n_pushed,
        "n_updates": len(updates),
        "wall_s": wall,
    }


def run_shard_sim(
    n_sessions: int = 8,
    shards: int = 2,
    seed: int = 0,
    duration_s: float = 2.0,
    backpressure: str = "block",
    queue_capacity: int = 256,
    block_seconds: float = 1.0,
    rim_config: Optional[RimConfig] = None,
    receivers: Optional[Sequence[Tuple[str, CsiTrace]]] = None,
    store_dir=None,
    record_dir=None,
    should_stop: Optional[Callable[[], bool]] = None,
    start_method: Optional[str] = None,
    router: Optional[ShardRouter] = None,
) -> Dict[str, Any]:
    """Replay N receivers concurrently through a shard fleet.

    Mirrors :func:`repro.serve.simulate.run_serve_sim` (same receivers,
    same aggregate schema) with the work fanned across ``shards`` worker
    processes.  Extra aggregate keys: ``shards``, ``failovers``, and the
    per-shard session placement.

    Args:
        router: Drive an existing fleet instead of spawning one (the
            scaling harness reuses this); the caller keeps ownership and
            must close it.
    """
    if receivers is None:
        if store_dir is not None:
            receivers = store_receivers(store_dir)
        else:
            receivers = simulated_receivers(
                n_sessions, seed=seed, duration_s=duration_s
            )
    n_sessions = len(receivers)
    serve_config = ServeConfig(
        queue_capacity=queue_capacity,
        backpressure=backpressure,
        block_seconds=block_seconds,
    )
    own_router = router is None
    if router is None:
        router = ShardRouter(
            shards,
            rim_config=rim_config,
            serve_config=serve_config,
            record_dir=record_dir,
            start_method=start_method,
        )
    try:
        router.wait_ready()
        for name, trace in receivers:
            router.create(
                name,
                trace.array,
                trace.sampling_rate,
                carrier_wavelength=trace.carrier_wavelength,
            )
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_sessions) as pool:
            replays = list(
                pool.map(
                    lambda rx: _replay_into_router(
                        router, rx[0], rx[1], should_stop=should_stop
                    ),
                    receivers,
                )
            )
        finals = router.flush_all()
        wall = time.perf_counter() - t0

        session_stats = router.stats()
        fleet = router.fleet_stats()
    finally:
        if own_router:
            router.close()

    by_name = {r["session"]: r for r in replays}
    for row in session_stats:
        name = str(row["session"])
        replay = by_name.get(name, {})
        row["n_updates"] = replay.get("n_updates", 0) + len(finals.get(name, []))
        row["replay_wall_s"] = replay.get("wall_s", 0.0)

    total_samples = sum(r["n_samples"] for r in replays)
    aggregate = {
        "n_sessions": n_sessions,
        "shards": fleet["n_shards"],
        "alive_shards": len(fleet["alive"]),
        "failovers": fleet["failovers"],
        "sessions_per_shard": fleet["sessions_per_shard"],
        "start_method": fleet["start_method"],
        "wall_s": wall,
        "sessions_per_second": n_sessions / wall if wall > 0 else 0.0,
        "samples_per_second": total_samples / wall if wall > 0 else 0.0,
        "total_samples": total_samples,
        "total_distance_m": float(
            sum(float(row["distance_m"]) for row in session_stats)
        ),
        "shed": sum(int(row["shed"]) for row in session_stats),
        "rejected": sum(int(row["rejected"]) for row in session_stats),
        "blocked": sum(int(row["blocked"]) for row in session_stats),
        "degraded_blocks": sum(
            int(row["degraded_blocks"]) for row in session_stats
        ),
    }
    return {
        "config": {
            "backpressure": backpressure,
            "queue_capacity": queue_capacity,
            "block_seconds": block_seconds,
            "duration_s": duration_s,
            "seed": seed,
            "shards": fleet["n_shards"],
        },
        "sessions": session_stats,
        "aggregate": aggregate,
    }


def measure_shard_scaling(
    shard_counts: Sequence[int] = (1, 2, 4),
    n_sessions: int = 8,
    seed: int = 0,
    duration_s: float = 2.0,
    rim_config: Optional[RimConfig] = None,
    receivers: Optional[Sequence[Tuple[str, CsiTrace]]] = None,
    start_method: Optional[str] = None,
) -> Dict[str, Any]:
    """Sessions/sec at each shard count, plus derived scaling efficiency.

    The same pre-sampled receiver workload replays once per shard count
    through a fresh fleet; ``efficiency`` at S shards is
    ``(rate_S / rate_1) / S`` — 1.0 is perfectly linear.  Efficiency is
    only meaningful when the host has at least S cores; the ``n_cpus``
    field lets consumers (the CI gate) skip rows the hardware cannot
    demonstrate.
    """
    shard_counts = sorted(set(int(s) for s in shard_counts))
    if not shard_counts or shard_counts[0] < 1:
        raise ValueError(f"shard_counts must be >= 1, got {shard_counts}")
    if receivers is None:
        receivers = simulated_receivers(n_sessions, seed=seed, duration_s=duration_s)
    rows: List[Dict[str, Any]] = []
    base_rate: Optional[float] = None
    for shards in shard_counts:
        result = run_shard_sim(
            shards=shards,
            seed=seed,
            duration_s=duration_s,
            rim_config=rim_config,
            receivers=receivers,
            start_method=start_method,
        )
        agg = result["aggregate"]
        rate = float(agg["sessions_per_second"])
        if shards == 1:
            base_rate = rate
        speedup = rate / base_rate if base_rate else None
        rows.append(
            {
                "shards": shards,
                "wall_s": float(agg["wall_s"]),
                "sessions_per_second": rate,
                "samples_per_second": float(agg["samples_per_second"]),
                "speedup": speedup,
                "efficiency": None if speedup is None else speedup / shards,
            }
        )
    return {
        "shard_counts": shard_counts,
        "n_sessions": len(receivers),
        "n_cpus": os.cpu_count() or 1,
        "start_method": start_method or "auto",
        "min_linear_efficiency": MIN_LINEAR_EFFICIENCY,
        "rows": rows,
    }


def render_shard_table(result: Dict[str, Any]) -> str:
    """Per-session table for a sharded run (adds the shard column)."""
    rows = result["sessions"]
    agg = result["aggregate"]
    header = (
        f"{'session':<8} {'shard':<9} {'samples':>8} {'blocks':>7} "
        f"{'dist m':>8} {'blocked':>8} {'shed':>6} {'reject':>7} {'degr':>5}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row['session']):<8} {str(row.get('shard', '?')):<9} "
            f"{int(row['processed']):>8} {int(row['updates']):>7} "
            f"{float(row['distance_m']):>8.3f} {int(row['blocked']):>8} "
            f"{int(row['shed']):>6} {int(row['rejected']):>7} "
            f"{int(row['degraded_blocks']):>5}"
        )
    lines += [
        "-" * len(header),
        f"{agg['n_sessions']} sessions over {agg['shards']} shards "
        f"({agg['alive_shards']} alive, {agg['failovers']} failovers): "
        f"{agg['wall_s'] * 1e3:.1f} ms wall "
        f"({agg['sessions_per_second']:.2f} sessions/s, "
        f"{agg['samples_per_second']:.0f} samples/s aggregate)",
        "placement: "
        + ", ".join(
            f"{shard}={count}"
            for shard, count in sorted(agg["sessions_per_shard"].items())
        ),
    ]
    return "\n".join(lines)


def render_scaling_table(scaling: Dict[str, Any]) -> str:
    """Markdown-ish run table for the scaling artifact and CI logs."""
    lines = [
        f"shard scaling: {scaling['n_sessions']} sessions, "
        f"{scaling['n_cpus']} cpus",
        f"{'shards':>6} {'wall s':>9} {'sess/s':>9} {'samp/s':>10} "
        f"{'speedup':>8} {'eff':>6}",
    ]
    for row in scaling["rows"]:
        speedup = row["speedup"]
        eff = row["efficiency"]
        lines.append(
            f"{row['shards']:>6} {row['wall_s']:>9.3f} "
            f"{row['sessions_per_second']:>9.2f} "
            f"{row['samples_per_second']:>10.0f} "
            f"{'-' if speedup is None else f'{speedup:.2f}':>8} "
            f"{'-' if eff is None else f'{eff:.2f}':>6}"
        )
    return "\n".join(lines)
