"""Capacity-model fitting: least-squares sessions/sec vs shards with
knee detection.

The capacity question the bench answers is "how does sustained
throughput grow as shards are added, and where does it stop growing?".
A single least-squares line answers the first half; for the second we
try every split point of a two-segment piecewise-linear fit and accept
the best one as a *knee* only when the data genuinely bends: enough
points, a visibly imperfect linear fit, a large SSE improvement, and a
flatter post-knee slope.  On perfectly linear data (both SSEs near
zero) the segmented fit would otherwise always "win", so the linear-r²
guard is what keeps healthy scaling reported as ``model="linear"``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.spec import AXES, BenchError

#: Minimum points before a knee can be claimed (2 per segment).
KNEE_MIN_POINTS = 4
#: Linear fits at least this good are reported linear, full stop.
KNEE_LINEAR_R2 = 0.99
#: Segmented SSE must be at most this fraction of the linear SSE.
KNEE_SSE_RATIO = 0.5


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> Dict[str, float]:
    """Ordinary least squares y = slope*x + intercept with r² and SSE.

    Degenerate inputs degrade gracefully rather than raising: a single
    point or zero x-variance yields slope 0 through the mean, and a
    zero total sum of squares (all ys equal) reports r² = 1.0.
    """
    if len(xs) != len(ys) or not xs:
        raise BenchError(
            f"fit_linear needs matched non-empty xs/ys, got {len(xs)}/{len(ys)}"
        )
    n = len(xs)
    xbar = sum(xs) / n
    ybar = sum(ys) / n
    sxx = sum((x - xbar) ** 2 for x in xs)
    if sxx == 0.0:
        slope, intercept = 0.0, ybar
    else:
        slope = sum((x - xbar) * (y - ybar) for x, y in zip(xs, ys)) / sxx
        intercept = ybar - slope * xbar
    sse = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    sst = sum((y - ybar) ** 2 for y in ys)
    r2 = 1.0 if sst == 0.0 else 1.0 - sse / sst
    return {"slope": slope, "intercept": intercept, "r2": r2, "sse": sse}


def fit_capacity(
    xs: Sequence[float], ys: Sequence[float]
) -> Dict[str, Any]:
    """Fit the capacity model: linear, or two-segment with a knee.

    Args:
        xs: Resource counts (shards), strictly increasing.
        ys: Sustained sessions/sec at each resource count.

    Returns:
        Dict with ``model`` ("linear"|"kneed"), the pre-knee ``slope``/
        ``intercept``/``r2``, ``knee`` (last x of the first segment, or
        ``None``), ``slope_after`` (post-knee slope, or ``None``), and
        the raw ``points``.
    """
    xs = [float(x) for x in xs]
    ys = [float(y) for y in ys]
    if sorted(set(xs)) != xs:
        raise BenchError(f"capacity xs must be strictly increasing, got {xs}")
    linear = fit_linear(xs, ys)
    result: Dict[str, Any] = {
        "model": "linear",
        "slope": linear["slope"],
        "intercept": linear["intercept"],
        "r2": linear["r2"],
        "knee": None,
        "slope_after": None,
        "points": [[x, y] for x, y in zip(xs, ys)],
    }
    if len(xs) < KNEE_MIN_POINTS or linear["r2"] >= KNEE_LINEAR_R2:
        return result
    best: Optional[Tuple[float, int, Dict[str, float], Dict[str, float]]] = None
    for split in range(2, len(xs) - 1):  # >= 2 points per segment
        left = fit_linear(xs[:split], ys[:split])
        right = fit_linear(xs[split:], ys[split:])
        total_sse = left["sse"] + right["sse"]
        if best is None or total_sse < best[0]:
            best = (total_sse, split, left, right)
    if best is None:
        return result
    total_sse, split, left, right = best
    if (
        total_sse <= KNEE_SSE_RATIO * linear["sse"]
        and right["slope"] < left["slope"]
    ):
        result.update(
            model="kneed",
            slope=left["slope"],
            intercept=left["intercept"],
            r2=left["r2"],
            knee=xs[split - 1],
            slope_after=right["slope"],
        )
    return result


def capacity_models(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fit one capacity model per non-shard axis combination.

    Rows are grouped by every axis except ``shards``; within a group the
    shard-fleet cells (``shards >= 1``) become the fit's (x, y) points
    with x = shards and y = mean sessions/sec.  Groups with fewer than
    two shard points carry no scaling information and are skipped.
    """
    groups: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    for row in rows:
        cell = row["cell"]
        if int(cell["shards"]) < 1:
            continue
        group_key = "/".join(
            f"{axis}={cell[axis]}" for axis in AXES if axis != "shards"
        )
        entry = groups.setdefault(group_key, {"points": []})
        entry["points"].append(
            (float(cell["shards"]), float(row["sessions_per_second"]["mean"]))
        )
    models: List[Dict[str, Any]] = []
    for group_key, entry in groups.items():
        points = sorted(entry["points"])
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        models.append({"group": group_key, "fit": fit_capacity(xs, ys)})
    return models
