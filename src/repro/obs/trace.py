"""Lightweight nestable span tracing for the RIM pipeline.

The paper ships RIM as a real-time system and reports its runtime cost
directly (§6.2.9: ~6% CPU on a Surface Pro).  To reproduce — and then
beat — that trajectory we need to know where wall time goes across the
sanitize → movement-detect → pre-screen → alignment-matrix → DP-tracking
→ integration pipeline.  This module provides the measuring stick:

* :class:`Tracer` — a process-wide span recorder.  ``tracer.span(name)``
  is a context manager; spans opened inside another span nest under it,
  so one ``Rim.process`` call yields a tree of stage timings.
* Each :class:`Span` records wall time (``time.perf_counter``), free-form
  metadata (input shapes, counts), and its children.
* **Zero overhead when disabled**: ``span()`` returns a shared singleton
  no-op context manager — no allocation, no clock reads, no stack
  bookkeeping.  Instrumented code never checks a flag itself.

Spans measure; they never touch data.  Instrumentation must not perturb
numerics — a traced run and an untraced run produce bit-identical
estimates (enforced by ``tests/test_obs.py``).

The tracer is thread-aware: the open-span stack is thread-local (spans
nest within their own thread only) and the shared roots list is guarded
by a lock, so the serving layer (:mod:`repro.serve`) can run many traced
sessions across a worker pool — each session's span tree stays intact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed region of the pipeline.

    Attributes:
        name: Stage label, e.g. ``"rim.pre_screen"`` or ``"dp_tracking"``.
        started: ``time.perf_counter()`` at entry.
        duration: Wall-clock seconds spent inside the span (set at exit).
        meta: Free-form metadata recorded at entry (input shapes, counts).
        children: Spans opened while this one was active.
    """

    name: str
    started: float = 0.0
    duration: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this span excluding its children."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-friendly rendering of the span tree."""
        out: Dict[str, Any] = {"name": self.name, "duration_s": self.duration}
        if self.meta:
            out["meta"] = {k: _jsonable(v) for k, v in self.meta.items()}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Live span context: pushes on enter, times and pops on exit."""

    __slots__ = ("_tracer", "_name", "_meta")

    def __init__(self, tracer: "Tracer", name: str, meta: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._meta = meta

    def __enter__(self) -> Span:
        span = Span(name=self._name, meta=self._meta)
        self._tracer._push(span)
        span.started = time.perf_counter()
        return span

    def __exit__(self, *exc) -> bool:
        # _push stored the span on the tracer stack; close it from there so
        # exit stays correct even if __enter__'s return value was discarded.
        self._tracer._pop(time.perf_counter())
        return False


class _SpanStack(threading.local):
    """Per-thread open-span stack (a fresh list in every thread)."""

    def __init__(self):
        self.stack: List[Span] = []


class Tracer:
    """Process-wide span recorder with an explicit on/off switch.

    Span nesting is tracked per thread: spans opened on a worker thread
    nest under that thread's open spans only, never under another
    thread's.  Completed top-level spans from all threads land in the
    shared ``roots`` list (append is lock-protected).

    Args:
        enabled: Start enabled (default off — production streams pay
            nothing until someone turns the lights on).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self.roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = _SpanStack()

    def span(self, name: str, **meta: Any):
        """Open a span context; a no-op singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, meta)

    @property
    def current(self) -> Optional[Span]:
        """The innermost span open on the calling thread, if any."""
        stack = self._local.stack
        return stack[-1] if stack else None

    def reset(self) -> None:
        """Drop all recorded spans (open spans are abandoned)."""
        with self._lock:
            self.roots.clear()
            # Replacing the thread-local drops every thread's open stack;
            # each thread lazily re-creates an empty one on next use.
            self._local = _SpanStack()

    # -- span-context plumbing -------------------------------------------

    def _push(self, span: Span) -> None:
        stack = self._local.stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, now: float) -> None:
        stack = self._local.stack
        if not stack:  # reset() mid-span: nothing left to close
            return
        span = stack.pop()
        span.duration = now - span.started


def aggregate_spans(root: Span) -> List[Dict[str, Any]]:
    """Flatten a span tree into per-name aggregates.

    Groups every span in the subtree (including ``root``) by name and
    reports call counts and wall-time totals — the flat profile a perf
    baseline or a human wants, regardless of nesting depth.

    Returns:
        A list of dicts sorted by descending total time, each with keys
        ``name``, ``calls``, ``total_s``, ``self_s``, ``max_s``, and
        ``meta`` (the metadata of the longest call).
    """
    groups: Dict[str, Dict[str, Any]] = {}
    for span in root.walk():
        agg = groups.setdefault(
            span.name,
            {"name": span.name, "calls": 0, "total_s": 0.0, "self_s": 0.0,
             "max_s": 0.0, "meta": {}},
        )
        agg["calls"] += 1
        agg["total_s"] += span.duration
        agg["self_s"] += span.self_seconds
        if span.duration >= agg["max_s"]:
            agg["max_s"] = span.duration
            agg["meta"] = {k: _jsonable(v) for k, v in span.meta.items()}
    return sorted(groups.values(), key=lambda g: g["total_s"], reverse=True)


def render_span_table(aggregated: List[Dict[str, Any]]) -> str:
    """Human-readable table of aggregated spans (for CLIs and logs)."""
    if not aggregated:
        return "spans: (none recorded)"
    width = max([len(a["name"]) for a in aggregated] + [len("span")])
    lines = [
        f"{'span'.ljust(width)}  {'calls':>6}  {'total':>10}  {'self':>10}  {'max':>10}"
    ]
    for a in aggregated:
        lines.append(
            f"{a['name'].ljust(width)}  {a['calls']:>6d}"
            f"  {_fmt_s(a['total_s']):>10}  {_fmt_s(a['self_s']):>10}"
            f"  {_fmt_s(a['max_s']):>10}"
        )
    return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def _jsonable(value: Any) -> Any:
    """Coerce span metadata to JSON-serializable primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)
