/* Banded Bellman forward pass for DP peak tracking (§4.2, Eqns. 6-8).
 *
 * Compiled on demand by repro/perf/dptrack.py (see there for the build
 * and caching story).  One call runs the forward recursion for a whole
 * stack of alignment matrices; dp_backtrace walks the stored
 * backpointers for the whole stack in one call.
 *
 * Formulation: the reference recursion evaluates, per step, the full
 * (L, L) candidate table cand[l][n] = base[l] + jc[l][n] and takes the
 * per-column argmax with numpy's first-index tie-break.  Here the table
 * is swept with l outermost and the running column maxima updated in a
 * branchless blend, which preserves that tie-break exactly: the maxima
 * update only on a strictly-greater candidate, and l ascends.  The one
 * exception is the l == n diagonal used to seed the maxima before the
 * sweep — a strictly earlier l must displace an equal-valued seed, hence
 * the explicit displace term.  The candidate sums are the same float
 * expressions the reference computes, so values, backpointers, and tie
 * decisions are bit-identical.
 *
 * The argmax lane is carried as a float of the same width as the values
 * (argd), so the blend loop is a single-type SIMD select; lag indices
 * are exactly representable far beyond any realistic L, and the int32
 * backpointers are materialized once per step.  The per-step scratch
 * (base/best/argd) lives on the stack — provably alias-free, which is
 * what lets the compiler keep the read-modify-write blend vectorized —
 * capping the supported lag count at DP_MAX_LAGS; wider requests return
 * nonzero and the caller falls back to the numpy path (the practical
 * L = 2*max_lag + 1 is ~121).
 *
 * Banding: with c = -omega / (2W) > 0 the jump cost falls by at least c
 * per lag of distance, so any origin l with |l - n| > (base_max -
 * base_min) / c is dominated by the diagonal seed l = n.  Sweeping only
 * the radius R = (base_max - base_min) / c + 4 around each l is
 * therefore lossless; the +4 margin absorbs the rounding of the
 * precomputed jc entries (each |jc| <= |omega|, so its rounding error is
 * far below c at any realistic L).  On peaked TRRS matrices the spread
 * base_max - base_min stays small and the sweep is effectively O(L*R).
 *
 * The float32 twin exists for the opt-in reduced-precision kernel mode
 * (RimConfig.kernel_dtype = "float32"); it mirrors the float64 code
 * exactly and keeps the same tie semantics at its own precision.
 */

#include <stddef.h>
#include <stdint.h>

#define DP_MAX_LAGS 512

int dp_forward_f64(const double *restrict e, const double *restrict jc,
                   double *restrict score, int32_t *restrict backptr,
                   ptrdiff_t n_mat, ptrdiff_t t, ptrdiff_t n_lags, double c)
{
    if (n_lags > DP_MAX_LAGS)
        return 1;
    double base[DP_MAX_LAGS], best[DP_MAX_LAGS], argd[DP_MAX_LAGS];
    for (ptrdiff_t p = 0; p < n_mat; ++p) {
        const double *ep = e + p * t * n_lags;
        double *sc = score + p * n_lags;
        for (ptrdiff_t l = 0; l < n_lags; ++l)
            sc[l] = ep[l];
        for (ptrdiff_t step = 1; step < t; ++step) {
            const double *eprev = ep + (step - 1) * n_lags;
            const double *ecur = ep + step * n_lags;
            int32_t *bp = backptr + (step * n_mat + p) * n_lags;
            double bmin = sc[0] + eprev[0], bmax = bmin;
            for (ptrdiff_t l = 0; l < n_lags; ++l) {
                double b = sc[l] + eprev[l];
                base[l] = b;
                bmin = b < bmin ? b : bmin;
                bmax = b > bmax ? b : bmax;
            }
            ptrdiff_t radius = n_lags;
            if (c > 0.0) {
                double r = (bmax - bmin) / c + 4.0;
                if (r < (double)n_lags)
                    radius = (ptrdiff_t)r;
            }
            for (ptrdiff_t n = 0; n < n_lags; ++n) {
                best[n] = base[n] + jc[n * n_lags + n];
                argd[n] = (double)n;
            }
            for (ptrdiff_t l = 0; l < n_lags; ++l) {
                const double bl = base[l];
                const double ld = (double)l;
                const double *jr = jc + l * n_lags;
                ptrdiff_t n0 = l - radius, n1 = l + radius + 1;
                if (n0 < 0) n0 = 0;
                if (n1 > n_lags) n1 = n_lags;
                for (ptrdiff_t n = n0; n < n1; ++n) {
                    double v = bl + jr[n];
                    int take = (v > best[n]) | ((v == best[n]) & (ld < argd[n]));
                    best[n] = take ? v : best[n];
                    argd[n] = take ? ld : argd[n];
                }
            }
            for (ptrdiff_t n = 0; n < n_lags; ++n) {
                bp[n] = (int32_t)argd[n];
                sc[n] = best[n] + ecur[n];
            }
        }
    }
    return 0;
}

int dp_forward_f32(const float *restrict e, const float *restrict jc,
                   float *restrict score, int32_t *restrict backptr,
                   ptrdiff_t n_mat, ptrdiff_t t, ptrdiff_t n_lags, float c)
{
    if (n_lags > DP_MAX_LAGS)
        return 1;
    float base[DP_MAX_LAGS], best[DP_MAX_LAGS], argd[DP_MAX_LAGS];
    for (ptrdiff_t p = 0; p < n_mat; ++p) {
        const float *ep = e + p * t * n_lags;
        float *sc = score + p * n_lags;
        for (ptrdiff_t l = 0; l < n_lags; ++l)
            sc[l] = ep[l];
        for (ptrdiff_t step = 1; step < t; ++step) {
            const float *eprev = ep + (step - 1) * n_lags;
            const float *ecur = ep + step * n_lags;
            int32_t *bp = backptr + (step * n_mat + p) * n_lags;
            float bmin = sc[0] + eprev[0], bmax = bmin;
            for (ptrdiff_t l = 0; l < n_lags; ++l) {
                float b = sc[l] + eprev[l];
                base[l] = b;
                bmin = b < bmin ? b : bmin;
                bmax = b > bmax ? b : bmax;
            }
            ptrdiff_t radius = n_lags;
            if (c > 0.0f) {
                float r = (bmax - bmin) / c + 4.0f;
                if (r < (float)n_lags)
                    radius = (ptrdiff_t)r;
            }
            for (ptrdiff_t n = 0; n < n_lags; ++n) {
                best[n] = base[n] + jc[n * n_lags + n];
                argd[n] = (float)n;
            }
            for (ptrdiff_t l = 0; l < n_lags; ++l) {
                const float bl = base[l];
                const float ld = (float)l;
                const float *jr = jc + l * n_lags;
                ptrdiff_t n0 = l - radius, n1 = l + radius + 1;
                if (n0 < 0) n0 = 0;
                if (n1 > n_lags) n1 = n_lags;
                for (ptrdiff_t n = n0; n < n1; ++n) {
                    float v = bl + jr[n];
                    int take = (v > best[n]) | ((v == best[n]) & (ld < argd[n]));
                    best[n] = take ? v : best[n];
                    argd[n] = take ? ld : argd[n];
                }
            }
            for (ptrdiff_t n = 0; n < n_lags; ++n) {
                bp[n] = (int32_t)argd[n];
                sc[n] = best[n] + ecur[n];
            }
        }
    }
    return 0;
}

/* Walk the stored backpointers from the given terminal columns.
 * lag_indices is (n_mat, t) int64; lag_indices[p][t-1] must hold the
 * argmax of the final score row on entry (numpy computes it — its
 * first-index tie-break over a contiguous row is the contract). */
void dp_backtrace(const int32_t *restrict backptr,
                  int64_t *restrict lag_indices, ptrdiff_t n_mat,
                  ptrdiff_t t, ptrdiff_t n_lags)
{
    for (ptrdiff_t p = 0; p < n_mat; ++p) {
        int64_t *lp = lag_indices + p * t;
        int64_t cur = lp[t - 1];
        for (ptrdiff_t step = t - 1; step > 0; --step) {
            cur = backptr[(step * n_mat + p) * n_lags + cur];
            lp[step - 1] = cur;
        }
    }
}
