"""Consistent-hash ring: stable session -> shard assignment.

Sessions land on shards by hashing the session name onto a ring of
virtual nodes (``vnodes`` points per shard).  Two properties matter for
the fleet and are locked down by ``tests/test_shard.py``:

* **Determinism across processes.**  Hashes come from BLAKE2b (stdlib,
  keyed by nothing), not Python's seeded ``hash()``, so the router, a
  restarted router, and every worker agree on the map.
* **Stability across resizes.**  Adding or removing one shard remaps
  only the sessions that hashed onto that shard's arcs — about ``1/N``
  of them — so a failover or scale-up does not reshuffle the fleet.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Sequence, Tuple

DEFAULT_VNODES = 64


def _ring_hash(key: str) -> int:
    """64-bit BLAKE2b position on the ring (process-independent)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """Consistent-hash ring over named nodes.

    Args:
        nodes: Node names (shard ids); order does not matter.
        vnodes: Virtual nodes per physical node — more vnodes means a
            smoother split at the cost of a larger (still tiny) table.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: List[str] = []
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> List[str]:
        """Current node names, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add a node (idempotent is an error: one arc set per node)."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for k in range(self.vnodes):
            self._points.append((_ring_hash(f"{node}#{k}"), node))
        # Ties between distinct nodes' vnodes are broken by node name so
        # every process sorts the ring identically.
        self._points.sort()
        self._keys = [point for point, _ in self._points]

    def remove(self, node: str) -> None:
        """Drop a node; only its own arcs' keys remap."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        self._points = [(p, n) for p, n in self._points if n != node]
        self._keys = [point for point, _ in self._points]

    def assign(self, key: str) -> str:
        """The node owning ``key``: first vnode clockwise of its hash."""
        if not self._points:
            raise ValueError("cannot assign on an empty ring")
        at = bisect.bisect_right(self._keys, _ring_hash(key))
        if at == len(self._points):
            at = 0
        return self._points[at][1]

    def preference(self, key: str) -> Iterator[str]:
        """Distinct nodes in clockwise ring order from ``key``'s position.

        The first yielded node is :meth:`assign`'s answer; consumers that
        need bounded load (the shard router) take the first node with
        spare capacity instead, which keeps placement consistent — a
        key's preference order never changes unless nodes are added or
        removed — while bounding imbalance.
        """
        if not self._points:
            raise ValueError("cannot assign on an empty ring")
        start = bisect.bisect_right(self._keys, _ring_hash(key))
        seen = set()
        for k in range(len(self._points)):
            node = self._points[(start + k) % len(self._points)][1]
            if node not in seen:
                seen.add(node)
                yield node

    def table(self, keys: Sequence[str]) -> Dict[str, str]:
        """Assignment map for a batch of keys."""
        return {key: self.assign(key) for key in keys}
