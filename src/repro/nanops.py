"""NaN-tolerant reductions that stay silent on all-NaN slices.

``np.nanmean``/``np.nanmedian`` emit RuntimeWarnings when a slice holds no
finite value; lost-packet columns make that a routine, expected condition
here, so these wrappers return NaN quietly instead.
"""

from __future__ import annotations

import warnings

import numpy as np


def nanmean(values: np.ndarray, axis=None) -> np.ndarray:
    """np.nanmean without the all-NaN RuntimeWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmean(values, axis=axis)


def nanmedian(values: np.ndarray, axis=None) -> np.ndarray:
    """np.nanmedian without the all-NaN RuntimeWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmedian(values, axis=axis)


def nanmax(values: np.ndarray, axis=None) -> np.ndarray:
    """np.nanmax without the all-NaN RuntimeWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmax(values, axis=axis)
