"""CSI capture along a trajectory: the glue between substrates.

``CsiSampler`` carries an antenna array along a ground-truth trajectory
through a multipath channel and records what each receive antenna would
measure for every broadcast packet of the AP — an ideal CFR tensor — then
pushes it through the per-NIC impairment pipeline.  The result is a
:class:`CsiTrace`, the input format of the RIM estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.channel.constants import HALF_WAVELENGTH
from repro.channel.impairments import CsiImpairer, ImpairmentConfig, clean
from repro.channel.model import MultipathChannel
from repro.motionsim.trajectory import Trajectory


@dataclass
class CsiTrace:
    """A recorded CSI trace plus everything needed to evaluate against truth.

    Attributes:
        data: (T, n_rx, n_tx, S) complex64 CFRs; lost packets are NaN.
        times: (T,) packet timestamps, seconds.
        array: The receive antenna array.
        trajectory: Ground-truth array pose (same sampling instants).
        tx_positions: (n_tx, 2) AP antenna positions.
        carrier_wavelength: Carrier wavelength of the grid, meters.
    """

    data: np.ndarray
    times: np.ndarray
    array: AntennaArray
    trajectory: Trajectory
    tx_positions: np.ndarray
    carrier_wavelength: float

    @property
    def n_samples(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_rx(self) -> int:
        return int(self.data.shape[1])

    @property
    def n_tx(self) -> int:
        return int(self.data.shape[2])

    @property
    def n_subcarriers(self) -> int:
        return int(self.data.shape[3])

    @property
    def sampling_rate(self) -> float:
        return self.trajectory.sampling_rate

    def lost_mask(self) -> np.ndarray:
        """(T, n_rx) True where a packet is missing on an RX chain."""
        return np.isnan(self.data.real).any(axis=(2, 3))

    def chain_liveness(self) -> np.ndarray:
        """(n_rx,) fraction of packets with finite CSI per RX chain.

        The input guard uses this to tell a dead front-end (liveness near
        zero) from ordinary packet loss (liveness near one).
        """
        if self.n_samples == 0:
            return np.ones(self.n_rx)
        return 1.0 - self.lost_mask().mean(axis=0)

    def loss_rate(self, exclude_chains=()) -> float:
        """Lost-slot fraction, optionally ignoring (e.g. dead) chains."""
        lost = self.lost_mask()
        keep = [c for c in range(self.n_rx) if c not in set(exclude_chains)]
        if not keep or lost.size == 0:
            return 0.0
        return float(lost[:, keep].mean())

    def downsample(self, factor: int) -> "CsiTrace":
        """Keep every ``factor``-th packet (the Fig. 16 workload)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        sl = slice(None, None, factor)
        traj = Trajectory(
            times=self.trajectory.times[sl],
            positions=self.trajectory.positions[sl],
            orientations=self.trajectory.orientations[sl],
        )
        return CsiTrace(
            data=self.data[sl],
            times=self.times[sl],
            array=self.array,
            trajectory=traj,
            tx_positions=self.tx_positions,
            carrier_wavelength=self.carrier_wavelength,
        )


def ap_antenna_positions(
    position, n_tx: int = 3, spacing: float = HALF_WAVELENGTH
) -> np.ndarray:
    """AP antenna coordinates: a small linear array at the AP location."""
    position = np.asarray(position, dtype=np.float64)
    offsets = (np.arange(n_tx) - (n_tx - 1) / 2.0) * spacing
    out = np.tile(position, (n_tx, 1))
    out[:, 0] += offsets
    return out


@dataclass
class CsiSampler:
    """Samples CSI for a moving array in a fixed channel.

    Attributes:
        channel: The multipath channel (scatterers + floorplan + grid).
        tx_positions: (n_tx, 2) AP antenna positions.
        impairments: Impairment config applied per NIC; defaults to clean.
        rng: Randomness source for the impairment pipeline.
    """

    channel: MultipathChannel
    tx_positions: np.ndarray
    impairments: ImpairmentConfig = field(default_factory=clean)
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        self.tx_positions = np.atleast_2d(
            np.asarray(self.tx_positions, dtype=np.float64)
        )
        if self.tx_positions.shape[1] != 2:
            raise ValueError("tx_positions must be (n_tx, 2)")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def sample(self, trajectory: Trajectory, array: AntennaArray) -> CsiTrace:
        """Record a CSI trace for the array along the trajectory.

        Args:
            trajectory: Ground-truth pose of the array center per packet.
            array: The receive antenna array.

        Returns:
            The impaired :class:`CsiTrace`.
        """
        rx_world = array.world_positions(
            trajectory.positions, trajectory.orientations
        )
        t = trajectory.n_samples
        n_rx = array.n_antennas
        n_tx = self.tx_positions.shape[0]
        s = self.channel.grid.n_subcarriers

        data = np.empty((t, n_rx, n_tx, s), dtype=np.complex64)
        for a in range(n_rx):
            for k in range(n_tx):
                data[:, a, k, :] = self.channel.cfr(
                    self.tx_positions[k], rx_world[:, a, :]
                )

        data = self._impair_per_nic(data, array)
        return CsiTrace(
            data=data,
            times=trajectory.times.copy(),
            array=array,
            trajectory=trajectory,
            tx_positions=self.tx_positions.copy(),
            carrier_wavelength=299_792_458.0 / self.channel.grid.carrier_frequency,
        )

    def sample_moving_tx(
        self, trajectory: Trajectory, array: AntennaArray
    ) -> CsiTrace:
        """Record CSI for the reciprocal deployment: the *device* transmits.

        §3.2: "RIM also applies to the opposite case when the Tx is moving
        with a static Rx measuring CSI due to channel reciprocity" — e.g. a
        drone carrying the array as a mobile AP.  The CFR between antenna
        pairs is symmetric in our ray model (path lengths and wall
        crossings do not depend on direction), so the tensor matches the
        moving-RX case; what changes is the clocking: every measurement is
        taken by the single static receiver, so timing offsets and packet
        loss are common to *all* moving-array antennas (one NIC group).

        Args:
            trajectory: Pose of the moving (transmitting) array.
            array: The antenna array carried by the moving device.

        Returns:
            A :class:`CsiTrace` laid out exactly like the moving-RX case:
            ``data[t, moving_antenna, static_antenna, tone]``.
        """
        tx_world = array.world_positions(
            trajectory.positions, trajectory.orientations
        )
        t = trajectory.n_samples
        n_moving = array.n_antennas
        n_static = self.tx_positions.shape[0]
        s = self.channel.grid.n_subcarriers

        data = np.empty((t, n_moving, n_static, s), dtype=np.complex64)
        for a in range(n_moving):
            for k in range(n_static):
                # Reciprocity: evaluate the channel with the static antenna
                # as "tx" and the moving antenna's positions as "rx".
                data[:, a, k, :] = self.channel.cfr(
                    self.tx_positions[k], tx_world[:, a, :]
                )

        impairer = CsiImpairer(
            config=self.impairments,
            grid=self.channel.grid,
            n_rx=n_moving,
            rng=self.rng,
        )
        data = impairer.apply(data)
        return CsiTrace(
            data=data,
            times=trajectory.times.copy(),
            array=array,
            trajectory=trajectory,
            tx_positions=self.tx_positions.copy(),
            carrier_wavelength=299_792_458.0 / self.channel.grid.carrier_frequency,
        )

    def _impair_per_nic(self, data: np.ndarray, array: AntennaArray) -> np.ndarray:
        """Apply one impairment chain per NIC (shared clock per NIC)."""
        out = np.empty_like(data)
        for nic in range(array.n_nics):
            members = np.nonzero(array.nic_assignment == nic)[0]
            impairer = CsiImpairer(
                config=self.impairments,
                grid=self.channel.grid,
                n_rx=len(members),
                rng=self.rng,
            )
            out[:, members, :, :] = impairer.apply(data[:, members, :, :])
        return out
