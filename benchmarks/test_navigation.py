"""Bench: closed-loop AGV navigation on RIM feedback (§6.3.3 motivation)."""

from repro.eval.extensions import run_navigation
from repro.eval.report import print_report


def test_navigation_closed_loop(benchmark, quick):
    result = benchmark.pedantic(
        run_navigation, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Closed loop — AGV waypoint navigation", result)
    m = result["measured"]
    assert m["waypoints_reached"] >= m["n_waypoints"] - 1
    assert m["mean_arrival_error_cm"] < 60.0
