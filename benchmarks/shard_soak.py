#!/usr/bin/env python
"""Nightly shard-fleet soak: faulted net-load, forced shard kill, resume.

Two phases against one 2-shard (configurable) ``repro.shard`` fleet,
both asserting bit-identity — the soak fails loudly rather than
averaging over divergence:

1. **Faulted net-load.**  Receiver traces stream over real TCP through
   a :class:`~repro.net.NetServer` whose session manager is the
   :class:`~repro.shard.router.ShardRouter`, with wire faults (forced
   mid-stream disconnects) injected by every client.  Each session's
   delivered update stream must match an in-process single-stream
   replay exactly (``baseline_match``) — reconnect-resume and the shard
   pipe transport may not change a single bit.

2. **Shard kill + resume.**  A fresh set of sessions is pushed halfway,
   the fleet is synced to durable storage, one shard is SIGKILLed, and
   the survivors adopt its sessions from their checkpoints.  The second
   half is then pushed and the combined update stream must equal an
   uninterrupted replay of the same trace, with exactly the forced
   failover on the books.

Runs from ``workflow_dispatch`` / the nightly schedule — deliberately
longer than anything on the PR-blocking path.

Usage::

    PYTHONPATH=src python benchmarks/shard_soak.py --sessions 8 \\
        --duration 6.0 --shards 2 --out shard_soak.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def _phase_net_load(router, serve_config, receivers):
    """Faulted TCP load through the sharded server; returns a report.

    Every client hard-disconnects once mid-stream (the wire fault
    injector forces at most one disconnect per connection) and must
    reconnect-resume without changing a bit of the update stream.
    """
    from repro.net import NetClientConfig, NetFaultPlan, NetServer, \
        NetServerConfig, run_net_load

    server = NetServer(
        config=NetServerConfig(port=0),
        serve_config=serve_config,
        manager=router,
    ).start()
    try:
        n_samples = min(trace.n_samples for _, trace in receivers)
        plan = NetFaultPlan(disconnect_after=max(2, n_samples // 2))
        result = run_net_load(
            receivers,
            fault_plan=plan,
            serve_config=serve_config,
            client_config=NetClientConfig(backoff_base_s=0.02),
            host=server.config.host,
            port=server.port,
            check_baseline=True,
        )
    finally:
        server.close()
    agg = result["aggregate"]
    return {
        "n_sessions": len(receivers),
        "n_samples": int(agg["n_samples"]),
        "wall_s": float(agg["wall_s"]),
        "samples_per_second": float(agg["samples_per_second"]),
        "reconnects": int(agg["reconnects"]),
        "baseline_match": result["baseline_match"],
    }


def _phase_kill_resume(router, receivers, kill_index, block_seconds):
    """Sync, SIGKILL one shard, verify adopted sessions stay bit-exact."""
    from repro.core.streaming import StreamingRim
    from repro.net import updates_equal

    for name, trace in receivers:
        router.create(
            name,
            trace.array,
            trace.sampling_rate,
            carrier_wavelength=trace.carrier_wavelength,
        )
    delivered = {name: [] for name, _ in receivers}
    halves = {name: trace.n_samples // 2 for name, trace in receivers}

    t0 = time.perf_counter()
    for name, trace in receivers:
        for k in range(halves[name]):
            router.push(name, trace.data[k], float(trace.times[k]))
        delivered[name].extend(router.poll(name))
    router.sync()
    mine = {name for name, _ in receivers}
    victims = [
        str(row["session"]) for row in router.stats()
        if row.get("shard") == f"shard-{kill_index}"
        and str(row["session"]) in mine
    ]
    router.kill_shard(kill_index, failover=True)
    for name, trace in receivers:
        for k in range(halves[name], trace.n_samples):
            router.push(name, trace.data[k], float(trace.times[k]))
    finals = router.flush_all()
    wall = time.perf_counter() - t0
    for name, _ in receivers:
        delivered[name].extend(finals.get(name, []))

    mismatches = []
    for name, trace in receivers:
        stream = StreamingRim(
            trace.array,
            trace.sampling_rate,
            block_seconds=block_seconds,
            carrier_wavelength=trace.carrier_wavelength,
        )
        expected = []
        for k in range(trace.n_samples):
            update = stream.push(trace.data[k], float(trace.times[k]))
            if update is not None:
                expected.append(update)
        final = stream.flush()
        if final is not None:
            expected.append(final)
        if not updates_equal(delivered[name], expected):
            mismatches.append(name)

    fleet = router.fleet_stats()
    return {
        "n_sessions": len(receivers),
        "wall_s": wall,
        "killed_shard": kill_index,
        "victims": sorted(victims),
        "failovers": int(fleet["failovers"]),
        "alive_shards": len(fleet["alive"]),
        "sessions_per_shard": fleet["sessions_per_shard"],
        "mismatches": mismatches,
        "bit_identical": not mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sessions", type=int, default=8, metavar="N",
        help="receiver sessions per phase (default 8)",
    )
    parser.add_argument(
        "--duration", type=float, default=6.0, metavar="SEC",
        help="simulated trace duration per session (default 6.0; the "
        "soak is meant to run longer than the PR-path smoke tests)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="fleet width (default 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--kill-shard", type=int, default=0, metavar="K",
        help="shard index to SIGKILL in phase 2 (default 0)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON soak report here (CI artifact)",
    )
    args = parser.parse_args(argv)

    from repro.serve.session import ServeConfig
    from repro.serve.simulate import simulated_receivers
    from repro.shard.router import ShardRouter

    serve_config = ServeConfig(block_seconds=1.0)
    net_receivers = simulated_receivers(
        args.sessions, seed=args.seed, duration_s=args.duration
    )
    kill_receivers = [
        (f"kr{k:02d}", trace)
        for k, (_, trace) in enumerate(
            simulated_receivers(
                args.sessions, seed=args.seed + 1, duration_s=args.duration
            )
        )
    ]

    record_dir = Path(tempfile.mkdtemp(prefix="rim-shard-soak-"))
    router = ShardRouter(
        args.shards, serve_config=serve_config, record_dir=record_dir
    )
    try:
        router.wait_ready()
        print(f"phase 1: faulted net-load ({args.sessions} sessions, "
              f"one forced disconnect/client) ...")
        net_report = _phase_net_load(router, serve_config, net_receivers)
        print(f"  {net_report['n_samples']} samples at "
              f"{net_report['samples_per_second']:.0f} samples/s, "
              f"{net_report['reconnects']} reconnects, "
              f"baseline_match={net_report['baseline_match']}")
        print(f"phase 2: kill shard {args.kill_shard} + resume ...")
        kill_report = _phase_kill_resume(
            router, kill_receivers, args.kill_shard,
            serve_config.block_seconds,
        )
        print(f"  {len(kill_report['victims'])} sessions adopted after "
              f"SIGKILL, failovers={kill_report['failovers']}, "
              f"bit_identical={kill_report['bit_identical']}")
    finally:
        import shutil

        router.close()
        shutil.rmtree(record_dir, ignore_errors=True)

    report = {
        "sessions": args.sessions,
        "duration_s": args.duration,
        "shards": args.shards,
        "seed": args.seed,
        "net_load": net_report,
        "kill_resume": kill_report,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    failures = []
    if net_report["baseline_match"] is not True:
        failures.append(
            "phase 1: sharded net-load diverged from the in-process "
            f"baseline (baseline_match={net_report['baseline_match']})"
        )
    if net_report["reconnects"] < args.sessions:
        failures.append(
            f"phase 1: expected >= {args.sessions} reconnects, saw "
            f"{net_report['reconnects']} — the fault plan never fired"
        )
    if not kill_report["victims"]:
        failures.append(
            "phase 2: the killed shard owned no sessions — the kill "
            "exercised nothing"
        )
    if kill_report["failovers"] < 1:
        failures.append("phase 2: no failover was recorded")
    if not kill_report["bit_identical"]:
        failures.append(
            "phase 2: resumed sessions diverged from the uninterrupted "
            f"replay: {kill_report['mismatches']}"
        )
    if failures:
        print("\nshard soak: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nshard soak: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
