"""Gate plumbing shared by the bench subsystem and the perf baseline.

:func:`format_gate_failure` is the single formatter behind every
regression-gate failure string in the repo (bench compare, the v9 perf
gate) so CI logs read uniformly: which gate, measured vs baseline, and
the budget that was applied.  :func:`gate_reference_cell` ties a bench
run table back to the committed ``BENCH_perf.json`` reference cell so
the matrix job fails when the canonical configuration slows down.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Absolute slack added to latency gates: block latencies are
#: milliseconds-scale, so a purely fractional budget would flap on
#: scheduler jitter alone.
LATENCY_GATE_SLACK_S = 0.25


def format_gate_failure(
    gate: str,
    measured: Any,
    baseline: Any,
    budget: Any,
    note: str = "",
) -> str:
    """Render one gate failure in the repo-wide uniform format.

    Example output::

        [serving.block.sessions_per_second] measured 8.10/s vs
        baseline 12.00/s (budget -20%)
    """
    text = f"[{gate}] measured {measured} vs baseline {baseline} (budget {budget})"
    if note:
        text += f" — {note}"
    return text


def _find_row(
    rows: List[Dict[str, Any]], reference: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    for row in rows:
        cell = row["cell"]
        if (
            int(cell["sessions"]) == int(reference["sessions"])
            and int(cell["shards"]) == int(reference["shards"])
            and cell["kernel"] == reference["kernel"]
            and cell["dtype"] == reference.get("dtype", "float64")
            and not cell["fault_plan"]
            and cell["backpressure"] == "block"
        ):
            return row
    return None


def gate_reference_cell(
    table: Dict[str, Any],
    perf_payload: Dict[str, Any],
    max_regression: float = 0.25,
) -> List[str]:
    """Gate a run table's reference cell against ``BENCH_perf.json``.

    The perf baseline's ``capacity.reference_cell`` names the canonical
    configuration (sessions, 1 shard, primary kernel) plus its measured
    sessions/sec and block-latency p95.  The matching row of the run
    table must exist, hold the fractional throughput budget, and keep
    p95 within the budget plus :data:`LATENCY_GATE_SLACK_S`.

    Returns:
        Failure strings (uniform gate format); empty means pass.  A
        baseline predating schema v9 (no capacity section) gates
        nothing, so older checkouts stay comparable.
    """
    capacity = perf_payload.get("capacity")
    if not isinstance(capacity, dict):
        return []
    reference = capacity.get("reference_cell")
    if not isinstance(reference, dict):
        return []
    failures: List[str] = []
    row = _find_row(table.get("rows", []), reference)
    if row is None:
        failures.append(
            format_gate_failure(
                "bench.reference_cell.present",
                measured="no matching row",
                baseline=f"sessions={reference['sessions']} "
                f"shards={reference['shards']} kernel={reference['kernel']}",
                budget="matrix must include the reference cell",
            )
        )
        return failures
    base_rate = float(reference["sessions_per_second"])
    rate = float(row["sessions_per_second"]["mean"])
    if base_rate > 0 and rate < base_rate / (1.0 + max_regression):
        failures.append(
            format_gate_failure(
                "bench.reference_cell.sessions_per_second",
                measured=f"{rate:.2f}/s ({rate / base_rate - 1.0:+.0%})",
                baseline=f"{base_rate:.2f}/s",
                budget=f"-{max_regression / (1.0 + max_regression):.0%}",
            )
        )
    base_p95 = reference.get("block_latency_p95_s")
    p95 = row.get("latency_p95_s")
    if (
        isinstance(base_p95, (int, float))
        and isinstance(p95, (int, float))
        and p95 > float(base_p95) * (1.0 + max_regression) + LATENCY_GATE_SLACK_S
    ):
        failures.append(
            format_gate_failure(
                "bench.reference_cell.latency_p95_s",
                measured=f"{p95 * 1e3:.1f} ms",
                baseline=f"{float(base_p95) * 1e3:.1f} ms",
                budget=f"+{max_regression:.0%} plus "
                f"{LATENCY_GATE_SLACK_S * 1e3:.0f} ms slack",
            )
        )
    return failures
