"""Physical constants and the radio configuration used throughout RIM.

The paper prototypes RIM on 5 GHz WiFi with adjacent antennas spaced at a
half wavelength of 2.58 cm, which corresponds to a carrier of ~5.805 GHz.
All defaults below follow the paper's hardware setup (§5, §6.1).
"""

from __future__ import annotations

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum, m/s."""

CARRIER_FREQUENCY = 5.805e9
"""Default carrier frequency in Hz (5 GHz band, chosen so λ/2 = 2.58 cm)."""

CHANNEL_BANDWIDTH = 40e6
"""Default channel bandwidth in Hz (802.11n 40 MHz channel, §6.1)."""

DEFAULT_SAMPLING_RATE = 200.0
"""Default CSI sampling (packet broadcast) rate in Hz (§6.1)."""


def wavelength(carrier_frequency: float = CARRIER_FREQUENCY) -> float:
    """Return the carrier wavelength in meters."""
    if carrier_frequency <= 0:
        raise ValueError(f"carrier frequency must be positive, got {carrier_frequency}")
    return SPEED_OF_LIGHT / carrier_frequency


WAVELENGTH = wavelength()
"""Default carrier wavelength (~5.16 cm)."""

HALF_WAVELENGTH = WAVELENGTH / 2.0
"""Default antenna separation Δd used by the paper's arrays (~2.58 cm)."""
