#!/usr/bin/env python
"""Desk handwriting with a WiFi "pen" (the Fig. 18 application).

A hexagonal antenna array is moved like a pen writing 20 cm letters; RIM
reconstructs each stroke from CSI alone and the script renders both the
truth and the reconstruction in the terminal.

Run:  python examples/handwriting.py [WORD]
"""

import sys

import numpy as np

from repro import hexagonal_array
from repro.apps.handwriting import write_letter
from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed


def ascii_strokes(truth, estimated, size=28):
    """Overlay true (.) and estimated (o) strokes in a character grid."""
    allpts = np.concatenate([truth, estimated])
    lo = allpts.min(axis=0)
    hi = allpts.max(axis=0)
    span = np.maximum(hi - lo, 1e-6)
    canvas = [[" "] * (2 * size) for _ in range(size)]

    def put(points, symbol):
        for x, y in points:
            col = int((x - lo[0]) / span[0] * (2 * size - 1))
            row = int((1 - (y - lo[1]) / span[1]) * (size - 1))
            canvas[row][col] = symbol

    put(truth, ".")
    put(estimated, "o")
    return "\n".join("".join(row) for row in canvas)


def main():
    word = (sys.argv[1] if len(sys.argv) > 1 else "RIM").upper()
    print(f'writing "{word}" with a WiFi pen (20 cm letters, 0.25 m/s)')

    errors = []
    for k, letter in enumerate(word):
        bed = make_testbed(seed=100 + k)
        spot = MEASUREMENT_SPOTS[k % len(MEASUREMENT_SPOTS)]
        result = write_letter(
            bed.sampler,
            hexagonal_array(),
            letter,
            origin=spot,
            height=0.2,
            pen_speed=0.25,
        )
        errors.append(result.mean_error)
        print(f"\n--- letter {letter}: mean trajectory error "
              f"{result.mean_error * 100:.1f} cm ---")
        # Densify the truth polyline for display.
        from repro.env.geometry2d import resample_polyline

        truth_dense = resample_polyline(result.truth, 0.004)
        print(ascii_strokes(truth_dense, result.estimated[::4]))

    print(f"\nword mean error: {np.mean(errors) * 100:.1f} cm "
          f"(paper reports 2.4 cm)")


if __name__ == "__main__":
    main()
