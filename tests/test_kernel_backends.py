"""Kernel-backend registry and batched-vs-reference equivalence tests.

The batched backend (``repro.perf.kernels``) is only admissible if it is
numerically indistinguishable from the reference per-pair kernels: same
NaN cells, values within 1e-9, on clean traces AND under injected faults.
These are the acceptance tests for that contract, plus the registry's
selection semantics (config > RIM_KERNEL env var > default).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rim, RimConfig, StreamingRim
from repro.arrays.pairs import all_pairs
from repro.core.trrs import normalize_csi
from repro.perf.kernels import BatchedBackend, ReferenceBackend
from repro.perf.registry import (
    DEFAULT_BACKEND,
    RIM_KERNEL_DTYPE_ENV,
    RIM_KERNEL_ENV,
    available_backends,
    get_backend,
    resolve_backend_name,
    resolve_kernel_dtype,
)
from repro.robustness import FaultPlan

TOL = 1e-9

# The fault menu of the acceptance criterion: a dead RF chain, bursty
# packet loss, and truncated (partially-NaN) packets.
FAULT_PLANS = {
    "clean": None,
    "dead_chain": FaultPlan(seed=1, dead_chains=(2,)),
    "bursty_loss": FaultPlan(seed=2, loss_rate=0.05, loss_burst=8),
    "truncation": FaultPlan(seed=3, truncate_fraction=0.03),
}


def _faulted(trace, plan_name):
    plan = FAULT_PLANS[plan_name]
    return trace if plan is None else plan.apply(trace)


# -- registry ---------------------------------------------------------------


def test_registry_lists_builtin_backends():
    names = available_backends()
    assert "reference" in names
    assert "batched" in names


def test_resolution_default_is_batched(monkeypatch):
    monkeypatch.delenv(RIM_KERNEL_ENV, raising=False)
    assert resolve_backend_name(RimConfig()) == DEFAULT_BACKEND == "batched"


def test_resolution_env_var_overrides_default(monkeypatch):
    monkeypatch.setenv(RIM_KERNEL_ENV, "reference")
    assert resolve_backend_name(RimConfig()) == "reference"
    assert Rim(RimConfig()).kernel_backend == "reference"


def test_resolution_config_beats_env(monkeypatch):
    monkeypatch.setenv(RIM_KERNEL_ENV, "reference")
    cfg = RimConfig(kernel_backend="batched")
    assert resolve_backend_name(cfg) == "batched"
    assert Rim(cfg).kernel_backend == "batched"


def test_unknown_backend_fails_fast_with_choices():
    with pytest.raises(ValueError, match="reference"):
        Rim(RimConfig(kernel_backend="no-such-kernel"))


def test_config_rejects_empty_backend_name():
    with pytest.raises(ValueError):
        RimConfig(kernel_backend="")
    with pytest.raises(ValueError):
        RimConfig(kernel_threads=-1)


# -- kernel precision (float32 opt-in) --------------------------------------


def test_dtype_resolution_default_is_float64(monkeypatch):
    monkeypatch.delenv(RIM_KERNEL_DTYPE_ENV, raising=False)
    assert resolve_kernel_dtype(RimConfig()) == "float64"


def test_dtype_resolution_env_var_opts_in(monkeypatch):
    monkeypatch.setenv(RIM_KERNEL_DTYPE_ENV, "float32")
    assert resolve_kernel_dtype(RimConfig()) == "float32"


def test_dtype_resolution_config_beats_env(monkeypatch):
    monkeypatch.setenv(RIM_KERNEL_DTYPE_ENV, "float32")
    assert resolve_kernel_dtype(RimConfig(kernel_dtype="float64")) == "float64"


def test_dtype_resolution_rejects_unknown_env(monkeypatch):
    monkeypatch.setenv(RIM_KERNEL_DTYPE_ENV, "float16")
    with pytest.raises(ValueError, match="float16"):
        resolve_kernel_dtype(RimConfig())


def test_config_rejects_unknown_dtype():
    with pytest.raises(ValueError):
        RimConfig(kernel_dtype="float16")


def test_float32_backend_stores_single_precision(line_trace):
    backend = BatchedBackend(dtype="float32")
    store = backend.make_store(normalize_csi(line_trace.data), 25)
    assert store.dtype == np.float32
    with pytest.raises(ValueError):
        BatchedBackend(dtype="int8")


# The float32 kernel error budget of docs/performance.md: with single-
# precision TRRS accumulation and DP scores, the integrated distance on
# the standard testbed stays within 1e-6 of the float64 path (measured
# deviation is ~2e-9 m on a ~1 m trajectory; the budget leaves three
# orders of magnitude of headroom for other scenarios).
FLOAT32_DISTANCE_BUDGET = 1e-6


@pytest.mark.parametrize("plan_name", ["clean", "bursty_loss"])
def test_float32_pipeline_within_documented_budget(line_trace, plan_name):
    trace = _faulted(line_trace, plan_name)

    def distance(dtype):
        cfg = RimConfig(
            max_lag=25, kernel_backend="batched", kernel_dtype=dtype
        )
        return Rim(cfg).process(trace).total_distance

    d64 = distance("float64")
    d32 = distance("float32")
    assert abs(d32 - d64) <= FLOAT32_DISTANCE_BUDGET


def test_float64_mode_unchanged_by_dtype_plumbing(line_trace, monkeypatch):
    """kernel_dtype='float64' must be the exact default pipeline —
    bit-identical distance, not merely within tolerance."""
    monkeypatch.delenv(RIM_KERNEL_DTYPE_ENV, raising=False)
    default = Rim(RimConfig(max_lag=25, kernel_backend="batched")).process(
        line_trace
    )
    pinned = Rim(
        RimConfig(max_lag=25, kernel_backend="batched", kernel_dtype="float64")
    ).process(line_trace)
    assert default.total_distance == pinned.total_distance


# -- raw matrix equivalence -------------------------------------------------


def _stores(trace, max_lag=25):
    norm = normalize_csi(trace.data)
    ref, bat = ReferenceBackend(), BatchedBackend()
    return (
        ref,
        bat,
        ref.make_store(norm, max_lag),
        bat.make_store(norm, max_lag),
    )


def _assert_matrices_match(ref_mats, bat_mats):
    for rm, bm in zip(ref_mats, bat_mats):
        assert rm.pair == bm.pair
        assert np.array_equal(rm.lags, bm.lags)
        ref_nan = np.isnan(rm.values)
        assert np.array_equal(ref_nan, np.isnan(bm.values)), (
            f"NaN masks differ for pair {rm.pair}"
        )
        assert np.allclose(
            rm.values, bm.values, rtol=0.0, atol=TOL, equal_nan=True
        ), f"values differ for pair {rm.pair}"


@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("virtual_window", [1, 8])
def test_raw_matrices_match_reference(line_trace, plan_name, virtual_window):
    trace = _faulted(line_trace, plan_name)
    pairs = all_pairs(trace.array)
    ref, bat, rs, bs = _stores(trace)
    kw = dict(virtual_window=virtual_window, sampling_rate=trace.sampling_rate)
    _assert_matrices_match(
        ref.matrices(rs, pairs, **kw), bat.matrices(bs, pairs, **kw)
    )


def test_strided_matrices_match_reference(line_trace):
    pairs = all_pairs(line_trace.array)
    ref, bat, rs, bs = _stores(line_trace)
    kw = dict(
        virtual_window=1, sampling_rate=line_trace.sampling_rate, time_stride=8
    )
    _assert_matrices_match(
        ref.matrices(rs, pairs, **kw), bat.matrices(bs, pairs, **kw)
    )


def test_strided_then_full_request_reuses_rows(line_trace):
    """A full request after a strided pre-screen stays exact (row reuse)."""
    pairs = all_pairs(line_trace.array)
    ref, bat, rs, bs = _stores(line_trace)
    kw = dict(virtual_window=1, sampling_rate=line_trace.sampling_rate)
    bat.matrices(bs, pairs, time_stride=8, **kw)  # warms every 8th row
    _assert_matrices_match(
        ref.matrices(rs, pairs, **kw), bat.matrices(bs, pairs, **kw)
    )


def test_threaded_backend_matches_serial(line_trace):
    pairs = all_pairs(line_trace.array)
    norm = normalize_csi(line_trace.data)
    serial, threaded = BatchedBackend(threads=0), BatchedBackend(threads=2)
    kw = dict(virtual_window=4, sampling_rate=line_trace.sampling_rate)
    a = serial.matrices(serial.make_store(norm, 25), pairs, **kw)
    b = threaded.matrices(threaded.make_store(norm, 25), pairs, **kw)
    for ma, mb in zip(a, b):
        assert np.array_equal(
            np.isnan(ma.values), np.isnan(mb.values)
        )
        assert np.allclose(
            ma.values, mb.values, rtol=0.0, atol=TOL, equal_nan=True
        )


# -- end-to-end pipeline equivalence ---------------------------------------


def _run(trace, backend, **cfg_kw):
    # Pin float64: these are cross-backend 1e-9 comparisons, which the
    # opt-in float32 mode (ambient RIM_KERNEL_DTYPE in the CI matrix)
    # intentionally does not satisfy.
    cfg = RimConfig(
        max_lag=25, kernel_backend=backend, kernel_dtype="float64", **cfg_kw
    )
    return Rim(cfg).process(trace)


def _assert_results_match(ref, bat):
    assert np.array_equal(ref.motion.moving, bat.motion.moving)
    for attr in ("speed", "heading"):
        a, b = getattr(ref.motion, attr), getattr(bat.motion, attr)
        assert np.array_equal(np.isnan(a), np.isnan(b)), attr
        assert np.allclose(a, b, rtol=0.0, atol=TOL, equal_nan=True), attr
    assert abs(ref.total_distance - bat.total_distance) <= TOL


@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
def test_pipeline_equivalence_linear(line_trace, plan_name):
    trace = _faulted(line_trace, plan_name)
    _assert_results_match(
        _run(trace, "reference"), _run(trace, "batched")
    )


@pytest.mark.parametrize("plan_name", ["clean", "bursty_loss"])
def test_pipeline_equivalence_hexagon(hex_line_trace, plan_name):
    """Hexagonal array exercises rotation detection's ring-pair requests."""
    trace = _faulted(hex_line_trace, plan_name)
    _assert_results_match(
        _run(trace, "reference"), _run(trace, "batched")
    )


@pytest.mark.parametrize("plan_name", ["clean", "dead_chain", "bursty_loss"])
def test_streaming_equivalence(line_trace, three_antenna, plan_name):
    """Streamed distance must not depend on the backend or the row cache."""
    trace = _faulted(line_trace, plan_name)

    def stream_distance(backend, stream_reuse):
        cfg = RimConfig(
            max_lag=25,
            kernel_backend=backend,
            kernel_dtype="float64",  # cross-backend 1e-9 comparison
            stream_reuse=stream_reuse,
        )
        stream = StreamingRim(
            three_antenna,
            trace.sampling_rate,
            cfg,
            block_seconds=0.5,
            carrier_wavelength=trace.carrier_wavelength,
        )
        for k in range(trace.n_samples):
            stream.push(trace.data[k], float(trace.times[k]))
        stream.flush()
        return stream.total_distance

    d_ref = stream_distance("reference", stream_reuse=False)
    d_bat = stream_distance("batched", stream_reuse=False)
    d_cached = stream_distance("batched", stream_reuse=True)
    assert abs(d_bat - d_ref) <= TOL
    assert abs(d_cached - d_ref) <= TOL


def test_get_backend_threads_knob():
    backend = get_backend(RimConfig(kernel_backend="batched", kernel_threads=3))
    assert isinstance(backend, BatchedBackend)
    assert backend.threads == 3
