"""Performance baseline harness: measure the pipeline, emit ``BENCH_perf.json``.

The paper reports RIM's runtime cost directly (§6.2.9: ~6% CPU on a
Surface Pro running in real time at 200 Hz).  This harness is our
equivalent measuring stick: it runs the batch estimator and the streaming
estimator over a standard testbed workload with :mod:`repro.obs` enabled
and packages per-stage wall-time spans, work counters, and the per-block
streaming latency distribution into one JSON payload.  Optimisation PRs
regenerate the file and diff it against the committed baseline — the
trajectory to beat.

Entry points:

* :func:`run_perf_baseline` — library API (used by tests and the CLI).
* ``python -m repro.cli profile`` — writes ``BENCH_perf.json``.
* ``python benchmarks/perf_baseline.py`` — the same harness as a script
  (what CI's perf-smoke job runs).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro import obs

SCHEMA = "rim-perf-baseline/v9"

# Best-of-N repeats for the obs-overhead A/B: single wall-clock samples
# of a ~100 ms workload are scheduler-jitter noisy, and the overhead gate
# compares the two directly.
OBS_OVERHEAD_REPEATS = 3

# Absolute slack on the reconnect-recovery gate, seconds: recovery times
# are a few milliseconds, so a purely fractional budget would make the
# gate a scheduler-jitter lottery on loaded CI runners.
RECOVERY_GATE_SLACK_S = 0.25

# Stage spans every baseline must contain (the pipeline of §4.4): without
# them the file cannot answer "where did the time go".
REQUIRED_BATCH_SPANS = (
    "rim.process",
    "rim.sanitize",
    "rim.movement_detect",
    "rim.pre_screen",
    "alignment_matrix",
    "dp_tracking",
    "rim.integrate",
)

# Kernel backends every baseline profiles (see ``repro.perf``); the
# primary one feeds the top-level batch/streaming sections.
PROFILED_BACKENDS = ("reference", "batched")
PRIMARY_BACKEND = "batched"

# Kernel precisions the per-dtype section profiles (schema v7): float64
# is the default/oracle mode, float32 the opt-in reduced-precision mode.
PROFILED_KERNEL_DTYPES = ("float64", "float32")

# Batch spans that get their own +25% regression row (schema v7), on top
# of the whole-pipeline rim.process gate: the second kernel campaign's
# tentpole stages, watched individually so a regression inside one stage
# cannot hide behind an improvement in another.
GATED_BATCH_SPANS = ("dp_tracking", "rim.sanitize")

# Shard counts the fleet-scaling section measures (schema v8).  The
# absolute-throughput gate only reads the 1-shard row; efficiency at the
# larger counts is hardware-dependent and belongs to the CI shard-scaling
# job, which knows how many cores its runner has.
PROFILED_SHARD_COUNTS = (1, 2, 4)

# Reference kernel precision named by the capacity reference cell
# (schema v9): the default/oracle mode, matching AXIS_DEFAULTS in
# repro.bench.spec.
REFERENCE_DTYPE = "float64"


def _span_total(spans, name: str) -> float:
    return float(sum(s["total_s"] for s in spans if s.get("name") == name))


def _profile_backend(
    backend: str,
    trace,
    array,
    block_seconds: float,
) -> Dict[str, Any]:
    """Time batch + streaming runs of one kernel backend (obs enabled)."""
    from repro import Rim, RimConfig, StreamingRim

    cfg = RimConfig(max_lag=60, kernel_backend=backend)

    obs.reset()
    # -- batch -------------------------------------------------------------
    t0 = time.perf_counter()
    result = Rim(cfg).process(trace)
    batch_wall = time.perf_counter() - t0

    # -- streaming ---------------------------------------------------------
    stream = StreamingRim(
        array,
        trace.sampling_rate,
        cfg,
        block_seconds=block_seconds,
        carrier_wavelength=trace.carrier_wavelength,
    )
    t0 = time.perf_counter()
    n_updates = 0
    for k in range(trace.n_samples):
        if stream.push(trace.data[k], float(trace.times[k])) is not None:
            n_updates += 1
    if stream.flush() is not None:
        n_updates += 1
    stream_wall = time.perf_counter() - t0

    latency = obs.METRICS.get("stream.block_latency_s")
    spans = result.stats["spans"] if result.stats else []
    samples_per_second = trace.n_samples / stream_wall if stream_wall > 0 else 0.0
    return {
        "batch": {
            "wall_s": batch_wall,
            "alignment_total_s": _span_total(spans, "alignment_matrix"),
            "total_distance_m": float(result.total_distance),
            "spans": spans,
        },
        "streaming": {
            "wall_s": stream_wall,
            "n_blocks": n_updates,
            "samples_per_second": samples_per_second,
            "real_time_at_rate": bool(
                samples_per_second >= float(trace.sampling_rate)
            ),
            "total_distance_m": float(stream.total_distance),
            "block_latency": latency.snapshot() if latency is not None else None,
            "block_latency_p50_s": (
                latency.percentile(0.5) if latency and latency.count else None
            ),
            "block_latency_p95_s": (
                latency.percentile(0.95) if latency and latency.count else None
            ),
        },
        "metrics": obs.METRICS.snapshot(),
    }


def _profile_kernel_dtypes(trace) -> Dict[str, Any]:
    """Batch-profile the primary backend at each kernel precision.

    One batch run per dtype in :data:`PROFILED_KERNEL_DTYPES` with obs
    enabled, recording the wall time and the tentpole stage spans
    (alignment, DP tracking, sanitize) so the baseline documents what
    the opt-in float32 mode actually buys on this hardware.  The
    float64 leg duplicates the primary profile by design: it is the
    within-section comparison point, measured back to back with the
    float32 leg so the speedup ratio is not cross-contaminated by
    machine drift between sections.
    """
    from repro import Rim, RimConfig

    dtypes: Dict[str, Any] = {}
    for dtype in PROFILED_KERNEL_DTYPES:
        cfg = RimConfig(
            max_lag=60, kernel_backend=PRIMARY_BACKEND, kernel_dtype=dtype
        )
        obs.reset()
        t0 = time.perf_counter()
        result = Rim(cfg).process(trace)
        wall = time.perf_counter() - t0
        spans = result.stats["spans"] if result.stats else []
        dtypes[dtype] = {
            "batch_wall_s": wall,
            "alignment_total_s": _span_total(spans, "alignment_matrix"),
            "dp_tracking_s": _span_total(spans, "dp_tracking"),
            "sanitize_s": _span_total(spans, "rim.sanitize"),
            "total_distance_m": float(result.total_distance),
        }

    def _ratio(old: float, new: float) -> Optional[float]:
        return old / new if new > 0 else None

    f64, f32 = dtypes["float64"], dtypes["float32"]
    return {
        "dtypes": dtypes,
        "speedup_float32": {
            "batch_wall": _ratio(f64["batch_wall_s"], f32["batch_wall_s"]),
            "alignment_total": _ratio(
                f64["alignment_total_s"], f32["alignment_total_s"]
            ),
            "dp_tracking": _ratio(f64["dp_tracking_s"], f32["dp_tracking_s"]),
        },
    }


def _profile_serving(
    trace,
    n_sessions: int,
    n_workers: int,
    block_seconds: float,
) -> Dict[str, Any]:
    """Multi-session throughput: N identical sessions, serial vs pooled.

    The same trace is replayed as ``n_sessions`` independent sessions
    through :class:`~repro.serve.runner.ParallelRunner`, once serially
    and once over a thread pool.  Per-session results must be
    bit-identical between the two schedules (recorded in the payload and
    asserted by the test suite); the wall-clock ratio is the
    multi-session speedup.

    The effective pool width and any serial-fallback reason come from
    the runner itself (``n_workers_effective`` / ``fallback_reason``,
    schema v8) rather than being re-derived here, so the baseline records
    what actually executed — on a 1-core host the "parallel" schedule
    legitimately degenerates to serial and the payload says so.
    """
    from repro import RimConfig
    from repro.serve.runner import ParallelRunner

    cfg = RimConfig(max_lag=60, kernel_backend=PRIMARY_BACKEND)
    traces = [trace] * n_sessions

    def _measure(runner: ParallelRunner):
        t0 = time.perf_counter()
        results = runner.run(traces, rim_config=cfg, block_seconds=block_seconds)
        wall = time.perf_counter() - t0
        return results, wall

    serial_results, serial_wall = _measure(ParallelRunner(mode="serial"))
    parallel_runner = ParallelRunner(n_workers=n_workers, mode="thread")
    parallel_results, parallel_wall = _measure(parallel_runner)
    identical = all(
        a.same_estimates(b) for a, b in zip(serial_results, parallel_results)
    )
    total_samples = int(trace.n_samples) * n_sessions

    def _throughput(wall: float) -> Dict[str, Any]:
        return {
            "wall_s": wall,
            "sessions_per_second": n_sessions / wall if wall > 0 else 0.0,
            "samples_per_second": total_samples / wall if wall > 0 else 0.0,
        }

    return {
        "n_sessions": n_sessions,
        "n_workers": n_workers,
        "n_workers_effective": parallel_runner.n_workers_effective,
        "fallback_reason": parallel_runner.fallback_reason,
        "n_cpus": os.cpu_count(),
        "mode": "thread",
        "total_samples": total_samples,
        "serial": _throughput(serial_wall),
        "parallel": _throughput(parallel_wall),
        "parallel_speedup": (
            serial_wall / parallel_wall if parallel_wall > 0 else None
        ),
        "bit_identical": bool(identical),
        "total_distance_m": float(
            sum(r.total_distance for r in parallel_results)
        ),
    }


def _profile_shards(
    n_sessions: int,
    duration_s: float,
    seed: int,
) -> Dict[str, Any]:
    """Fleet scaling: sessions/sec at each shard count (schema v8).

    Replays one pre-sampled receiver workload through fresh
    :class:`~repro.shard.router.ShardRouter` fleets at every count in
    :data:`PROFILED_SHARD_COUNTS` via
    :func:`repro.shard.fleet.measure_shard_scaling`.  The derived
    efficiency column is recorded but **not** gated here — whether 4
    shards can actually run 4x faster depends on the host's core count,
    which is why the CI ``shard-scaling`` job owns the ≥ 0.7x-linear
    gate and this payload only feeds the 1-shard absolute-throughput
    regression row.
    """
    from repro import RimConfig
    from repro.shard.fleet import measure_shard_scaling

    cfg = RimConfig(max_lag=60, kernel_backend=PRIMARY_BACKEND)
    return measure_shard_scaling(
        shard_counts=PROFILED_SHARD_COUNTS,
        n_sessions=n_sessions,
        seed=seed,
        duration_s=duration_s,
        rim_config=cfg,
    )


def _capacity_section(
    shard_scaling: Dict[str, Any], streaming: Dict[str, Any]
) -> Dict[str, Any]:
    """Fit the capacity model over the shard-scaling rows (schema v9).

    The fitted slope (sessions/sec per shard) and knee position feed the
    matrix-aware regression gates; the ``reference_cell`` block names
    the canonical single-shard configuration with its measured
    throughput and block-latency percentiles, and is what the CI
    ``bench-matrix`` job gates a fresh run table against
    (:func:`repro.bench.gates.gate_reference_cell`).
    """
    from repro.bench.capacity import fit_capacity
    from repro.bench.spec import AXIS_DEFAULTS, Cell

    rows = shard_scaling.get("rows") or []
    points = sorted(
        (int(row["shards"]), float(row["sessions_per_second"])) for row in rows
    )
    fit = fit_capacity([p[0] for p in points], [p[1] for p in points])
    n_sessions = int(shard_scaling.get("n_sessions", 0))
    one_shard = next((p for p in points if p[0] == 1), None)
    reference = Cell(
        sessions=n_sessions,
        shards=1,
        kernel=PRIMARY_BACKEND,
        dtype=REFERENCE_DTYPE,
        fault_plan=AXIS_DEFAULTS["fault_plan"],
        backpressure=AXIS_DEFAULTS["backpressure"],
    )
    return {
        "source": "shard_scaling",
        "fit": fit,
        "reference_cell": {
            "key": reference.key,
            "sessions": n_sessions,
            "shards": 1,
            "kernel": PRIMARY_BACKEND,
            "dtype": REFERENCE_DTYPE,
            "sessions_per_second": (
                one_shard[1] if one_shard is not None else None
            ),
            "block_latency_p50_s": streaming.get("block_latency_p50_s"),
            "block_latency_p95_s": streaming.get("block_latency_p95_s"),
        },
    }


def _profile_store(trace, block_seconds: float) -> Dict[str, Any]:
    """Store throughput: chunked write, integrity-checked read, replay.

    Measures the three data-path costs of :mod:`repro.store` on the same
    workload trace the estimator profiles use: sequential chunked write
    (CRC computation included), full CRC-verified read-back, and an
    end-to-end :class:`~repro.store.checkpoint.CheckpointedReplayer` pass
    through the streaming estimator.  Write/read are reported in MB/s of
    on-disk bytes, replay in samples/sec — the v4 quantities the perf
    gate watches.
    """
    import shutil
    import tempfile

    from repro import RimConfig
    from repro.store import CheckpointedReplayer, TraceReader, write_trace

    root = Path(tempfile.mkdtemp(prefix="rim-perf-store-")) / "store"
    try:
        t0 = time.perf_counter()
        writer = write_trace(root, trace, chunk_samples=256)
        write_wall = time.perf_counter() - t0
        mb = writer.bytes_written / 1e6

        t0 = time.perf_counter()
        with TraceReader(root, policy="raise") as reader:
            n_read = sum(r.times.size for r in reader.iter_chunks())
        read_wall = time.perf_counter() - t0

        cfg = RimConfig(max_lag=60, kernel_backend=PRIMARY_BACKEND)
        reader = TraceReader(root, policy="repair")
        t0 = time.perf_counter()
        replayer = CheckpointedReplayer(
            reader, config=cfg, block_seconds=block_seconds
        )
        updates = replayer.run()
        replay_wall = time.perf_counter() - t0
        return {
            "n_chunks": writer.n_chunks,
            "n_samples": n_read,
            "bytes": writer.bytes_written,
            "write_wall_s": write_wall,
            "read_wall_s": read_wall,
            "replay_wall_s": replay_wall,
            "write_mb_per_s": mb / write_wall if write_wall > 0 else 0.0,
            "read_mb_per_s": mb / read_wall if read_wall > 0 else 0.0,
            "replay_samples_per_second": (
                n_read / replay_wall if replay_wall > 0 else 0.0
            ),
            "replay_n_updates": len(updates),
            "replay_total_distance_m": float(replayer.stream.total_distance),
        }
    finally:
        shutil.rmtree(root.parent, ignore_errors=True)


def _profile_net(trace, block_seconds: float) -> Dict[str, Any]:
    """Network front-end throughput: loopback ingest + reconnect recovery.

    Two measured runs over the same workload trace through a real
    ``repro.net`` loopback server (framing, CRC, seq tracking, and the
    serving layer all on the clock):

    * a **clean** run — net ingest samples/sec, the v5 throughput the
      perf gate watches;
    * a **faulted** run with one forced mid-stream disconnect — the
      reconnect-recovery time (detection to WELCOME) the availability
      gate watches.

    Baseline bit-identity is deliberately not re-checked here (the test
    suite and the CI network-soak job own that assertion); the harness
    measures cost only.
    """
    from repro.net import NetClientConfig, NetFaultPlan, run_net_load
    from repro.serve.session import ServeConfig

    serve_config = ServeConfig(block_seconds=block_seconds)
    clean = run_net_load(
        [("net00", trace)],
        serve_config=serve_config,
        check_baseline=False,
    )
    disconnect_after = max(2, int(trace.n_samples) // 2)
    faulted = run_net_load(
        [("net00", trace)],
        fault_plan=NetFaultPlan(disconnect_after=disconnect_after),
        serve_config=serve_config,
        client_config=NetClientConfig(backoff_base_s=0.02),
        check_baseline=False,
    )
    agg = clean["aggregate"]
    fagg = faulted["aggregate"]
    return {
        "n_samples": int(agg["n_samples"]),
        "n_frames_sent": int(agg["n_frames_sent"]),
        "ingest_wall_s": float(agg["wall_s"]),
        "ingest_samples_per_second": float(agg["samples_per_second"]),
        "reconnect": {
            "disconnect_after": disconnect_after,
            "reconnects": int(fagg["reconnects"]),
            "recovery_s": float(fagg["recovery_s_max"]),
            "wall_s": float(fagg["wall_s"]),
        },
    }


def _profile_obs_overhead(trace, block_seconds: float) -> Dict[str, Any]:
    """Telemetry cost: the same workload with instrumentation off vs on.

    Runs the batch estimator and a provenance-stamped serve-session
    replay twice — once with :mod:`repro.obs` disabled, once enabled
    (spans, metrics, per-sample provenance all live) — and reports the
    best-of-N walls plus the fractional overhead the perf gate watches.
    Estimates must be bit-identical between the two modes (tracing
    invariance); the flag is recorded and asserted by the test suite.
    """
    from repro import Rim, RimConfig
    from repro.serve.session import ServeConfig, ServeSession

    cfg = RimConfig(max_lag=60, kernel_backend=PRIMARY_BACKEND)
    serve_cfg = ServeConfig(block_seconds=block_seconds)

    def _batch_once():
        t0 = time.perf_counter()
        result = Rim(cfg).process(trace)
        return time.perf_counter() - t0, result

    def _serve_once() -> float:
        session = ServeSession(
            "obs-overhead",
            trace.array,
            trace.sampling_rate,
            rim_config=cfg,
            serve_config=serve_cfg,
            carrier_wavelength=trace.carrier_wavelength,
        )
        t0 = time.perf_counter()
        for k in range(trace.n_samples):
            session.offer(trace.data[k], float(trace.times[k]))
            session.drain()
        session.flush()
        return time.perf_counter() - t0

    def _measure():
        batch_walls, serve_walls, result = [], [], None
        for _ in range(OBS_OVERHEAD_REPEATS):
            wall, result = _batch_once()
            batch_walls.append(wall)
            serve_walls.append(_serve_once())
        return min(batch_walls), min(serve_walls), result

    was_enabled = obs.enabled()
    try:
        obs.disable()
        batch_off, serve_off, result_off = _measure()
        obs.enable()
        obs.reset()
        batch_on, serve_on, result_on = _measure()
    finally:
        if was_enabled:
            obs.enable()
        else:
            obs.disable()

    def _frac(off: float, on: float) -> Optional[float]:
        return on / off - 1.0 if off > 0 else None

    return {
        "repeats": OBS_OVERHEAD_REPEATS,
        "tracing_off_wall_s": batch_off,
        "tracing_on_wall_s": batch_on,
        "overhead_frac": _frac(batch_off, batch_on),
        "serve_off_wall_s": serve_off,
        "serve_on_wall_s": serve_on,
        "serve_overhead_frac": _frac(serve_off, serve_on),
        "bit_identical": bool(
            result_off.total_distance == result_on.total_distance
            and result_off.total_rotation == result_on.total_rotation
        ),
    }


def run_perf_baseline(
    seed: int = 0,
    quick: bool = True,
    duration_s: Optional[float] = None,
    block_seconds: float = 1.0,
    n_sessions: int = 8,
    n_workers: int = 4,
) -> Dict[str, Any]:
    """Profile the batch and streaming pipelines on the standard testbed.

    Every kernel backend in :data:`PROFILED_BACKENDS` is timed over the
    same trace; the primary (``batched``) backend fills the top-level
    ``batch``/``streaming``/``metrics`` sections, per-backend digests land
    under ``backends``, and ``speedup_vs_reference`` holds the wall-time
    ratios the optimisation PRs are judged on.

    The ``serving`` section additionally replays the workload as
    ``n_sessions`` concurrent sessions through
    :class:`~repro.serve.runner.ParallelRunner` (serial vs a
    ``n_workers``-wide thread pool) and records the aggregate
    multi-session throughput the serving-regression gate watches.  The
    ``shard_scaling`` section (schema v8) replays a sharded workload at
    1/2/4 shards through :mod:`repro.shard` and records sessions/sec
    plus derived linear-scaling efficiency per count; the ``capacity``
    section (schema v9) fits those rows into a capacity model
    (:mod:`repro.bench.capacity`) and names the reference cell the
    matrix-aware gates watch.

    Args:
        seed: Scenario seed (scatterers, noise).
        quick: Short workload for CI smoke runs; full is paper-scale-ish.
        duration_s: Trajectory duration override, seconds.
        block_seconds: Streaming emission cadence.
        n_sessions: Session count for the multi-session serving profile.
        n_workers: Thread-pool width for the parallel serving run.

    Returns:
        The ``BENCH_perf.json`` payload (see :func:`validate_perf_payload`
        for the schema).  Instrumentation state is restored on exit; the
        run itself executes with :mod:`repro.obs` enabled and reset.
    """
    from repro import linear_array
    from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
    from repro.motionsim.profiles import line_trajectory

    if duration_s is None:
        duration_s = 3.0 if quick else 10.0
    bed = make_testbed(seed=seed)
    truth = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 0.5, duration_s)
    array = linear_array(3)
    trace = bed.sampler.sample(truth, array)

    # Build/load the native DP kernel before any timed region: on a cold
    # cache the one-off C compile would otherwise land inside the first
    # backend's batch wall and read as a phantom regression.
    from repro.perf.dptrack import native_available

    native_available()

    was_enabled = obs.enabled()
    obs.enable()
    try:
        profiles = {
            backend: _profile_backend(backend, trace, array, block_seconds)
            for backend in PROFILED_BACKENDS
        }
        kernel_dtypes = _profile_kernel_dtypes(trace)
    finally:
        if not was_enabled:
            obs.disable()

    # Serving, shard-fleet, store, and network throughput are measured
    # with instrumentation off — the gate watches raw throughput, not
    # span bookkeeping.
    serving = _profile_serving(trace, n_sessions, n_workers, block_seconds)
    shard_scaling = _profile_shards(
        n_sessions=4 if quick else 8,
        duration_s=min(duration_s, 1.0) if quick else duration_s,
        seed=seed,
    )
    store = _profile_store(trace, block_seconds)
    net = _profile_net(trace, block_seconds)
    obs_overhead = _profile_obs_overhead(trace, block_seconds)

    primary = profiles[PRIMARY_BACKEND]
    ref = profiles["reference"]

    def _ratio(old: float, new: float) -> Optional[float]:
        return old / new if new > 0 else None

    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "seed": seed,
        "quick": quick,
        "primary_backend": PRIMARY_BACKEND,
        "workload": {
            "duration_s": duration_s,
            "sampling_rate_hz": float(trace.sampling_rate),
            "n_samples": int(trace.n_samples),
            "n_rx": int(trace.n_rx),
            "block_seconds": block_seconds,
            "truth_distance_m": float(truth.total_distance),
        },
        "batch": primary["batch"],
        "streaming": primary["streaming"],
        "kernel_dtypes": kernel_dtypes,
        "serving": serving,
        "shard_scaling": shard_scaling,
        "capacity": _capacity_section(shard_scaling, primary["streaming"]),
        "store": store,
        "net": net,
        "obs_overhead": obs_overhead,
        "metrics": primary["metrics"],
        "backends": {
            name: {
                "batch_wall_s": p["batch"]["wall_s"],
                "alignment_total_s": p["batch"]["alignment_total_s"],
                "stream_wall_s": p["streaming"]["wall_s"],
                "block_latency_p50_s": p["streaming"]["block_latency_p50_s"],
                "block_latency_p95_s": p["streaming"]["block_latency_p95_s"],
                "total_distance_m": p["batch"]["total_distance_m"],
            }
            for name, p in profiles.items()
        },
        "speedup_vs_reference": {
            "batch_wall": _ratio(
                ref["batch"]["wall_s"], primary["batch"]["wall_s"]
            ),
            "stream_wall": _ratio(
                ref["streaming"]["wall_s"], primary["streaming"]["wall_s"]
            ),
            "alignment_total": _ratio(
                ref["batch"]["alignment_total_s"],
                primary["batch"]["alignment_total_s"],
            ),
        },
    }
    return payload


def validate_perf_payload(payload: Dict[str, Any]) -> None:
    """Assert the structural schema of a ``BENCH_perf.json`` payload.

    Checks structure only — never timing thresholds, so CI stays
    hardware-independent.

    Raises:
        ValueError: When a required section, stage span, or the streaming
            latency histogram is missing.
    """
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"schema mismatch: want {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    sections = (
        "workload", "batch", "streaming", "kernel_dtypes", "serving",
        "shard_scaling", "capacity", "store", "net", "obs_overhead", "metrics",
    )
    for section in sections:
        if not isinstance(payload.get(section), dict):
            raise ValueError(f"missing or malformed section {section!r}")
    overhead = payload["obs_overhead"]
    for metric in (
        "tracing_off_wall_s", "tracing_on_wall_s", "overhead_frac"
    ):
        if not isinstance(overhead.get(metric), (int, float)):
            raise ValueError(f"obs_overhead section lacks {metric}")
    if not overhead.get("bit_identical"):
        raise ValueError(
            "obs_overhead.bit_identical is false: enabling telemetry "
            "changed the estimates"
        )
    store = payload["store"]
    for metric in (
        "write_mb_per_s", "read_mb_per_s", "replay_samples_per_second"
    ):
        if not isinstance(store.get(metric), (int, float)):
            raise ValueError(f"store section lacks {metric}")
    net = payload["net"]
    if not isinstance(net.get("ingest_samples_per_second"), (int, float)):
        raise ValueError("net section lacks ingest_samples_per_second")
    reconnect = net.get("reconnect")
    if not isinstance(reconnect, dict):
        raise ValueError("net.reconnect is missing or malformed")
    if not isinstance(reconnect.get("recovery_s"), (int, float)):
        raise ValueError("net.reconnect lacks recovery_s")
    if not int(reconnect.get("reconnects", 0)) >= 1:
        raise ValueError(
            "net.reconnect.reconnects is zero: the forced disconnect never "
            "exercised reconnect-resume"
        )
    serving = payload["serving"]
    for key in ("serial", "parallel"):
        schedule = serving.get(key)
        if not isinstance(schedule, dict):
            raise ValueError(f"serving.{key} is missing or malformed")
        for metric in ("wall_s", "sessions_per_second", "samples_per_second"):
            if not isinstance(schedule.get(metric), (int, float)):
                raise ValueError(f"serving.{key} lacks {metric}")
    if not serving.get("bit_identical"):
        raise ValueError(
            "serving.bit_identical is false: pooled sessions diverged from "
            "serial execution"
        )
    if not isinstance(serving.get("n_workers_effective"), int):
        raise ValueError("serving lacks n_workers_effective")
    scaling = payload["shard_scaling"]
    rows = scaling.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ValueError("shard_scaling.rows is missing or empty")
    for row in rows:
        for metric in ("shards", "wall_s", "sessions_per_second"):
            if not isinstance(row.get(metric), (int, float)):
                raise ValueError(
                    f"shard_scaling row (shards={row.get('shards')}) "
                    f"lacks {metric}"
                )
    if not any(int(row["shards"]) == 1 for row in rows):
        raise ValueError(
            "shard_scaling has no 1-shard row: the scaling baseline "
            "needs the single-shard reference rate"
        )
    if not isinstance(scaling.get("n_cpus"), int):
        raise ValueError("shard_scaling lacks n_cpus")
    capacity = payload["capacity"]
    fit = capacity.get("fit")
    if not isinstance(fit, dict) or fit.get("model") not in ("linear", "kneed"):
        raise ValueError("capacity.fit is missing or malformed")
    for key in ("slope", "intercept", "r2"):
        if not isinstance(fit.get(key), (int, float)):
            raise ValueError(f"capacity.fit lacks {key}")
    reference = capacity.get("reference_cell")
    if not isinstance(reference, dict):
        raise ValueError("capacity.reference_cell is missing or malformed")
    for key in ("key", "sessions", "shards", "kernel", "dtype"):
        if key not in reference:
            raise ValueError(f"capacity.reference_cell lacks {key}")
    if not isinstance(reference.get("sessions_per_second"), (int, float)):
        raise ValueError(
            "capacity.reference_cell lacks sessions_per_second: the "
            "shard-scaling profile carried no 1-shard row"
        )
    dtypes = payload["kernel_dtypes"].get("dtypes")
    if not isinstance(dtypes, dict):
        raise ValueError("kernel_dtypes.dtypes is missing or malformed")
    absent_dtypes = [d for d in PROFILED_KERNEL_DTYPES if d not in dtypes]
    if absent_dtypes:
        raise ValueError(f"kernel_dtypes section missing: {absent_dtypes}")
    for dtype, digest in dtypes.items():
        for key in ("batch_wall_s", "alignment_total_s", "dp_tracking_s"):
            if not isinstance(digest.get(key), (int, float)):
                raise ValueError(f"kernel_dtypes[{dtype!r}] lacks {key}")
    if not isinstance(payload["kernel_dtypes"].get("speedup_float32"), dict):
        raise ValueError("kernel_dtypes lacks speedup_float32")
    spans = payload["batch"].get("spans") or []
    names = {s.get("name") for s in spans}
    missing = [n for n in REQUIRED_BATCH_SPANS if n not in names]
    if missing:
        raise ValueError(f"batch spans missing required stages: {missing}")
    for span in spans:
        if not isinstance(span.get("total_s"), (int, float)):
            raise ValueError(f"span {span.get('name')!r} lacks total_s")
    latency = payload["streaming"].get("block_latency")
    if not latency or latency.get("type") != "histogram":
        raise ValueError("streaming.block_latency histogram is missing")
    if not latency.get("count"):
        raise ValueError("streaming.block_latency histogram is empty")
    backends = payload.get("backends")
    if not isinstance(backends, dict):
        raise ValueError("missing or malformed section 'backends'")
    absent = [n for n in PROFILED_BACKENDS if n not in backends]
    if absent:
        raise ValueError(f"backends section missing kernels: {absent}")
    for name, digest in backends.items():
        for key in ("batch_wall_s", "alignment_total_s", "stream_wall_s"):
            if not isinstance(digest.get(key), (int, float)):
                raise ValueError(f"backends[{name!r}] lacks {key}")
    speedups = payload.get("speedup_vs_reference")
    if not isinstance(speedups, dict):
        raise ValueError("missing or malformed section 'speedup_vs_reference'")
    for key in ("batch_wall", "stream_wall", "alignment_total"):
        if key not in speedups:
            raise ValueError(f"speedup_vs_reference lacks {key}")


def check_perf_regression(
    payload: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.25,
) -> list:
    """Compare a fresh run against the committed baseline (the perf gate).

    The gate watches the quick-baseline ``rim.process`` wall time: a fresh
    run may not be more than ``max_regression`` (fractional) slower than
    the committed ``BENCH_perf.json``.  The batched/reference speedup
    ratios are also checked — they are hardware-independent, so a drop
    below 1.0 means the "fast" backend stopped being fast regardless of
    how slow the CI runner is.  When both payloads carry a v3 ``serving``
    section, multi-session throughput (sessions/sec over the pooled
    schedule) gets the same ``max_regression`` budget, and a pooled run
    that diverged from serial execution fails outright.  v9 payloads
    additionally gate scaling *behaviour* through the fitted capacity
    model: the sessions/sec-per-shard slope, the knee position (scaling
    may not stop earlier than the baseline says it does), and the
    reference cell's block-latency p95.

    Every failure string follows the uniform gate format
    (:func:`repro.bench.gates.format_gate_failure`): the gate name,
    measured vs baseline values, and the budget applied.

    Args:
        payload: Freshly measured baseline payload.
        baseline: Previously committed baseline payload.
        max_regression: Allowed fractional slowdown (0.25 = +25%).

    Returns:
        A list of human-readable failure strings; empty means the gate
        passes.
    """
    from repro.bench.gates import LATENCY_GATE_SLACK_S, format_gate_failure

    drop_budget = f"-{max_regression / (1.0 + max_regression):.0%}"
    grow_budget = f"+{max_regression:.0%}"

    def _process_wall(p: Dict[str, Any]) -> float:
        spans = p.get("batch", {}).get("spans") or []
        total = _span_total(spans, "rim.process")
        return total if total > 0 else float(p.get("batch", {}).get("wall_s", 0.0))

    failures = []
    new_wall = _process_wall(payload)
    old_wall = _process_wall(baseline)
    if old_wall > 0 and new_wall > old_wall * (1.0 + max_regression):
        failures.append(
            format_gate_failure(
                "batch.rim.process.wall_s",
                measured=f"{new_wall * 1e3:.1f} ms "
                f"({new_wall / old_wall - 1.0:+.0%})",
                baseline=f"{old_wall * 1e3:.1f} ms",
                budget=grow_budget,
            )
        )
    # Per-stage span gates (schema v7): the tentpole stages are watched
    # individually with the same fractional budget, so a regression in
    # DP tracking or sanitize cannot hide behind an improvement
    # elsewhere.  A v6 baseline without the span simply skips that row.
    new_spans = payload.get("batch", {}).get("spans") or []
    old_spans = baseline.get("batch", {}).get("spans") or []
    for span_name in GATED_BATCH_SPANS:
        new_span = _span_total(new_spans, span_name)
        old_span = _span_total(old_spans, span_name)
        if old_span > 0 and new_span > old_span * (1.0 + max_regression):
            failures.append(
                format_gate_failure(
                    f"batch.{span_name}.wall_s",
                    measured=f"{new_span * 1e3:.1f} ms "
                    f"({new_span / old_span - 1.0:+.0%})",
                    baseline=f"{old_span * 1e3:.1f} ms",
                    budget=grow_budget,
                )
            )
    speedups = payload.get("speedup_vs_reference") or {}
    for key in ("batch_wall", "alignment_total"):
        ratio = speedups.get(key)
        if ratio is not None and ratio < 1.0:
            failures.append(
                format_gate_failure(
                    f"speedup_vs_reference.{key}",
                    measured=f"{ratio:.2f}x",
                    baseline="1.00x",
                    budget="must stay >= 1.0x",
                    note=f"the {payload.get('primary_backend', 'primary')} "
                    "backend is slower than the reference kernel",
                )
            )
    # Float32 kernel-mode gate (schema v7): the opt-in reduced-precision
    # mode must not be slower than float64 beyond the regression budget —
    # a within-run A/B, hardware-independent by construction.
    f32_ratio = (
        (payload.get("kernel_dtypes") or {}).get("speedup_float32") or {}
    ).get("batch_wall")
    if isinstance(f32_ratio, (int, float)) and f32_ratio < 1.0 / (
        1.0 + max_regression
    ):
        failures.append(
            format_gate_failure(
                "kernel_dtypes.speedup_float32.batch_wall",
                measured=f"{f32_ratio:.2f}x",
                baseline="1.00x (float64)",
                budget=f">= {1.0 / (1.0 + max_regression):.2f}x",
                note="the opt-in fast mode stopped being fast",
            )
        )

    # Multi-session serving gate (schema v3): compare pooled sessions/sec
    # against the committed baseline with the same fractional budget.
    new_serving = payload.get("serving") or {}
    old_serving = baseline.get("serving") or {}
    if new_serving and not new_serving.get("bit_identical", True):
        failures.append(
            format_gate_failure(
                "serving.bit_identical",
                measured="false",
                baseline="true",
                budget="must hold",
                note="pooled multi-session results diverged from serial "
                "execution",
            )
        )
    new_rate = (new_serving.get("parallel") or {}).get("sessions_per_second")
    old_rate = (old_serving.get("parallel") or {}).get("sessions_per_second")
    if (
        isinstance(new_rate, (int, float))
        and isinstance(old_rate, (int, float))
        and old_rate > 0
        and new_rate < old_rate / (1.0 + max_regression)
    ):
        failures.append(
            format_gate_failure(
                "serving.parallel.sessions_per_second",
                measured=f"{new_rate:.2f}/s ({new_rate / old_rate - 1.0:+.0%} "
                f"at {new_serving.get('n_sessions')} sessions)",
                baseline=f"{old_rate:.2f}/s",
                budget=drop_budget,
            )
        )

    # Shard-fleet gate (schema v8): single-shard sessions/sec against
    # the committed baseline under the same fractional budget.  Only the
    # 1-shard row is gated here — it measures router + worker + pipe
    # overhead without needing spare cores, so it is as
    # hardware-portable as the other throughput rows.  The multi-shard
    # efficiency columns are recorded but deliberately not gated: linear
    # scaling needs as many cores as shards, which only the CI
    # shard-scaling job (pinned to a known runner) can assert.
    def _one_shard_rate(p: Dict[str, Any]) -> Optional[float]:
        for row in (p.get("shard_scaling") or {}).get("rows") or []:
            if int(row.get("shards", 0)) == 1:
                rate = row.get("sessions_per_second")
                return float(rate) if isinstance(rate, (int, float)) else None
        return None

    new_rate = _one_shard_rate(payload)
    old_rate = _one_shard_rate(baseline)
    if (
        new_rate is not None
        and old_rate is not None
        and old_rate > 0
        and new_rate < old_rate / (1.0 + max_regression)
    ):
        failures.append(
            format_gate_failure(
                "shard_scaling.1_shard.sessions_per_second",
                measured=f"{new_rate:.2f}/s",
                baseline=f"{old_rate:.2f}/s",
                budget=drop_budget,
            )
        )

    # Capacity-model gates (schema v9): scaling behaviour, not just
    # point speed.  The fitted sessions/sec-per-shard slope gets the
    # fractional budget (both slopes must be positive for the ratio to
    # mean anything); a knee appearing where the baseline had none — or
    # moving to a smaller shard count beyond the budget — means scaling
    # now saturates earlier than the committed baseline claims.  A v8
    # baseline carries no capacity section and skips these gates.
    new_capacity = payload.get("capacity") or {}
    old_capacity = baseline.get("capacity") or {}
    new_fit = new_capacity.get("fit") or {}
    old_fit = old_capacity.get("fit") or {}
    new_slope = new_fit.get("slope")
    old_slope = old_fit.get("slope")
    if (
        isinstance(new_slope, (int, float))
        and isinstance(old_slope, (int, float))
        and old_slope > 0
        and new_slope > 0
        and new_slope < old_slope / (1.0 + max_regression)
    ):
        failures.append(
            format_gate_failure(
                "capacity.fit.slope",
                measured=f"{new_slope:.2f} sessions/s per shard",
                baseline=f"{old_slope:.2f} sessions/s per shard",
                budget=drop_budget,
            )
        )
    if old_fit and new_fit:
        new_knee = new_fit.get("knee")
        old_knee = old_fit.get("knee")
        if old_knee is None and new_knee is not None:
            failures.append(
                format_gate_failure(
                    "capacity.fit.knee",
                    measured=f"knee at {new_knee:g} shards",
                    baseline="no knee (linear scaling)",
                    budget="scaling may not start saturating",
                )
            )
        elif (
            isinstance(old_knee, (int, float))
            and isinstance(new_knee, (int, float))
            and new_knee < old_knee / (1.0 + max_regression)
        ):
            failures.append(
                format_gate_failure(
                    "capacity.fit.knee",
                    measured=f"knee at {new_knee:g} shards",
                    baseline=f"knee at {old_knee:g} shards",
                    budget=drop_budget,
                )
            )
    new_ref = new_capacity.get("reference_cell") or {}
    old_ref = old_capacity.get("reference_cell") or {}
    new_p95 = new_ref.get("block_latency_p95_s")
    old_p95 = old_ref.get("block_latency_p95_s")
    if (
        isinstance(new_p95, (int, float))
        and isinstance(old_p95, (int, float))
        and new_p95 > old_p95 * (1.0 + max_regression) + LATENCY_GATE_SLACK_S
    ):
        failures.append(
            format_gate_failure(
                "capacity.reference_cell.block_latency_p95_s",
                measured=f"{new_p95 * 1e3:.1f} ms",
                baseline=f"{old_p95 * 1e3:.1f} ms",
                budget=f"{grow_budget} plus "
                f"{LATENCY_GATE_SLACK_S * 1e3:.0f} ms slack",
            )
        )

    # Store throughput gate (schema v4): write/read MB/s and replay
    # samples/sec under the same fractional budget, when both payloads
    # carry a store section (a v3 baseline simply skips this gate).
    new_store = payload.get("store") or {}
    old_store = baseline.get("store") or {}
    for metric, unit in (
        ("write_mb_per_s", "MB/s"),
        ("read_mb_per_s", "MB/s"),
        ("replay_samples_per_second", "samples/s"),
    ):
        new_value = new_store.get(metric)
        old_value = old_store.get(metric)
        if (
            isinstance(new_value, (int, float))
            and isinstance(old_value, (int, float))
            and old_value > 0
            and new_value < old_value / (1.0 + max_regression)
        ):
            failures.append(
                format_gate_failure(
                    f"store.{metric}",
                    measured=f"{new_value:.1f} {unit}",
                    baseline=f"{old_value:.1f} {unit}",
                    budget=drop_budget,
                )
            )

    # Network front-end gate (schema v5): loopback ingest samples/sec
    # under the same fractional budget, and reconnect-recovery time under
    # the budget plus an absolute slack (recovery is milliseconds-scale,
    # so a bare fractional bound would fail on scheduler jitter alone).
    # A v4 baseline carries no net section and simply skips this gate.
    new_net = payload.get("net") or {}
    old_net = baseline.get("net") or {}
    new_rate = new_net.get("ingest_samples_per_second")
    old_rate = old_net.get("ingest_samples_per_second")
    if (
        isinstance(new_rate, (int, float))
        and isinstance(old_rate, (int, float))
        and old_rate > 0
        and new_rate < old_rate / (1.0 + max_regression)
    ):
        failures.append(
            format_gate_failure(
                "net.ingest_samples_per_second",
                measured=f"{new_rate:.0f} samples/s",
                baseline=f"{old_rate:.0f} samples/s",
                budget=drop_budget,
            )
        )
    # Telemetry overhead gate (schema v6): tracing-on may not cost more
    # than the regression budget over tracing-off on the same run — this
    # is a within-run A/B, so it is hardware-independent by construction.
    # A v5 baseline carries no obs_overhead section; the gate reads the
    # fresh payload only, so it still applies.
    overhead = (payload.get("obs_overhead") or {}).get("overhead_frac")
    if isinstance(overhead, (int, float)) and overhead > max_regression:
        failures.append(
            format_gate_failure(
                "obs_overhead.overhead_frac",
                measured=f"{overhead:+.0%} of the batch wall",
                baseline="tracing off",
                budget=grow_budget,
                note="tracing is no longer cheap enough to leave on",
            )
        )

    new_rec = (new_net.get("reconnect") or {}).get("recovery_s")
    old_rec = (old_net.get("reconnect") or {}).get("recovery_s")
    if (
        isinstance(new_rec, (int, float))
        and isinstance(old_rec, (int, float))
        and new_rec > old_rec * (1.0 + max_regression) + RECOVERY_GATE_SLACK_S
    ):
        failures.append(
            format_gate_failure(
                "net.reconnect.recovery_s",
                measured=f"{new_rec * 1e3:.1f} ms",
                baseline=f"{old_rec * 1e3:.1f} ms",
                budget=f"{grow_budget} plus "
                f"{RECOVERY_GATE_SLACK_S * 1e3:.0f} ms slack",
            )
        )
    return failures


def write_perf_baseline(path, payload: Dict[str, Any]) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_perf_summary(payload: Dict[str, Any]) -> str:
    """Human-readable digest of a perf payload (CLI output)."""
    from repro.obs.trace import render_span_table

    work = payload["workload"]
    batch = payload["batch"]
    stream = payload["streaming"]
    lines = [
        f"== perf baseline ({'quick' if payload['quick'] else 'full'}, "
        f"seed {payload['seed']}) ==",
        f"workload: {work['n_samples']} samples @ {work['sampling_rate_hz']:g} Hz "
        f"({work['duration_s']:g} s, {work['n_rx']} antennas)",
        "",
        "batch pipeline:",
        f"  wall time        {batch['wall_s'] * 1e3:.1f} ms "
        f"({work['n_samples'] / batch['wall_s']:.0f} samples/s)",
        f"  distance         {batch['total_distance_m']:.3f} m "
        f"(truth {work['truth_distance_m']:.3f} m)",
        "",
        render_span_table(batch["spans"]),
        "",
        "streaming pipeline:",
        f"  wall time        {stream['wall_s'] * 1e3:.1f} ms over "
        f"{stream['n_blocks']} blocks "
        f"({stream['samples_per_second']:.0f} samples/s, "
        f"real-time: {'yes' if stream['real_time_at_rate'] else 'NO'})",
    ]
    if stream.get("block_latency_p50_s") is not None:
        lines.append(
            f"  block latency    p50 {stream['block_latency_p50_s'] * 1e3:.1f} ms, "
            f"p95 {stream['block_latency_p95_s'] * 1e3:.1f} ms"
        )
    kernel_dtypes = payload.get("kernel_dtypes")
    if kernel_dtypes:
        lines += ["", "kernel precision (batched backend):"]
        for dtype, digest in kernel_dtypes.get("dtypes", {}).items():
            lines.append(
                f"  {dtype:<9} batch {digest['batch_wall_s'] * 1e3:6.1f} ms "
                f"(alignment {digest['alignment_total_s'] * 1e3:.1f} ms, "
                f"dp {digest['dp_tracking_s'] * 1e3:.1f} ms)"
            )
        ratio = kernel_dtypes.get("speedup_float32", {}).get("batch_wall")
        if ratio is not None:
            lines.append(f"  float32 speedup  {ratio:.2f}x")
    serving = payload.get("serving")
    if serving:
        speedup = serving.get("parallel_speedup")
        lines += [
            "",
            f"serving ({serving['n_sessions']} sessions, "
            f"{serving.get('n_workers_effective', serving['n_workers'])}"
            f"/{serving['n_workers']} thread workers, "
            f"{serving.get('n_cpus', '?')} cpus):",
            f"  serial           {serving['serial']['wall_s'] * 1e3:.1f} ms "
            f"({serving['serial']['sessions_per_second']:.2f} sessions/s, "
            f"{serving['serial']['samples_per_second']:.0f} samples/s)",
            f"  parallel         {serving['parallel']['wall_s'] * 1e3:.1f} ms "
            f"({serving['parallel']['sessions_per_second']:.2f} sessions/s, "
            f"{serving['parallel']['samples_per_second']:.0f} samples/s)",
            f"  speedup          "
            f"{'n/a' if speedup is None else format(speedup, '.2f') + 'x'}, "
            f"bit-identical: {'yes' if serving.get('bit_identical') else 'NO'}",
        ]
        if serving.get("fallback_reason"):
            lines.append(
                f"  pool fallback    serial ({serving['fallback_reason']})"
            )
    scaling = payload.get("shard_scaling")
    if scaling:
        from repro.shard.fleet import render_scaling_table

        lines += ["", render_scaling_table(scaling)]
    capacity = payload.get("capacity")
    if capacity:
        fit = capacity.get("fit") or {}
        reference = capacity.get("reference_cell") or {}
        knee = fit.get("knee")
        lines += [
            "",
            f"capacity model ({fit.get('model', '?')} fit, "
            f"r² {fit.get('r2', 0.0):.4f}):",
            f"  slope            {fit.get('slope', 0.0):.2f} sessions/s "
            f"per shard"
            + (f", knee at {knee:g} shards" if knee is not None else ""),
        ]
        rate = reference.get("sessions_per_second")
        p95 = reference.get("block_latency_p95_s")
        if rate is not None:
            lines.append(
                f"  reference cell   {reference.get('key', '?')}: "
                f"{rate:.2f} sessions/s"
                + (f", p95 {p95 * 1e3:.1f} ms" if p95 is not None else "")
            )
    store = payload.get("store")
    if store:
        lines += [
            "",
            f"store ({store['n_chunks']} chunks, "
            f"{store['bytes'] / 1e6:.1f} MB):",
            f"  write            {store['write_wall_s'] * 1e3:.1f} ms "
            f"({store['write_mb_per_s']:.0f} MB/s)",
            f"  verified read    {store['read_wall_s'] * 1e3:.1f} ms "
            f"({store['read_mb_per_s']:.0f} MB/s)",
            f"  replay           {store['replay_wall_s'] * 1e3:.1f} ms "
            f"({store['replay_samples_per_second']:.0f} samples/s over "
            f"{store['replay_n_updates']} updates)",
        ]
    net = payload.get("net")
    if net:
        reconnect = net.get("reconnect") or {}
        lines += [
            "",
            f"network front-end ({net['n_samples']} samples over loopback):",
            f"  ingest           {net['ingest_wall_s'] * 1e3:.1f} ms "
            f"({net['ingest_samples_per_second']:.0f} samples/s)",
            f"  reconnect        {reconnect.get('reconnects', 0)} forced, "
            f"recovery {reconnect.get('recovery_s', 0.0) * 1e3:.1f} ms",
        ]
    overhead = payload.get("obs_overhead")
    if overhead:
        frac = overhead.get("overhead_frac")
        serve_frac = overhead.get("serve_overhead_frac")
        lines += [
            "",
            f"telemetry overhead (best of {overhead.get('repeats', '?')}):",
            f"  batch            {overhead['tracing_off_wall_s'] * 1e3:.1f} ms off "
            f"-> {overhead['tracing_on_wall_s'] * 1e3:.1f} ms on "
            f"({'n/a' if frac is None else format(frac, '+.1%')})",
            f"  serve session    {overhead['serve_off_wall_s'] * 1e3:.1f} ms off "
            f"-> {overhead['serve_on_wall_s'] * 1e3:.1f} ms on "
            f"({'n/a' if serve_frac is None else format(serve_frac, '+.1%')}), "
            f"bit-identical: {'yes' if overhead.get('bit_identical') else 'NO'}",
        ]
    backends = payload.get("backends")
    if backends:
        lines += ["", "kernel backends:"]
        for name, b in backends.items():
            tag = " (primary)" if name == payload.get("primary_backend") else ""
            lines.append(
                f"  {name:<10} batch {b['batch_wall_s'] * 1e3:7.1f} ms  "
                f"alignment {b['alignment_total_s'] * 1e3:7.1f} ms  "
                f"stream {b['stream_wall_s'] * 1e3:7.1f} ms{tag}"
            )
        speedups = payload.get("speedup_vs_reference") or {}
        parts = [
            f"{key} {value:.2f}x"
            for key, value in speedups.items()
            if value is not None
        ]
        if parts:
            lines.append(f"  speedup vs reference: {', '.join(parts)}")
    return "\n".join(lines)
