"""Unit tests for trajectories and motion profiles."""

import numpy as np
import pytest

from repro.motionsim.profiles import (
    back_and_forth_trajectory,
    line_trajectory,
    polyline_trajectory,
    rotation_trajectory,
    square_trajectory,
    still_trajectory,
    stop_and_go_trajectory,
)
from repro.motionsim.trajectory import Trajectory


class TestTrajectoryValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            Trajectory(np.arange(3.0), np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            Trajectory(np.arange(3.0), np.zeros((3, 2)), np.zeros(2))

    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            Trajectory(np.array([0.0, 0.0, 1.0]), np.zeros((3, 2)), np.zeros(3))

    def test_sampling_rate(self):
        traj = line_trajectory((0, 0), 0, 1.0, 1.0, sampling_rate=100.0)
        assert traj.sampling_rate == pytest.approx(100.0)

    def test_slice(self):
        traj = line_trajectory((0, 0), 0, 1.0, 1.0, sampling_rate=100.0)
        sub = traj.slice(10, 20)
        assert sub.n_samples == 10
        np.testing.assert_array_equal(sub.positions, traj.positions[10:20])

    def test_concatenate_monotone_times(self):
        a = still_trajectory((0, 0), 0.5, sampling_rate=100.0)
        b = line_trajectory((0, 0), 0, 1.0, 0.5, sampling_rate=100.0)
        joined = a.concatenate(b)
        assert np.all(np.diff(joined.times) > 0)
        assert joined.n_samples == a.n_samples + b.n_samples


class TestLineTrajectory:
    def test_total_distance(self):
        traj = line_trajectory((0, 0), 0, 0.5, 4.0)
        assert traj.total_distance == pytest.approx(2.0, rel=1e-6)

    def test_direction(self):
        traj = line_trajectory((0, 0), 90.0, 1.0, 1.0)
        headings = traj.headings()
        assert np.nanmedian(headings) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_constant_speed(self):
        traj = line_trajectory((0, 0), 30.0, 0.7, 2.0)
        speeds = traj.speeds()
        np.testing.assert_allclose(speeds[5:-5], 0.7, rtol=1e-6)

    def test_wobble_stays_near_line(self):
        traj = line_trajectory((0, 0), 0.0, 1.0, 2.0, wobble_amplitude=0.02)
        assert np.abs(traj.positions[:, 1]).max() == pytest.approx(0.02, rel=1e-2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            line_trajectory((0, 0), 0, -1.0, 1.0)
        with pytest.raises(ValueError):
            line_trajectory((0, 0), 0, 1.0, 0.0)


class TestPolylineTrajectory:
    def test_constant_speed_through_corners(self):
        wp = np.array([(0, 0), (1, 0), (1, 1)], dtype=float)
        traj = polyline_trajectory(wp, 0.5, sampling_rate=200.0)
        assert traj.total_distance == pytest.approx(2.0, rel=1e-3)
        assert traj.duration == pytest.approx(4.0, rel=1e-2)

    def test_fixed_orientation_by_default(self):
        wp = np.array([(0, 0), (1, 0), (1, 1)], dtype=float)
        traj = polyline_trajectory(wp, 0.5, orientation_deg=45.0)
        np.testing.assert_allclose(traj.orientations, np.deg2rad(45.0))

    def test_face_motion_turns_orientation(self):
        wp = np.array([(0, 0), (1, 0), (1, 1)], dtype=float)
        traj = polyline_trajectory(wp, 0.5, face_motion=True)
        assert traj.orientations[5] == pytest.approx(0.0, abs=0.1)
        assert traj.orientations[-5] == pytest.approx(np.pi / 2, abs=0.1)

    def test_rejects_bad_waypoints(self):
        with pytest.raises(ValueError):
            polyline_trajectory(np.zeros((1, 2)), 1.0)
        with pytest.raises(ValueError):
            polyline_trajectory(np.zeros((2, 2)), 1.0)  # zero length


class TestSquareAndBackForth:
    def test_square_closes(self):
        traj = square_trajectory((2, 2), side=1.0, speed=1.0)
        np.testing.assert_allclose(traj.positions[0], traj.positions[-1], atol=1e-6)
        assert traj.total_distance == pytest.approx(4.0, rel=1e-3)

    def test_back_and_forth_returns(self):
        traj = back_and_forth_trajectory((1, 1), 45.0, 0.5, 0.5)
        np.testing.assert_allclose(traj.positions[0], traj.positions[-1], atol=1e-6)
        assert traj.total_distance == pytest.approx(1.0, rel=1e-3)


class TestStopAndGo:
    def test_pause_segments_static(self):
        traj = stop_and_go_trajectory((0, 0), 0, 1.0, [0.5, 0.5], [0.5])
        speeds = traj.speeds()
        t = traj.n_samples
        mid = slice(int(0.45 * t), int(0.55 * t))
        assert speeds[mid].max() < 0.2

    def test_total_distance_counts_moves_only(self):
        traj = stop_and_go_trajectory((0, 0), 0, 1.0, [1.0, 1.0], [1.0])
        assert traj.total_distance == pytest.approx(2.0, rel=1e-2)

    def test_requires_movement(self):
        with pytest.raises(ValueError):
            stop_and_go_trajectory((0, 0), 0, 1.0, [], [])


class TestRotationAndStill:
    def test_rotation_in_place(self):
        traj = rotation_trajectory((3, 3), 180.0, angular_speed_deg=90.0)
        assert np.abs(traj.positions - traj.positions[0]).max() < 1e-12
        assert traj.total_rotation() == pytest.approx(np.pi, rel=1e-6)

    def test_negative_rotation(self):
        traj = rotation_trajectory((3, 3), -90.0)
        assert traj.total_rotation() == pytest.approx(-np.pi / 2, rel=1e-6)

    def test_rotation_invalid_speed(self):
        with pytest.raises(ValueError):
            rotation_trajectory((0, 0), 90.0, angular_speed_deg=0.0)

    def test_still_trajectory(self):
        traj = still_trajectory((1, 2), 1.0)
        assert traj.total_distance == 0.0
        assert np.all(traj.speeds() < 1e-12)

    def test_cumulative_distance_monotone(self):
        traj = square_trajectory((0, 0), 1.0, 0.5)
        cum = traj.cumulative_distance()
        assert np.all(np.diff(cum) >= 0)
        assert cum[0] == 0.0
