"""Shared binary-framing primitives: fixed-size headers and CRC-32 integrity.

Two subsystems put structured binary records on untrusted media — the
chunked trace store (:mod:`repro.store.format`, records on disk) and the
network ingestion front-end (:mod:`repro.net.framing`, frames on a TCP
stream).  Both need the same three things:

* a **fixed-size little-endian header** opening with a 4-byte magic and a
  format-version field, rejected loudly when either is wrong;
* a **CRC-32 checksum** (zlib flavor) over the protected bytes;
* container-specific **corruption errors** so each layer's fault policy
  keeps its own vocabulary (:class:`~repro.store.format.StoreCorruptionError`
  vs :class:`~repro.net.framing.FrameError`).

This module is the one implementation both layers share.  It is pure
stdlib and knows nothing about stores or sockets: a :class:`HeaderCodec`
owns the struct layout, magic, and accepted versions; :func:`crc32_of` /
:func:`verify_crc32` own the checksum.  The store's on-disk layout
pre-dates this module and is byte-identical to what it produced before
the extraction (locked down by tests/test_net_properties.py).
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence, Tuple, Type


def crc32_of(*parts: bytes) -> int:
    """CRC-32 (zlib) over the concatenation of ``parts``, as unsigned."""
    crc = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
    return crc & 0xFFFFFFFF


def verify_crc32(
    expected: int,
    *parts: bytes,
    error_cls: Type[Exception] = ValueError,
    where: str = "payload",
) -> None:
    """Raise ``error_cls`` unless ``parts`` checksum to ``expected``."""
    if crc32_of(*parts) != (expected & 0xFFFFFFFF):
        raise error_cls(f"{where}: CRC-32 mismatch")


class HeaderCodec:
    """Pack/unpack a fixed-size header whose first fields are magic+version.

    The struct format must be little-endian and start with ``4s`` (magic)
    followed by an integer version field; the remaining fields are the
    caller's.  Decoding validates length, magic, and version and maps
    every failure onto the caller's corruption-error class, so "this is
    not one of my records" reads the same at every layer.

    Args:
        magic: The 4-byte magic opening every record.
        fmt: Full ``struct`` format, magic and version fields included
            (e.g. ``"<4sHHQIIQI"``).
        supported_versions: Format versions this build decodes.
        error_cls: Exception type raised on malformed headers.
    """

    def __init__(
        self,
        magic: bytes,
        fmt: str,
        supported_versions: Sequence[int],
        error_cls: Type[Exception] = ValueError,
    ):
        if len(magic) != 4:
            raise ValueError(f"magic must be 4 bytes, got {magic!r}")
        if not fmt.startswith("<4s"):
            raise ValueError(
                f"header format must be little-endian and open with the 4s "
                f"magic field, got {fmt!r}"
            )
        self.magic = bytes(magic)
        self.struct = struct.Struct(fmt)
        self.supported_versions = tuple(int(v) for v in supported_versions)
        self.error_cls = error_cls

    @property
    def size(self) -> int:
        """Header size in bytes."""
        return self.struct.size

    def pack(self, version: int, *fields: int) -> bytes:
        """Encode one header: magic + ``version`` + the caller's fields."""
        return self.struct.pack(self.magic, version, *fields)

    def unpack(self, buf: bytes, where: str = "header") -> Tuple[int, ...]:
        """Decode and validate a header.

        Returns:
            ``(version, *fields)`` — the fields after magic, validated.

        Raises:
            The codec's ``error_cls`` on short buffers, bad magic, or an
            unsupported format version.
        """
        if len(buf) < self.size:
            raise self.error_cls(
                f"{where}: truncated header ({len(buf)} < {self.size} bytes)"
            )
        magic, version, *fields = self.struct.unpack(buf[: self.size])
        if magic != self.magic:
            raise self.error_cls(f"{where}: bad magic {magic!r}")
        if version not in self.supported_versions:
            raise self.error_cls(
                f"{where}: unsupported format version {version} (this build "
                f"reads versions {sorted(self.supported_versions)})"
            )
        return (int(version), *(int(f) for f in fields))
