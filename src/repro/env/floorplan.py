"""Floorplan substrate: walls, rooms, LOS checks, and the paper's testbed.

The paper evaluates RIM over one floor of a busy office of 36.5 m x 28 m
(Fig. 10) with a single AP tested at seven locations (#0 at the farthest
corner by default).  ``office_floorplan`` builds a synthetic floor with the
same footprint: a perimeter, two corridors, and rows of offices, plus the
seven AP sites roughly where Fig. 10 marks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.env.geometry2d import crossing_counts


@dataclass(frozen=True)
class Wall:
    """A straight wall segment with a per-crossing amplitude attenuation.

    Attributes:
        start: (x, y) of one endpoint, meters.
        end: (x, y) of the other endpoint, meters.
        attenuation: Multiplicative amplitude factor applied to a path that
            crosses this wall (0 < attenuation <= 1).  The paper's drywall
            offices motivate the default of 0.7 (~3 dB per wall); stacking
            much harsher per-wall losses starves deep-NLOS spots of path
            diversity, which real offices do not exhibit.
    """

    start: Tuple[float, float]
    end: Tuple[float, float]
    attenuation: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 < self.attenuation <= 1.0:
            raise ValueError(f"attenuation must be in (0, 1], got {self.attenuation}")


@dataclass
class Floorplan:
    """A 2D floorplan: a bounding box, walls, and named AP sites.

    Attributes:
        width: Extent along x, meters.
        height: Extent along y, meters.
        walls: Interior/exterior wall segments.
        ap_sites: Mapping from site id (e.g. 0..6) to AP position.
    """

    width: float
    height: float
    walls: List[Wall] = field(default_factory=list)
    ap_sites: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("floorplan dimensions must be positive")

    @property
    def wall_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (starts, ends, attenuations) arrays for vectorized queries."""
        if not self.walls:
            empty = np.zeros((0, 2))
            return empty, empty.copy(), np.zeros((0,))
        starts = np.array([w.start for w in self.walls], dtype=np.float64)
        ends = np.array([w.end for w in self.walls], dtype=np.float64)
        atten = np.array([w.attenuation for w in self.walls], dtype=np.float64)
        return starts, ends, atten

    def contains(self, points) -> np.ndarray:
        """Vectorized test that points lie inside the bounding box."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        inside = (
            (pts[:, 0] >= 0.0)
            & (pts[:, 0] <= self.width)
            & (pts[:, 1] >= 0.0)
            & (pts[:, 1] <= self.height)
        )
        return inside

    def wall_crossings(self, starts, ends) -> np.ndarray:
        """Count wall crossings for a batch of path segments."""
        wall_starts, wall_ends, _ = self.wall_arrays
        return crossing_counts(starts, ends, wall_starts, wall_ends)

    def path_attenuation(self, starts, ends) -> np.ndarray:
        """Amplitude attenuation factor per path due to wall crossings.

        Each crossed wall multiplies the path amplitude by its attenuation
        factor.  Paths crossing no walls return 1.0.
        """
        wall_starts, wall_ends, atten = self.wall_arrays
        starts = np.atleast_2d(np.asarray(starts, dtype=np.float64))
        ends = np.atleast_2d(np.asarray(ends, dtype=np.float64))
        if wall_starts.shape[0] == 0:
            return np.ones(max(starts.shape[0], ends.shape[0]))
        from repro.env.geometry2d import segments_intersect

        hits = segments_intersect(starts, ends, wall_starts, wall_ends)
        log_att = np.where(hits, np.log(atten)[None, :], 0.0).sum(axis=1)
        return np.exp(log_att)

    def has_los(self, a, b) -> bool:
        """True when the straight path between two points crosses no wall."""
        counts = self.wall_crossings(np.asarray(a)[None, :], np.asarray(b)[None, :])
        return bool(counts[0] == 0)

    def segment_blocked(self, starts, ends) -> np.ndarray:
        """Vectorized: True where a motion segment would pass through a wall.

        Used by the particle filter (§6.3.3) to discard particles that hit
        walls.
        """
        return self.wall_crossings(starts, ends) > 0


def empty_floorplan(width: float = 40.0, height: float = 30.0) -> Floorplan:
    """A wall-free floorplan: pure free-space propagation."""
    return Floorplan(width=width, height=height)


def office_floorplan(
    width: float = 36.5,
    height: float = 28.0,
    wall_attenuation: float = 0.7,
) -> Floorplan:
    """Build the synthetic office floor used for the paper's experiments.

    The layout mirrors Fig. 10 in spirit: a perimeter, a horizontal corridor
    across the middle, office rows with partition walls on both sides, and
    the AP test sites #0-#6 (with #0 in the far corner).

    Args:
        width: Floor extent along x (paper: 36.5 m).
        height: Floor extent along y (paper: 28 m).
        wall_attenuation: Per-crossing amplitude factor for interior walls.

    Returns:
        The populated :class:`Floorplan`.
    """
    walls: List[Wall] = []

    def add(x1, y1, x2, y2, attenuation=wall_attenuation):
        walls.append(Wall((x1, y1), (x2, y2), attenuation=attenuation))

    # Perimeter (concrete: stronger attenuation).
    perimeter = 0.25
    add(0, 0, width, 0, perimeter)
    add(width, 0, width, height, perimeter)
    add(width, height, 0, height, perimeter)
    add(0, height, 0, 0, perimeter)

    corridor_lo = height * 0.45
    corridor_hi = height * 0.55

    # Corridor walls with door gaps every ~6 m.
    def add_gapped(y):
        x = 1.5
        while x < width - 1.5:
            x_end = min(x + 4.5, width - 1.5)
            add(x, y, x_end, y)
            x = x_end + 1.5

    add_gapped(corridor_lo)
    add_gapped(corridor_hi)

    # Office partitions perpendicular to the corridor, top and bottom rows.
    for x in np.arange(6.0, width - 3.0, 6.0):
        add(x, 0.3, x, corridor_lo - 1.0)
        add(x, corridor_hi + 1.0, x, height - 0.3)

    # A couple of longitudinal walls forming lab spaces.
    add(2.5, height - 8.0, 12.0, height - 8.0)
    add(width - 12.0, 8.0, width - 2.5, 8.0)

    # AP sites: #0 at the far corner (paper default), others spread around.
    ap_sites = {
        0: (1.0, height - 1.0),
        1: (width * 0.30, height * 0.80),
        2: (width * 0.65, height * 0.85),
        3: (width * 0.90, height * 0.60),
        4: (width * 0.15, height * 0.50),
        5: (width * 0.55, height * 0.50),
        6: (width * 0.80, height * 0.15),
    }

    return Floorplan(width=width, height=height, walls=walls, ap_sites=ap_sites)
