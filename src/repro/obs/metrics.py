"""Process-wide metrics registry: counters, gauges, and histograms.

Complements :mod:`repro.obs.trace`: spans say where time went, metrics say
how much work was done — samples processed, alignment-matrix cells
computed, DP paths tracked, candidate groups pre-screened vs. confirmed,
TRRS peak-prominence distribution, per-block streaming latency.

Design constraints:

* **Bounded memory.**  Histograms bin into fixed bucket bounds and keep
  running count/sum/min/max — a week-long stream cannot grow the registry.
* **Deterministic.**  No reservoir sampling, no RNG: the same workload
  produces the same snapshot, so BENCH files diff cleanly across PRs.
* **Snapshot-consistent under concurrency.**  Counters and histograms
  carry per-metric locks; a snapshot or JSONL export racing live
  ``add``/``observe`` traffic is always internally consistent (histogram
  bucket counts sum to the histogram count).
* **Serializable.**  The whole registry round-trips through JSONL
  (:meth:`MetricsRegistry.export_jsonl` / :meth:`MetricsRegistry.from_jsonl`)
  and renders as a human-readable table (:meth:`MetricsRegistry.render_table`).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, Optional, Sequence, Union

# Log-spaced latency bounds: 100 us .. ~30 s, 4 buckets per decade.
LATENCY_BOUNDS_S = tuple(10.0 ** (-4 + k / 4.0) for k in range(19))

# Linear TRRS-prominence bounds over the metric's [0, 1] range.
PROMINENCE_BOUNDS = tuple(k / 20.0 for k in range(1, 21))


class Counter:
    """A monotonically increasing count of work done.

    ``add`` and ``snapshot`` share a lock so a snapshot taken while other
    threads are incrementing always reflects a value that existed at some
    instant (no torn read-modify-write).
    """

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Union[int, float] = 0
        self._mu = threading.Lock()

    def add(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {n})")
        with self._mu:
            self.value += n

    def snapshot(self) -> Dict[str, Any]:
        with self._mu:
            return {"type": self.kind, "value": self.value, "help": self.help}

    def summary(self) -> str:
        return f"{self.value:g}"


class Gauge:
    """A point-in-time value (last one wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value, "help": self.help}

    def summary(self) -> str:
        return f"{self.value:g}"


class Histogram:
    """Fixed-bucket distribution with running stats.

    Args:
        name: Metric name.
        bounds: Ascending bucket upper bounds; observations greater than
            the last bound land in a final overflow bucket.
        help: One-line description.
    """

    kind = "histogram"

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None, help: str = ""
    ):
        bounds = tuple(float(b) for b in (bounds or LATENCY_BOUNDS_S))
        if len(bounds) < 1 or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(f"histogram bounds must be ascending, got {bounds}")
        self.name = name
        self.help = help
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self._mu = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        k = 0
        for k, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            k = len(self.bounds)
        # bucket/count/sum/min/max move together under the lock so a
        # concurrent snapshot never sees sum(counts) != count.
        with self._mu:
            self.counts[k] += 1
            self.count += 1
            self.total += value
            self.vmin = min(self.vmin, value)
            self.vmax = max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (bucket upper bound), q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self.count:
            return math.nan
        target = q * self.count
        running = 0
        for k, n in enumerate(self.counts):
            running += n
            if running >= target and n:
                if k < len(self.bounds):
                    return min(self.bounds[k], self.vmax)
                return self.vmax
        return self.vmax

    def snapshot(self) -> Dict[str, Any]:
        with self._mu:
            return {
                "type": self.kind,
                "count": self.count,
                "sum": self.total,
                "min": None if self.count == 0 else self.vmin,
                "max": None if self.count == 0 else self.vmax,
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "help": self.help,
            }

    def summary(self) -> str:
        if not self.count:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.4g} p50={self.percentile(0.5):.4g} "
            f"p95={self.percentile(0.95):.4g} max={self.vmax:.4g}"
        )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for every metric in the process.

    Metric creation is lock-protected so concurrent sessions
    (:mod:`repro.serve`) can mint per-session metrics from worker threads
    without racing get-or-create, and each counter/histogram carries its
    own lock so concurrent updates against an in-flight
    :meth:`snapshot` / :meth:`to_jsonl` export can never produce a torn
    record (a histogram whose bucket counts do not sum to its count, or a
    half-applied counter increment).

    **Collectors** let gauge owners refresh on demand: components whose
    state is only visible between pushes (queue depths, retained frame
    buffers) register a callable that is invoked at the top of every
    :meth:`snapshot`, so exports always see live values.  A collector
    returning ``False`` is dropped (used with weakrefs for auto-cleanup);
    a collector that raises is dropped too, never breaking an export.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()
        self._collectors: list = []

    def add_collector(self, fn) -> None:
        """Register ``fn()`` to run before every snapshot (gauge refresh)."""
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def remove_collector(self, fn) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        dead = []
        for fn in collectors:
            try:
                if fn() is False:
                    dead.append(fn)
            except Exception:
                dead.append(fn)
        for fn in dead:
            self.remove_collector(fn)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, help: str = ""
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, bounds=bounds, help=help)
                self._metrics[name] = metric
        if not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _get_or_create(self, cls, name: str, help: str = ""):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help)
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Forget every metric and collector (baseline runs start clean)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as a plain, JSON-friendly dict keyed by name.

        Registered collectors run first so on-demand gauges are fresh.
        """
        self._run_collectors()
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def to_jsonl(self) -> str:
        """One JSON object per line: ``{"name": ..., **snapshot}``."""
        lines = []
        for name, snap in self.snapshot().items():
            lines.append(json.dumps({"name": name, **snap}, sort_keys=True))
        return "\n".join(lines) + ("\n" if self._metrics else "")

    def export_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, path) -> "MetricsRegistry":
        """Rebuild a registry from a JSONL export (lossless round-trip)."""
        registry = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                name, kind = rec["name"], rec["type"]
                if kind == "counter":
                    counter = registry.counter(name, help=rec.get("help", ""))
                    counter.value = rec["value"]
                elif kind == "gauge":
                    gauge = registry.gauge(name, help=rec.get("help", ""))
                    gauge.value = rec["value"]
                elif kind == "histogram":
                    hist = registry.histogram(
                        name, bounds=rec["bounds"], help=rec.get("help", "")
                    )
                    hist.counts = list(rec["counts"])
                    hist.count = rec["count"]
                    hist.total = rec["sum"]
                    hist.vmin = math.inf if rec["min"] is None else rec["min"]
                    hist.vmax = -math.inf if rec["max"] is None else rec["max"]
                else:
                    raise ValueError(f"unknown metric type {kind!r} for {name!r}")
        return registry

    def apply_snapshot(
        self,
        snapshot: Dict[str, Dict[str, Any]],
        previous: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Fold another registry's snapshot into this one, as deltas.

        The shard router aggregates worker-process metrics by pulling
        each worker's :meth:`snapshot` and applying it here against the
        worker's *previous* snapshot: counters and histogram buckets
        advance by their deltas (so repeated applications never
        double-count), gauges are last-value-wins, and histogram
        min/max merge absolutely.  A worker that restarted (its values
        regressed) is treated as fresh — the full new value is applied.

        Args:
            snapshot: The remote registry's :meth:`snapshot` output.
            previous: The last snapshot applied for the same source, or
                None on first application.

        Returns:
            ``snapshot`` itself — store it as the next ``previous``.
        """
        previous = previous or {}
        for name, rec in snapshot.items():
            kind = rec.get("type")
            prev = previous.get(name)
            if prev is not None and prev.get("type") != kind:
                prev = None
            if kind == "counter":
                before = prev["value"] if prev else 0
                delta = rec["value"] - before
                if delta < 0:  # source restarted: count the new value whole
                    delta = rec["value"]
                if delta:
                    self.counter(name, help=rec.get("help", "")).add(delta)
            elif kind == "gauge":
                self.gauge(name, help=rec.get("help", "")).set(rec["value"])
            elif kind == "histogram":
                self._apply_histogram(name, rec, prev)
        return snapshot

    def _apply_histogram(
        self,
        name: str,
        rec: Dict[str, Any],
        prev: Optional[Dict[str, Any]],
    ) -> None:
        hist = self.histogram(name, bounds=rec["bounds"], help=rec.get("help", ""))
        if list(hist.bounds) != [float(b) for b in rec["bounds"]]:
            return  # incompatible layout; never corrupt local buckets
        if prev is not None and (
            list(prev.get("bounds", [])) != list(rec["bounds"])
            or rec["count"] < prev["count"]
        ):
            prev = None  # bounds changed or source restarted: apply whole
        prev_counts = prev["counts"] if prev else [0] * len(rec["counts"])
        d_counts = [int(n) - int(p) for n, p in zip(rec["counts"], prev_counts)]
        d_count = int(rec["count"]) - (int(prev["count"]) if prev else 0)
        d_sum = float(rec["sum"]) - (float(prev["sum"]) if prev else 0.0)
        if d_count <= 0:
            return
        with hist._mu:
            for k, d in enumerate(d_counts):
                if d > 0:
                    hist.counts[k] += d
            hist.count += d_count
            hist.total += d_sum
            if rec.get("min") is not None:
                hist.vmin = min(hist.vmin, float(rec["min"]))
            if rec.get("max") is not None:
                hist.vmax = max(hist.vmax, float(rec["max"]))

    def render_table(self) -> str:
        """Aligned human-readable table of every metric."""
        if not self._metrics:
            return "metrics: (none recorded)"
        rows = [
            (name, metric.kind, metric.summary())
            for name, metric in sorted(self._metrics.items())
        ]
        w_name = max([len(r[0]) for r in rows] + [len("metric")])
        w_kind = max([len(r[1]) for r in rows] + [len("type")])
        lines = [f"{'metric'.ljust(w_name)}  {'type'.ljust(w_kind)}  value"]
        for name, kind, summary in rows:
            lines.append(f"{name.ljust(w_name)}  {kind.ljust(w_kind)}  {summary}")
        return "\n".join(lines)
