"""Scatterer-field generation for the multipath channel model.

Indoor WiFi channels are multipath rich (the paper cites tens of paths,
arriving from diverse directions).  RIM's whole premise — that the CSI at a
point is a location fingerprint whose similarity decays within ~0.2λ — is a
consequence of many paths with diverse angles.  We model the environment as
a set of point scatterers with complex reflectivities; the CFR at a position
is the coherent sum of the per-scatterer ray contributions plus (optionally)
the direct LOS ray.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScattererField:
    """A set of 2D point scatterers.

    Attributes:
        positions: (K, 2) scatterer coordinates, meters.  A scatterer
            determines the arrival geometry (angle seen from the receiver)
            of its ray.
        reflectivity: (K,) complex reflection coefficients.
        excess_lengths: (K,) extra path length (meters) added to the
            geometric TX→scatterer→RX length.  Models multi-bounce rays
            that arrive from the direction of their *last* bounce but with
            a longer delay; without it the simulated delay spread is far
            shorter than a real office's (~100-300 ns) and cross-path
            interference inflates the TRRS floor.
    """

    positions: np.ndarray
    reflectivity: np.ndarray
    excess_lengths: np.ndarray = None

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions, dtype=np.float64)
        reflectivity = np.asarray(self.reflectivity, dtype=np.complex128)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (K, 2), got {positions.shape}")
        if reflectivity.shape != (positions.shape[0],):
            raise ValueError(
                "reflectivity must be (K,) matching positions, got "
                f"{reflectivity.shape} vs {positions.shape}"
            )
        if self.excess_lengths is None:
            excess = np.zeros(positions.shape[0])
        else:
            excess = np.asarray(self.excess_lengths, dtype=np.float64)
            if excess.shape != (positions.shape[0],):
                raise ValueError("excess_lengths must be (K,)")
            if (excess < 0).any():
                raise ValueError("excess_lengths must be non-negative")
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "reflectivity", reflectivity)
        object.__setattr__(self, "excess_lengths", excess)

    @property
    def n_scatterers(self) -> int:
        return int(self.positions.shape[0])


def uniform_field(
    width: float,
    height: float,
    n_scatterers: int = 120,
    rng: np.random.Generator = None,
    reflectivity_scale: float = 1.0,
    excess_scale: float = 15.0,
) -> ScattererField:
    """Scatterers placed uniformly over a rectangle.

    Reflectivities are complex Gaussian (Rayleigh amplitude, uniform phase),
    the standard rich-scattering assumption; excess path lengths are
    exponential with mean ``excess_scale`` meters (~50 ns of extra delay
    spread from multi-bounce propagation).
    """
    if n_scatterers < 1:
        raise ValueError(f"need at least one scatterer, got {n_scatterers}")
    rng = rng or np.random.default_rng()
    positions = np.stack(
        [rng.uniform(0.0, width, n_scatterers), rng.uniform(0.0, height, n_scatterers)],
        axis=1,
    )
    reflectivity = reflectivity_scale * (
        rng.standard_normal(n_scatterers) + 1j * rng.standard_normal(n_scatterers)
    ) / np.sqrt(2.0)
    excess = (
        rng.exponential(excess_scale, n_scatterers)
        if excess_scale > 0
        else np.zeros(n_scatterers)
    )
    return ScattererField(
        positions=positions, reflectivity=reflectivity, excess_lengths=excess
    )


def ring_field(
    center,
    radius: float,
    n_scatterers: int = 40,
    radial_jitter: float = 0.5,
    rng: np.random.Generator = None,
) -> ScattererField:
    """Scatterers on a jittered ring around a center.

    Guarantees full angular diversity around the tracked device, which is the
    regime where TRRS spatial decorrelation approaches the Jakes limit (peak
    width ~0.2λ, Fig. 4).  Useful for controlled micro-benchmarks.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    rng = rng or np.random.default_rng()
    center = np.asarray(center, dtype=np.float64)
    angles = np.sort(rng.uniform(0.0, 2 * np.pi, n_scatterers))
    radii = radius + rng.uniform(-radial_jitter, radial_jitter, n_scatterers)
    radii = np.clip(radii, 0.1, None)
    positions = center[None, :] + np.stack(
        [radii * np.cos(angles), radii * np.sin(angles)], axis=1
    )
    reflectivity = (
        rng.standard_normal(n_scatterers) + 1j * rng.standard_normal(n_scatterers)
    ) / np.sqrt(2.0)
    return ScattererField(positions=positions, reflectivity=reflectivity)


def clustered_field(
    width: float,
    height: float,
    n_clusters: int = 8,
    scatterers_per_cluster: int = 10,
    cluster_spread: float = 1.0,
    rng: np.random.Generator = None,
) -> ScattererField:
    """Scatterers grouped in clusters (furniture, pillars, metal cabinets).

    Reproduces the Saleh-Valenzuela-style clustered arrivals of real offices.
    """
    rng = rng or np.random.default_rng()
    centers = np.stack(
        [rng.uniform(0.0, width, n_clusters), rng.uniform(0.0, height, n_clusters)],
        axis=1,
    )
    points = []
    for c in centers:
        offsets = rng.normal(0.0, cluster_spread, (scatterers_per_cluster, 2))
        points.append(c[None, :] + offsets)
    positions = np.concatenate(points, axis=0)
    positions[:, 0] = np.clip(positions[:, 0], 0.0, width)
    positions[:, 1] = np.clip(positions[:, 1], 0.0, height)
    k = positions.shape[0]
    reflectivity = (rng.standard_normal(k) + 1j * rng.standard_normal(k)) / np.sqrt(2.0)
    excess = rng.exponential(15.0, k)
    return ScattererField(
        positions=positions, reflectivity=reflectivity, excess_lengths=excess
    )
