"""Ablation benches for RIM's design choices (DESIGN.md §5)."""

from repro.eval.ablations import (
    run_ablation_metric,
    run_ablation_parallel_averaging,
    run_ablation_sanitize,
    run_ablation_tracking,
)
from repro.eval.report import print_report


def test_ablation_metric(benchmark, quick):
    result = benchmark.pedantic(
        run_ablation_metric, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Ablation — TRRS vs magnitude-only", result)
    assert result["measured"]["trrs_wins"]


def test_ablation_tracking(benchmark, quick):
    result = benchmark.pedantic(
        run_ablation_tracking, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Ablation — DP tracking vs argmax", result)
    assert result["measured"]["dp_wins"]


def test_ablation_sanitize(benchmark, quick):
    result = benchmark.pedantic(
        run_ablation_sanitize, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Ablation — sanitization on/off", result)
    assert result["measured"]["sanitize_wins"]


def test_ablation_parallel_averaging(benchmark, quick):
    result = benchmark.pedantic(
        run_ablation_parallel_averaging, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Ablation — parallel-pair averaging", result)
    m = result["measured"]
    # Averaging should keep the error at least in the same ballpark; its
    # benefit shows up at low SNR.
    assert m["error_with_averaging_cm"] < 40.0
