"""Bench: Fig. 17 — impact of the virtual antenna number V.

Paper: median error ~30 cm at V=1 down to 6.6 cm at V=100.
"""

from repro.eval.experiments import run_fig17_virtual_antennas
from repro.eval.report import print_report


def test_fig17_virtual_antennas(benchmark, quick):
    result = benchmark.pedantic(
        run_fig17_virtual_antennas, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 17 — impact of virtual antenna number", result)
    m = result["measured"]
    medians = m["median_error_cm_by_v"]
    vs = sorted(medians)
    # Shape: virtual massive antennas pay off — large V clearly beats V=1.
    assert medians[vs[-1]] < medians[vs[0]]
