"""Parametric motion profiles used by the experiments (§6).

Every profile returns a :class:`~repro.motionsim.trajectory.Trajectory`
sampled at the CSI packet rate.  Orientation semantics matter for RIM:

* translation profiles keep the array orientation *fixed* by default — that
  is exactly the "sideway movement" regime of §6.3.3 where conventional
  gyroscopes see nothing;
* ``rotation_trajectory`` spins the array in place (§6.2.3);
* ``wobble`` adds lateral swinging to emulate imperfect human retracing
  (deviated retracing, §3.2/Fig. 6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.channel.constants import DEFAULT_SAMPLING_RATE
from repro.env.geometry2d import polyline_length
from repro.motionsim.trajectory import Trajectory


def line_trajectory(
    start,
    direction_deg: float,
    speed: float,
    duration: float,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    orientation_deg: float = 0.0,
    wobble_amplitude: float = 0.0,
    wobble_frequency: float = 1.0,
) -> Trajectory:
    """Constant-speed straight-line motion.

    Args:
        start: (2,) starting position of the array center, meters.
        direction_deg: World heading of the motion, degrees.
        speed: Speed, m/s.
        duration: Trace duration, seconds.
        sampling_rate: CSI packet rate, Hz.
        orientation_deg: Fixed array orientation, degrees.
        wobble_amplitude: Peak lateral displacement (m) of a sinusoidal
            swing perpendicular to the motion (deviated retracing).
        wobble_frequency: Swing frequency, Hz.
    """
    _check_motion_args(speed, duration, sampling_rate)
    n = int(round(duration * sampling_rate)) + 1
    times = np.arange(n) / sampling_rate
    theta = np.deg2rad(direction_deg)
    forward = np.array([np.cos(theta), np.sin(theta)])
    lateral = np.array([-np.sin(theta), np.cos(theta)])
    start = np.asarray(start, dtype=np.float64)
    positions = start[None, :] + np.outer(speed * times, forward)
    if wobble_amplitude > 0.0:
        swing = wobble_amplitude * np.sin(2 * np.pi * wobble_frequency * times)
        positions = positions + np.outer(swing, lateral)
    orientations = np.full(n, np.deg2rad(orientation_deg))
    return Trajectory(times=times, positions=positions, orientations=orientations)


def polyline_trajectory(
    waypoints,
    speed: float,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    orientation_deg: float = 0.0,
    face_motion: bool = False,
) -> Trajectory:
    """Constant-speed motion along a polyline.

    With the default fixed orientation this directly produces the "sideway
    movements" of Fig. 20: the cart changes heading without turning the
    array.  With ``face_motion=True`` the array turns to face the motion —
    the pushed-cart regime of Fig. 21 where gyro heading is meaningful.
    """
    waypoints = np.asarray(waypoints, dtype=np.float64)
    if waypoints.ndim != 2 or waypoints.shape[1] != 2 or waypoints.shape[0] < 2:
        raise ValueError(f"waypoints must be (N>=2, 2), got {waypoints.shape}")
    if speed <= 0 or sampling_rate <= 0:
        raise ValueError("speed and sampling_rate must be positive")
    total = polyline_length(waypoints)
    if total <= 0:
        raise ValueError("polyline has zero length")
    duration = total / speed
    n = int(round(duration * sampling_rate)) + 1
    times = np.arange(n) / sampling_rate
    arc = speed * times

    seg = np.linalg.norm(np.diff(waypoints, axis=0), axis=1)
    cum = np.concatenate([[0.0], np.cumsum(seg)])
    arc = np.clip(arc, 0.0, cum[-1])
    xs = np.interp(arc, cum, waypoints[:, 0])
    ys = np.interp(arc, cum, waypoints[:, 1])
    positions = np.stack([xs, ys], axis=1)
    if face_motion:
        vel = np.gradient(positions, times, axis=0)
        heading = np.unwrap(np.arctan2(vel[:, 1], vel[:, 0]))
        orientations = heading
    else:
        orientations = np.full(n, np.deg2rad(orientation_deg))
    return Trajectory(times=times, positions=positions, orientations=orientations)


def square_trajectory(
    origin,
    side: float,
    speed: float,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    orientation_deg: float = 0.0,
) -> Trajectory:
    """A closed square loop (the Fig. 5 workload), orientation fixed."""
    origin = np.asarray(origin, dtype=np.float64)
    corners = origin + np.array(
        [[0.0, 0.0], [side, 0.0], [side, side], [0.0, side], [0.0, 0.0]]
    )
    return polyline_trajectory(
        corners, speed, sampling_rate, orientation_deg=orientation_deg
    )


def back_and_forth_trajectory(
    start,
    direction_deg: float,
    distance: float,
    speed: float,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    orientation_deg: float = 0.0,
) -> Trajectory:
    """Move out ``distance`` meters then retrace back (Fig. 8 workload)."""
    theta = np.deg2rad(direction_deg)
    start = np.asarray(start, dtype=np.float64)
    far = start + distance * np.array([np.cos(theta), np.sin(theta)])
    return polyline_trajectory(
        np.stack([start, far, start]), speed, sampling_rate, orientation_deg
    )


def stop_and_go_trajectory(
    start,
    direction_deg: float,
    speed: float,
    move_durations: Sequence[float],
    pause_durations: Sequence[float],
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    orientation_deg: float = 0.0,
) -> Trajectory:
    """Alternate movement and stillness (the Fig. 7 movement-detection trace).

    ``move_durations[k]`` seconds of motion are followed by
    ``pause_durations[k]`` seconds at rest (the last pause may be omitted).
    """
    if len(move_durations) == 0:
        raise ValueError("need at least one movement segment")
    theta = np.deg2rad(direction_deg)
    forward = np.array([np.cos(theta), np.sin(theta)])
    dt = 1.0 / sampling_rate

    positions = [np.asarray(start, dtype=np.float64)]
    for k, move in enumerate(move_durations):
        n_move = max(1, int(round(move * sampling_rate)))
        for _ in range(n_move):
            positions.append(positions[-1] + speed * dt * forward)
        if k < len(pause_durations):
            n_pause = max(0, int(round(pause_durations[k] * sampling_rate)))
            for _ in range(n_pause):
                positions.append(positions[-1].copy())
    positions = np.asarray(positions)
    n = positions.shape[0]
    times = np.arange(n) * dt
    orientations = np.full(n, np.deg2rad(orientation_deg))
    return Trajectory(times=times, positions=positions, orientations=orientations)


def rotation_trajectory(
    center,
    angle_deg: float,
    angular_speed_deg: float = 90.0,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    initial_orientation_deg: float = 0.0,
) -> Trajectory:
    """In-place rotation by ``angle_deg`` (§6.2.3 workload).

    The array center stays put; orientation sweeps at constant angular speed
    (sign of ``angle_deg`` selects the sense).
    """
    if angular_speed_deg <= 0:
        raise ValueError("angular speed must be positive")
    duration = abs(angle_deg) / angular_speed_deg
    n = int(round(duration * sampling_rate)) + 1
    times = np.arange(n) / sampling_rate
    center = np.asarray(center, dtype=np.float64)
    positions = np.tile(center, (n, 1))
    sweep = np.linspace(0.0, np.deg2rad(angle_deg), n)
    orientations = np.deg2rad(initial_orientation_deg) + sweep
    return Trajectory(times=times, positions=positions, orientations=orientations)


def still_trajectory(
    position,
    duration: float,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    orientation_deg: float = 0.0,
) -> Trajectory:
    """No motion at all (negative control for movement detection)."""
    n = int(round(duration * sampling_rate)) + 1
    times = np.arange(n) / sampling_rate
    positions = np.tile(np.asarray(position, dtype=np.float64), (n, 1))
    orientations = np.full(n, np.deg2rad(orientation_deg))
    return Trajectory(times=times, positions=positions, orientations=orientations)


def _check_motion_args(speed: float, duration: float, sampling_rate: float) -> None:
    if speed < 0:
        raise ValueError(f"speed must be non-negative, got {speed}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if sampling_rate <= 0:
        raise ValueError(f"sampling_rate must be positive, got {sampling_rate}")
