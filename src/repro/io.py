"""CSI trace persistence: save/load :class:`CsiTrace` bundles as ``.npz``.

A real deployment records CSI once and reprocesses it many times (tuning
configs, comparing algorithms), so traces need a stable on-disk format.
Everything required to rebuild the trace — samples, ground truth, array
geometry, AP positions — goes into one compressed NumPy archive.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.channel.sampler import CsiTrace
from repro.motionsim.trajectory import Trajectory

_FORMAT_VERSION = 1


def save_trace(path, trace: CsiTrace) -> None:
    """Write a CSI trace to ``path`` (.npz, compressed).

    Args:
        path: Destination file path (suffix .npz recommended).
        trace: The trace to persist.
    """
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        data=trace.data,
        times=trace.times,
        tx_positions=trace.tx_positions,
        carrier_wavelength=np.float64(trace.carrier_wavelength),
        array_name=np.bytes_(trace.array.name.encode()),
        array_positions=trace.array.local_positions,
        array_nics=trace.array.nic_assignment,
        array_circular=np.bool_(trace.array.circular),
        traj_times=trace.trajectory.times,
        traj_positions=trace.trajectory.positions,
        traj_orientations=trace.trajectory.orientations,
    )


def load_trace(path) -> CsiTrace:
    """Read a CSI trace written by :func:`save_trace`.

    Raises:
        ValueError: On unknown format versions or malformed archives.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        array = AntennaArray(
            name=bytes(archive["array_name"]).decode(),
            local_positions=archive["array_positions"],
            nic_assignment=archive["array_nics"],
            circular=bool(archive["array_circular"]),
        )
        trajectory = Trajectory(
            times=archive["traj_times"],
            positions=archive["traj_positions"],
            orientations=archive["traj_orientations"],
        )
        return CsiTrace(
            data=archive["data"],
            times=archive["times"],
            array=array,
            trajectory=trajectory,
            tx_positions=archive["tx_positions"],
            carrier_wavelength=float(archive["carrier_wavelength"]),
        )
