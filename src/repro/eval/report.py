"""Paper-vs-measured table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Dict


def format_value(value) -> str:
    """Human-friendly scalar formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, dict):
        inner = ", ".join(f"{k}={format_value(v)}" for k, v in value.items())
        return "{" + inner + "}"
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    return str(value)


def render_health(health) -> str:
    """Render health telemetry attached to a runner result.

    Accepts either a :class:`~repro.robustness.health.HealthReport` (its
    own ``summary()`` is used) or an aggregated dict as produced by
    runners that process many traces/blocks, e.g. ``{"runs": 6,
    "repairs": {...}, "degraded": 1, "dead_chains": [2]}``.
    """
    if hasattr(health, "summary"):
        return health.summary()
    lines = ["health:"]
    runs = health.get("runs")
    if runs is not None:
        lines[0] = f"health: aggregated over {runs} runs"
    repairs = health.get("repairs") or {}
    if repairs:
        fixes = ", ".join(f"{k}={v}" for k, v in sorted(repairs.items()))
        lines.append(f"  repairs          {fixes}")
    else:
        lines.append("  repairs          none")
    if health.get("max_loss_rate"):
        lines.append(f"  max loss rate    {health['max_loss_rate']:.1%}")
    if health.get("dead_chains"):
        lines.append(f"  dead chains      {sorted(set(health['dead_chains']))}")
    degraded = health.get("degraded", 0)
    if degraded:
        lines.append(f"  degraded         {degraded} run(s) hit the degradation policy")
    return "\n".join(lines)


def render_report(title: str, result: Dict) -> str:
    """Render one experiment's paper-vs-measured comparison.

    Args:
        title: Figure/section label, e.g. "Fig. 11".
        result: A runner output with "measured" and "paper" keys, and
            optionally "health" (see :func:`render_health`).

    Returns:
        A multi-line table string; health telemetry (notably the PR-1
        guard repair counters) is appended when the runner recorded any.
    """
    measured = result.get("measured", {})
    paper = result.get("paper", {})
    keys = list(measured.keys())
    for key in paper:
        if key not in keys:
            keys.append(key)

    width = max([len(k) for k in keys] + [10])
    lines = [f"== {title} ==", f"{'metric'.ljust(width)}  {'paper':>16}  {'measured':>16}"]
    for key in keys:
        p = format_value(paper[key]) if key in paper else "-"
        m = format_value(measured[key]) if key in measured else "-"
        if key == "note":
            lines.append(f"{key.ljust(width)}  {p}")
            continue
        lines.append(f"{key.ljust(width)}  {p:>16}  {m:>16}")
    if result.get("health") is not None:
        lines.append(render_health(result["health"]))
    return "\n".join(lines)


def print_report(title: str, result: Dict) -> None:
    """Print the rendered comparison (used by the benches)."""
    print()
    print(render_report(title, result))
