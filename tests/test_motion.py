"""Unit tests for motion reckoning (§4.4)."""

import numpy as np
import pytest

from repro.core.motion import (
    MotionEstimate,
    RotationEvent,
    integrate_rotation,
    smooth_speed,
    speed_from_lags,
)


class TestSpeedFromLags:
    def test_basic_conversion(self):
        v = speed_from_lags(np.array([10.0]), separation=0.0258, sampling_rate=200.0)
        assert v[0] == pytest.approx(0.516)

    def test_sign_ignored(self):
        v = speed_from_lags(np.array([-10.0, 10.0]), 0.0258, 200.0)
        assert v[0] == pytest.approx(v[1])

    def test_min_lag_guard(self):
        v = speed_from_lags(np.array([0.5, 1.0, 2.0]), 0.0258, 200.0, min_lag=1.5)
        assert np.isnan(v[0])
        assert np.isnan(v[1])
        assert np.isfinite(v[2])

    def test_nan_lag_passthrough(self):
        v = speed_from_lags(np.array([np.nan]), 0.0258, 200.0)
        assert np.isnan(v[0])

    def test_subsample_lag(self):
        v = speed_from_lags(np.array([5.5]), 0.0258, 200.0)
        assert v[0] == pytest.approx(0.0258 * 200 / 5.5)


class TestSmoothSpeed:
    def test_window_one_identity(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(smooth_speed(x, 1), x)

    def test_median_rejects_spike(self):
        x = np.ones(21)
        x[10] = 50.0
        out = smooth_speed(x, 5)
        assert out[10] == pytest.approx(1.0)

    def test_nan_forward_filled(self):
        x = np.array([1.0, np.nan, np.nan, 1.0, 1.0])
        out = smooth_speed(x, 3)
        assert np.isfinite(out).all()

    def test_all_nan_passthrough(self):
        x = np.full(5, np.nan)
        out = smooth_speed(x, 3)
        assert np.isnan(out).all()


class TestMotionEstimate:
    def _estimate(self, speed, heading=None, moving=None, fs=100.0):
        t = len(speed)
        times = np.arange(t) / fs
        return MotionEstimate(
            times=times,
            moving=np.ones(t, dtype=bool) if moving is None else moving,
            speed=np.asarray(speed, dtype=float),
            heading=np.zeros(t) if heading is None else np.asarray(heading, dtype=float),
            group_choice=np.zeros(t, dtype=np.int64),
        )

    def test_distance_integration(self):
        est = self._estimate([1.0] * 101)
        assert est.total_distance == pytest.approx(1.0, rel=1e-6)

    def test_distance_ignores_static_samples(self):
        moving = np.ones(101, dtype=bool)
        moving[50:] = False
        est = self._estimate([1.0] * 101, moving=moving)
        assert est.total_distance == pytest.approx(0.5, rel=5e-2)

    def test_distance_ignores_nan_speed(self):
        speed = [1.0] * 101
        speed[10] = np.nan
        est = self._estimate(speed)
        assert est.total_distance == pytest.approx(0.99, rel=1e-2)

    def test_positions_straight_line(self):
        est = self._estimate([1.0] * 101, heading=[0.0] * 101)
        pos = est.positions()
        assert pos[-1][0] == pytest.approx(1.0, rel=1e-6)
        assert pos[-1][1] == pytest.approx(0.0, abs=1e-9)

    def test_positions_follow_heading(self):
        heading = [np.pi / 2] * 101
        est = self._estimate([1.0] * 101, heading=heading)
        pos = est.positions(start=(5.0, 5.0))
        assert pos[-1][0] == pytest.approx(5.0, abs=1e-9)
        assert pos[-1][1] == pytest.approx(6.0, rel=1e-6)

    def test_positions_hold_heading_over_gaps(self):
        heading = np.zeros(101)
        heading[50:] = np.nan
        est = self._estimate([1.0] * 101, heading=heading)
        pos = est.positions()
        assert pos[-1][0] == pytest.approx(1.0, rel=1e-6)

    def test_initial_heading_override(self):
        heading = np.full(101, np.nan)
        est = self._estimate([1.0] * 101, heading=heading)
        pos = est.positions(initial_heading=np.pi)
        assert pos[-1][0] == pytest.approx(-1.0, rel=1e-6)

    def test_total_rotation_sums_events(self):
        est = self._estimate([0.0] * 10)
        est.rotations = [
            RotationEvent(0, 5, np.pi / 2),
            RotationEvent(5, 9, -np.pi / 4),
        ]
        assert est.total_rotation == pytest.approx(np.pi / 4)


class TestIntegrateRotation:
    def _times(self, t, fs=200.0):
        return np.arange(t) / fs

    def test_constant_ccw_rotation(self):
        t = 200
        fs = 200.0
        arc = np.pi / 3 * 0.0258
        radius = 0.0258
        lag = 100.0  # 0.5 s to travel one arc
        ring_lags = np.full((6, t), lag)
        active = np.ones(t, dtype=bool)
        angle = integrate_rotation(ring_lags, arc, radius, fs, self._times(t), active)
        omega = arc * fs / lag / radius
        assert angle == pytest.approx(omega * (t - 1) / fs, rel=1e-6)
        assert angle > 0

    def test_cw_rotation_negative(self):
        t = 100
        ring_lags = np.full((6, t), -80.0)
        angle = integrate_rotation(
            ring_lags, 0.027, 0.0258, 200.0, self._times(t), np.ones(t, dtype=bool)
        )
        assert angle < 0

    def test_median_rejects_one_bad_pair(self):
        t = 100
        ring_lags = np.full((6, t), 100.0)
        ring_lags[0] = 2.0  # garbage small lag -> huge implied speed
        good = integrate_rotation(
            np.full((6, t), 100.0), 0.027, 0.0258, 200.0, self._times(t), np.ones(t, dtype=bool)
        )
        robust = integrate_rotation(
            ring_lags, 0.027, 0.0258, 200.0, self._times(t), np.ones(t, dtype=bool)
        )
        assert robust == pytest.approx(good, rel=0.05)

    def test_gap_interpolated(self):
        t = 100
        ring_lags = np.full((6, t), 100.0)
        ring_lags[:, 40:60] = np.nan  # no pair resolves lags here
        full = integrate_rotation(
            np.full((6, t), 100.0), 0.027, 0.0258, 200.0, self._times(t), np.ones(t, dtype=bool)
        )
        gappy = integrate_rotation(
            ring_lags, 0.027, 0.0258, 200.0, self._times(t), np.ones(t, dtype=bool)
        )
        assert gappy == pytest.approx(full, rel=1e-6)

    def test_inactive_samples_excluded(self):
        t = 100
        ring_lags = np.full((6, t), 100.0)
        active = np.zeros(t, dtype=bool)
        active[:50] = True
        half = integrate_rotation(
            ring_lags, 0.027, 0.0258, 200.0, self._times(t), active
        )
        full = integrate_rotation(
            ring_lags, 0.027, 0.0258, 200.0, self._times(t), np.ones(t, dtype=bool)
        )
        assert half == pytest.approx(full * 49 / 99, rel=0.05)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            integrate_rotation(
                np.zeros(10), 0.027, 0.0258, 200.0, self._times(10), np.ones(10, dtype=bool)
            )
