"""Migration between the legacy ``.npz`` archive and the chunked store.

Both directions are lossless for well-formed inputs (enforced by
``tests/test_store.py``): samples are complex64 in both formats, clocks
are float64, and the ground-truth trajectory / AP positions ride in the
store manifest via the shared codecs in :mod:`repro.io`.  Conversion
reads with the ``raise`` policy by default — a migration should fail
loudly on corruption rather than bake NaN fills into a "clean" archive.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.io import load_trace, save_trace
from repro.store.reader import TraceReader
from repro.store.writer import DEFAULT_CHUNK_SAMPLES, TraceWriter, write_trace


def npz_to_store(
    src,
    dest,
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    metadata: Optional[Dict[str, Any]] = None,
) -> TraceWriter:
    """Convert a legacy ``.npz`` archive into a chunked store directory.

    Returns:
        The (closed) writer, for its ``n_chunks`` / ``bytes_written``.
    """
    trace = load_trace(src)
    return write_trace(dest, trace, chunk_samples=chunk_samples, metadata=metadata)


def store_to_npz(src, dest, policy: str = "raise") -> int:
    """Convert a chunked store back into a legacy ``.npz`` archive.

    Args:
        src: Store directory.
        dest: Destination ``.npz`` path.
        policy: Store read policy; the default refuses to archive a
            corrupt store (pass ``"repair"`` to archive NaN-filled).

    Returns:
        Number of samples written.
    """
    with TraceReader(src, policy=policy) as reader:
        trace = reader.read_trace()
    save_trace(dest, trace)
    return trace.n_samples
