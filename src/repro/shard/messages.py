"""Router <-> worker message codec for the shard fleet (pipe transport).

Every message crossing a shard pipe is one length-delimited record
(``multiprocessing.Connection.send_bytes`` / ``recv_bytes``) opening with
a CRC-32-protected fixed header built on the shared
:class:`repro.binfmt.HeaderCodec` — the same primitive the trace store
uses on disk and the net front-end uses on TCP, so a corrupted or
misframed record is rejected loudly at every hop with the same
vocabulary.

Header layout (``<4sHHHQII``, 26 bytes)::

    magic "RSRD" | version | msg type | session-name length
    | sequence number | payload length | CRC-32

The CRC covers the header (with the CRC field zeroed), the UTF-8 session
name, and the payload, so a single bit flip anywhere in the record is
caught before dispatch.  Payload encodings by message family:

* control (CREATE/ADOPT/OK/ERROR/STATS/SNAPSHOT...): canonical JSON;
* DATA: a self-describing packet record — ``<dBBB`` (timestamp,
  has-timestamp flag, dtype code, ndim) + dims + raw array bytes, so
  complex64 CSI crosses the pipe bit-identically without a per-session
  shape registry;
* UPDATES: length-prefixed :func:`repro.net.framing.encode_update`
  blobs — the wire codec that is already bit-exact for MotionUpdates.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.binfmt import HeaderCodec, crc32_of, verify_crc32
from repro.core.streaming import MotionUpdate
from repro.net.framing import decode_update, encode_update


class ShardProtocolError(RuntimeError):
    """A malformed, corrupt, or out-of-protocol shard message."""


SHARD_MAGIC = b"RSRD"
SHARD_PROTOCOL_VERSION = 1
SUPPORTED_SHARD_VERSIONS = (1,)

# magic, version, msg_type, name_len, seq, payload_len, crc
HEADER = HeaderCodec(
    SHARD_MAGIC,
    "<4sHHHQII",
    SUPPORTED_SHARD_VERSIONS,
    error_cls=ShardProtocolError,
)
HEADER_SIZE = HEADER.size  # 26

# Requests (router -> worker).
MSG_PING = 1  # readiness / liveness probe
MSG_CREATE = 2  # register a session on this shard
MSG_DATA = 3  # one CSI packet (fire-and-forget, no reply)
MSG_POLL = 4  # drain a session, return updates since last poll
MSG_FLUSH = 5  # end-of-stream flush of one session
MSG_STATS = 6  # per-session serving-health rows
MSG_SNAPSHOT = 7  # full obs metrics snapshot
MSG_SYNC = 8  # make every session's recording durable (partial-chunk flush)
MSG_ADOPT = 9  # resume a dead shard's session from its recording
MSG_NOTE = 10  # fold an ingest-side repair into a session (fire-and-forget)
MSG_EVICT = 11  # flush and remove one session
MSG_SHUTDOWN = 12  # flush everything and exit the worker loop

# Replies (worker -> router).
MSG_OK = 64  # JSON result
MSG_UPDATES = 65  # encoded MotionUpdate batch
MSG_ERROR = 66  # JSON {"error": ..., "kind": ...}

_FIRE_AND_FORGET = frozenset({MSG_DATA, MSG_NOTE})

_MSG_NAMES = {
    MSG_PING: "PING", MSG_CREATE: "CREATE", MSG_DATA: "DATA",
    MSG_POLL: "POLL", MSG_FLUSH: "FLUSH", MSG_STATS: "STATS",
    MSG_SNAPSHOT: "SNAPSHOT", MSG_SYNC: "SYNC", MSG_ADOPT: "ADOPT",
    MSG_NOTE: "NOTE", MSG_EVICT: "EVICT", MSG_SHUTDOWN: "SHUTDOWN",
    MSG_OK: "OK", MSG_UPDATES: "UPDATES", MSG_ERROR: "ERROR",
}


def msg_name(msg_type: int) -> str:
    """Human-readable message-type name (for logs and errors)."""
    return _MSG_NAMES.get(msg_type, f"type-{msg_type}")


def is_fire_and_forget(msg_type: int) -> bool:
    """True for request types that never get a reply (DATA, NOTE)."""
    return msg_type in _FIRE_AND_FORGET


@dataclass
class ShardMessage:
    """One decoded pipe record: type + session name + raw payload."""

    msg_type: int
    name: str
    seq: int
    payload: bytes

    def json(self) -> Dict[str, Any]:
        """Decode the payload as a JSON object."""
        return unpack_json(self.payload)


def pack_message(
    msg_type: int, name: str = "", seq: int = 0, payload: bytes = b""
) -> bytes:
    """Encode one shard record: CRC-protected header + name + payload."""
    name_bytes = name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ShardProtocolError(f"session name too long ({len(name_bytes)} bytes)")
    head = HEADER.pack(
        SHARD_PROTOCOL_VERSION, msg_type, len(name_bytes), seq, len(payload), 0
    )[:-4]
    crc = crc32_of(head, name_bytes, payload)
    return b"".join((head, struct.pack("<I", crc), name_bytes, payload))


def unpack_message(buf: bytes, where: str = "shard") -> ShardMessage:
    """Decode and CRC-verify one shard record."""
    _, msg_type, name_len, seq, payload_len, crc = HEADER.unpack(buf, where=where)
    expected = HEADER_SIZE + name_len + payload_len
    if len(buf) != expected:
        raise ShardProtocolError(
            f"{where}: record length {len(buf)} != {expected} "
            f"({msg_name(msg_type)}, name {name_len}B, payload {payload_len}B)"
        )
    name_bytes = buf[HEADER_SIZE:HEADER_SIZE + name_len]
    payload = buf[HEADER_SIZE + name_len:]
    verify_crc32(
        crc,
        buf[:HEADER_SIZE - 4],
        name_bytes,
        payload,
        error_cls=ShardProtocolError,
        where=f"{where}: {msg_name(msg_type)}",
    )
    return ShardMessage(msg_type, name_bytes.decode("utf-8"), seq, payload)


# -- payload codecs ------------------------------------------------------------


def pack_json(obj: Dict[str, Any]) -> bytes:
    """Canonical JSON payload (sorted keys, UTF-8)."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def unpack_json(payload: bytes, where: str = "shard") -> Dict[str, Any]:
    """Inverse of :func:`pack_json`."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardProtocolError(f"{where}: bad JSON payload: {exc}") from None
    if not isinstance(obj, dict):
        raise ShardProtocolError(f"{where}: JSON payload must be an object")
    return obj


_DATA_HEAD = struct.Struct("<dBBB")  # timestamp, has_ts, dtype code, ndim

# Self-describing dtype codes so any StreamingRim-acceptable packet dtype
# crosses the pipe losslessly (CSI is complex64 end to end; the rest
# cover hand-built test inputs).
_DTYPE_CODES: Dict[str, int] = {
    "<c8": 0, "<c16": 1, "<f8": 2, "<f4": 3, "<i8": 4,
}
_CODE_DTYPES = {code: np.dtype(s) for s, code in _DTYPE_CODES.items()}
_MAX_DATA_NDIM = 8


def pack_data(timestamp: Optional[float], packet: np.ndarray) -> bytes:
    """Encode one CSI packet + timestamp for a DATA record (lossless)."""
    arr = np.ascontiguousarray(packet)
    code = _DTYPE_CODES.get(arr.dtype.str)
    if code is None:
        arr = np.ascontiguousarray(arr, dtype=np.complex64)
        code = _DTYPE_CODES[arr.dtype.str]
    if arr.ndim > _MAX_DATA_NDIM:
        raise ShardProtocolError(f"packet rank {arr.ndim} > {_MAX_DATA_NDIM}")
    head = _DATA_HEAD.pack(
        0.0 if timestamp is None else float(timestamp),
        0 if timestamp is None else 1,
        code,
        arr.ndim,
    )
    dims = struct.pack(f"<{arr.ndim}I", *arr.shape)
    return head + dims + arr.tobytes()


def unpack_data(payload: bytes, where: str = "DATA") -> Tuple[Optional[float], np.ndarray]:
    """Inverse of :func:`pack_data`; the array round-trips bit-exactly."""
    if len(payload) < _DATA_HEAD.size:
        raise ShardProtocolError(f"{where}: truncated data payload")
    timestamp, has_ts, code, ndim = _DATA_HEAD.unpack_from(payload)
    if code not in _CODE_DTYPES:
        raise ShardProtocolError(f"{where}: unknown dtype code {code}")
    if ndim > _MAX_DATA_NDIM:
        raise ShardProtocolError(f"{where}: packet rank {ndim} > {_MAX_DATA_NDIM}")
    at = _DATA_HEAD.size
    if len(payload) < at + 4 * ndim:
        raise ShardProtocolError(f"{where}: truncated dims")
    shape = struct.unpack_from(f"<{ndim}I", payload, at)
    at += 4 * ndim
    dtype = _CODE_DTYPES[code]
    expected = at + int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(payload) != expected:
        raise ShardProtocolError(
            f"{where}: data payload length {len(payload)} != {expected} "
            f"for shape {tuple(shape)} {dtype}"
        )
    packet = np.frombuffer(payload, dtype=dtype, offset=at).reshape(shape).copy()
    return (float(timestamp) if has_ts else None), packet


_UPDATES_HEAD = struct.Struct("<I")  # update count
_BLOB_LEN = struct.Struct("<I")


def pack_updates(updates: List[MotionUpdate]) -> bytes:
    """Encode a MotionUpdate batch (bit-exact via the net wire codec)."""
    parts = [_UPDATES_HEAD.pack(len(updates))]
    for update in updates:
        blob = encode_update(update)
        parts.append(_BLOB_LEN.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def unpack_updates(payload: bytes, where: str = "UPDATES") -> List[MotionUpdate]:
    """Inverse of :func:`pack_updates`."""
    if len(payload) < _UPDATES_HEAD.size:
        raise ShardProtocolError(f"{where}: truncated updates payload")
    (n,) = _UPDATES_HEAD.unpack_from(payload)
    at = _UPDATES_HEAD.size
    updates: List[MotionUpdate] = []
    for k in range(n):
        if len(payload) < at + _BLOB_LEN.size:
            raise ShardProtocolError(f"{where}: truncated update {k} length")
        (blob_len,) = _BLOB_LEN.unpack_from(payload, at)
        at += _BLOB_LEN.size
        if len(payload) < at + blob_len:
            raise ShardProtocolError(f"{where}: truncated update {k} body")
        updates.append(decode_update(payload[at:at + blob_len], where=where))
        at += blob_len
    if at != len(payload):
        raise ShardProtocolError(
            f"{where}: {len(payload) - at} trailing bytes after {n} updates"
        )
    return updates
