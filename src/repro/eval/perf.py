"""Performance baseline harness: measure the pipeline, emit ``BENCH_perf.json``.

The paper reports RIM's runtime cost directly (§6.2.9: ~6% CPU on a
Surface Pro running in real time at 200 Hz).  This harness is our
equivalent measuring stick: it runs the batch estimator and the streaming
estimator over a standard testbed workload with :mod:`repro.obs` enabled
and packages per-stage wall-time spans, work counters, and the per-block
streaming latency distribution into one JSON payload.  Optimisation PRs
regenerate the file and diff it against the committed baseline — the
trajectory to beat.

Entry points:

* :func:`run_perf_baseline` — library API (used by tests and the CLI).
* ``python -m repro.cli profile`` — writes ``BENCH_perf.json``.
* ``python benchmarks/perf_baseline.py`` — the same harness as a script
  (what CI's perf-smoke job runs).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional

from repro import obs

SCHEMA = "rim-perf-baseline/v1"

# Stage spans every baseline must contain (the pipeline of §4.4): without
# them the file cannot answer "where did the time go".
REQUIRED_BATCH_SPANS = (
    "rim.process",
    "rim.sanitize",
    "rim.movement_detect",
    "rim.pre_screen",
    "alignment_matrix",
    "dp_tracking",
    "rim.integrate",
)


def run_perf_baseline(
    seed: int = 0,
    quick: bool = True,
    duration_s: Optional[float] = None,
    block_seconds: float = 1.0,
) -> Dict[str, Any]:
    """Profile the batch and streaming pipelines on the standard testbed.

    Args:
        seed: Scenario seed (scatterers, noise).
        quick: Short workload for CI smoke runs; full is paper-scale-ish.
        duration_s: Trajectory duration override, seconds.
        block_seconds: Streaming emission cadence.

    Returns:
        The ``BENCH_perf.json`` payload (see :func:`validate_perf_payload`
        for the schema).  Instrumentation state is restored on exit; the
        run itself executes with :mod:`repro.obs` enabled and reset.
    """
    from repro import Rim, RimConfig, StreamingRim, linear_array
    from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
    from repro.motionsim.profiles import line_trajectory

    if duration_s is None:
        duration_s = 3.0 if quick else 10.0
    bed = make_testbed(seed=seed)
    truth = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 0.5, duration_s)
    array = linear_array(3)
    trace = bed.sampler.sample(truth, array)
    cfg = RimConfig(max_lag=60)

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        # -- batch ---------------------------------------------------------
        t0 = time.perf_counter()
        result = Rim(cfg).process(trace)
        batch_wall = time.perf_counter() - t0

        # -- streaming -----------------------------------------------------
        stream = StreamingRim(
            array,
            trace.sampling_rate,
            cfg,
            block_seconds=block_seconds,
            carrier_wavelength=trace.carrier_wavelength,
        )
        t0 = time.perf_counter()
        n_updates = 0
        for k in range(trace.n_samples):
            if stream.push(trace.data[k], float(trace.times[k])) is not None:
                n_updates += 1
        if stream.flush() is not None:
            n_updates += 1
        stream_wall = time.perf_counter() - t0

        latency = obs.METRICS.get("stream.block_latency_s")
        metrics_snapshot = obs.METRICS.snapshot()
    finally:
        if not was_enabled:
            obs.disable()

    samples_per_second = trace.n_samples / stream_wall if stream_wall > 0 else 0.0
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "seed": seed,
        "quick": quick,
        "workload": {
            "duration_s": duration_s,
            "sampling_rate_hz": float(trace.sampling_rate),
            "n_samples": int(trace.n_samples),
            "n_rx": int(trace.n_rx),
            "block_seconds": block_seconds,
            "truth_distance_m": float(truth.total_distance),
        },
        "batch": {
            "wall_s": batch_wall,
            "total_distance_m": float(result.total_distance),
            "spans": result.stats["spans"] if result.stats else [],
        },
        "streaming": {
            "wall_s": stream_wall,
            "n_blocks": n_updates,
            "samples_per_second": samples_per_second,
            "real_time_at_rate": bool(
                samples_per_second >= float(trace.sampling_rate)
            ),
            "total_distance_m": float(stream.total_distance),
            "block_latency": latency.snapshot() if latency is not None else None,
            "block_latency_p50_s": (
                latency.percentile(0.5) if latency and latency.count else None
            ),
            "block_latency_p95_s": (
                latency.percentile(0.95) if latency and latency.count else None
            ),
        },
        "metrics": metrics_snapshot,
    }
    return payload


def validate_perf_payload(payload: Dict[str, Any]) -> None:
    """Assert the structural schema of a ``BENCH_perf.json`` payload.

    Checks structure only — never timing thresholds, so CI stays
    hardware-independent.

    Raises:
        ValueError: When a required section, stage span, or the streaming
            latency histogram is missing.
    """
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"schema mismatch: want {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for section in ("workload", "batch", "streaming", "metrics"):
        if not isinstance(payload.get(section), dict):
            raise ValueError(f"missing or malformed section {section!r}")
    spans = payload["batch"].get("spans") or []
    names = {s.get("name") for s in spans}
    missing = [n for n in REQUIRED_BATCH_SPANS if n not in names]
    if missing:
        raise ValueError(f"batch spans missing required stages: {missing}")
    for span in spans:
        if not isinstance(span.get("total_s"), (int, float)):
            raise ValueError(f"span {span.get('name')!r} lacks total_s")
    latency = payload["streaming"].get("block_latency")
    if not latency or latency.get("type") != "histogram":
        raise ValueError("streaming.block_latency histogram is missing")
    if not latency.get("count"):
        raise ValueError("streaming.block_latency histogram is empty")


def write_perf_baseline(path, payload: Dict[str, Any]) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_perf_summary(payload: Dict[str, Any]) -> str:
    """Human-readable digest of a perf payload (CLI output)."""
    from repro.obs.trace import render_span_table

    work = payload["workload"]
    batch = payload["batch"]
    stream = payload["streaming"]
    lines = [
        f"== perf baseline ({'quick' if payload['quick'] else 'full'}, "
        f"seed {payload['seed']}) ==",
        f"workload: {work['n_samples']} samples @ {work['sampling_rate_hz']:g} Hz "
        f"({work['duration_s']:g} s, {work['n_rx']} antennas)",
        "",
        "batch pipeline:",
        f"  wall time        {batch['wall_s'] * 1e3:.1f} ms "
        f"({work['n_samples'] / batch['wall_s']:.0f} samples/s)",
        f"  distance         {batch['total_distance_m']:.3f} m "
        f"(truth {work['truth_distance_m']:.3f} m)",
        "",
        render_span_table(batch["spans"]),
        "",
        "streaming pipeline:",
        f"  wall time        {stream['wall_s'] * 1e3:.1f} ms over "
        f"{stream['n_blocks']} blocks "
        f"({stream['samples_per_second']:.0f} samples/s, "
        f"real-time: {'yes' if stream['real_time_at_rate'] else 'NO'})",
    ]
    if stream.get("block_latency_p50_s") is not None:
        lines.append(
            f"  block latency    p50 {stream['block_latency_p50_s'] * 1e3:.1f} ms, "
            f"p95 {stream['block_latency_p95_s'] * 1e3:.1f} ms"
        )
    return "\n".join(lines)
