"""RIM + inertial sensor fusion (§6.3.3, Fig. 21).

The paper's integrated tracker uses RIM for what it is superb at — moving
distance — and the gyroscope for heading during turns, optionally cleaned
up by the floorplan particle filter.  ``fuse_rim_gyro`` resamples both
streams onto fixed-length steps and returns the fused dead-reckoned track;
``fuse_with_particle_filter`` adds the map constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.rim import RimResult
from repro.env.floorplan import Floorplan
from repro.fusion.particle_filter import ParticleFilterConfig, run_particle_filter
from repro.imu.sensors import ImuReadings


@dataclass
class FusedTrack:
    """Output of the RIM+gyro fusion.

    Attributes:
        step_times: (N,) timestamp at the end of each step.
        step_distances: (N,) RIM distance covered per step.
        step_headings: (N,) gyro heading per step, radians.
        positions: (N + 1, 2) dead-reckoned track (no map constraint).
    """

    step_times: np.ndarray
    step_distances: np.ndarray
    step_headings: np.ndarray
    positions: np.ndarray


def fuse_rim_gyro(
    rim_result: RimResult,
    imu: ImuReadings,
    initial_heading: float,
    start=(0.0, 0.0),
    step_seconds: float = 0.25,
) -> FusedTrack:
    """Combine RIM distance with gyro-integrated heading.

    Args:
        rim_result: RIM output for the trace.
        imu: IMU readings over the same time base.
        initial_heading: Known initial device orientation (given in §6.3.3).
        start: Known initial position.
        step_seconds: Fusion step length.

    Returns:
        The :class:`FusedTrack`.
    """
    times = rim_result.motion.times
    if times.size < 2:
        raise ValueError("need at least 2 samples to fuse")
    distance = rim_result.cumulative_distance()

    imu_dt = np.diff(imu.times, prepend=imu.times[0])
    imu_dt[0] = 0.0
    gyro_heading = initial_heading + np.cumsum(imu.gyro * imu_dt)

    t_end = min(times[-1], imu.times[-1])
    edges = np.arange(times[0], t_end + step_seconds, step_seconds)
    if edges.size < 2:
        edges = np.array([times[0], t_end])

    step_dist = np.diff(np.interp(edges, times, distance))
    # Heading at the middle of each step.
    mids = (edges[:-1] + edges[1:]) / 2.0
    step_head = np.interp(mids, imu.times, gyro_heading)

    positions = [np.asarray(start, dtype=np.float64)]
    for d, h in zip(step_dist, step_head):
        positions.append(positions[-1] + d * np.array([np.cos(h), np.sin(h)]))

    return FusedTrack(
        step_times=edges[1:],
        step_distances=step_dist,
        step_headings=step_head,
        positions=np.asarray(positions),
    )


def fuse_with_particle_filter(
    fused: FusedTrack,
    floorplan: Floorplan,
    start,
    config: Optional[ParticleFilterConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Apply the floorplan particle filter to a fused track (Fig. 21).

    Returns:
        (N + 1, 2) map-constrained positions.
    """
    return run_particle_filter(
        floorplan,
        start,
        fused.step_distances,
        fused.step_headings,
        config=config,
        rng=rng,
    )
