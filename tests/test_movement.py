"""Unit tests for movement detection (§4.1)."""

import numpy as np
import pytest

from repro.core.movement import (
    MovementResult,
    detect_movement,
    movement_fraction,
    self_trrs_indicator,
)
from repro.core.sanitize import sanitize_trace
from repro.motionsim.profiles import still_trajectory, stop_and_go_trajectory


class TestIndicator:
    def test_static_indicator_near_one(self, fast_sampler, three_antenna):
        traj = still_trajectory((10.0, 8.0), 1.0)
        trace = fast_sampler.sample(traj, three_antenna)
        data = sanitize_trace(trace.data)
        ind = self_trrs_indicator(data[:, 0], lag_samples=20, virtual_window=5)
        assert np.nanmedian(ind) > 0.97

    def test_moving_indicator_drops(self, line_trace):
        data = sanitize_trace(line_trace.data)
        ind = self_trrs_indicator(data[:, 0], lag_samples=20, virtual_window=5)
        assert np.nanmedian(ind[30:]) < 0.9

    def test_backfill_of_leading_lag(self, line_trace):
        data = sanitize_trace(line_trace.data)
        ind = self_trrs_indicator(data[:, 0], lag_samples=15)
        assert np.isfinite(ind).all()

    def test_invalid_lag(self, line_trace):
        with pytest.raises(ValueError):
            self_trrs_indicator(line_trace.data[:, 0], lag_samples=0)

    def test_nan_packets_held(self, rng):
        data = (
            rng.standard_normal((40, 2, 8)) + 1j * rng.standard_normal((40, 2, 8))
        )
        data[20] = np.nan
        ind = self_trrs_indicator(data, lag_samples=2)
        assert np.isfinite(ind).all()


class TestDetectMovement:
    def test_threshold_semantics(self):
        indicator = np.array([0.99, 0.99, 0.3, 0.3, 0.99])
        result = detect_movement(indicator, threshold=0.8, min_run=1)
        np.testing.assert_array_equal(result.moving, [False, False, True, True, False])

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_movement(np.ones(5), threshold=1.5)

    def test_debounce_interior_glitch(self):
        indicator = np.ones(30) * 0.3
        indicator[14] = 0.99  # one-sample static glitch mid-movement
        result = detect_movement(indicator, threshold=0.8, min_run=3)
        assert result.moving.all()

    def test_debounce_preserves_borders(self):
        indicator = np.concatenate([np.full(2, 0.3), np.full(20, 0.99)])
        result = detect_movement(indicator, threshold=0.8, min_run=5)
        # The short leading run is at the border and must not be flipped.
        assert result.moving[0]
        assert not result.moving[10]

    def test_movement_fraction(self):
        result = MovementResult(
            indicator=np.zeros(4), moving=np.array([True, True, False, False]), threshold=0.8
        )
        assert movement_fraction(result) == pytest.approx(0.5)

    def test_movement_fraction_empty(self):
        result = MovementResult(
            indicator=np.zeros(0), moving=np.zeros(0, dtype=bool), threshold=0.8
        )
        assert movement_fraction(result) == 0.0


class TestEndToEndStopAndGo:
    def test_transient_stops_detected(self, fast_sampler, three_antenna):
        """The Fig. 7 behaviour: stops inside a moving trace are caught."""
        traj = stop_and_go_trajectory(
            (10.0, 8.0), 0.0, 0.6, [1.0, 1.0], [0.8], sampling_rate=200.0
        )
        trace = fast_sampler.sample(traj, three_antenna)
        data = sanitize_trace(trace.data)
        ind = self_trrs_indicator(data[:, 0], lag_samples=20, virtual_window=7)
        result = detect_movement(ind, threshold=0.95, min_run=10)
        truth = traj.speeds() > 0.05
        accuracy = (result.moving == truth).mean()
        assert accuracy > 0.85
