"""Shared experiment scaffolding: the simulated testbed of §6.1.

One floor of a busy office (36.5 m × 28 m, Fig. 10), a single 3-antenna AP
broadcasting at 200 Hz on a 40 MHz channel in the 5 GHz band, and a
scatterer population spread over the floor.  Every experiment builds its
scenario through :func:`make_testbed` so that workloads stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.impairments import ImpairmentConfig
from repro.channel.model import MultipathChannel
from repro.channel.ofdm import SubcarrierGrid, make_grid
from repro.channel.sampler import CsiSampler, ap_antenna_positions
from repro.channel.scatterers import uniform_field
from repro.env.floorplan import Floorplan, office_floorplan


@dataclass
class Testbed:
    """A fully wired simulation scenario.

    Attributes:
        floorplan: The office floor with AP sites.
        channel: The multipath channel.
        sampler: CSI sampler bound to the AP.
        ap_position: The AP location in use.
        rng: The scenario's randomness source.
    """

    floorplan: Floorplan
    channel: MultipathChannel
    sampler: CsiSampler
    ap_position: np.ndarray
    rng: np.random.Generator

    def has_los(self, point) -> bool:
        """Is there a clear line of sight from the AP to a point?"""
        return self.floorplan.has_los(self.ap_position, np.asarray(point))


def make_testbed(
    seed: int = 0,
    ap_site: int = 0,
    n_scatterers: int = 120,
    n_tx: int = 3,
    snr_db: Optional[float] = 25.0,
    packet_loss_rate: float = 0.0,
    with_walls: bool = True,
    los_gain: float = 0.5,
    grid: Optional[SubcarrierGrid] = None,
    impairments: Optional[ImpairmentConfig] = None,
) -> Testbed:
    """Build the standard experimental setup.

    Args:
        seed: Seed for scatterers, impairments, and downstream noise.
        ap_site: AP location id from Fig. 10 (0 = far corner, the default
            used for most experiments).
        n_scatterers: Scatterer population over the floor.
        n_tx: AP antenna count (the paper's AP has 3).
        snr_db: CSI SNR; None disables noise.
        packet_loss_rate: Packet loss probability per NIC.
        with_walls: Include the office walls (False = open space).
        los_gain: Direct-ray amplitude (0 = pure NLOS channels).
        grid: Tone grid override (e.g. ``make_grid().grouped(30)`` for
            Intel-5300-style reporting).
        impairments: Full impairment override; when given, snr_db and
            packet_loss_rate are ignored.

    Returns:
        The wired :class:`Testbed`.
    """
    rng = np.random.default_rng(seed)
    floorplan = office_floorplan()
    if ap_site not in floorplan.ap_sites:
        raise ValueError(f"unknown AP site {ap_site}; have {sorted(floorplan.ap_sites)}")
    ap_position = np.asarray(floorplan.ap_sites[ap_site], dtype=np.float64)

    scatterers = uniform_field(
        floorplan.width, floorplan.height, n_scatterers=n_scatterers, rng=rng
    )
    channel = MultipathChannel(
        scatterers=scatterers,
        grid=grid or make_grid(),
        floorplan=floorplan if with_walls else None,
        los_gain=los_gain,
    )
    if impairments is None:
        impairments = ImpairmentConfig(
            snr_db=snr_db, packet_loss_rate=packet_loss_rate
        )
    sampler = CsiSampler(
        channel=channel,
        tx_positions=ap_antenna_positions(ap_position, n_tx=n_tx),
        impairments=impairments,
        rng=rng,
    )
    return Testbed(
        floorplan=floorplan,
        channel=channel,
        sampler=sampler,
        ap_position=ap_position,
        rng=rng,
    )


# Open areas of the synthetic floor where experiments place devices (middle
# corridor and room centers), mirroring "different locations over the
# floorplan" (§6.1).
MEASUREMENT_SPOTS = (
    (8.0, 14.0),
    (18.0, 14.0),
    (28.0, 14.0),
    (9.0, 7.0),
    (21.0, 7.0),
    (31.0, 6.0),
    (9.0, 22.0),
    (21.0, 22.0),
    (30.0, 22.0),
)
