"""Checkpoint/resume bit-identity: the acceptance test for ISSUE 5 (3).

Replaying a store with a stop/checkpoint/resume at an arbitrary chunk
boundary must yield a ``MotionUpdate`` stream *equal* — not just close —
to the uninterrupted run, under both kernel backends.  Also covers the
satellite fixes: cumulative counter accounting across
``load_state_dict()`` and the coherent ``StreamingRim.reset()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import RimConfig
from repro.core.streaming import StreamingRim
from repro.store import CheckpointedReplayer, TraceReader, write_trace

BACKENDS = ("reference", "batched")
CHUNK = 64


@pytest.fixture(scope="module")
def recorded(tmp_path_factory, line_trace):
    root = tmp_path_factory.mktemp("ckpt") / "store"
    write_trace(root, line_trace, chunk_samples=CHUNK)
    return root


def _config(backend):
    return RimConfig(guard_policy="repair", kernel_backend=backend)


def _replay_full(recorded, config, block_seconds=0.5):
    reader = TraceReader(recorded, policy="repair")
    return CheckpointedReplayer(
        reader, config=config, block_seconds=block_seconds
    ).run()


def _assert_updates_equal(a, b):
    assert len(a) == len(b)
    for u1, u2 in zip(a, b):
        assert np.array_equal(u1.times, u2.times)
        assert np.array_equal(u1.speed, u2.speed, equal_nan=True)
        assert np.array_equal(u1.heading, u2.heading, equal_nan=True)
        assert np.array_equal(u1.moving, u2.moving)
        assert u1.block_distance == u2.block_distance
        assert u1.total_distance == u2.total_distance


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("stop_after", (1, 3, 6))
def test_resume_is_bit_identical(recorded, backend, stop_after, tmp_path):
    """stop at chunk k -> serialize -> new process-equivalent -> resume."""
    config = _config(backend)
    full = _replay_full(recorded, config)

    first = CheckpointedReplayer(
        TraceReader(recorded, policy="repair"), config=config, block_seconds=0.5
    )
    head = first.run(max_chunks=stop_after)
    ckpt = tmp_path / "state.npz"
    first.save(ckpt)

    # A brand-new reader + replayer, as after a restart: only the
    # checkpoint file carries state across.
    second = CheckpointedReplayer.resume(
        TraceReader(recorded, policy="repair"), ckpt,
        config=config, block_seconds=0.5,
    )
    assert second.cursor == first.cursor
    tail = second.run()
    _assert_updates_equal(full, head + tail)


@pytest.mark.parametrize("backend", BACKENDS)
def test_double_checkpoint_round(recorded, backend, tmp_path):
    """Two interruptions compose: stop at 2, then at 5, then run out."""
    config = _config(backend)
    full = _replay_full(recorded, config)
    updates = []
    replayer = CheckpointedReplayer(
        TraceReader(recorded, policy="repair"), config=config, block_seconds=0.5
    )
    for k, boundary in enumerate((2, 3)):
        updates += replayer.run(max_chunks=boundary)
        ckpt = tmp_path / f"state{k}.npz"
        replayer.save(ckpt)
        replayer = CheckpointedReplayer.resume(
            TraceReader(recorded, policy="repair"), ckpt,
            config=config, block_seconds=0.5,
        )
    updates += replayer.run()
    _assert_updates_equal(full, updates)


def test_resume_without_stream_reuse_cache(recorded, tmp_path):
    """A checkpoint from a cache-enabled stream loads into one without."""
    on = _config("batched")
    off = RimConfig(guard_policy="repair", kernel_backend="batched",
                    stream_reuse=False)
    full = _replay_full(recorded, off)
    first = CheckpointedReplayer(
        TraceReader(recorded, policy="repair"), config=on, block_seconds=0.5
    )
    head = first.run(max_chunks=3)
    ckpt = tmp_path / "state.npz"
    first.save(ckpt)
    second = CheckpointedReplayer.resume(
        TraceReader(recorded, policy="repair"), ckpt,
        config=off, block_seconds=0.5,
    )
    tail = second.run()
    # The cache is a pure accelerator, so even a cache-on head + cache-off
    # tail equals the cache-off uninterrupted run bit for bit.
    _assert_updates_equal(full, head + tail)


def test_cumulative_counters_across_resume(recorded, tmp_path):
    """Resumed sessions report stream-lifetime totals, not restart-local ones."""
    config = _config("batched")
    first = CheckpointedReplayer(
        TraceReader(recorded, policy="repair"), config=config, block_seconds=0.5
    )
    first.run(max_chunks=4)
    ckpt = tmp_path / "state.npz"
    first.save(ckpt)
    second = CheckpointedReplayer.resume(
        TraceReader(recorded, policy="repair"), ckpt,
        config=config, block_seconds=0.5,
    )
    assert second.stream.blocks_emitted == first.stream.blocks_emitted
    assert second.stream.samples_emitted == first.stream.samples_emitted
    assert second.stream.pending_samples == first.stream.pending_samples
    before_blocks = second.stream.blocks_emitted
    second.run()
    full = _replay_full(recorded, config)
    full_stream_blocks = len(full)
    assert second.stream.blocks_emitted == full_stream_blocks
    assert second.stream.blocks_emitted > before_blocks
    assert second.stream.samples_emitted == sum(u.times.size for u in full)


def test_checkpoint_version_rejected(recorded, tmp_path):
    from repro.store.checkpoint import load_checkpoint, save_checkpoint

    replayer = CheckpointedReplayer(
        TraceReader(recorded, policy="repair"), config=_config("batched")
    )
    state = replayer.state_dict()
    state["version"] = 99
    path = tmp_path / "bad.npz"
    save_checkpoint(path, state)
    with pytest.raises(ValueError, match="version 99"):
        load_checkpoint(path)


def test_guard_policy_mismatch_rejected(recorded, tmp_path):
    repair = CheckpointedReplayer(
        TraceReader(recorded, policy="repair"),
        config=RimConfig(guard_policy="repair"),
    )
    repair.run(max_chunks=2)
    ckpt = tmp_path / "state.npz"
    repair.save(ckpt)
    with pytest.raises(ValueError, match="policy"):
        CheckpointedReplayer.resume(
            TraceReader(recorded, policy="repair"), ckpt,
            config=RimConfig(guard_policy="drop"),
        )


def test_streaming_reset_clears_everything(line_trace):
    config = RimConfig(guard_policy="repair", kernel_backend="batched")
    stream = StreamingRim(
        line_trace.array, line_trace.sampling_rate, config=config,
        block_seconds=0.5,
    )
    first = []
    for k in range(line_trace.n_samples):
        u = stream.push(line_trace.data[k], float(line_trace.times[k]))
        if u is not None:
            first.append(u)
    tail = stream.flush()
    if tail is not None:
        first.append(tail)
    assert stream.total_distance > 0
    stream.reset()
    assert stream.total_distance == 0.0
    assert stream.buffered_samples == 0
    assert stream.blocks_emitted == 0
    assert stream.samples_emitted == 0
    # A fresh stream and a reset stream produce identical outputs — the
    # perf row cache was cleared coherently, not left pointing at stale
    # global offsets.
    second = []
    for k in range(line_trace.n_samples):
        u = stream.push(line_trace.data[k], float(line_trace.times[k]))
        if u is not None:
            second.append(u)
    tail = stream.flush()
    if tail is not None:
        second.append(tail)
    _assert_updates_equal(first, second)


def test_state_dict_snapshot_is_isolated(line_trace):
    """Mutating the live stream after state_dict() must not corrupt it."""
    config = RimConfig(guard_policy="repair")
    stream = StreamingRim(
        line_trace.array, line_trace.sampling_rate, config=config,
        block_seconds=0.5,
    )
    n = line_trace.n_samples // 2
    for k in range(n):
        stream.push(line_trace.data[k], float(line_trace.times[k]))
    state = stream.state_dict()
    frozen = None if state["packets"] is None else state["packets"].copy()
    for k in range(n, line_trace.n_samples):
        stream.push(line_trace.data[k], float(line_trace.times[k]))
    if frozen is not None:
        assert np.array_equal(state["packets"], frozen)
