"""Unit tests for 2D segment geometry."""

import numpy as np
import pytest

from repro.env.geometry2d import (
    crossing_counts,
    point_segment_distance,
    polyline_length,
    resample_polyline,
    segments_intersect,
)


class TestSegmentsIntersect:
    def test_crossing_segments(self):
        hit = segments_intersect([(0, 0)], [(2, 2)], [(0, 2)], [(2, 0)])
        assert hit.shape == (1, 1)
        assert hit[0, 0]

    def test_parallel_segments_do_not_intersect(self):
        hit = segments_intersect([(0, 0)], [(1, 0)], [(0, 1)], [(1, 1)])
        assert not hit[0, 0]

    def test_collinear_disjoint(self):
        hit = segments_intersect([(0, 0)], [(1, 0)], [(2, 0)], [(3, 0)])
        assert not hit[0, 0]

    def test_touching_endpoints_count(self):
        hit = segments_intersect([(0, 0)], [(1, 1)], [(1, 1)], [(2, 0)])
        assert hit[0, 0]

    def test_near_miss(self):
        hit = segments_intersect([(0, 0)], [(1, 0)], [(0.5, 0.01)], [(0.5, 1)])
        assert not hit[0, 0]

    def test_batched_shapes(self):
        p1 = np.zeros((3, 2))
        p2 = np.ones((3, 2))
        q1 = np.array([[0, 1], [5, 5]], dtype=float)
        q2 = np.array([[1, 0], [6, 6]], dtype=float)
        hit = segments_intersect(p1, p2, q1, q2)
        assert hit.shape == (3, 2)
        assert hit[:, 0].all()
        assert not hit[:, 1].any()

    def test_t_junction(self):
        hit = segments_intersect([(0, -1)], [(0, 1)], [(0, 0)], [(1, 0)])
        assert hit[0, 0]


class TestCrossingCounts:
    def test_no_walls(self):
        counts = crossing_counts([(0, 0)], [(1, 1)], np.zeros((0, 2)), np.zeros((0, 2)))
        np.testing.assert_array_equal(counts, [0])

    def test_single_crossing(self):
        counts = crossing_counts(
            [(0, 0.5)], [(2, 0.5)], [(1, 0)], [(1, 1)]
        )
        np.testing.assert_array_equal(counts, [1])

    def test_two_walls(self):
        counts = crossing_counts(
            [(0, 0.5)], [(3, 0.5)], [(1, 0), (2, 0)], [(1, 1), (2, 1)]
        )
        np.testing.assert_array_equal(counts, [2])

    def test_counts_per_path(self):
        counts = crossing_counts(
            [(0, 0.5), (1.5, 0.5)],
            [(3, 0.5), (1.6, 0.5)],
            [(1, 0), (2, 0)],
            [(1, 1), (2, 1)],
        )
        np.testing.assert_array_equal(counts, [2, 0])


class TestPointSegmentDistance:
    def test_perpendicular_foot_inside(self):
        d = point_segment_distance([(0.5, 1.0)], (0, 0), (1, 0))
        assert d[0] == pytest.approx(1.0)

    def test_clamps_to_endpoint(self):
        d = point_segment_distance([(2.0, 0.0)], (0, 0), (1, 0))
        assert d[0] == pytest.approx(1.0)

    def test_degenerate_segment(self):
        d = point_segment_distance([(3.0, 4.0)], (0, 0), (0, 0))
        assert d[0] == pytest.approx(5.0)

    def test_point_on_segment(self):
        d = point_segment_distance([(0.25, 0.0)], (0, 0), (1, 0))
        assert d[0] == pytest.approx(0.0)


class TestPolyline:
    def test_length_of_square(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0, 0)]
        assert polyline_length(pts) == pytest.approx(4.0)

    def test_length_single_point(self):
        assert polyline_length([(3, 3)]) == 0.0

    def test_resample_spacing(self):
        pts = [(0, 0), (10, 0)]
        out = resample_polyline(pts, 1.0)
        assert out.shape[0] == 11
        np.testing.assert_allclose(np.diff(out[:, 0]), 1.0)

    def test_resample_includes_endpoints(self):
        pts = np.array([(0, 0), (2, 0), (2, 2)], dtype=float)
        out = resample_polyline(pts, 0.5)
        np.testing.assert_allclose(out[0], pts[0])
        np.testing.assert_allclose(out[-1], pts[-1])

    def test_resample_invalid_spacing(self):
        with pytest.raises(ValueError):
            resample_polyline([(0, 0), (1, 0)], 0.0)

    def test_resample_preserves_length(self):
        pts = np.array([(0, 0), (3, 4), (6, 0)], dtype=float)
        out = resample_polyline(pts, 0.1)
        assert polyline_length(out) == pytest.approx(10.0, rel=1e-3)
