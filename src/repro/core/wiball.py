"""WiBall-style speed estimation from self-TRRS decay (§7, [46]).

The paper's future-work section points to WiBall (Zhang et al., 2018) as a
TRRS-based way to estimate distance in *arbitrary* directions without an
antenna pair to retrace: in a rich-scattering field, the self-TRRS of a
single moving antenna decays with spatial displacement following the
time-reversal focusing profile — approximately J₀²(2πd/λ) for isotropic 2D
scattering.  The first local minimum of the measured TRRS-vs-time-lag curve
therefore sits at the lag where the antenna has moved d₀ = x₀·λ/(2π) with
x₀ ≈ 2.405 (the first zero of J₀, hence the first minimum of J₀²), giving

    v = d₀ · f_s / lag_min.

Less accurate than RIM's retracing (decimeter rather than centimeter, as
the paper notes) but requiring only ONE antenna and working for any motion
direction — a useful complement, and the baseline RIM is compared against
in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.alignment import nan_moving_average
from repro.core.trrs import normalize_csi, trrs_series

FIRST_J0_ZERO = 2.4048
"""First positive root of J0 — where J0²(2πd/λ) reaches its first minimum."""

J0_SQ_HALF_DECAY = 1.1262
"""x where J0²(x) = 0.5 — the half-decay point used for speed inversion.

The half-decay crossing is far more robust than the first minimum: the
measured curve sits on a cross-term floor and is smoothed, which shifts and
sometimes erases the minimum, while the 50%-drop crossing survives both
(the floor is estimated from the curve tail and divided out)."""

DECAY_CALIBRATION = 1.28
"""Empirical broadening factor of the measured half-decay, fitted once on
known-speed traces of the synthetic testbed (see speed_from_decay)."""


@dataclass
class WiballEstimate:
    """Speed/distance estimate from self-TRRS decay.

    Attributes:
        times: (N,) window-center timestamps, seconds.
        speeds: (N,) speed estimates, m/s (NaN when no minimum found).
        distance: Total distance integrated over the trace, meters.
    """

    times: np.ndarray
    speeds: np.ndarray
    distance: float


def decay_curve(
    csi_antenna: np.ndarray,
    max_lag: int,
    start: int,
    stop: int,
) -> np.ndarray:
    """Mean self-TRRS versus time lag over a sample window.

    Args:
        csi_antenna: (T, n_tx, S) normalized CFR sequence of one antenna.
        max_lag: Largest lag evaluated, samples.
        start, stop: Window of reference samples.

    Returns:
        (max_lag + 1,) mean TRRS per lag (lag 0 first).
    """
    window = csi_antenna[max(0, start - max_lag) : stop]
    offset = min(start, max_lag)
    out = np.full(max_lag + 1, np.nan)
    for lag in range(0, max_lag + 1):
        series = trrs_series(window, window, lag)
        segment = series[offset : offset + (stop - start)]
        finite = segment[np.isfinite(segment)]
        if finite.size:
            out[lag] = float(finite.mean())
    return out


def speed_from_decay(
    curve: np.ndarray,
    sampling_rate: float,
    wavelength: float,
    smoothing: int = 5,
    calibration: float = DECAY_CALIBRATION,
) -> float:
    """Invert a self-TRRS decay curve into a speed estimate.

    Locates the half-decay crossing of the (smoothed, floor-corrected)
    curve and maps it to the J₀² half-decay displacement.  ``calibration``
    scales the result: the measured decay is broadened by cross-path terms
    and window averaging, so — like the original WiBall system, which fits
    its decay model empirically — a one-time constant is calibrated against
    known-speed traces (1.0 disables it).

    Returns:
        Speed in m/s, or NaN when the curve shows no usable decay (the
        device moved too slowly for the lag window, or not at all).
    """
    curve = np.asarray(curve, dtype=np.float64)
    if smoothing > 1:
        curve = nan_moving_average(curve[:, None], smoothing)[:, 0]
    finite = np.isfinite(curve)
    if finite.sum() < 5 or not np.isfinite(curve[0]):
        return float("nan")
    # Estimate the incoherent floor from the curve tail, then locate the
    # first crossing of the half-decay level above it.
    tail = curve[curve.size // 2 :]
    tail = tail[np.isfinite(tail)]
    floor = float(np.median(tail)) if tail.size else 0.0
    peak = float(curve[0])
    if peak - floor < 0.05:
        return float("nan")  # no decay: the antenna is not really moving
    level = floor + 0.5 * (peak - floor)
    below = np.nonzero(np.isfinite(curve) & (curve < level))[0]
    below = below[below > 0]
    if below.size == 0:
        return float("nan")
    k = int(below[0])
    # Fractional crossing between k-1 and k.
    prev = curve[k - 1] if np.isfinite(curve[k - 1]) else peak
    frac = (prev - level) / max(1e-12, prev - curve[k])
    lag_cross = (k - 1) + float(np.clip(frac, 0.0, 1.0))
    if lag_cross <= 0:
        return float("nan")
    d_half = J0_SQ_HALF_DECAY * wavelength / (2.0 * np.pi)
    return calibration * d_half * sampling_rate / lag_cross


class WiballSpeedEstimator:
    """Windowed single-antenna speed/distance estimator."""

    def __init__(
        self,
        wavelength: float,
        window_seconds: float = 0.5,
        max_lag_seconds: float = 0.3,
        smoothing: int = 5,
        calibration: float = DECAY_CALIBRATION,
    ):
        self.wavelength = wavelength
        self.window_seconds = window_seconds
        self.max_lag_seconds = max_lag_seconds
        self.smoothing = smoothing
        self.calibration = calibration

    def estimate(
        self,
        csi_antenna: np.ndarray,
        sampling_rate: float,
        moving: Optional[np.ndarray] = None,
    ) -> WiballEstimate:
        """Estimate speed over sliding windows and integrate distance.

        Args:
            csi_antenna: (T, n_tx, S) sanitized CFR sequence (one antenna).
            sampling_rate: Packet rate, Hz.
            moving: Optional movement mask; distance integrates only over
                moving windows.

        Returns:
            The :class:`WiballEstimate`.
        """
        t = csi_antenna.shape[0]
        norm = normalize_csi(csi_antenna)
        win = max(8, int(round(self.window_seconds * sampling_rate)))
        max_lag = max(4, int(round(self.max_lag_seconds * sampling_rate)))

        centers = []
        speeds = []
        for start in range(0, t - win + 1, win // 2):
            stop = start + win
            curve = decay_curve(norm, max_lag, start, stop)
            v = speed_from_decay(
                curve,
                sampling_rate,
                self.wavelength,
                self.smoothing,
                calibration=self.calibration,
            )
            if moving is not None:
                if not moving[start:stop].any():
                    v = 0.0
            centers.append((start + stop) / 2.0 / sampling_rate)
            speeds.append(v)

        centers_arr = np.asarray(centers)
        speeds_arr = np.asarray(speeds)
        valid = np.isfinite(speeds_arr)
        if valid.any():
            step = win / 2.0 / sampling_rate
            distance = float(np.nansum(np.where(valid, speeds_arr, 0.0)) * step)
        else:
            distance = 0.0
        return WiballEstimate(
            times=centers_arr, speeds=speeds_arr, distance=distance
        )
