"""Setup shim enabling legacy editable installs on offline machines.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 660 editable installs are unavailable;
``pip install -e . --no-build-isolation`` falls back to this shim.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
