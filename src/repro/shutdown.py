"""Cooperative SIGINT/SIGTERM handling for long-running CLI verbs.

The long-runners (``serve-sim``, ``record``, ``replay``, ``net-serve``,
``net-load``) hold state that must not be torn mid-operation: sessions
with queued packets, a :class:`~repro.store.writer.TraceWriter` holding a
partial chunk, live network connections.  :class:`GracefulShutdown`
converts the first SIGINT/SIGTERM into a flag the work loops poll
(``should_stop``), so each verb drains its sessions, flushes its writer,
and prints the final health/metrics table instead of dying mid-chunk.
A second signal restores the previous handlers and raises
``KeyboardInterrupt`` — the escape hatch when draining itself hangs.

Usage::

    with GracefulShutdown() as stop:
        while not stop.should_stop():
            ...
    if stop.triggered:
        print("interrupted: drained and flushed before exit")

Only the main thread can install signal handlers; constructed anywhere
else (e.g. inside a worker or a test harness thread) the context manager
degrades to an inert flag that can still be set programmatically with
:meth:`request_stop`.
"""

from __future__ import annotations

import logging
import signal
import threading
from typing import Callable, Dict, Optional

logger = logging.getLogger(__name__)

_HANDLED = (signal.SIGINT, signal.SIGTERM)


class GracefulShutdown:
    """Flag-based shutdown: first signal asks, second signal insists."""

    def __init__(self) -> None:
        self._stop = threading.Event()
        self._previous: Dict[int, object] = {}
        self._installed = False
        self.signal_name: Optional[str] = None

    # -- the polling surface -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once a shutdown signal has been received (or requested)."""
        return self._stop.is_set()

    def should_stop(self) -> bool:
        """Poll hook for work loops (also handed to library code)."""
        return self._stop.is_set()

    def request_stop(self) -> None:
        """Programmatic trigger (tests, or an internal stop condition)."""
        self._stop.set()

    def stopper(self) -> Callable[[], bool]:
        """A bare ``should_stop`` callable, safe to pass across layers."""
        return self.should_stop

    # -- signal plumbing -----------------------------------------------------

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            for sig in _HANDLED:
                self._previous[sig] = signal.getsignal(sig)
                signal.signal(sig, self._handle)
            self._installed = True
        return self

    def __exit__(self, *exc) -> None:
        if self._installed:
            for sig, previous in self._previous.items():
                signal.signal(sig, previous)  # type: ignore[arg-type]
            self._previous.clear()
            self._installed = False
        if self.triggered:
            # Deferred import: shutdown must stay importable even if the
            # obs stack is being torn down or was never set up.
            from repro.obs.flight import FLIGHT

            FLIGHT.record(
                "shutdown", "shutdown",
                signal=self.signal_name or "requested", drained=True,
            )
            FLIGHT.auto_dump("graceful-shutdown")

    def _handle(self, signum, _frame) -> None:
        if self._stop.is_set():
            # Second signal: give up on draining, restore and re-raise.
            for sig, previous in self._previous.items():
                signal.signal(sig, previous)  # type: ignore[arg-type]
            self._installed = False
            raise KeyboardInterrupt
        self.signal_name = signal.Signals(signum).name
        logger.warning(
            "%s received: finishing the current step, draining, and "
            "flushing (send again to abort hard)",
            self.signal_name,
        )
        self._stop.set()
        from repro.obs.flight import FLIGHT

        FLIGHT.record(
            "shutdown_signal", "shutdown", signal=self.signal_name,
        )
