"""Small helpers shared by ablation runners."""

from __future__ import annotations

import numpy as np


def magnitude_normalize(data: np.ndarray) -> np.ndarray:
    """Strip phase and unit-normalize — the 'magnitude-only' ablation.

    Returns a tensor shaped like the input whose vectors are |H| / ‖|H|‖
    (real, cast to complex so it can flow through the TRRS kernels).
    """
    mag = np.abs(np.asarray(data))
    power = np.sqrt((mag**2).sum(axis=-1, keepdims=True))
    with np.errstate(divide="ignore", invalid="ignore"):
        out = mag / power
    out = np.where(power > 0, out, np.nan)
    return out.astype(np.complex64)
