"""Simulated multi-receiver replay: the ``repro.cli serve-sim`` verb.

Builds N simulated receivers walking different lines through the standard
office testbed, replays them **concurrently** through one
:class:`~repro.serve.session.SessionManager` (each receiver driven by a
worker thread, exercising the bounded queues and backpressure policy for
real), and aggregates throughput and health into one table — the
smoke-test story for the serving layer, and what CI's concurrency-soak
job runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.arrays.geometry import linear_array
from repro.channel.sampler import CsiTrace
from repro.core.config import RimConfig
from repro.serve.session import ServeConfig, SessionManager
from repro.store.format import MANIFEST_NAME, StoreError
from repro.store.reader import TraceReader


def simulated_receivers(
    n_sessions: int,
    seed: int = 0,
    duration_s: float = 2.0,
    speed: float = 0.5,
) -> List[Tuple[str, CsiTrace]]:
    """Sample N receiver traces walking different lines over the floor.

    Receivers share one testbed (channel, AP, impairment statistics) but
    start from different measurement spots with different headings, so the
    sessions are genuinely independent workloads.
    """
    from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
    from repro.motionsim.profiles import line_trajectory

    if n_sessions < 1:
        raise ValueError("n_sessions must be >= 1")
    bed = make_testbed(seed=seed)
    array = linear_array(3)
    receivers = []
    for k in range(n_sessions):
        spot = MEASUREMENT_SPOTS[k % len(MEASUREMENT_SPOTS)]
        heading_deg = (360.0 * k) / n_sessions
        truth = line_trajectory(spot, heading_deg, speed, duration_s)
        trace = bed.sampler.sample(truth, array)
        receivers.append((f"rx{k:02d}", trace))
    return receivers


def store_receivers(
    store_dir, policy: str = "repair"
) -> List[Tuple[str, CsiTrace]]:
    """Load recorded receivers from a directory of chunked trace stores.

    Accepts either one store (``store_dir`` itself holds a manifest) or a
    fleet directory whose sub-directories are stores — the layout
    ``SessionManager(record_dir=...)`` records.  Session names are the
    store directory names.

    Args:
        store_dir: Store or fleet directory.
        policy: Store read policy (corrupt chunks NaN-filled by default).
    """
    root = Path(store_dir)
    if (root / MANIFEST_NAME).is_file():
        stores = [root]
    else:
        stores = sorted(
            p for p in root.iterdir()
            if p.is_dir() and (p / MANIFEST_NAME).is_file()
        )
    if not stores:
        raise StoreError(f"{root} holds no trace stores (no {MANIFEST_NAME})")
    receivers = []
    for store in stores:
        with TraceReader(store, policy=policy) as reader:
            receivers.append((store.name, reader.read_trace()))
    return receivers


def _replay_into_manager(
    manager: SessionManager,
    name: str,
    trace: CsiTrace,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Dict[str, Any]:
    """Push one receiver's packets through its managed session."""
    statuses: Dict[str, int] = {}
    t0 = time.perf_counter()
    for k in range(trace.n_samples):
        if should_stop is not None and should_stop():
            break
        status = manager.push(name, trace.data[k], float(trace.times[k]))
        statuses[status] = statuses.get(status, 0) + 1
    updates = manager.poll(name)
    wall = time.perf_counter() - t0
    return {
        "session": name,
        "n_samples": trace.n_samples,
        "n_updates": len(updates),
        "statuses": statuses,
        "wall_s": wall,
    }


def run_serve_sim(
    n_sessions: int = 8,
    n_workers: int = 4,
    seed: int = 0,
    duration_s: float = 2.0,
    backpressure: str = "block",
    queue_capacity: int = 256,
    block_seconds: float = 1.0,
    rim_config: Optional[RimConfig] = None,
    receivers: Optional[Sequence[Tuple[str, CsiTrace]]] = None,
    store_dir=None,
    record_dir=None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Dict[str, Any]:
    """Replay N simulated receivers concurrently through a SessionManager.

    Args:
        n_sessions: Number of simulated receivers.
        n_workers: Worker threads driving the sessions.
        seed: Testbed seed.
        duration_s: Per-receiver trajectory duration, seconds.
        backpressure: Full-queue policy for every session.
        queue_capacity: Per-session ingest queue bound.
        block_seconds: Streaming emission cadence.
        rim_config: Estimator config override.
        receivers: Pre-sampled ``(name, trace)`` receivers (skips the
            testbed simulation — used by tests and the perf harness).
        store_dir: Replay recorded receivers from this store / fleet
            directory (see :func:`store_receivers`) instead of
            simulating; overrides ``n_sessions``/``seed``/``duration_s``.
        record_dir: Record every session's ingest into chunked stores
            under this directory (``record_dir/<session>``).
        should_stop: Polled between packets by every replay worker;
            returning True stops the replays early — queued packets are
            still drained and sessions flushed (graceful shutdown).

    Returns:
        A dict with ``sessions`` (per-session serving stats + replay
        wall), ``aggregate`` (wall, sessions/sec, samples/sec, shed /
        reject / degraded totals), and the run's configuration.
    """
    if receivers is None:
        if store_dir is not None:
            receivers = store_receivers(store_dir)
        else:
            receivers = simulated_receivers(
                n_sessions, seed=seed, duration_s=duration_s
            )
    n_sessions = len(receivers)
    serve_config = ServeConfig(
        queue_capacity=queue_capacity,
        backpressure=backpressure,
        block_seconds=block_seconds,
    )
    manager = SessionManager(
        rim_config=rim_config, serve_config=serve_config, record_dir=record_dir
    )

    was_enabled = obs.enabled()
    obs.enable()
    try:
        for name, trace in receivers:
            manager.create(name, trace.array, trace.sampling_rate,
                           carrier_wavelength=trace.carrier_wavelength)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=max(1, n_workers)) as pool:
            replays = list(
                pool.map(
                    lambda rx: _replay_into_manager(
                        manager, rx[0], rx[1], should_stop=should_stop
                    ),
                    receivers,
                )
            )
        manager.flush_all()
        wall = time.perf_counter() - t0
    finally:
        if not was_enabled:
            obs.disable()

    session_stats = manager.stats()
    by_name = {r["session"]: r for r in replays}
    for row in session_stats:
        replay = by_name.get(str(row["session"]), {})
        row["n_updates"] = replay.get("n_updates", 0)
        row["replay_wall_s"] = replay.get("wall_s", 0.0)

    total_samples = sum(trace.n_samples for _, trace in receivers)
    aggregate = {
        "n_sessions": n_sessions,
        "n_workers": n_workers,
        "wall_s": wall,
        "sessions_per_second": n_sessions / wall if wall > 0 else 0.0,
        "samples_per_second": total_samples / wall if wall > 0 else 0.0,
        "total_samples": total_samples,
        "total_distance_m": float(
            sum(float(row["distance_m"]) for row in session_stats)
        ),
        "shed": sum(int(row["shed"]) for row in session_stats),
        "rejected": sum(int(row["rejected"]) for row in session_stats),
        "blocked": sum(int(row["blocked"]) for row in session_stats),
        "degraded_blocks": sum(
            int(row["degraded_blocks"]) for row in session_stats
        ),
    }
    return {
        "config": {
            "backpressure": backpressure,
            "queue_capacity": queue_capacity,
            "block_seconds": block_seconds,
            "duration_s": duration_s,
            "seed": seed,
        },
        "sessions": session_stats,
        "aggregate": aggregate,
    }


def render_serve_table(result: Dict[str, Any]) -> str:
    """Human-readable per-session health + aggregate throughput table."""
    rows = result["sessions"]
    agg = result["aggregate"]
    header = (
        f"{'session':<8} {'samples':>8} {'blocks':>7} {'dist m':>8} "
        f"{'queued':>7} {'blocked':>8} {'shed':>6} {'reject':>7} {'degr':>5}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row['session']):<8} {int(row['processed']):>8} "
            f"{int(row['updates']):>7} {float(row['distance_m']):>8.3f} "
            f"{int(row['queued']):>7} {int(row['blocked']):>8} "
            f"{int(row['shed']):>6} {int(row['rejected']):>7} "
            f"{int(row['degraded_blocks']):>5}"
        )
    lines += [
        "-" * len(header),
        f"{agg['n_sessions']} sessions over {agg['n_workers']} workers: "
        f"{agg['wall_s'] * 1e3:.1f} ms wall "
        f"({agg['sessions_per_second']:.2f} sessions/s, "
        f"{agg['samples_per_second']:.0f} samples/s aggregate)",
        f"policy {result['config']['backpressure']!r} "
        f"(capacity {result['config']['queue_capacity']}): "
        f"{agg['blocked']} blocked, {agg['shed']} shed, "
        f"{agg['rejected']} rejected, {agg['degraded_blocks']} degraded blocks",
    ]
    return "\n".join(lines)
