"""Finer-than-grid heading estimation (§7, "Angle resolution").

RIM's base design resolves only the discrete directions defined by the
antenna pairs (30° for the hexagonal array).  The paper's future-work
section observes that "the TRRS decreases differently with respect to
different deviation angles", suggesting finer directions can be recovered
"by leveraging the geometric relationship of adjacent antenna pairs".

This module implements that idea: when the true heading falls between two
resolvable directions, *both* neighboring pair groups show (deviated)
alignment peaks, with strengths that decrease with their respective
deviation angles.  Interpolating the two strengths across the 30° sector
recovers the heading at a few degrees of resolution.

The interpolation model: near alignment the TRRS peak strength follows the
spatial decay profile ρ(Δd·sin α) — locally well-approximated by a
quadratic in α — so the heading inside the sector between axes a₁ (quality
q₁) and a₂ (quality q₂) is placed at the quality-weighted barycenter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pairs import GroupTrack


def _angle_diff(a, b):
    d = a - b
    return np.arctan2(np.sin(d), np.cos(d))


def refine_headings(
    tracks: Sequence[GroupTrack],
    choice: np.ndarray,
    base_heading: np.ndarray,
    max_sector: float = np.deg2rad(40.0),
    floor: float = 0.0,
) -> np.ndarray:
    """Interpolate headings between adjacent resolvable directions.

    Args:
        tracks: The tracked pair groups (with per-sample qualities).
        choice: (T,) selected group index per sample (-1 = none).
        base_heading: (T,) grid headings from the selected group/lag sign.
        max_sector: Neighbor axes farther than this from the base heading
            are ignored (only the two flanking directions matter).
        floor: Quality floor subtracted before weighting (clutter level).

    Returns:
        (T,) refined headings; samples without a usable neighbor keep the
        grid heading.
    """
    choice = np.asarray(choice)
    base_heading = np.asarray(base_heading, dtype=np.float64)
    t = base_heading.size
    refined = base_heading.copy()
    if not tracks:
        return refined

    qualities = np.stack(
        [np.nan_to_num(trk.quality, nan=0.0) for trk in tracks], axis=0
    )
    lag_signs = np.stack(
        [np.where(trk.path.refined_lags >= 0, 1, -1) for trk in tracks], axis=0
    )
    axes = np.array([trk.axis_angle for trk in tracks])

    # Refine per *run* of constant grid heading rather than per sample: the
    # per-sample qualities jitter, but the deviation angle is a property of
    # the whole straight segment, so run-level medians are far steadier.
    for start, stop in _heading_runs(choice, base_heading):
        g = int(choice[start])
        own = float(base_heading[start])
        own_quality = max(0.0, float(np.median(qualities[g, start:stop])) - floor)
        if own_quality <= 0.0:
            continue

        best_neighbor = None
        best_gap = np.inf
        neighbor_quality = 0.0
        for j in range(len(tracks)):
            if j == g:
                continue
            sign = int(np.sign(np.median(lag_signs[j, start:stop])) or 1)
            direction = axes[j] if sign > 0 else axes[j] + np.pi
            gap = float(_angle_diff(direction, own))
            if abs(gap) < 1e-6 or abs(gap) > max_sector:
                continue
            q = max(0.0, float(np.median(qualities[j, start:stop])) - floor)
            if q <= 0.0:
                continue
            if abs(gap) < best_gap or (
                np.isclose(abs(gap), best_gap) and q > neighbor_quality
            ):
                best_neighbor = gap
                best_gap = abs(gap)
                neighbor_quality = q

        if best_neighbor is None:
            continue
        # Quality-weighted barycenter inside the sector: equals the grid
        # direction when the neighbor is silent, the sector midpoint when
        # the two strengths tie.
        weight = neighbor_quality / (own_quality + neighbor_quality)
        refined[start:stop] = own + weight * best_neighbor
    return refined


def _heading_runs(choice: np.ndarray, base_heading: np.ndarray):
    """Yield (start, stop) runs of constant (group, grid heading)."""
    t = choice.size
    k = 0
    while k < t:
        if choice[k] < 0 or not np.isfinite(base_heading[k]):
            k += 1
            continue
        start = k
        while (
            k < t
            and choice[k] == choice[start]
            and np.isfinite(base_heading[k])
            and np.isclose(base_heading[k], base_heading[start])
        ):
            k += 1
        yield start, k
