"""``repro.bench`` — config-driven experiment-matrix benchmarking.

The subsystem turns a declarative matrix spec (TOML/JSON) into a
deterministic run table with fitted capacity models:

* :mod:`repro.bench.spec` — spec parsing/validation, matrix expansion,
  cell filters;
* :mod:`repro.bench.runner` — the executor driving the existing
  ``serve``/``shard``/``net`` entry points per cell with warmup,
  cooldown, and fixed seeds;
* :mod:`repro.bench.aggregate` — repetition stats, histogram merging,
  the deterministic table digest, table validation and comparison;
* :mod:`repro.bench.capacity` — least-squares sessions/sec vs shards
  with knee detection;
* :mod:`repro.bench.render` — Markdown/CSV tables;
* :mod:`repro.bench.gates` — the uniform gate-failure format and the
  reference-cell gate against ``BENCH_perf.json``.

See ``docs/benchmarking.md`` for the spec reference and CLI examples.
"""

from repro.bench.aggregate import (
    TABLE_SCHEMA,
    build_row,
    compare_tables,
    merge_histograms,
    percentile_from_snapshot,
    summarize,
    table_digest,
    validate_run_table,
)
from repro.bench.capacity import capacity_models, fit_capacity, fit_linear
from repro.bench.gates import format_gate_failure, gate_reference_cell
from repro.bench.render import (
    render_bench_csv,
    render_bench_table,
    render_capacity_table,
)
from repro.bench.runner import run_cell, run_matrix
from repro.bench.spec import (
    AXES,
    AXIS_DEFAULTS,
    BenchError,
    Cell,
    MatrixSpec,
    cell_seed,
    expand_matrix,
    load_spec,
    match_cell,
    parse_filters,
)

__all__ = [
    "AXES",
    "AXIS_DEFAULTS",
    "BenchError",
    "Cell",
    "MatrixSpec",
    "TABLE_SCHEMA",
    "build_row",
    "capacity_models",
    "cell_seed",
    "compare_tables",
    "expand_matrix",
    "fit_capacity",
    "fit_linear",
    "format_gate_failure",
    "gate_reference_cell",
    "load_spec",
    "match_cell",
    "merge_histograms",
    "parse_filters",
    "percentile_from_snapshot",
    "render_bench_csv",
    "render_bench_table",
    "render_capacity_table",
    "run_cell",
    "run_matrix",
    "summarize",
    "table_digest",
    "validate_run_table",
]
