"""Bench: Fig. 16 — impact of the CSI sampling rate."""

from repro.eval.experiments import run_fig16_sampling_rate
from repro.eval.report import print_report


def test_fig16_sampling_rate(benchmark, quick):
    result = benchmark.pedantic(
        run_fig16_sampling_rate, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 16 — impact of sampling rate", result)
    m = result["measured"]
    medians = m["median_error_cm_by_rate"]
    rates = sorted(medians)
    # Shape: the slowest rate is clearly worse than the fastest at 1 m/s.
    assert medians[rates[0]] > medians[rates[-1]]
