"""Tests for trace persistence (repro.io) and the CLI (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_trace, save_trace
from repro.motionsim.profiles import line_trajectory


class TestTraceIO:
    def test_roundtrip(self, tmp_path, fast_sampler, three_antenna):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 0.5)
        trace = fast_sampler.sample(traj, three_antenna)
        path = tmp_path / "trace.npz"
        save_trace(path, trace)
        loaded = load_trace(path)

        np.testing.assert_array_equal(loaded.data, trace.data)
        np.testing.assert_array_equal(loaded.times, trace.times)
        np.testing.assert_array_equal(
            loaded.array.local_positions, trace.array.local_positions
        )
        assert loaded.array.name == trace.array.name
        assert loaded.carrier_wavelength == pytest.approx(trace.carrier_wavelength)
        np.testing.assert_array_equal(
            loaded.trajectory.positions, trace.trajectory.positions
        )

    def test_loaded_trace_processes_identically(
        self, tmp_path, fast_sampler, three_antenna
    ):
        from repro.core.config import RimConfig
        from repro.core.rim import Rim

        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.0)
        trace = fast_sampler.sample(traj, three_antenna)
        path = tmp_path / "trace.npz"
        save_trace(path, trace)
        loaded = load_trace(path)

        rim = Rim(RimConfig(max_lag=40))
        a = rim.process(trace)
        b = rim.process(loaded)
        assert a.total_distance == pytest.approx(b.total_distance, rel=1e-9)

    def test_bad_version_rejected(self, tmp_path, fast_sampler, three_antenna):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 0.2)
        trace = fast_sampler.sample(traj, three_antenna)
        path = tmp_path / "trace.npz"
        save_trace(path, trace)
        with np.load(path) as archive:
            contents = {k: archive[k] for k in archive.files}
        contents["format_version"] = np.int64(99)
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_hexagonal_roundtrip_keeps_circular(self, tmp_path, fast_sampler, hexagon):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 0.2)
        trace = fast_sampler.sample(traj, hexagon)
        path = tmp_path / "hex.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded.array.circular
        assert loaded.array.n_nics == 2

    def test_nan_rows_survive_roundtrip(self, tmp_path, fast_sampler, three_antenna):
        """Lost-packet NaN rows must persist bit-exactly through .npz."""
        from dataclasses import replace

        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 0.5)
        trace = fast_sampler.sample(traj, three_antenna)
        data = trace.data.copy()
        data[3:7] = np.nan  # a whole lost burst
        data[10, 1] = np.nan  # one dead-chain row
        trace = replace(trace, data=data)
        path = tmp_path / "lossy.npz"
        save_trace(path, trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(
            np.isnan(loaded.data.real), np.isnan(trace.data.real)
        )
        finite = np.isfinite(trace.data.real)
        np.testing.assert_array_equal(loaded.data[finite], trace.data[finite])
        assert loaded.data.dtype == trace.data.dtype

    def test_faulted_trace_roundtrip_processes(
        self, tmp_path, fast_sampler, three_antenna
    ):
        from repro import FaultPlan, Rim, RimConfig

        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.0)
        trace = fast_sampler.sample(traj, three_antenna)
        faulted = FaultPlan(seed=3, loss_rate=0.1, loss_burst=6).apply(trace)
        path = tmp_path / "faulted.npz"
        save_trace(path, faulted)
        loaded = load_trace(path)
        rim = Rim(RimConfig(max_lag=40))
        a = rim.process(faulted)
        b = rim.process(loaded)
        assert a.total_distance == pytest.approx(b.total_distance, rel=1e-9)
        assert b.health is not None


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "ablation-metric" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo_fault_plan_flag(self):
        args = build_parser().parse_args(
            ["demo", "--fault-plan", "dead_chain=1,loss=0.1"]
        )
        assert args.fault_plan == "dead_chain=1,loss=0.1"

    def test_run_parser_flags(self):
        args = build_parser().parse_args(["run", "fig11", "--full", "--seed", "3"])
        assert args.experiment == "fig11"
        assert args.full
        assert args.seed == 3

    @pytest.mark.slow
    def test_run_fig8_quick(self, capsys):
        assert main(["run", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "sign_flip_detected" in out
