"""Bench: §6.2.9 — system complexity / real-time throughput."""

from repro.eval.applications import run_sec629_complexity
from repro.eval.report import print_report


def test_sec629_complexity(benchmark, quick):
    result = benchmark.pedantic(
        run_sec629_complexity, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Sec. 6.2.9 — system complexity", result)
    m = result["measured"]
    # Shape: the NumPy pipeline keeps up with the 200 Hz packet rate (the
    # paper's C++ system runs real-time at ~6% CPU).
    assert m["real_time_at_200hz"]
