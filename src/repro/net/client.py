"""Synchronous ingest client: retry, backoff, and seq-ack resume.

:class:`NetClient` streams CSI samples to a :class:`~repro.net.server.NetServer`
and is built for links that fail: every sample is held in a retransmit
buffer until the server's cumulative ACK covers it, and any transport
error — including a mid-stream disconnect injected by a
:class:`~repro.net.faults.NetFaultPlan` — triggers a reconnect loop with
capped exponential backoff plus jitter.  The reconnect HELLO names the
same session and presents the resume token issued in the first WELCOME;
the server's WELCOME carries ``resume_seq`` (its delivered high-water
mark) and the client resends only the buffered samples after it.  Resent
frames pass through the same deterministic fault injector, and the
server suppresses duplicates by seq, so no sample is ever replayed into
the estimator twice.

The update stream is protected the same way in reverse: UPDATE frames
carry a monotonic update seq, the client acknowledges its high-water
mark with UACK frames, and a server resend after reconnect is
deduplicated by seq — updates in flight when the link dies arrive
exactly once anyway.

Backoff schedule: attempt ``k`` sleeps
``min(cap, base * 2**k) * (1 + jitter * u)`` with ``u ~ U[0, 1)`` from a
seeded generator — deterministic in tests, desynchronized in fleets.

The client is synchronous and single-threaded.  The socket stays
*blocking* with ``io_timeout_s`` as a write deadline: a peer that cannot
drain a frame within it is treated as dead and the reconnect path takes
over (``sendall`` on a non-blocking socket would instead surface
transient backpressure as a bogus connection failure).  Reads are
opportunistic — :meth:`send` drains whatever ACK / UPDATE / PING frames
already arrived, polled via :func:`select.select` so an empty receive
buffer never blocks the send path — and :meth:`finish` blocks until the
server answers the BYE (flushing the estimator and returning the final
updates).  Received :class:`~repro.core.streaming.MotionUpdate` frames
accumulate in :attr:`updates`.
"""

from __future__ import annotations

import logging
import select
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.arrays.geometry import AntennaArray
from repro.core.streaming import MotionUpdate
from repro.io import array_to_manifest
from repro.net import framing
from repro.net.faults import NetFaultPlan, WireFaultInjector
from repro.net.framing import FrameDecoder, FrameError

logger = logging.getLogger(__name__)


class NetClientError(ConnectionError):
    """The client gave up: retries exhausted or the server refused us."""


@dataclass
class NetClientConfig:
    """Client-side transport knobs.

    Attributes:
        connect_timeout_s: Per-attempt TCP connect + WELCOME deadline.
        io_timeout_s: Blocking I/O deadline — the per-``sendall`` write
            budget on the connected socket and the read deadline inside
            :meth:`finish`.  A peer that cannot drain a frame within it
            is treated as disconnected.
        max_connect_attempts: Connect attempts per (re)connect burst
            before :class:`NetClientError`.
        backoff_base_s: First retry delay.
        backoff_cap_s: Upper bound on any single retry delay.
        backoff_jitter: Multiplicative jitter fraction on each delay.
        jitter_seed: Seed of the jitter generator (determinism in tests).
    """

    connect_timeout_s: float = 5.0
    io_timeout_s: float = 10.0
    max_connect_attempts: int = 8
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.5
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_connect_attempts < 1:
            raise ValueError("max_connect_attempts must be >= 1")
        if self.backoff_base_s <= 0 or self.backoff_cap_s <= 0:
            raise ValueError("backoff delays must be positive")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")


class NetClient:
    """One session's sending side (see module docstring).

    Args:
        host, port: Server address.
        name: Session name (HELLO identity; reconnects reuse it).
        array: Receive array geometry, shipped in the HELLO manifest.
        sampling_rate: CSI packet rate, Hz.
        sample_shape: Per-sample (n_rx, n_tx, S).
        carrier_wavelength: Carrier wavelength (CsiTrace metadata).
        config: Retry/backoff configuration.
        fault_plan: Optional wire-fault injection between framing and
            the socket (the server under test sees damaged traffic).
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        array: AntennaArray,
        sampling_rate: float,
        sample_shape: Tuple[int, ...],
        carrier_wavelength: float = 0.0516,
        config: Optional[NetClientConfig] = None,
        fault_plan: Optional[NetFaultPlan] = None,
    ):
        self.host = host
        self.port = int(port)
        self.name = name
        self.array = array
        self.sampling_rate = float(sampling_rate)
        self.sample_shape = tuple(int(v) for v in sample_shape)
        self.carrier_wavelength = float(carrier_wavelength)
        self.config = config or NetClientConfig()
        self.injector = WireFaultInjector(fault_plan or NetFaultPlan())
        self._jitter_rng = np.random.default_rng(self.config.jitter_seed)

        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._next_seq = 0
        # Retransmit buffer: encoded DATA payloads not yet covered by ack.
        self._unacked: Dict[int, bytes] = {}
        self.session_id = 0
        self.acked = -1
        self.updates: List[MotionUpdate] = []
        # Updates by their wire seq, so a side-band TELEMETRY breakdown
        # arriving after its UPDATE can still attach to it.
        self._updates_by_seq: Dict[int, MotionUpdate] = {}
        # Update-stream bookkeeping: next expected update seq (resent
        # duplicates below it are dropped) and the last UACK we framed.
        self._update_next = 0
        self._uack_sent = -1
        self._token: Optional[str] = None
        self.finished = False
        self.n_reconnects = 0
        self.n_sent_frames = 0
        self.recovery_times_s: List[float] = []
        self._down_since: Optional[float] = None

    # -- connection management ---------------------------------------------

    def connect(self) -> int:
        """(Re)connect, HELLO, await WELCOME; returns the resume seq.

        Retries with capped exponential backoff + jitter up to
        ``max_connect_attempts`` times, then raises :class:`NetClientError`.
        A server *refusal* (ERROR answer to the HELLO) is not retried —
        it is deterministic — and raises immediately.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.config.max_connect_attempts):
            if attempt > 0:
                time.sleep(self._backoff_delay(attempt - 1))
            try:
                resume_seq = self._connect_once()
            except NetClientError:
                self._teardown_socket()
                raise
            except (OSError, FrameError, TimeoutError) as exc:
                last_error = exc
                logger.warning(
                    "connect attempt %d/%d failed: %s",
                    attempt + 1,
                    self.config.max_connect_attempts,
                    exc,
                )
                self._teardown_socket()
                continue
            if self._down_since is not None:
                recovery = time.perf_counter() - self._down_since
                self.recovery_times_s.append(recovery)
                self._down_since = None
                obs.observe("net.recovery_s", recovery)
            return resume_seq
        raise NetClientError(
            f"could not reach {self.host}:{self.port} after "
            f"{self.config.max_connect_attempts} attempts: {last_error}"
        )

    def _connect_once(self) -> int:
        self._teardown_socket()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.config.connect_timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._decoder = FrameDecoder()
        hello = {
            "name": self.name,
            "sampling_rate": self.sampling_rate,
            "carrier_wavelength": self.carrier_wavelength,
            "sample_shape": list(self.sample_shape),
            "array": array_to_manifest(self.array),
        }
        if self._token is not None:
            hello["token"] = self._token
        sock.sendall(
            framing.pack_frame(
                framing.FRAME_HELLO,
                0,
                0,
                framing.pack_json_payload(hello),
            )
        )
        frame = self._read_frame_blocking(self.config.connect_timeout_s)
        if frame.frame_type == framing.FRAME_ERROR:
            detail = framing.unpack_json_payload(frame.payload, where="ERROR")
            raise NetClientError(f"server refused session: {detail.get('error')}")
        if frame.frame_type != framing.FRAME_WELCOME:
            raise FrameError(f"expected WELCOME, got {frame.type_name}")
        welcome = framing.unpack_json_payload(frame.payload, where="WELCOME")
        self.session_id = int(welcome["session_id"])
        token = welcome.get("token")
        if token is not None:
            self._token = str(token)
        resume_seq = int(welcome["resume_seq"])
        self.acked = max(self.acked, resume_seq)
        self._prune_acked()
        # Refresh the server's view of our update high-water mark: an
        # UACK lost with the old connection would otherwise leave it
        # resending updates we already hold (harmlessly, but forever).
        self._uack_sent = -1
        # Keep the socket *blocking*, with the configured write budget:
        # a full send buffer then waits instead of surfacing spurious
        # BlockingIOError "failures", and a peer stalled past the budget
        # is treated as dead by the reconnect path.
        sock.settimeout(self.config.io_timeout_s)
        return resume_seq

    def _backoff_delay(self, retry_index: int) -> float:
        base = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2.0**retry_index),
        )
        return base * (1.0 + self.config.backoff_jitter * float(self._jitter_rng.uniform()))

    def _teardown_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._teardown_socket()

    # -- sending ------------------------------------------------------------

    def send(self, timestamp: float, packet: np.ndarray) -> int:
        """Buffer and transmit one CSI sample; returns its seq.

        Transparently survives transport failure: on a socket error (or
        an injected disconnect) the client reconnects with backoff and
        resends every buffered sample past the server's resume seq.
        """
        if self.finished:
            raise NetClientError("stream already finished")
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = framing.pack_data_payload(timestamp, packet)
        if obs.enabled():
            # Side-band provenance: stamp creation *now* and ship it ahead
            # of the DATA frame, bypassing the fault injector so telemetry
            # never perturbs the deterministic (seed, seq) fault schedule.
            # Best-effort: a lost stamp only means the server mints its
            # own context at ingest (wire_s collapses to 0).
            self._send_best_effort(
                framing.pack_sample_telemetry(
                    self.session_id, seq, time.perf_counter()
                )
            )
        self._transmit(seq)
        self._drain_incoming()
        return seq

    def _transmit(self, seq: int) -> None:
        frame = framing.pack_frame(
            framing.FRAME_DATA, self.session_id, seq, self._unacked[seq]
        )
        for damaged, delay in self.injector.admit(seq, frame):
            if delay > 0:
                time.sleep(delay)
            self._write_or_reconnect(damaged)
            if self.injector.should_disconnect():
                logger.info("fault plan: forcing mid-stream disconnect")
                obs.add("net.forced_disconnects")
                self._handle_disconnect()

    def _write_or_reconnect(self, data: bytes) -> None:
        while True:
            if self._sock is None:
                self._handle_disconnect()
            try:
                assert self._sock is not None
                self._sock.sendall(data)
                self.n_sent_frames += 1
                return
            except OSError:
                self._handle_disconnect()

    def _handle_disconnect(self) -> None:
        """Reconnect-resume: backoff, HELLO, resend past the resume seq.

        Iterates (never recurses) until one resend pass completes with
        the link still up; each individual (re)connect burst is bounded
        by ``max_connect_attempts``, which caps the loop via the
        :class:`NetClientError` it raises on exhaustion.
        """
        while True:
            if self._down_since is None:
                self._down_since = time.perf_counter()
            self._teardown_socket()
            self.injector.reset_stream()
            self.n_reconnects += 1
            obs.add("net.client_reconnects")
            resume_seq = self.connect()
            if self._resend_unacked(resume_seq):
                return
            # The link died again mid-resume: loop for another pass.

    def _resend_unacked(self, resume_seq: int) -> bool:
        """Resend buffered samples past ``resume_seq``; False if the
        link died underneath the resend (caller reconnects again)."""
        sock = self._sock
        assert sock is not None
        resend = sorted(s for s in self._unacked if s > resume_seq)
        logger.info(
            "resuming session %s after seq %d (%d samples to resend)",
            self.name,
            resume_seq,
            len(resend),
        )
        for seq in resend:
            frame = framing.pack_frame(
                framing.FRAME_DATA, self.session_id, seq, self._unacked[seq]
            )
            for damaged, delay in self.injector.admit(seq, frame):
                if delay > 0:
                    time.sleep(delay)
                try:
                    sock.sendall(damaged)
                    self.n_sent_frames += 1
                except OSError:
                    return False
        for damaged, _delay in self.injector.flush():
            try:
                sock.sendall(damaged)
                self.n_sent_frames += 1
            except OSError:
                return False
        return True

    # -- receiving ----------------------------------------------------------

    def _drain_incoming(self) -> None:
        """Read whatever ACK/UPDATE/PING frames already arrived.

        Readability is polled with a zero-timeout :func:`select.select`,
        so the blocking socket never stalls the send path when the
        receive buffer is empty.
        """
        sock = self._sock
        if sock is None:
            return
        try:
            while select.select([sock], [], [], 0.0)[0]:
                data = sock.recv(1 << 16)
                if not data:
                    raise ConnectionResetError("server closed the connection")
                self._decoder.feed(data)
        except OSError:
            self._handle_disconnect()
            return
        self._process_frames()

    def _read_frame_blocking(self, timeout: float) -> framing.Frame:
        """Read exactly one frame, blocking up to ``timeout`` seconds."""
        assert self._sock is not None
        deadline = time.perf_counter() + timeout
        while True:
            for frame in self._decoder.frames():
                return frame
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise TimeoutError("timed out waiting for a frame")
            self._sock.settimeout(remaining)
            data = self._sock.recv(1 << 16)
            if not data:
                raise ConnectionResetError("server closed the connection")
            self._decoder.feed(data)

    def _process_frames(self) -> Optional[int]:
        """Handle buffered frames; returns a terminal frame type if seen."""
        terminal: Optional[int] = None
        for frame in self._decoder.frames():
            if frame.frame_type == framing.FRAME_ACK:
                self.acked = max(self.acked, frame.seq - 1)
                self._prune_acked()
            elif frame.frame_type == framing.FRAME_UPDATE:
                # Updates carry their own seq; a resend after reconnect
                # duplicates ones we already hold — drop those by seq.
                if frame.seq >= self._update_next:
                    update = framing.decode_update(frame.payload)
                    self.updates.append(update)
                    self._updates_by_seq[frame.seq] = update
                    self._update_next = frame.seq + 1
            elif frame.frame_type == framing.FRAME_TELEMETRY:
                # Server-side latency breakdown for an emitted update.
                # Loss-tolerant side band: malformed or unmatched frames
                # are dropped without touching the data stream.
                try:
                    breakdown = framing.unpack_update_telemetry(frame.payload)
                except FrameError:
                    continue
                update = self._updates_by_seq.get(frame.seq)
                if update is not None:
                    stats = dict(update.stats) if update.stats else {}
                    stats["provenance"] = breakdown
                    update.stats = stats
            elif frame.frame_type == framing.FRAME_PING:
                self.acked = max(self.acked, frame.seq - 1)
                self._prune_acked()
                self._send_best_effort(
                    framing.pack_frame(framing.FRAME_PONG, self.session_id)
                )  # reply lost => server times us out
            elif frame.frame_type == framing.FRAME_BYE:
                terminal = framing.FRAME_BYE
                break
            elif frame.frame_type == framing.FRAME_ERROR:
                detail = framing.unpack_json_payload(frame.payload, where="ERROR")
                raise NetClientError(f"server error: {detail.get('error')}")
        if self._update_next > self._uack_sent:
            # Confirm the update high-water mark so the server can drop
            # its retransmit copies (advisory: a lost UACK only means a
            # dedup'd resend later).
            if self._send_best_effort(
                framing.pack_frame(
                    framing.FRAME_UACK, self.session_id, self._update_next
                )
            ):
                self._uack_sent = self._update_next
        return terminal

    def _send_best_effort(self, data: bytes) -> bool:
        """Write a frame, swallowing transport errors; True on success."""
        if self._sock is None:
            return False
        try:
            self._sock.sendall(data)
            return True
        except OSError:
            return False

    def _prune_acked(self) -> None:
        for seq in [s for s in self._unacked if s <= self.acked]:
            del self._unacked[seq]

    # -- stream end ---------------------------------------------------------

    def finish(self) -> List[MotionUpdate]:
        """Flush faults, send BYE, and block for the final updates + BYE.

        Returns every update received over the stream's lifetime.
        """
        if self.finished:
            return self.updates
        for damaged, _delay in self.injector.flush():
            self._write_or_reconnect(damaged)
        self._write_or_reconnect(
            framing.pack_frame(framing.FRAME_BYE, self.session_id)
        )
        assert self._sock is not None
        deadline = time.perf_counter() + self.config.io_timeout_s
        try:
            while True:
                if self._process_frames() == framing.FRAME_BYE:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TimeoutError("timed out waiting for the final BYE")
                self._sock.settimeout(remaining)
                data = self._sock.recv(1 << 16)
                if not data:
                    break  # server closed right after its BYE
                self._decoder.feed(data)
        finally:
            self.finished = True
            self._teardown_socket()
        return self.updates
