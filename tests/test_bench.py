"""Tests for the experiment-matrix harness (repro.bench).

Locks down the PR-10 acceptance criteria:

* matrix specs validate eagerly (bad axes, values, and knobs fail
  before anything runs) and expand deterministically;
* the aggregation math is correct on known distributions (percentiles,
  mean/stdev/spread, histogram merging);
* the capacity fit recovers synthetic linear data as ``linear`` and
  synthetic kneed data as ``kneed`` with the right knee;
* a run table is **bit-identical** (same digest) when re-run with the
  same seed, and the digest detects tampering;
* the v9 perf payload carries a capacity section, and the new
  capacity/knee/reference-cell gates fire on synthetic regressions
  with the uniform failure format;
* the ``bench`` CLI verb works end-to-end (run/table/compare).
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    BenchError,
    Cell,
    MatrixSpec,
    build_row,
    cell_seed,
    compare_tables,
    expand_matrix,
    fit_capacity,
    fit_linear,
    format_gate_failure,
    gate_reference_cell,
    load_spec,
    match_cell,
    merge_histograms,
    parse_filters,
    percentile_from_snapshot,
    render_bench_csv,
    render_bench_table,
    run_matrix,
    summarize,
    table_digest,
    validate_run_table,
)


def tiny_spec(**overrides) -> MatrixSpec:
    """The smallest useful matrix: 1 serve cell, short workload."""
    kwargs = dict(
        name="tiny",
        axes={"sessions": [2], "kernel": ["reference"]},
        repetitions=2,
        seed=0,
        duration_s=0.5,
        block_seconds=0.25,
        workers=2,
    )
    kwargs.update(overrides)
    return MatrixSpec(**kwargs)


# ---------------------------------------------------------------- spec


def test_spec_rejects_unknown_axis():
    with pytest.raises(BenchError, match="unknown axes"):
        MatrixSpec(name="x", axes={"cores": [1]})


def test_spec_rejects_bad_values():
    with pytest.raises(BenchError, match="sessions"):
        MatrixSpec(name="x", axes={"sessions": [0]})
    with pytest.raises(BenchError, match="dtype"):
        MatrixSpec(name="x", axes={"dtype": ["float16"]})
    with pytest.raises(BenchError, match="backpressure"):
        MatrixSpec(name="x", axes={"backpressure": ["yolo"]})
    with pytest.raises(BenchError, match="duplicate"):
        MatrixSpec(name="x", axes={"shards": [1, 1]})
    with pytest.raises(BenchError, match="repetitions"):
        MatrixSpec(name="x", repetitions=0)


def test_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(BenchError, match="unknown spec keys"):
        MatrixSpec.from_dict({"name": "x", "bogus": 1})
    with pytest.raises(BenchError, match="needs a 'name'"):
        MatrixSpec.from_dict({"axes": {}})


def test_expand_matrix_deterministic_order():
    spec = MatrixSpec(
        name="x", axes={"shards": [1, 2], "kernel": ["reference", "batched"]}
    )
    cells = expand_matrix(spec)
    assert [(c.shards, c.kernel) for c in cells] == [
        (1, "reference"), (1, "batched"), (2, "reference"), (2, "batched"),
    ]
    # unswept axes pin to defaults
    assert all(c.sessions == 4 and c.backpressure == "block" for c in cells)
    assert expand_matrix(spec) == cells


def test_expand_matrix_rejects_fault_plan_on_shards():
    spec = MatrixSpec(
        name="x", axes={"shards": [1], "fault_plan": ["drop=0.1"]}
    )
    with pytest.raises(BenchError, match="wire-fault plan with a shard"):
        expand_matrix(spec)


def test_cell_key_and_seed_stable():
    cell = expand_matrix(MatrixSpec(name="x"))[0]
    assert cell.key == (
        "sessions=4/shards=0/kernel=batched/dtype=float64/"
        "fault_plan=/backpressure=block"
    )
    assert cell_seed(0, cell.key) == cell_seed(0, cell.key)
    assert cell_seed(0, cell.key) != cell_seed(1, cell.key)


def test_filters():
    cells = expand_matrix(
        MatrixSpec(name="x", axes={"shards": [0, 1], "sessions": [2, 4]})
    )
    filters = parse_filters(["shards=1", "cell=sessions=2"])
    picked = [c for c in cells if match_cell(c, filters)]
    assert [(c.sessions, c.shards) for c in picked] == [(2, 1)]
    with pytest.raises(BenchError, match="KEY=VALUE"):
        parse_filters(["shards"])
    with pytest.raises(BenchError, match="filter key"):
        parse_filters(["bogus=1"])


def test_load_spec_json(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({"name": "j", "axes": {"sessions": [2]}}))
    spec = load_spec(path)
    assert spec.name == "j" and spec.axes == {"sessions": [2]}
    with pytest.raises(BenchError, match="not found"):
        load_spec(tmp_path / "missing.json")
    bad = tmp_path / "m.yaml"
    bad.write_text("name: y")
    with pytest.raises(BenchError, match=".toml or .json"):
        load_spec(bad)


def test_load_spec_toml(tmp_path):
    pytest.importorskip("tomllib")  # python >= 3.11 only
    path = tmp_path / "m.toml"
    path.write_text('name = "t"\nrepetitions = 2\n[axes]\nshards = [1, 2]\n')
    spec = load_spec(path)
    assert spec.name == "t" and spec.axes == {"shards": [1, 2]}
    assert spec.repetitions == 2


def test_committed_smoke_matrix_loads():
    pytest.importorskip("tomllib")
    spec = load_spec("benchmarks/matrices/smoke.toml")
    cells = expand_matrix(spec)
    assert len(cells) == 8  # the 2x2x2 CI smoke matrix
    assert spec.seed == 0 and spec.duration_s == 1.0


# ----------------------------------------------------------- aggregate


def test_summarize_known_distribution():
    stats = summarize([2.0, 4.0, 6.0])
    assert stats["mean"] == pytest.approx(4.0)
    assert stats["min"] == 2.0 and stats["max"] == 6.0
    assert stats["stdev"] == pytest.approx(2.0)  # sample stdev
    assert stats["spread_frac"] == pytest.approx(1.0)
    single = summarize([3.0])
    assert single["stdev"] == 0.0 and single["spread_frac"] == 0.0
    with pytest.raises(BenchError):
        summarize([])


def test_percentile_from_snapshot_matches_live_histogram():
    from repro.obs.metrics import Histogram

    hist = Histogram("t", bounds=(0.1, 0.5, 1.0))
    for v in (0.05, 0.2, 0.3, 0.4, 0.7, 0.9, 0.95):
        hist.observe(v)
    snap = hist.snapshot()
    for q in (0.1, 0.5, 0.9, 0.95, 1.0):
        assert percentile_from_snapshot(snap, q) == hist.percentile(q)
    assert percentile_from_snapshot(None, 0.5) is None
    with pytest.raises(BenchError):
        percentile_from_snapshot(snap, 1.5)


def test_merge_histograms():
    a = {"type": "histogram", "bounds": [1.0], "counts": [2, 0],
         "count": 2, "sum": 1.0, "min": 0.3, "max": 0.7}
    b = {"type": "histogram", "bounds": [1.0], "counts": [1, 1],
         "count": 2, "sum": 2.5, "min": 0.5, "max": 2.0}
    merged = merge_histograms([a, None, b])
    assert merged["counts"] == [3, 1] and merged["count"] == 4
    assert merged["sum"] == pytest.approx(3.5)
    assert merged["min"] == 0.3 and merged["max"] == 2.0
    assert merge_histograms([None, None]) is None
    c = dict(a, bounds=[2.0])
    with pytest.raises(BenchError, match="different bounds"):
        merge_histograms([a, c])


def _rep(updates=5, distance=1.25, rate=10.0):
    return {
        "wall_s": 0.5, "n_sessions": 2, "total_samples": 100,
        "sessions_per_second": rate, "samples_per_second": 200.0,
        "n_updates": updates, "total_distance_m": distance,
        "health": {"blocked": 0, "shed": 0, "rejected": 0,
                   "degraded_blocks": 0, "reconnects": 0},
        "latency": None,
    }


def test_build_row_flags_determinism_violation():
    cell = expand_matrix(MatrixSpec(name="x"))[0]
    assert cell.deterministic
    build_row(cell, 7, [_rep(), _rep()])  # identical reps: fine
    with pytest.raises(BenchError, match="diverged"):
        build_row(cell, 7, [_rep(updates=5), _rep(updates=6)])
    with pytest.raises(BenchError, match="diverged"):
        build_row(cell, 7, [_rep(distance=1.25), _rep(distance=1.26)])


def test_table_digest_covers_deterministic_fields_only():
    cell = expand_matrix(MatrixSpec(name="x"))[0]
    row_a = build_row(cell, 7, [_rep(rate=10.0)])
    row_b = build_row(cell, 7, [_rep(rate=99.0)])  # wall-clock noise
    assert table_digest([row_a]) == table_digest([row_b])
    row_c = build_row(cell, 7, [_rep(updates=6)])
    assert table_digest([row_a]) != table_digest([row_c])


# ------------------------------------------------------------ capacity


def test_fit_linear_exact():
    fit = fit_linear([1, 2, 3, 4], [3.0, 5.0, 7.0, 9.0])
    assert fit["slope"] == pytest.approx(2.0)
    assert fit["intercept"] == pytest.approx(1.0)
    assert fit["r2"] == pytest.approx(1.0)
    flat = fit_linear([1, 1], [2.0, 4.0])  # zero x-variance degenerates
    assert flat["slope"] == 0.0 and flat["intercept"] == pytest.approx(3.0)
    constant = fit_linear([1, 2], [5.0, 5.0])
    assert constant["r2"] == 1.0


def test_fit_capacity_linear_stays_linear():
    fit = fit_capacity([1, 2, 3, 4, 5], [2.0, 4.0, 6.0, 8.0, 10.0])
    assert fit["model"] == "linear"
    assert fit["knee"] is None and fit["slope_after"] is None
    assert fit["slope"] == pytest.approx(2.0)


def test_fit_capacity_detects_knee():
    # linear to x=3, flat after: the classic saturation curve
    xs = [1, 2, 3, 4, 5, 6]
    ys = [2.0, 4.0, 6.0, 6.1, 6.15, 6.2]
    fit = fit_capacity(xs, ys)
    assert fit["model"] == "kneed"
    assert fit["knee"] == 3
    assert fit["slope"] == pytest.approx(2.0)
    assert fit["slope_after"] < 0.2


def test_fit_capacity_too_few_points_never_knees():
    fit = fit_capacity([1, 2, 4], [2.0, 3.0, 3.1])  # bends, but n < 4
    assert fit["model"] == "linear"
    with pytest.raises(BenchError, match="strictly increasing"):
        fit_capacity([2, 1], [1.0, 2.0])


# ----------------------------------------------------------- run_matrix


def test_run_matrix_bit_identical_digest():
    spec = tiny_spec()
    p1 = run_matrix(spec)
    p2 = run_matrix(spec)
    validate_run_table(p1)
    assert p1["digest"] == p2["digest"]
    assert p1["n_cells"] == 1 and len(p1["rows"][0]["reps"]) == 2
    row = p1["rows"][0]
    assert row["deterministic"] and row["n_updates"] > 0
    assert row["latency_p95_s"] is not None  # obs histogram captured
    assert row["health"]["shed"] == 0


def test_run_matrix_filters_and_empty():
    spec = tiny_spec(axes={"sessions": [2], "kernel": ["reference", "batched"]})
    payload = run_matrix(spec, filters=parse_filters(["kernel=batched"]))
    assert payload["n_cells"] == 1
    assert payload["rows"][0]["cell"]["kernel"] == "batched"
    with pytest.raises(BenchError, match="zero cells"):
        run_matrix(spec, filters=parse_filters(["kernel=bogus"]))


def test_validate_run_table_rejects_tampering():
    payload = run_matrix(tiny_spec(repetitions=1))
    broken = copy.deepcopy(payload)
    broken["rows"][0]["n_updates"] += 1
    with pytest.raises(BenchError, match="digest"):
        validate_run_table(broken)
    wrong = copy.deepcopy(payload)
    wrong["schema"] = "bogus"
    with pytest.raises(BenchError, match="schema"):
        validate_run_table(wrong)


def test_render_outputs():
    payload = run_matrix(tiny_spec(repetitions=1))
    md = render_bench_table(payload)
    assert payload["digest"] in md and "| cell |" in md
    csv_text = render_bench_csv(payload)
    lines = csv_text.strip().splitlines()
    assert len(lines) == 2  # header + 1 cell
    assert lines[0].startswith("sessions,shards,kernel,")


# ---------------------------------------------------------------- gates


def test_format_gate_failure_uniform():
    text = format_gate_failure("a.b", measured="1.0/s", baseline="2.0/s",
                               budget="-20%", note="why")
    assert text == "[a.b] measured 1.0/s vs baseline 2.0/s (budget -20%) — why"


def test_compare_tables_pass_and_fail():
    old = run_matrix(tiny_spec(repetitions=1))
    assert compare_tables(old, old) == []
    slow = copy.deepcopy(old)
    slow["rows"][0]["sessions_per_second"]["mean"] /= 10.0
    failures = compare_tables(old, slow)
    assert len(failures) == 1
    assert failures[0].startswith("[bench[") and "budget" in failures[0]
    shrunk = copy.deepcopy(old)
    shrunk["rows"] = []
    assert any(".present]" in f for f in compare_tables(old, shrunk))


def _perf_capacity(slope=2.0, knee=None, rate=10.0, p95=0.05):
    return {
        "capacity": {
            "source": "shard_scaling",
            "fit": {"model": "kneed" if knee is not None else "linear",
                    "slope": slope, "intercept": 0.0, "r2": 1.0,
                    "knee": knee, "slope_after": None, "points": []},
            "reference_cell": {
                "key": "x", "sessions": 4, "shards": 1,
                "kernel": "batched", "dtype": "float64",
                "sessions_per_second": rate,
                "block_latency_p50_s": p95 / 2, "block_latency_p95_s": p95,
            },
        }
    }


def test_perf_capacity_gates_fire():
    from repro.eval.perf import check_perf_regression

    baseline = _perf_capacity(slope=2.0)
    # slope regression beyond the budget
    fresh = _perf_capacity(slope=1.0)
    failures = check_perf_regression(fresh, baseline)
    assert any("[capacity.fit.slope]" in f for f in failures)
    # a knee appearing where the baseline scaled linearly
    kneed = _perf_capacity(slope=2.0, knee=2)
    failures = check_perf_regression(kneed, baseline)
    assert any("[capacity.fit.knee]" in f for f in failures)
    # knee moving earlier beyond the budget
    failures = check_perf_regression(
        _perf_capacity(slope=2.0, knee=2), _perf_capacity(slope=2.0, knee=4)
    )
    assert any("[capacity.fit.knee]" in f for f in failures)
    # within-budget knee drift passes
    assert not check_perf_regression(
        _perf_capacity(slope=2.0, knee=4), _perf_capacity(slope=2.0, knee=4)
    )
    # p95 blow-up past budget + slack
    failures = check_perf_regression(
        _perf_capacity(p95=0.5), _perf_capacity(p95=0.05)
    )
    assert any(
        "[capacity.reference_cell.block_latency_p95_s]" in f for f in failures
    )
    # a v8 baseline (no capacity section) skips every capacity gate
    assert not check_perf_regression(_perf_capacity(slope=1.0), {})


def test_gate_reference_cell():
    table = run_matrix(
        tiny_spec(axes={"sessions": [2], "shards": [1]}, repetitions=1)
    )
    row = table["rows"][0]
    rate = row["sessions_per_second"]["mean"]
    perf = {
        "capacity": {
            "reference_cell": {
                "key": row["key"], "sessions": 2, "shards": 1,
                "kernel": "batched", "dtype": "float64",
                "sessions_per_second": rate,
                "block_latency_p95_s": row["latency_p95_s"],
            }
        }
    }
    assert gate_reference_cell(table, perf) == []
    perf["capacity"]["reference_cell"]["sessions_per_second"] = rate * 10
    failures = gate_reference_cell(table, perf)
    assert any(".sessions_per_second]" in f for f in failures)
    perf["capacity"]["reference_cell"]["sessions"] = 99  # no matching row
    failures = gate_reference_cell(table, perf)
    assert any(".present]" in f for f in failures)
    assert gate_reference_cell(table, {}) == []  # pre-v9 baseline: no gate


# ------------------------------------------------------------------ cli


def test_cli_bench_end_to_end(tmp_path, capsys):
    from repro.cli import main

    spec_path = tmp_path / "m.json"
    spec_path.write_text(json.dumps({
        "name": "cli", "axes": {"sessions": [2], "kernel": ["reference"]},
        "repetitions": 1, "seed": 0, "duration_s": 0.5,
        "block_seconds": 0.25, "workers": 2,
    }))
    out = tmp_path / "out"
    rc = main([
        "bench", "run", "--matrix", str(spec_path), "--out", str(out),
    ])
    assert rc == 0
    table_path = out / "run_table.json"
    assert table_path.is_file()
    assert (out / "run_table.md").is_file()
    assert (out / "run_table.csv").is_file()
    payload = json.loads(table_path.read_text())
    validate_run_table(payload)
    capsys.readouterr()

    rc = main(["bench", "table", str(table_path), "--format", "csv"])
    assert rc == 0
    assert capsys.readouterr().out.startswith("sessions,shards,")

    rc = main(["bench", "compare", str(table_path), str(table_path)])
    assert rc == 0
    assert "ok" in capsys.readouterr().out
