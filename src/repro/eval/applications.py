"""Application-study runners (§6.3, Figs. 18-21) and §6.2.9 complexity.

Same contract as :mod:`repro.eval.experiments`: each runner regenerates a
figure's data on the simulated testbed and reports paper-vs-measured.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.arrays.geometry import hexagonal_array, l_shaped_array, linear_array
from repro.apps.gesture import GestureRecognizer
from repro.apps.handwriting import summarize, write_letter
from repro.apps.tracking import track_pure_rim, track_with_imu_fusion
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
from repro.motionsim.gestures import GESTURES, GestureProfile, gesture_trajectory
from repro.motionsim.profiles import polyline_trajectory


def run_fig18_handwriting(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 18: desk handwriting reconstruction.

    Paper: recognizable letters, 2.4 cm mean trajectory error.
    """
    letters = ["R", "I"] if quick else ["R", "I", "M", "U", "S", "W"]
    hexa = hexagonal_array()
    results = []
    for k, letter in enumerate(letters):
        bed = make_testbed(seed=seed + k)
        spot = MEASUREMENT_SPOTS[k % len(MEASUREMENT_SPOTS)]
        results.append(
            write_letter(
                bed.sampler,
                hexa,
                letter,
                origin=spot,
                height=0.2,
                pen_speed=0.25,
            )
        )
    stats = summarize(results)
    return {
        "results": results,
        "measured": {
            "mean_error_cm": 100 * stats["mean"],
            "median_error_cm": 100 * stats["median"],
            "per_letter_cm": {
                letter: 100 * err for letter, err in stats["per_letter_mean"].items()
            },
        },
        "paper": {"mean_error_cm": 2.4},
    }


def run_fig19_gesture(seed: int = 0, quick: bool = False, reps: Optional[int] = None) -> Dict:
    """Fig. 19: gesture detection and recognition.

    Paper: 96.25% average detection over 480 gestures (3 users × 4 gestures
    × 2 hands × 20 reps); all detected gestures classified correctly;
    misses (4.79%) outnumber false triggers (1.04%).
    """
    reps = reps or (2 if quick else 5)
    users = 2 if quick else 3
    recognizer = GestureRecognizer()
    larr = l_shaped_array()
    rim = Rim(RimConfig(max_lag=60))

    total = 0
    detected = 0
    correct = 0
    per_group: Dict[str, Dict[str, float]] = {}
    rng_master = np.random.default_rng(seed)
    for user in range(users):
        for hand in ("L", "R"):
            profile = GestureProfile(
                amplitude=0.3 + 0.08 * user,
                speed=0.5 + 0.1 * user + (0.05 if hand == "R" else 0.0),
            )
            group_total, group_hit = 0, 0
            for gesture in GESTURES:
                for r in range(reps):
                    bed = make_testbed(seed=int(rng_master.integers(1 << 31)))
                    spot = MEASUREMENT_SPOTS[(user + r) % len(MEASUREMENT_SPOTS)]
                    traj = gesture_trajectory(
                        gesture, start=spot, profile=profile, rng=bed.rng
                    )
                    trace = bed.sampler.sample(traj, larr)
                    detections = recognizer.recognize(rim.process(trace))
                    total += 1
                    group_total += 1
                    if detections:
                        detected += 1
                        if detections[0].gesture == gesture:
                            correct += 1
                            group_hit += 1
            per_group[f"U{user + 1}/{hand}"] = {
                "detection_rate": group_hit / max(1, group_total)
            }

    return {
        "measured": {
            "n_tests": total,
            "detection_rate": detected / max(1, total),
            "classification_accuracy": correct / max(1, detected),
            "per_group": per_group,
        },
        "paper": {
            "detection_rate": 0.9625,
            "classification_accuracy": 1.0,
            "n_tests": 480,
        },
    }


def run_fig20_pure_tracking(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 20: floor-scale tracking by RIM alone, with sideway moves.

    Paper: 36 m and 76 m traces tracked without error blow-up; sideway
    segments (heading change without turning) are captured — impossible
    for gyro/magnetometer.
    """
    bed = make_testbed(seed=seed)
    hexa = hexagonal_array()
    # Manhattan-style traces with sideway legs (orientation stays fixed).
    if quick:
        waypoints = [(8.0, 13.0), (14.0, 13.0), (14.0, 16.0), (9.0, 16.0)]
    else:
        waypoints = [
            (6.0, 13.0),
            (18.0, 13.0),
            (18.0, 16.0),
            (30.0, 16.0),
            (30.0, 13.0),
            (22.0, 13.0),
        ]
    traj = polyline_trajectory(np.asarray(waypoints), speed=1.0)
    outcome = track_pure_rim(bed.sampler, hexa, traj, rim=Rim(RimConfig(max_lag=60)))

    return {
        "outcome": outcome,
        "measured": {
            "trace_length_m": traj.total_distance,
            "median_error_m": outcome.summary["median"],
            "p90_error_m": outcome.summary["p90"],
            "final_drift_m": float(
                np.linalg.norm(outcome.estimated[-1] - traj.positions[-1])
            ),
        },
        "paper": {"note": "long traces tracked; no significant accumulation"},
    }


def run_fig21_fusion_tracking(seed: int = 0, quick: bool = False) -> Dict:
    """Fig. 21: RIM distance + gyro heading + floorplan particle filter.

    Paper: the fused track drifts with gyro errors; the particle filter
    gracefully reconstructs the real trajectory.
    """
    bed = make_testbed(seed=seed)
    arr = linear_array(3)
    # The loop stays inside the mid-floor corridor: gyro drift then pushes
    # the dead-reckoned track into the corridor walls, which is exactly the
    # error mode the floorplan particle filter corrects (Fig. 21).
    if quick:
        waypoints = [(8.0, 13.2), (16.0, 13.2), (16.0, 14.8)]
    else:
        waypoints = [
            (6.0, 13.2),
            (20.0, 13.2),
            (20.0, 14.8),
            (32.0, 14.8),
            (32.0, 13.4),
            (24.0, 13.4),
        ]
    traj = polyline_trajectory(np.asarray(waypoints), speed=1.0, face_motion=True)
    # A consumer gyro with visible turn-on bias: exactly the regime of
    # Fig. 21 where the dead-reckoned track drifts and the floorplan PF
    # recovers it.
    from repro.imu.sensors import ImuNoiseModel, ImuSimulator

    drifty_imu = ImuSimulator(
        ImuNoiseModel(gyro_initial_bias=np.deg2rad(2.0)),
        rng=np.random.default_rng(seed + 1),
    )
    outcome = track_with_imu_fusion(
        bed.sampler,
        arr,
        traj,
        floorplan=bed.floorplan,
        rim=Rim(RimConfig(max_lag=60)),
        imu_simulator=drifty_imu,
        rng=np.random.default_rng(seed),
    )
    dr_final = float(
        np.linalg.norm(outcome.dead_reckoned[-1] - outcome.truth_at_steps[-1])
    )
    pf_final = float(
        np.linalg.norm(outcome.filtered[-1] - outcome.truth_at_steps[-1])
    )
    dr_median = float(np.median(outcome.errors_dead_reckoned))
    pf_median = float(np.median(outcome.errors_filtered))
    return {
        "outcome": outcome,
        "measured": {
            "trace_length_m": traj.total_distance,
            "dead_reckoned_median_m": dr_median,
            "filtered_median_m": pf_median,
            "dead_reckoned_final_m": dr_final,
            "filtered_final_m": pf_final,
            "pf_improves": bool(pf_final <= dr_final),
        },
        "paper": {"note": "PF-corrected track reconstructs the trajectory"},
    }


def run_sec629_complexity(seed: int = 0, quick: bool = False) -> Dict:
    """§6.2.9: system complexity / real-time capability.

    Paper: the C++ system runs in real time (6% CPU) on a Surface Pro; the
    cost driver is m(m-1)·W TRRS values per sample.  We measure the Python
    pipeline's throughput in CSI samples per second and compare it to the
    200 Hz packet rate.
    """
    bed = make_testbed(seed=seed)
    duration = 2.0 if quick else 5.0
    traj_module = __import__("repro.motionsim.profiles", fromlist=["line_trajectory"])
    traj = traj_module.line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 0.5, duration)
    arr = linear_array(3)
    trace = bed.sampler.sample(traj, arr)
    rim = Rim(RimConfig(max_lag=60))

    start = time.perf_counter()
    rim.process(trace)
    elapsed = time.perf_counter() - start
    throughput = trace.n_samples / elapsed
    return {
        "measured": {
            "samples_per_second": throughput,
            "real_time_at_200hz": bool(throughput >= 200.0),
            "processing_seconds": elapsed,
        },
        "paper": {"note": "real-time C++ implementation, ~6% CPU on Surface Pro"},
    }
