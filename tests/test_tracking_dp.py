"""Unit tests for DP peak tracking (Eqns. 6-8) and sub-sample refinement."""

import numpy as np
import pytest

from repro.core.alignment import AlignmentMatrix
from repro.core.tracking import greedy_argmax_path, refine_lags, track_peaks


def _matrix(values, fs=100.0):
    values = np.asarray(values, dtype=np.float64)
    w = (values.shape[1] - 1) // 2
    return AlignmentMatrix(
        values=values, lags=np.arange(-w, w + 1), sampling_rate=fs, pair=(0, 1)
    )


def _peaky(t, n_lags, path, peak=1.0, floor=0.1, rng=None):
    """Synthesize a matrix with a known peak path plus optional noise."""
    values = np.full((t, n_lags), floor)
    if rng is not None:
        values += rng.uniform(0, 0.1, (t, n_lags))
    for k, idx in enumerate(path):
        values[k, idx] = peak
    return values


class TestTrackPeaks:
    def test_recovers_constant_path(self):
        path = [7] * 20
        m = _matrix(_peaky(20, 11, path))
        out = track_peaks(m)
        np.testing.assert_array_equal(out.lag_indices, path)

    def test_recovers_drifting_path(self):
        path = [2 + k // 4 for k in range(20)]
        m = _matrix(_peaky(20, 11, path))
        out = track_peaks(m)
        np.testing.assert_array_equal(out.lag_indices, path)

    def test_rejects_single_outlier(self, rng):
        """A one-sample glitch peak should not yank the path (the point of
        the jump cost ω, §4.2)."""
        path = [5] * 30
        values = _peaky(30, 11, path, rng=rng)
        values[15, 5] = 0.2  # true peak weak at t=15...
        values[15, 0] = 1.0  # ...glitch at a distant lag
        out = track_peaks(_matrix(values), transition_weight=-2.0)
        assert out.lag_indices[15] == 5

    def test_greedy_takes_the_outlier(self, rng):
        path = [5] * 30
        values = _peaky(30, 11, path, rng=rng)
        values[15, 5] = 0.2
        values[15, 0] = 1.0
        out = greedy_argmax_path(_matrix(values))
        assert out.lag_indices[15] == 0

    def test_lags_are_shifted_indices(self):
        path = [8] * 5
        m = _matrix(_peaky(5, 11, path))
        out = track_peaks(m)
        np.testing.assert_array_equal(out.lags, np.array(path) - 5)

    def test_sign_flip_tracked(self):
        up = [8] * 15
        down = [2] * 15
        values = np.vstack([_peaky(15, 11, up), _peaky(15, 11, down)])
        out = track_peaks(_matrix(values))
        assert (out.lags[:10] > 0).all()
        assert (out.lags[-10:] < 0).all()

    def test_nan_treated_as_zero_evidence(self):
        path = [5] * 20
        values = _peaky(20, 11, path)
        values[8] = np.nan
        out = track_peaks(_matrix(values))
        # Path continues straight through the hole.
        assert out.lag_indices[8] == 5
        assert np.isnan(out.path_trrs[8])

    def test_requires_negative_weight(self):
        m = _matrix(np.zeros((3, 5)))
        with pytest.raises(ValueError):
            track_peaks(m, transition_weight=0.5)

    def test_empty_matrix(self):
        m = _matrix(np.zeros((0, 5)))
        out = track_peaks(m)
        assert out.lags.size == 0

    def test_score_is_sum_along_path(self):
        path = [3] * 4
        m = _matrix(_peaky(4, 7, path, peak=1.0, floor=0.0))
        out = track_peaks(m, transition_weight=-1.0)
        # 4 e-terms at t plus 3 e-terms at t-1 per transition = e totals:
        # score = e[0] + sum over steps (e[t-1] + e[t]) = 1 + 3*(1+1) = 7.
        assert out.score == pytest.approx(7.0)


class TestRefineLags:
    def test_symmetric_peak_unchanged(self):
        values = np.array([[0.2, 1.0, 0.2]])
        out = refine_lags(values, np.array([1]))
        assert out[0] == pytest.approx(1.0)

    def test_asymmetric_peak_shifts_towards_heavier_side(self):
        values = np.array([[0.2, 1.0, 0.6]])
        out = refine_lags(values, np.array([1]))
        assert 1.0 < out[0] < 1.5

    def test_exact_parabola_vertex(self):
        # y = 1 - (x - 0.3)^2 sampled at x = -1, 0, 1 around index 1.
        xs = np.array([-1.0, 0.0, 1.0])
        ys = 1 - (xs - 0.3) ** 2
        out = refine_lags(ys[None, :], np.array([1]))
        assert out[0] == pytest.approx(1.3, abs=1e-9)

    def test_border_peak_not_refined(self):
        values = np.array([[1.0, 0.5, 0.2]])
        out = refine_lags(values, np.array([0]))
        assert out[0] == 0.0

    def test_nan_neighbor_not_refined(self):
        values = np.array([[np.nan, 1.0, 0.5]])
        out = refine_lags(values, np.array([1]))
        assert out[0] == 1.0

    def test_shift_clamped_to_half(self):
        values = np.array([[0.999, 1.0, 0.9999]])
        out = refine_lags(values, np.array([1]))
        assert abs(out[0] - 1.0) <= 0.5


class TestSubSampleAccuracy:
    def test_refinement_beats_integer_quantization(self, rng):
        """Peaks landing between integer lags are recovered to sub-sample
        accuracy — the mechanism behind super-resolution speed (§3.2)."""
        true_lag = 5.37
        lags = np.arange(-10, 11)
        errors_int, errors_ref = [], []
        for _ in range(20):
            row = np.exp(-((lags - true_lag) ** 2) / 4.0) + rng.normal(0, 0.01, lags.size)
            m = _matrix(np.tile(row, (5, 1)))
            out = track_peaks(m)
            errors_int.append(abs(out.lags[2] - true_lag))
            errors_ref.append(abs(out.refined_lags[2] - true_lag))
        assert np.mean(errors_ref) < np.mean(errors_int)
        assert np.mean(errors_ref) < 0.15
