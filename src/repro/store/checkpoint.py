"""Checkpointed replay of a recorded store: stop at chunk *k*, resume bit-identically.

:class:`CheckpointedReplayer` drives a :class:`~repro.store.reader.
TraceReader` through a :class:`~repro.core.streaming.StreamingRim`, one
chunk at a time.  Its :meth:`~CheckpointedReplayer.state_dict` captures
the replay cursor plus the stream's full state (buffer, alignment cache,
guard watermark, motion accumulator), so::

    run(max_chunks=k) ; checkpoint ; resume ; run()

yields exactly the same :class:`~repro.core.streaming.MotionUpdate`
sequence as a single uninterrupted ``run()`` — enforced by
``tests/test_checkpoint.py`` under both kernel backends.

Checkpoints serialize to a single ``.npz`` via :func:`save_checkpoint` /
:func:`load_checkpoint`: scalars and guard state travel as a JSON string
(Python float repr round-trips exactly; ``-Infinity`` is legal there),
buffers and cached TRRS rows as raw float64/complex64/bool arrays — so
restoring is bit-exact, which the bit-identity guarantee depends on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.config import RimConfig
from repro.core.streaming import MotionUpdate, StreamingRim
from repro.store.format import StoreError
from repro.store.reader import TraceReader

CHECKPOINT_VERSION = 1
SUPPORTED_CHECKPOINT_VERSIONS = (1,)


class CheckpointedReplayer:
    """Replay a recorded store through a streaming estimator, resumably.

    Args:
        reader: Open store reader (its policy governs how corrupt chunks
            are handled during replay; per-chunk store repairs fold into
            the next emitted update's ``HealthReport.repairs``).
        config: RIM configuration for the streaming estimator.
        block_seconds: Streaming emission cadence.

    Raises:
        StoreError: When the store's manifest records no sampling rate
            (an unclosed recording that never learned its clock).
    """

    def __init__(
        self,
        reader: TraceReader,
        config: Optional[RimConfig] = None,
        block_seconds: float = 1.0,
    ):
        if reader.sampling_rate is None or reader.sampling_rate <= 0:
            raise StoreError(
                f"{reader.root} records no sampling rate; replay needs the "
                "nominal clock (re-record with sampling_rate, or close the "
                "writer so it estimates one)"
            )
        self.reader = reader
        self.stream = StreamingRim(
            reader.array,
            reader.sampling_rate,
            config=config,
            block_seconds=block_seconds,
            carrier_wavelength=reader.carrier_wavelength,
        )
        self._cursor = 0  # next reader entry index to feed
        self._last_time: Optional[float] = None
        self._exhausted = False
        self._flushed = False
        # Open-time structural repairs (torn tail truncated, sequence gaps,
        # duplicates dropped) happened before any chunk flows, so seed them
        # here — they fold into the first emitted update's health report.
        # Read-time repairs arrive per record and are folded as they occur.
        self._pending_repairs: Dict[str, int] = dict(reader.report.repairs())

    @property
    def cursor(self) -> int:
        """Next store entry index to feed (== chunks already consumed)."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True once every store entry has been consumed."""
        return self._exhausted

    def step(self) -> Optional[List[MotionUpdate]]:
        """Feed the next chunk into the stream.

        Returns:
            The updates that chunk completed (possibly empty), or None
            when the store is exhausted.
        """
        if self._exhausted:
            return None
        gen = self.reader.iter_chunks(start=self._cursor, last_time=self._last_time)
        try:
            record = next(gen)
        except StopIteration:
            self._cursor = self.reader.n_entries
            self._exhausted = True
            return None
        finally:
            gen.close()
        self._cursor = record.index + 1
        for key, value in record.repairs.items():
            self._pending_repairs[key] = self._pending_repairs.get(key, 0) + value
        updates: List[MotionUpdate] = []
        for k in range(record.times.size):
            update = self.stream.push(record.data[k], float(record.times[k]))
            if update is not None:
                updates.append(self._absorb(update))
        if record.times.size:
            self._last_time = float(record.times[-1])
        if self._cursor >= self.reader.n_entries:
            self._exhausted = True
        return updates

    def run(
        self,
        max_chunks: Optional[int] = None,
        flush: bool = True,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> List[MotionUpdate]:
        """Replay up to ``max_chunks`` chunks (all remaining by default).

        Args:
            max_chunks: Stop after this many chunks — the checkpoint
                boundary.  None replays to the end of the store.
            flush: Flush the stream's tail once the store is exhausted
                (ignored while chunks remain, so a bounded run can be
                checkpointed and resumed without a spurious early flush).
            should_stop: Polled between chunks; returning True stops the
                replay at the next chunk boundary — the same clean state
                a ``max_chunks`` stop leaves, so the run can be
                checkpointed and resumed (graceful shutdown).
        """
        updates: List[MotionUpdate] = []
        fed = 0
        while max_chunks is None or fed < max_chunks:
            if should_stop is not None and should_stop():
                break
            step = self.step()
            if step is None:
                break
            updates.extend(step)
            fed += 1
        if flush and self._exhausted and not self._flushed:
            tail = self.stream.flush()
            self._flushed = True
            if tail is not None:
                updates.append(self._absorb(tail))
        return updates

    def _absorb(self, update: MotionUpdate) -> MotionUpdate:
        """Fold accumulated store repairs into the next healthy update."""
        if update.health is not None and self._pending_repairs:
            repairs = dict(update.health.repairs)
            for key, value in self._pending_repairs.items():
                repairs[key] = repairs.get(key, 0) + value
            update.health.repairs = repairs
            self._pending_repairs = {}
        return update

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Replay cursor + full stream state (see module docstring)."""
        return {
            "version": CHECKPOINT_VERSION,
            "cursor": int(self._cursor),
            "last_time": self._last_time,
            "exhausted": bool(self._exhausted),
            "flushed": bool(self._flushed),
            "pending_repairs": dict(self._pending_repairs),
            "stream": self.stream.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output into this replayer."""
        version = int(state.get("version", 0))
        if version not in SUPPORTED_CHECKPOINT_VERSIONS:
            raise ValueError(
                f"unsupported replay checkpoint version {version} (this "
                f"build reads versions {sorted(SUPPORTED_CHECKPOINT_VERSIONS)})"
            )
        self._cursor = int(state["cursor"])
        last_time = state["last_time"]
        self._last_time = None if last_time is None else float(last_time)
        self._exhausted = bool(state["exhausted"])
        self._flushed = bool(state["flushed"])
        self._pending_repairs = {
            str(k): int(v) for k, v in dict(state["pending_repairs"]).items()
        }
        self.stream.load_state_dict(state["stream"])

    def save(self, path) -> None:
        """Serialize :meth:`state_dict` to ``path`` (.npz)."""
        save_checkpoint(path, self.state_dict())

    @classmethod
    def resume(
        cls,
        reader: TraceReader,
        checkpoint,
        config: Optional[RimConfig] = None,
        block_seconds: float = 1.0,
    ) -> "CheckpointedReplayer":
        """Rebuild a replayer from a checkpoint file or state dict.

        The caller supplies the same ``reader``/``config``/cadence the
        checkpointed replayer was built with; the checkpoint supplies
        everything mutable.
        """
        replayer = cls(reader, config=config, block_seconds=block_seconds)
        if not isinstance(checkpoint, dict):
            checkpoint = load_checkpoint(checkpoint)
        replayer.load_state_dict(checkpoint)
        return replayer


# -- .npz serialization --------------------------------------------------------


def save_checkpoint(path, state: Dict[str, Any]) -> None:
    """Write a replayer (or bare stream) state dict to one ``.npz`` file.

    Arrays (packet buffer, timestamps, cached TRRS rows) are stored as
    native npz entries; everything scalar rides in a JSON ``meta`` string.
    """
    if "stream" in state:
        stream = state["stream"]
        meta: Dict[str, Any] = {
            key: value for key, value in state.items() if key != "stream"
        }
    else:  # a bare StreamingRim.state_dict()
        stream = state
        meta = {"version": CHECKPOINT_VERSION}
    arrays: Dict[str, np.ndarray] = {}
    stream_meta = {
        key: value
        for key, value in stream.items()
        if key not in ("packets", "sanitized", "times", "align_cache")
    }
    if stream.get("packets") is not None:
        arrays["packets"] = np.asarray(stream["packets"], dtype=np.complex64)
    if stream.get("sanitized") is not None:
        arrays["sanitized"] = np.asarray(stream["sanitized"], dtype=np.complex64)
    arrays["times"] = np.asarray(stream["times"], dtype=np.float64)
    cache = stream.get("align_cache")
    cache_meta: Optional[Dict[str, Any]] = None
    if cache is not None:
        cache_meta = {
            key: value for key, value in cache.items() if key != "entries"
        }
        cache_meta["keys"] = sorted(list(key) for key in cache["entries"])
        for (i, j), (vals, known) in cache["entries"].items():
            arrays[f"cache_vals_{i}_{j}"] = np.asarray(vals, dtype=np.float64)
            arrays[f"cache_known_{i}_{j}"] = np.asarray(known, dtype=bool)
    meta["stream"] = stream_meta
    meta["align_cache"] = cache_meta
    meta["has_packets"] = "packets" in arrays
    meta["has_sanitized"] = "sanitized" in arrays
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:  # handle, not path: stops savez suffix-munging
        np.savez(fh, meta=np.str_(json.dumps(meta)), **arrays)
    os.replace(tmp, path)


def load_checkpoint(path) -> Dict[str, Any]:
    """Inverse of :func:`save_checkpoint`; bit-exact array round-trip."""
    with np.load(path, allow_pickle=False) as archive:
        if "meta" not in archive.files:
            raise StoreError(f"{path} is not a replay checkpoint (no meta)")
        meta = json.loads(str(archive["meta"]))
        version = int(meta.get("version", 0))
        if version not in SUPPORTED_CHECKPOINT_VERSIONS:
            raise ValueError(
                f"unsupported replay checkpoint version {version} (this "
                f"build reads versions {sorted(SUPPORTED_CHECKPOINT_VERSIONS)})"
            )
        stream: Dict[str, Any] = dict(meta.pop("stream"))
        stream["packets"] = (
            archive["packets"].copy() if meta.pop("has_packets") else None
        )
        # Older checkpoints predate the fused-sanitize buffer; the stream's
        # tolerant loader recomputes it bit-identically when absent.
        stream["sanitized"] = (
            archive["sanitized"].copy() if meta.pop("has_sanitized", False) else None
        )
        stream["times"] = archive["times"].copy()
        cache_meta = meta.pop("align_cache")
        if cache_meta is None:
            stream["align_cache"] = None
        else:
            keys = [(int(i), int(j)) for i, j in cache_meta.pop("keys")]
            cache_meta["entries"] = {
                (i, j): (
                    archive[f"cache_vals_{i}_{j}"].copy(),
                    archive[f"cache_known_{i}_{j}"].copy(),
                )
                for i, j in keys
            }
            stream["align_cache"] = cache_meta
        meta["stream"] = stream
        return meta
