"""CSI trace persistence: the legacy whole-trace ``.npz`` format.

A real deployment records CSI once and reprocesses it many times (tuning
configs, comparing algorithms), so traces need a stable on-disk format.
This module is the **legacy** one: everything required to rebuild the
trace — samples, ground truth, array geometry, AP positions — goes into
one compressed NumPy archive written in a single shot.

.. deprecated::
    :func:`save_trace` / :func:`load_trace` are kept as thin wrappers for
    existing ``.npz`` archives and small one-shot traces.  New code should
    use :mod:`repro.store` — the chunked, append-only, integrity-checked
    trace store — which can append while recording, detect corruption,
    and resume a half-processed stream.  ``python -m repro.cli convert``
    migrates archives in either direction, and the pieces both formats
    share (format-version validation, array/trajectory manifest codecs)
    live here so the two loaders cannot drift apart.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.channel.sampler import CsiTrace
from repro.motionsim.trajectory import Trajectory

_FORMAT_VERSION = 1

# Every .npz format version this build can read.  repro.store keeps its
# own (binary chunk) version constant but funnels it through the same
# check_format_version helper below.
SUPPORTED_NPZ_VERSIONS = (1,)


def check_format_version(
    version: Any, supported: Sequence[int], what: str = "trace archive"
) -> int:
    """Validate an on-disk format version against what this build reads.

    Shared by the legacy ``.npz`` loader and the :mod:`repro.store`
    manifest/chunk readers, so "unknown version" always fails the same
    way instead of silently reading a future layout.

    Args:
        version: The version field as found on disk (any int-like).
        supported: Versions this build understands.
        what: Human-readable name of the container, for the error message.

    Returns:
        The validated version as an int.

    Raises:
        ValueError: On a version outside ``supported``.
    """
    try:
        version = int(version)
    except (TypeError, ValueError):
        raise ValueError(
            f"malformed {what} format version {version!r} (not an integer)"
        ) from None
    allowed = tuple(int(v) for v in supported)
    if version not in allowed:
        raise ValueError(
            f"unsupported {what} format version {version} "
            f"(this build reads versions {sorted(allowed)})"
        )
    return version


# -- array / trajectory manifest codecs ---------------------------------------
#
# JSON-friendly encodings of the trace metadata both persistence formats
# need.  The legacy .npz stores the same fields as archive entries; the
# chunked store (repro.store) embeds these dicts in its sidecar manifest.


def array_to_manifest(array: AntennaArray) -> Dict[str, Any]:
    """Encode an :class:`AntennaArray` as a JSON-serializable dict."""
    return {
        "name": array.name,
        "local_positions": np.asarray(array.local_positions, dtype=np.float64)
        .tolist(),
        "nic_assignment": np.asarray(array.nic_assignment, dtype=np.int64)
        .tolist(),
        "circular": bool(array.circular),
    }


def array_from_manifest(payload: Dict[str, Any]) -> AntennaArray:
    """Rebuild an :class:`AntennaArray` from :func:`array_to_manifest`."""
    return AntennaArray(
        name=str(payload["name"]),
        local_positions=np.asarray(payload["local_positions"], dtype=np.float64),
        nic_assignment=np.asarray(payload["nic_assignment"], dtype=np.int64),
        circular=bool(payload["circular"]),
    )


def trajectory_to_manifest(trajectory: Trajectory) -> Dict[str, Any]:
    """Encode a ground-truth :class:`Trajectory` as a JSON-serializable dict.

    Floats go through Python's repr (shortest round-trip), so positions
    survive the JSON hop bit-exactly.
    """
    return {
        "times": np.asarray(trajectory.times, dtype=np.float64).tolist(),
        "positions": np.asarray(trajectory.positions, dtype=np.float64).tolist(),
        "orientations": np.asarray(trajectory.orientations, dtype=np.float64)
        .tolist(),
    }


def trajectory_from_manifest(payload: Dict[str, Any]) -> Trajectory:
    """Rebuild a :class:`Trajectory` from :func:`trajectory_to_manifest`."""
    return Trajectory(
        times=np.asarray(payload["times"], dtype=np.float64),
        positions=np.asarray(payload["positions"], dtype=np.float64),
        orientations=np.asarray(payload["orientations"], dtype=np.float64),
    )


# -- legacy .npz wrappers ------------------------------------------------------


def save_trace(path, trace: CsiTrace) -> None:
    """Write a CSI trace to ``path`` (.npz, compressed).  **Legacy format.**

    Thin wrapper kept for existing archives; new recordings should use
    :func:`repro.store.write_trace` (chunked, appendable, CRC-checked).

    Args:
        path: Destination file path (suffix .npz recommended).
        trace: The trace to persist.
    """
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        data=trace.data,
        times=trace.times,
        tx_positions=trace.tx_positions,
        carrier_wavelength=np.float64(trace.carrier_wavelength),
        array_name=np.bytes_(trace.array.name.encode()),
        array_positions=trace.array.local_positions,
        array_nics=trace.array.nic_assignment,
        array_circular=np.bool_(trace.array.circular),
        traj_times=trace.trajectory.times,
        traj_positions=trace.trajectory.positions,
        traj_orientations=trace.trajectory.orientations,
    )


def load_trace(path) -> CsiTrace:
    """Read a CSI trace written by :func:`save_trace`.  **Legacy format.**

    Unknown ``format_version`` values are rejected through the shared
    :func:`check_format_version` helper (also used by the chunked store),
    so a future layout fails loudly instead of being misread.

    Raises:
        ValueError: On unknown format versions or malformed archives.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "format_version" not in archive.files:
            raise ValueError(
                f"{path} is not a RIM trace archive (no format_version field)"
            )
        check_format_version(
            archive["format_version"], SUPPORTED_NPZ_VERSIONS, what=".npz trace"
        )
        array = AntennaArray(
            name=bytes(archive["array_name"]).decode(),
            local_positions=archive["array_positions"],
            nic_assignment=archive["array_nics"],
            circular=bool(archive["array_circular"]),
        )
        trajectory = Trajectory(
            times=archive["traj_times"],
            positions=archive["traj_positions"],
            orientations=archive["traj_orientations"],
        )
        return CsiTrace(
            data=archive["data"],
            times=archive["times"],
            array=array,
            trajectory=trajectory,
            tx_positions=archive["tx_positions"],
            carrier_wavelength=float(archive["carrier_wavelength"]),
        )
