"""Unit tests for alignment matrices (Eqn. 5) and the NaN moving average."""

import numpy as np
import pytest

from repro.core.alignment import (
    AlignmentMatrix,
    alignment_matrix,
    average_matrices,
    base_trrs_matrix,
    nan_moving_average,
)
from repro.core.trrs import average_trrs, normalize_csi


def _sequence(rng, t=30, n_tx=2, s=16):
    return normalize_csi(
        rng.standard_normal((t, n_tx, s)) + 1j * rng.standard_normal((t, n_tx, s))
    )


class TestNanMovingAverage:
    def test_window_one_is_identity(self, rng):
        x = rng.standard_normal((10, 3))
        np.testing.assert_allclose(nan_moving_average(x, 1), x)

    def test_constant_preserved(self):
        x = np.full((20, 2), 3.0)
        np.testing.assert_allclose(nan_moving_average(x, 5), 3.0)

    def test_matches_manual_average(self, rng):
        x = rng.standard_normal(11)
        out = nan_moving_average(x[:, None], 3)[:, 0]
        for k in range(1, 10):
            assert out[k] == pytest.approx(x[k - 1 : k + 2].mean())

    def test_borders_use_partial_windows(self, rng):
        x = rng.standard_normal(9)
        out = nan_moving_average(x[:, None], 5)[:, 0]
        assert out[0] == pytest.approx(x[:3].mean())
        assert out[-1] == pytest.approx(x[-3:].mean())

    def test_nan_skipped(self):
        x = np.array([1.0, np.nan, 3.0])
        out = nan_moving_average(x[:, None], 3)[:, 0]
        assert out[1] == pytest.approx(2.0)

    def test_all_nan_window_stays_nan(self):
        x = np.array([np.nan, np.nan, np.nan, 1.0])
        out = nan_moving_average(x[:, None], 3)[:, 0]
        assert np.isnan(out[0])
        assert out[-1] == pytest.approx(1.0)


class TestBaseTrrsMatrix:
    def test_matches_direct_computation(self, rng):
        a = _sequence(rng)
        b = _sequence(rng)
        m = base_trrs_matrix(a, b, max_lag=4)
        for t in range(6, 12):
            for lag in range(-4, 5):
                expected = float(average_trrs(a[t], b[t - lag]))
                assert m[t, lag + 4] == pytest.approx(expected, rel=1e-5)

    def test_border_nan(self, rng):
        a = _sequence(rng, t=10)
        m = base_trrs_matrix(a, a, max_lag=3)
        assert np.isnan(m[0, 3 + 1])  # lag +1 undefined at t=0
        assert np.isnan(m[-1, 3 - 1])  # lag -1 undefined at the end

    def test_zero_lag_self_is_one(self, rng):
        a = _sequence(rng, t=10)
        m = base_trrs_matrix(a, a, max_lag=2)
        np.testing.assert_allclose(m[:, 2], 1.0, rtol=1e-5)

    def test_stride_skips_rows(self, rng):
        a = _sequence(rng, t=20)
        m = base_trrs_matrix(a, a, max_lag=2, time_stride=4)
        evaluated = np.isfinite(m).any(axis=1)
        assert evaluated[::4][1:].all()
        assert not evaluated[1]

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            base_trrs_matrix(_sequence(rng, t=5), _sequence(rng, t=6), 2)


class TestAlignmentMatrix:
    def test_lags_axis(self, rng):
        a = _sequence(rng)
        m = alignment_matrix(a, a, max_lag=5, virtual_window=1, sampling_rate=100.0, normalized=True)
        np.testing.assert_array_equal(m.lags, np.arange(-5, 6))
        assert m.max_lag == 5

    def test_lag_index(self, rng):
        a = _sequence(rng)
        m = alignment_matrix(a, a, max_lag=5, virtual_window=1, sampling_rate=100.0, normalized=True)
        assert m.lag_index(0) == 5
        assert m.lag_index(-5) == 0
        with pytest.raises(ValueError):
            m.lag_index(6)

    def test_lag_seconds(self, rng):
        a = _sequence(rng)
        m = alignment_matrix(a, a, max_lag=2, virtual_window=1, sampling_rate=200.0, normalized=True)
        np.testing.assert_allclose(m.lag_seconds(), np.arange(-2, 3) / 200.0)

    def test_virtual_window_smooths(self, rng):
        a = _sequence(rng, t=60)
        m1 = alignment_matrix(a, a, max_lag=4, virtual_window=1, sampling_rate=100.0, normalized=True)
        m9 = alignment_matrix(a, a, max_lag=4, virtual_window=9, sampling_rate=100.0, normalized=True)
        col = 4 + 2  # lag +2, pure clutter for iid sequences
        var1 = np.nanvar(m1.values[10:50, col])
        var9 = np.nanvar(m9.values[10:50, col])
        assert var9 < var1

    def test_parameter_validation(self, rng):
        a = _sequence(rng)
        with pytest.raises(ValueError):
            alignment_matrix(a, a, max_lag=0, virtual_window=1, sampling_rate=1.0)
        with pytest.raises(ValueError):
            alignment_matrix(a, a, max_lag=2, virtual_window=0, sampling_rate=1.0)

    def test_unnormalized_input_accepted(self, rng):
        raw = rng.standard_normal((20, 2, 16)) + 1j * rng.standard_normal((20, 2, 16))
        m = alignment_matrix(5 * raw, raw, max_lag=2, virtual_window=1, sampling_rate=1.0)
        np.testing.assert_allclose(m.values[:, 2], 1.0, rtol=1e-5)


class TestAverageMatrices:
    def _matrix(self, values):
        return AlignmentMatrix(
            values=values, lags=np.arange(-1, 2), sampling_rate=1.0, pair=(0, 1)
        )

    def test_mean_of_two(self):
        a = self._matrix(np.full((4, 3), 0.2))
        b = self._matrix(np.full((4, 3), 0.6))
        avg = average_matrices([a, b])
        np.testing.assert_allclose(avg.values, 0.4)

    def test_nan_aware(self):
        a = self._matrix(np.array([[0.2, np.nan, 0.4]]))
        b = self._matrix(np.array([[0.6, 0.8, np.nan]]))
        avg = average_matrices([a, b])
        np.testing.assert_allclose(avg.values, [[0.4, 0.8, 0.4]])

    def test_single_matrix_identity(self):
        a = self._matrix(np.random.default_rng(0).random((4, 3)))
        avg = average_matrices([a])
        np.testing.assert_allclose(avg.values, a.values)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_matrices([])

    def test_shape_mismatch_rejected(self):
        a = self._matrix(np.zeros((4, 3)))
        b = AlignmentMatrix(
            values=np.zeros((4, 5)), lags=np.arange(-2, 3), sampling_rate=1.0, pair=(0, 1)
        )
        with pytest.raises(ValueError):
            average_matrices([a, b])
