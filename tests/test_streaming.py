"""Tests for the streaming (real-time) RIM estimator."""

import numpy as np
import pytest

from repro import obs
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.core.streaming import StreamingRim
from repro.motionsim.profiles import line_trajectory, still_trajectory


def _stream_trace(stream, trace):
    updates = []
    for k in range(trace.n_samples):
        update = stream.push(trace.data[k], trace.times[k])
        if update is not None:
            updates.append(update)
    final = stream.flush()
    if final is not None:
        updates.append(final)
    return updates


class TestStreamingRim:
    def test_constructor_validation(self, three_antenna):
        with pytest.raises(ValueError):
            StreamingRim(three_antenna, sampling_rate=0.0)
        with pytest.raises(ValueError):
            StreamingRim(three_antenna, sampling_rate=200.0, block_seconds=0.0)

    def test_packet_shape_validation(self, three_antenna):
        stream = StreamingRim(three_antenna, 200.0)
        with pytest.raises(ValueError):
            stream.push(np.zeros((5, 2, 8), dtype=np.complex64))

    def test_no_update_before_first_block(self, three_antenna, fast_sampler):
        traj = still_trajectory((10.0, 8.0), 0.2)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = StreamingRim(
            three_antenna, trace.sampling_rate, RimConfig(max_lag=40), block_seconds=1.0
        )
        assert stream.push(trace.data[0], trace.times[0]) is None

    def test_matches_offline_distance(self, three_antenna, fast_sampler):
        cfg = RimConfig(max_lag=50)
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 3.0)
        trace = fast_sampler.sample(traj, three_antenna)
        offline = Rim(cfg).process(trace).total_distance

        stream = StreamingRim(
            three_antenna,
            trace.sampling_rate,
            cfg,
            block_seconds=1.0,
            carrier_wavelength=trace.carrier_wavelength,
        )
        _stream_trace(stream, trace)
        assert stream.total_distance == pytest.approx(offline, abs=0.15)
        assert stream.total_distance == pytest.approx(traj.total_distance, abs=0.2)

    def test_memory_bounded(self, three_antenna, fast_sampler):
        cfg = RimConfig(max_lag=40)
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 3.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = StreamingRim(three_antenna, trace.sampling_rate, cfg, block_seconds=0.5)
        _stream_trace(stream, trace)
        assert stream.buffered_samples <= stream.context_samples + stream.block_samples

    def test_updates_cover_all_samples_once(self, three_antenna, fast_sampler):
        cfg = RimConfig(max_lag=40)
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = StreamingRim(three_antenna, trace.sampling_rate, cfg, block_seconds=0.5)
        updates = _stream_trace(stream, trace)
        all_times = np.concatenate([u.times for u in updates])
        np.testing.assert_allclose(all_times, trace.times)

    def test_total_distance_is_cumulative(self, three_antenna, fast_sampler):
        cfg = RimConfig(max_lag=40)
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = StreamingRim(three_antenna, trace.sampling_rate, cfg, block_seconds=0.5)
        updates = _stream_trace(stream, trace)
        running = 0.0
        for u in updates:
            running += u.block_distance
            assert u.total_distance == pytest.approx(running, abs=1e-9)

    def test_still_stream_reports_zero(self, three_antenna, fast_sampler):
        traj = still_trajectory((10.0, 8.0), 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = StreamingRim(
            three_antenna, trace.sampling_rate, RimConfig(max_lag=40), block_seconds=0.5
        )
        _stream_trace(stream, trace)
        assert stream.total_distance == pytest.approx(0.0, abs=1e-6)

    def test_default_timestamps(self, three_antenna):
        stream = StreamingRim(three_antenna, 100.0, RimConfig(max_lag=40))
        packet = np.ones((3, 2, 8), dtype=np.complex64)
        for _ in range(5):
            stream.push(packet)
        assert stream._times[-1] == pytest.approx(4 / 100.0)


class TestStreamingGuard:
    """push() must reject/repair bad timestamps instead of corrupting blocks."""

    def _packet(self):
        return np.ones((3, 2, 8), dtype=np.complex64)

    def test_duplicate_timestamp_rejected(self, three_antenna):
        stream = StreamingRim(three_antenna, 100.0, RimConfig(max_lag=40))
        packet = self._packet()
        stream.push(packet, 0.00)
        stream.push(packet, 0.01)
        stream.push(packet, 0.01)  # duplicate: silently dropped
        stream.push(packet, 0.02)
        assert stream.buffered_samples == 3
        np.testing.assert_allclose(stream._times, [0.00, 0.01, 0.02])

    def test_nonmonotonic_timestamp_rejected(self, three_antenna):
        stream = StreamingRim(three_antenna, 100.0, RimConfig(max_lag=40))
        packet = self._packet()
        stream.push(packet, 0.00)
        stream.push(packet, 0.02)
        stream.push(packet, 0.01)  # late arrival: dropped
        assert stream.buffered_samples == 2
        assert np.all(np.diff(stream._times) > 0)

    def test_raise_policy_raises_on_duplicates(self, three_antenna):
        from repro.robustness import GuardError

        cfg = RimConfig(max_lag=40, guard_policy="raise")
        stream = StreamingRim(three_antenna, 100.0, cfg)
        packet = self._packet()
        stream.push(packet, 0.0)
        with pytest.raises(GuardError):
            stream.push(packet, 0.0)

    def test_off_policy_admits_everything(self, three_antenna):
        cfg = RimConfig(max_lag=40, guard_policy="off")
        stream = StreamingRim(three_antenna, 100.0, cfg)
        packet = self._packet()
        stream.push(packet, 0.0)
        stream.push(packet, 0.0)
        assert stream.buffered_samples == 2

    def test_updates_carry_health(self, three_antenna, fast_sampler):
        cfg = RimConfig(max_lag=50)
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = StreamingRim(
            three_antenna,
            trace.sampling_rate,
            cfg,
            block_seconds=0.5,
            carrier_wavelength=trace.carrier_wavelength,
        )
        updates = _stream_trace(stream, trace)
        assert updates
        for u in updates:
            assert u.health is not None
            assert u.health.n_chains == 3
            assert not u.health.degraded

    def test_repair_counters_reach_health(self, three_antenna, fast_sampler):
        cfg = RimConfig(max_lag=50)
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = StreamingRim(
            three_antenna,
            trace.sampling_rate,
            cfg,
            block_seconds=0.5,
            carrier_wavelength=trace.carrier_wavelength,
        )
        updates = []
        for k in range(trace.n_samples):
            update = stream.push(trace.data[k], trace.times[k])
            if update is not None:
                updates.append(update)
            if k % 25 == 0:  # replay every 25th packet as a duplicate
                assert stream.push(trace.data[k], trace.times[k]) is None
        final = stream.flush()
        if final is not None:
            updates.append(final)
        dupes = sum(
            u.health.repairs.get("duplicates_dropped", 0)
            for u in updates
            if u.health is not None
        )
        assert dupes == len([k for k in range(trace.n_samples) if k % 25 == 0])
        # Duplicates were rejected at the gate, so the estimate is untouched.
        all_times = np.concatenate([u.times for u in updates])
        np.testing.assert_allclose(all_times, trace.times)


class TestStreamAlignmentCache:
    """Cross-block TRRS row reuse and its invalidation discipline."""

    def _stream(self, three_antenna, trace, **cfg_kw):
        # Pin the batched backend: only it implements row seeding, and
        # these tests must not depend on the ambient RIM_KERNEL setting.
        cfg = RimConfig(max_lag=25, kernel_backend="batched", **cfg_kw)
        return StreamingRim(
            three_antenna,
            trace.sampling_rate,
            cfg,
            block_seconds=0.5,
            carrier_wavelength=trace.carrier_wavelength,
        )

    def test_clean_stream_seeds_rows(self, three_antenna, fast_sampler):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = self._stream(three_antenna, trace)
        _stream_trace(stream, trace)
        cache = stream._align_cache
        assert cache is not None
        assert cache.seeded_cells > 0
        assert cache.invalidations == 0

    def test_stream_reuse_off_disables_cache(self, three_antenna, fast_sampler):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = self._stream(three_antenna, trace, stream_reuse=False)
        _stream_trace(stream, trace)
        assert stream._align_cache is None

    def test_guard_repairs_invalidate_cache(self, three_antenna, fast_sampler):
        """Truncated packets trip the in-trace guard: no block may seed."""
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = self._stream(three_antenna, trace)
        for k in range(trace.n_samples):
            packet = np.array(trace.data[k])
            if k % 25 == 0:  # corrupt the tail tones of one chain
                packet[0, :, -5:] = np.nan
            stream.push(packet, trace.times[k])
        stream.flush()
        cache = stream._align_cache
        # Every block carried guard repairs, so nothing was ever captured.
        assert cache.seeded_cells == 0

    def test_gate_rejections_do_not_invalidate(self, three_antenna, fast_sampler):
        """Duplicates rejected at the push gate leave the buffer clean, so
        the cache must keep seeding — rejection is not an in-trace repair."""
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = self._stream(three_antenna, trace)
        for k in range(trace.n_samples):
            stream.push(trace.data[k], trace.times[k])
            if k % 25 == 0:
                assert stream.push(trace.data[k], trace.times[k]) is None
        stream.flush()
        assert stream._align_cache.seeded_cells > 0

    def test_clock_resample_clears_cache(self, three_antenna, fast_sampler):
        """Drifted timestamps force a resample, which drops seeded rows."""
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        stream = self._stream(three_antenna, trace)
        drifted = trace.times * 1.05  # 5% fast clock, way past guard_max_drift
        # Prime the cache with one clean block first.
        half = trace.n_samples // 2
        for k in range(half):
            stream.push(trace.data[k], trace.times[k])
        primed = stream._align_cache.seeded_cells
        for k in range(half, trace.n_samples):
            stream.push(trace.data[k], float(drifted[k]))
        stream.flush()
        assert stream._align_cache.invalidations >= 1
        # No new seeding happened after the clock went bad.
        assert stream._align_cache.seeded_cells == primed


class TestFusedSanitize:
    """Ingest-fused sanitization: every sample is cleaned exactly once."""

    @pytest.fixture(autouse=True)
    def _obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def _trace(self, three_antenna, fast_sampler):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        return fast_sampler.sample(traj, three_antenna)

    def test_stream_sanitizes_once_per_sample(self, three_antenna, fast_sampler):
        """The sanitize work counter must equal the pushed sample count —
        blocks overlap, so a per-block sanitize would double-count."""
        trace = self._trace(three_antenna, fast_sampler)
        obs.enable()
        stream = StreamingRim(
            three_antenna,
            trace.sampling_rate,
            RimConfig(max_lag=25),
            block_seconds=0.5,
            carrier_wavelength=trace.carrier_wavelength,
        )
        _stream_trace(stream, trace)
        assert obs.METRICS.counter("sanitize.samples").value == trace.n_samples

    def test_batch_sanitizes_once_per_sample(self, three_antenna, fast_sampler):
        trace = self._trace(three_antenna, fast_sampler)
        obs.enable()
        Rim(RimConfig(max_lag=25)).process(trace)
        assert obs.METRICS.counter("sanitize.samples").value == trace.n_samples

    def test_resume_does_not_resanitize(self, three_antenna, fast_sampler):
        """Restoring a checkpointed stream reuses the serialized sanitized
        buffer instead of cleaning the retained window again."""
        trace = self._trace(three_antenna, fast_sampler)

        def build():
            return StreamingRim(
                three_antenna,
                trace.sampling_rate,
                RimConfig(max_lag=25),
                block_seconds=0.5,
                carrier_wavelength=trace.carrier_wavelength,
            )

        half = trace.n_samples // 2
        first = build()
        for k in range(half):
            first.push(trace.data[k], float(trace.times[k]))
        state = first.state_dict()

        obs.enable()
        second = build()
        second.load_state_dict(state)
        for k in range(half, trace.n_samples):
            second.push(trace.data[k], float(trace.times[k]))
        second.flush()
        assert (
            obs.METRICS.counter("sanitize.samples").value
            == trace.n_samples - half
        )
