"""Bench: Fig. 20 — floor-scale tracking by RIM alone (sideway moves)."""

from repro.eval.applications import run_fig20_pure_tracking
from repro.eval.report import print_report


def test_fig20_pure_tracking(benchmark, quick):
    result = benchmark.pedantic(
        run_fig20_pure_tracking, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 20 — tracking by sole RIM", result)
    m = result["measured"]
    # Shape: meters-long traces with sideway legs tracked without error
    # blow-up (median path error well below a meter).
    assert m["median_error_m"] < 1.0
    assert m["final_drift_m"] < 0.25 * m["trace_length_m"]
