"""Append-only trace recording: :class:`TraceWriter` and :func:`write_trace`.

The writer buffers pushed CSI packets and drains them to fixed-size chunk
files (``chunk-NNNNNNNN.rimc``), so a recording session can run for hours
with bounded memory and a crash loses at most the unflushed tail: the
manifest is written (atomically, via rename) as soon as the sample shape
is known, each full chunk is durable the moment its file closes, and a
torn final chunk is detected and dropped by :class:`~repro.store.reader.
TraceReader` on open.

When :mod:`repro.obs` is enabled, writes publish ``store.chunks_written``
/ ``store.bytes_written`` counters and a ``store.chunk_write_s``
histogram.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.arrays.geometry import AntennaArray
from repro.obs.flight import FLIGHT
from repro.channel.sampler import CsiTrace
from repro.io import array_to_manifest, trajectory_to_manifest
from repro.motionsim.trajectory import Trajectory
from repro.store.format import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    SAMPLE_DTYPE,
    StoreError,
    chunk_filename,
    pack_chunk,
)

DEFAULT_CHUNK_SAMPLES = 256


def _write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    """Write JSON via a temp file + rename so readers never see a torn file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


class TraceWriter:
    """Record CSI packets into a chunked append-only store directory.

    Args:
        root: Store directory (created if absent; must not already hold a
            manifest — one store, one recording).
        array: Receive antenna array (persisted in the manifest).
        carrier_wavelength: Carrier wavelength, meters.
        chunk_samples: Packets per chunk file.
        tx_positions: Optional (n_tx, 2) AP antenna positions.
        trajectory: Optional ground-truth trajectory (simulated traces).
        sampling_rate: Nominal packet rate, Hz.  Optional — estimated
            from the recorded timestamps at close when omitted — but
            required to synthesize timestamps for ``append(..., None)``.
        metadata: Extra JSON-serializable manifest fields (``"user"`` key).
    """

    def __init__(
        self,
        root,
        array: AntennaArray,
        carrier_wavelength: float = 0.0516,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
        tx_positions: Optional[np.ndarray] = None,
        trajectory: Optional[Trajectory] = None,
        sampling_rate: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        if chunk_samples < 1:
            raise ValueError(f"chunk_samples must be >= 1, got {chunk_samples}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if (self.root / MANIFEST_NAME).exists():
            raise StoreError(
                f"{self.root} already holds a trace store; refusing to append "
                "to an existing recording"
            )
        self.array = array
        self.carrier_wavelength = float(carrier_wavelength)
        self.chunk_samples = int(chunk_samples)
        self.tx_positions = (
            None
            if tx_positions is None
            else np.asarray(tx_positions, dtype=np.float64)
        )
        self.trajectory = trajectory
        self.sampling_rate = None if sampling_rate is None else float(sampling_rate)
        self.metadata = dict(metadata) if metadata else {}

        self.sample_shape: Optional[Tuple[int, int, int]] = None
        self.n_samples = 0
        self.n_chunks = 0
        self.bytes_written = 0
        self._pending: List[np.ndarray] = []
        self._pending_times: List[float] = []
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None
        self._closed = False

    # -- recording ----------------------------------------------------------

    def append(self, data: np.ndarray, times=None) -> None:
        """Append one packet or a batch of packets.

        Args:
            data: (n_rx, n_tx, S) single packet or (n, n_rx, n_tx, S) batch.
            times: Scalar timestamp (single packet), (n,) timestamps
                (batch), or None to synthesize ``k / sampling_rate``.
        """
        if self._closed:
            raise StoreError("TraceWriter is closed")
        data = np.asarray(data)
        if data.ndim == 3:
            data = data[None]
            if times is not None and np.ndim(times) == 0:
                times = [float(times)]
        if data.ndim != 4:
            raise StoreError(
                f"append expects (n_rx, n_tx, S) or (n, n_rx, n_tx, S), "
                f"got {data.shape}"
            )
        n = data.shape[0]
        if times is None:
            if self.sampling_rate is None:
                raise StoreError(
                    "append(times=None) needs sampling_rate to synthesize "
                    "timestamps"
                )
            times = (self.n_samples + len(self._pending) + np.arange(n)) / (
                self.sampling_rate
            )
        times = np.asarray(times, dtype=np.float64).reshape(-1)
        if times.shape != (n,):
            raise StoreError(f"times must be ({n},), got {times.shape}")

        if self.sample_shape is None:
            if data.shape[1] != self.array.n_antennas:
                raise StoreError(
                    f"packet has {data.shape[1]} RX chains, array has "
                    f"{self.array.n_antennas}"
                )
            self.sample_shape = tuple(int(s) for s in data.shape[1:])
            self._write_manifest(closed=False)
        elif tuple(data.shape[1:]) != self.sample_shape:
            raise StoreError(
                f"packet shape {data.shape[1:]} does not match the store's "
                f"{self.sample_shape}"
            )

        data = data.astype(SAMPLE_DTYPE, copy=False)
        for k in range(n):
            self._pending.append(data[k])
            self._pending_times.append(float(times[k]))
        if self._first_time is None and n:
            self._first_time = float(times[0])
        if n:
            self._last_time = float(times[-1])
        while len(self._pending) >= self.chunk_samples:
            self._drain_chunk(self.chunk_samples)

    def flush(self, partial: bool = False) -> None:
        """Write buffered full chunks; ``partial=True`` also drains the tail
        as one final (possibly short) chunk."""
        while len(self._pending) >= self.chunk_samples:
            self._drain_chunk(self.chunk_samples)
        if partial and self._pending:
            self._drain_chunk(len(self._pending))

    def close(self) -> None:
        """Drain the tail and finalize the manifest (idempotent)."""
        if self._closed:
            return
        self.flush(partial=True)
        if self.sample_shape is not None:
            self._write_manifest(closed=True)
        self._closed = True
        FLIGHT.record(
            "store_close", "store", path=str(self.root),
            n_chunks=self.n_chunks, n_samples=self.n_samples,
        )

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _drain_chunk(self, n: int) -> None:
        data = np.stack(self._pending[:n], axis=0)
        times = np.asarray(self._pending_times[:n], dtype=np.float64)
        del self._pending[:n]
        del self._pending_times[:n]
        blob = pack_chunk(self.n_chunks, data, times)
        path = self.root / chunk_filename(self.n_chunks)
        t0 = time.perf_counter()
        with open(path, "wb") as fh:
            fh.write(blob)
        obs.observe(
            "store.chunk_write_s",
            time.perf_counter() - t0,
            bounds=obs.LATENCY_BOUNDS_S,
        )
        obs.add("store.chunks_written", 1)
        obs.add("store.bytes_written", len(blob))
        self.n_chunks += 1
        self.n_samples += n
        self.bytes_written += len(blob)

    def _estimated_rate(self) -> Optional[float]:
        if self.sampling_rate is not None:
            return self.sampling_rate
        if (
            self._first_time is None
            or self._last_time is None
            or self.n_samples + len(self._pending) < 2
            or self._last_time <= self._first_time
        ):
            return None
        n = self.n_samples + len(self._pending)
        return (n - 1) / (self._last_time - self._first_time)

    def _write_manifest(self, closed: bool) -> None:
        assert self.sample_shape is not None
        payload: Dict[str, Any] = {
            "format": MANIFEST_FORMAT,
            "format_version": MANIFEST_VERSION,
            "closed": bool(closed),
            "chunk_samples": self.chunk_samples,
            "n_chunks": self.n_chunks if closed else None,
            "n_samples": self.n_samples if closed else None,
            "dtype": np.dtype(SAMPLE_DTYPE).name,
            "sample_shape": list(self.sample_shape),
            "carrier_wavelength": self.carrier_wavelength,
            "sampling_rate": self._estimated_rate(),
            "array": array_to_manifest(self.array),
            "tx_positions": (
                None if self.tx_positions is None else self.tx_positions.tolist()
            ),
            "trajectory": (
                None
                if self.trajectory is None
                else trajectory_to_manifest(self.trajectory)
            ),
            "user": self.metadata,
        }
        _write_json_atomic(self.root / MANIFEST_NAME, payload)


def write_trace(
    root,
    trace: CsiTrace,
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    metadata: Optional[Dict[str, Any]] = None,
) -> TraceWriter:
    """Persist a whole :class:`CsiTrace` as a chunked store in one call.

    The lossless counterpart of :func:`repro.io.save_trace` for the new
    format: ground truth, AP positions, and geometry all land in the
    manifest, so ``TraceReader.read_trace`` round-trips the trace exactly.

    Returns:
        The (closed) writer, for its ``n_chunks`` / ``bytes_written`` stats.
    """
    writer = TraceWriter(
        root,
        trace.array,
        carrier_wavelength=trace.carrier_wavelength,
        chunk_samples=chunk_samples,
        tx_positions=trace.tx_positions,
        trajectory=trace.trajectory,
        sampling_rate=trace.sampling_rate if trace.n_samples >= 2 else None,
        metadata=metadata,
    )
    with writer:
        writer.append(trace.data, trace.times)
    return writer
