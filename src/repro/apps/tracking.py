"""Indoor tracking applications (§6.3.3, Figs. 20-21).

Two deployments from the paper:

* **Pure RIM** — the hexagonal array alone tracks floor-scale trajectories,
  including *sideway* movements (heading changes without turning) that
  gyroscopes and magnetometers cannot see (Fig. 20).
* **RIM + inertial sensors (+ particle filter)** — RIM supplies distance,
  the gyro supplies heading through turns, and the floorplan particle
  filter prunes wall-crossing hypotheses (Fig. 21).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.sampler import CsiSampler
from repro.core.config import RimConfig
from repro.core.rim import Rim, RimResult
from repro.env.floorplan import Floorplan
from repro.eval.metrics import (
    percentile_summary,
    synchronized_position_errors,
    trajectory_projection_errors,
)
from repro.fusion.integration import FusedTrack, fuse_rim_gyro, fuse_with_particle_filter
from repro.fusion.particle_filter import ParticleFilterConfig
from repro.imu.sensors import ImuSimulator
from repro.motionsim.trajectory import Trajectory


@dataclass
class TrackingOutcome:
    """Result of one tracking run.

    Attributes:
        estimated: (N, 2) estimated positions.
        truth: (T, 2) ground-truth positions.
        errors: Per-point projection errors to the true path, meters.
        summary: median/mean/p90/max of the errors.
        rim_result: The underlying RIM output.
    """

    estimated: np.ndarray
    truth: np.ndarray
    errors: np.ndarray
    summary: dict
    rim_result: RimResult


def track_pure_rim(
    sampler: CsiSampler,
    array,
    trajectory: Trajectory,
    rim: Optional[Rim] = None,
) -> TrackingOutcome:
    """Track a trajectory with RIM alone (Fig. 20 deployment).

    The initial position and array orientation are given, as in the paper;
    everything else comes from CSI.
    """
    trace = sampler.sample(trajectory, array)
    rim = rim or Rim(RimConfig())
    result = rim.process(trace)
    estimated = result.trajectory(
        start=trajectory.positions[0],
        orientation=float(trajectory.orientations[0]),
    )
    errors = trajectory_projection_errors(estimated, trajectory.positions)
    return TrackingOutcome(
        estimated=estimated,
        truth=trajectory.positions,
        errors=errors,
        summary=percentile_summary(errors),
        rim_result=result,
    )


@dataclass
class FusedTrackingOutcome:
    """Result of the RIM+IMU(+PF) tracker (Fig. 21).

    Attributes:
        dead_reckoned: (N+1, 2) RIM-distance + gyro-heading track (no map).
        filtered: (N+1, 2) particle-filter output, or None if PF disabled.
        truth_at_steps: (N+1, 2) ground truth at the fusion step times.
        errors_dead_reckoned: Per-step position errors without the PF.
        errors_filtered: Per-step position errors with the PF (or None).
        fused: The raw fusion stream.
    """

    dead_reckoned: np.ndarray
    filtered: Optional[np.ndarray]
    truth_at_steps: np.ndarray
    errors_dead_reckoned: np.ndarray
    errors_filtered: Optional[np.ndarray]
    fused: FusedTrack


def track_with_imu_fusion(
    sampler: CsiSampler,
    array,
    trajectory: Trajectory,
    floorplan: Optional[Floorplan] = None,
    rim: Optional[Rim] = None,
    imu_simulator: Optional[ImuSimulator] = None,
    pf_config: Optional[ParticleFilterConfig] = None,
    rng: Optional[np.random.Generator] = None,
    step_seconds: float = 0.25,
) -> FusedTrackingOutcome:
    """Run the integrated RIM + gyro (+ particle filter) tracker.

    Args:
        sampler: CSI sampler bound to a channel and AP.
        array: Receive array (a 3-antenna NIC suffices, §6.3.3).
        trajectory: Ground-truth motion; its first pose seeds the tracker.
        floorplan: Enables the particle filter when provided.
        rim: RIM estimator override.
        imu_simulator: IMU simulator override.
        pf_config: Particle filter tuning.
        rng: Randomness for IMU and PF.
        step_seconds: Fusion step length.

    Returns:
        :class:`FusedTrackingOutcome`.
    """
    rng = rng or np.random.default_rng()
    trace = sampler.sample(trajectory, array)
    rim = rim or Rim(RimConfig())
    rim_result = rim.process(trace)

    imu_simulator = imu_simulator or ImuSimulator(rng=rng)
    imu = imu_simulator.simulate(trajectory)

    # The device heading during motion is the true motion heading at start;
    # the paper supplies initial location and direction (§6.3.3).
    headings = trajectory.headings()
    finite = headings[np.isfinite(headings)]
    initial_heading = float(finite[0]) if finite.size else 0.0

    fused = fuse_rim_gyro(
        rim_result,
        imu,
        initial_heading=initial_heading,
        start=trajectory.positions[0],
        step_seconds=step_seconds,
    )

    truth_at_steps = np.stack(
        [
            np.interp(
                np.concatenate([[trajectory.times[0]], fused.step_times]),
                trajectory.times,
                trajectory.positions[:, k],
            )
            for k in range(2)
        ],
        axis=1,
    )
    errors_dr = synchronized_position_errors(fused.positions, truth_at_steps)

    filtered = None
    errors_pf = None
    if floorplan is not None:
        filtered = fuse_with_particle_filter(
            fused, floorplan, trajectory.positions[0], config=pf_config, rng=rng
        )
        errors_pf = synchronized_position_errors(filtered, truth_at_steps)

    return FusedTrackingOutcome(
        dead_reckoned=fused.positions,
        filtered=filtered,
        truth_at_steps=truth_at_steps,
        errors_dead_reckoned=errors_dr,
        errors_filtered=errors_pf,
        fused=fused,
    )
