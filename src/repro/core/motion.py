"""Motion reckoning: lags → speed, heading, rotation, trajectory (§4.4).

Given the per-sample aligned group and its tracked alignment delay, the
instantaneous speed is v(t) = Δd · f_s / |lag(t)| (the follower needed
lag/f_s seconds to travel the antenna separation Δd); heading is the world
angle of the aligned pair's ray, flipped by the lag sign; distance is the
time integral of speed over moving samples; and the relative trajectory is
dead-reckoned from (v, θ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np
from scipy.ndimage import median_filter

from repro.nanops import nanmedian


@dataclass
class RotationEvent:
    """One detected in-place rotation (§4.4(3)).

    Attributes:
        start_index, stop_index: Sample range of the rotation.
        angle: Signed rotation angle, radians (positive = CCW).
    """

    start_index: int
    stop_index: int
    angle: float


@dataclass
class MotionEstimate:
    """The full output of RIM's motion reckoning.

    Attributes:
        times: (T,) timestamps, seconds.
        moving: (T,) movement mask.
        speed: (T,) speed estimates, m/s (0 when not moving, NaN when
            moving but unresolved).
        heading: (T,) world heading, radians (NaN when unresolved).
        group_choice: (T,) selected group index (-1 = none).
        rotations: Detected in-place rotation events.
    """

    times: np.ndarray
    moving: np.ndarray
    speed: np.ndarray
    heading: np.ndarray
    group_choice: np.ndarray
    rotations: List[RotationEvent] = field(default_factory=list)

    def cumulative_distance(self) -> np.ndarray:
        """(T,) integrated moving distance d(t) = ∫ v dτ (§4.4(1))."""
        speed = np.where(self.moving & np.isfinite(self.speed), self.speed, 0.0)
        dt = np.diff(self.times, prepend=self.times[0])
        dt[0] = 0.0
        return np.cumsum(speed * dt)

    @property
    def total_distance(self) -> float:
        return float(self.cumulative_distance()[-1]) if self.times.size else 0.0

    @property
    def total_rotation(self) -> float:
        return float(sum(ev.angle for ev in self.rotations))

    def positions(self, start=(0.0, 0.0), initial_heading: float = None) -> np.ndarray:
        """Dead-reckoned relative trajectory from (speed, heading).

        Args:
            start: Initial position.
            initial_heading: Optional heading override applied where the
                estimated heading is NaN at the trace start.

        Returns:
            (T, 2) positions.
        """
        t = self.times.size
        pos = np.zeros((t, 2))
        pos[0] = np.asarray(start, dtype=np.float64)
        heading = self.heading.copy()
        # Hold the last resolved heading over gaps; seed with the override.
        last = initial_heading if initial_heading is not None else np.nan
        for k in range(t):
            if np.isfinite(heading[k]):
                last = heading[k]
            else:
                heading[k] = last
        dt = np.diff(self.times)
        for k in range(1, t):
            v = self.speed[k]
            ok = self.moving[k] and np.isfinite(v) and np.isfinite(heading[k])
            if ok:
                step = v * dt[k - 1]
                pos[k] = pos[k - 1] + step * np.array(
                    [np.cos(heading[k]), np.sin(heading[k])]
                )
            else:
                pos[k] = pos[k - 1]
        return pos


def speed_from_lags(
    lags: np.ndarray,
    separation: float,
    sampling_rate: float,
    min_lag: float = 1.5,
) -> np.ndarray:
    """v(t) = Δd · f_s / |lag(t)| with a quantization guard.

    Args:
        lags: (T,) (refined) alignment delays in samples.
        separation: Antenna separation Δd of the aligned pair, meters.
        sampling_rate: Packet rate f_s, Hz.
        min_lag: |lag| below this yields NaN — either the speed exceeds the
            resolvable maximum or the pair is not truly retracing.

    Returns:
        (T,) speeds, m/s (NaN where unresolved).
    """
    lags = np.asarray(lags, dtype=np.float64)
    out = np.full(lags.shape, np.nan)
    ok = np.isfinite(lags) & (np.abs(lags) >= min_lag)
    out[ok] = separation * sampling_rate / np.abs(lags[ok])
    return out


def smooth_speed(speed: np.ndarray, window: int) -> np.ndarray:
    """NaN-tolerant median smoothing of the speed series."""
    if window <= 1:
        return speed
    speed = np.asarray(speed, dtype=np.float64)
    finite = np.isfinite(speed)
    if not finite.any():
        return speed
    filled = speed.copy()
    # Median filter needs dense data: forward/backward fill the NaNs first,
    # then restore NaN where nothing was ever measured nearby.
    idx = np.where(finite, np.arange(speed.size), -1)
    np.maximum.accumulate(idx, out=idx)
    filled = np.where(idx >= 0, speed[np.maximum(idx, 0)], np.nan)
    first = np.argmax(finite)
    filled[:first] = speed[first]
    smoothed = median_filter(filled, size=window, mode="nearest")
    return smoothed


def integrate_rotation(
    ring_lags: np.ndarray,
    arc_separation: float,
    radius: float,
    sampling_rate: float,
    times: np.ndarray,
    active: np.ndarray,
    min_lag: float = 1.5,
) -> float:
    """Signed in-place rotation angle over an active window (§4.4(3)).

    Args:
        ring_lags: (n_ring, T) tracked lags of the ring-ordered adjacent
            pairs (i, next-CCW); positive lag ⇒ CCW rotation.
        arc_separation: Arc length between adjacent antennas (π/3·Δd for
            the hexagon).
        radius: Array circumradius r.
        sampling_rate: Packet rate, Hz.
        times: (T,) timestamps.
        active: (T,) mask of samples inside the rotation event.
        min_lag: Quantization guard as in :func:`speed_from_lags`.

    Returns:
        The signed rotation angle Δθ = R / r, radians.
    """
    ring_lags = np.asarray(ring_lags, dtype=np.float64)
    if ring_lags.ndim != 2:
        raise ValueError("ring_lags must be (n_ring, T)")
    valid = np.isfinite(ring_lags) & (np.abs(ring_lags) >= min_lag)
    # Signed per-pair angular speed; the cross-pair median rejects pairs
    # whose tracker momentarily latched onto a small-lag clutter peak
    # (a tiny |lag| explodes the implied speed).
    omega_per_pair = np.where(
        valid,
        np.sign(ring_lags) * arc_separation * sampling_rate / np.abs(ring_lags) / radius,
        np.nan,
    )
    # Cross-pair median per sample; samples backed by a single pair are too
    # easily poisoned by one clutter lag, so they are dropped (and bridged
    # by the interpolation below).
    omega = nanmedian(omega_per_pair, axis=0)
    omega = np.where(valid.sum(axis=0) >= 2, omega, np.nan)
    # Rotation is smooth on packet timescales: a short temporal median
    # rejects the remaining single-sample spikes.
    finite = np.isfinite(omega)
    if finite.any():
        win = max(3, int(round(0.2 * sampling_rate)) | 1)
        filled = omega.copy()
        idx = np.where(finite, np.arange(omega.size), -1)
        np.maximum.accumulate(idx, out=idx)
        filled = np.where(idx >= 0, omega[np.maximum(idx, 0)], np.nan)
        first = int(np.argmax(finite))
        filled[:first] = omega[first]
        smoothed = median_filter(filled, size=win, mode="nearest")
        omega = np.where(finite, smoothed, np.nan)
    # Inside the event, bridge samples where no ring pair resolved a lag by
    # interpolating the angular speed — rotation is continuous, so gaps in
    # peak visibility must not silently drop rotation mass.
    active = np.asarray(active, dtype=bool)
    idx = np.nonzero(active)[0]
    if idx.size:
        seg = omega[idx]
        finite = np.isfinite(seg)
        if finite.any():
            seg = np.interp(np.arange(seg.size), np.nonzero(finite)[0], seg[finite])
        else:
            seg = np.zeros_like(seg)
        omega = omega.copy()
        omega[idx] = seg
    omega = np.where(np.isfinite(omega), omega, 0.0)
    dt = np.diff(times, prepend=times[0])
    dt[0] = 0.0
    return float(np.sum(omega * dt * active))
