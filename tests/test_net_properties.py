"""Property tests for wire/store binary framing (Hypothesis).

Two guarantees are locked down here:

* the network frame codec never yields wrong data — an arbitrary payload
  round-trips exactly, and any truncation or byte flip either raises /
  resyncs or still decodes to the original bytes, never to altered ones;
* the store's v1 on-disk chunk layout is byte-identical to what it was
  before the shared :mod:`repro.binfmt` extraction (golden bytes built
  with raw ``struct`` + ``zlib``, independent of the codec under test).
"""

import struct
import zlib

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.net import FrameDecoder, FrameError, pack_frame, unpack_frame  # noqa: E402
from repro.net import framing  # noqa: E402
from repro.store import format as store_format  # noqa: E402

FRAME_TYPE_ST = st.sampled_from(framing.FRAME_TYPES)
SESSION_ST = st.integers(min_value=0, max_value=2**32 - 1)
SEQ_ST = st.integers(min_value=0, max_value=2**64 - 1)
PAYLOAD_ST = st.binary(min_size=0, max_size=512)


class TestFrameCodecProperties:
    @given(
        frame_type=FRAME_TYPE_ST,
        session_id=SESSION_ST,
        seq=SEQ_ST,
        payload=PAYLOAD_ST,
    )
    def test_round_trip_exact(self, frame_type, session_id, seq, payload):
        raw = pack_frame(frame_type, session_id=session_id, seq=seq, payload=payload)
        frame = unpack_frame(raw)
        assert frame.frame_type == frame_type
        assert frame.session_id == session_id
        assert frame.seq == seq
        assert frame.payload == payload

    @given(
        payload=PAYLOAD_ST,
        seq=SEQ_ST,
        cut=st.integers(min_value=0, max_value=600),
    )
    def test_truncation_never_wrong_data(self, payload, seq, cut):
        raw = pack_frame(framing.FRAME_DATA, seq=seq, payload=payload)
        cut = min(cut, len(raw))
        truncated = raw[:cut]
        # Exact-buffer decode: anything short must raise, never mis-decode.
        if cut < len(raw):
            with pytest.raises(FrameError):
                unpack_frame(truncated)
        # Streaming decode: a partial frame yields nothing (the decoder
        # waits for the rest); a complete one yields exactly the original.
        decoder = FrameDecoder()
        decoder.feed(truncated)
        frames = list(decoder.frames())
        if cut < len(raw):
            assert frames == []
        else:
            assert len(frames) == 1
            assert frames[0].seq == seq
            assert frames[0].payload == payload

    @given(
        payload=PAYLOAD_ST,
        seq=SEQ_ST,
        at=st.integers(min_value=0, max_value=600),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_bit_flip_never_wrong_data(self, payload, seq, at, flip):
        raw = pack_frame(framing.FRAME_DATA, seq=seq, payload=payload)
        at = at % len(raw)
        damaged = bytearray(raw)
        damaged[at] ^= flip
        decoder = FrameDecoder()
        decoder.feed(bytes(damaged))
        # Whatever survives decoding must be the pristine frame: a CRC
        # collision from a single-byte change is impossible, so either
        # the frame is dropped/resynced or (if the flip restored the
        # original byte, excluded by flip >= 1) decoded intact.
        for frame in decoder.frames():
            assert frame.seq == seq
            assert frame.payload == payload
        assert decoder.n_crc_dropped + decoder.n_resyncs >= 1 or (
            decoder.n_frames == 0
        )

    @given(
        payloads=st.lists(PAYLOAD_ST, min_size=1, max_size=5),
        junk=st.binary(min_size=1, max_size=64).filter(
            lambda b: framing.MAGIC[:1] not in b
        ),
        where=st.integers(min_value=0, max_value=5),
        chunk=st.integers(min_value=1, max_value=97),
    )
    def test_junk_between_frames_recovered(self, payloads, junk, where, chunk):
        raws = [
            pack_frame(framing.FRAME_DATA, seq=k, payload=p)
            for k, p in enumerate(payloads)
        ]
        where = where % (len(raws) + 1)
        stream = b"".join(raws[:where]) + junk + b"".join(raws[where:])
        decoder = FrameDecoder()
        seen = []
        for start in range(0, len(stream), chunk):
            decoder.feed(stream[start : start + chunk])
            seen.extend(decoder.frames())
        # Junk holds no magic byte, so every real frame survives, in
        # order, with its exact content.
        assert [f.seq for f in seen] == list(range(len(payloads)))
        assert [f.payload for f in seen] == payloads

    @given(
        n_rx=st.integers(min_value=1, max_value=4),
        n_tx=st.integers(min_value=1, max_value=3),
        n_tones=st.integers(min_value=1, max_value=16),
        timestamp=st.floats(allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_data_payload_round_trip(self, n_rx, n_tx, n_tones, timestamp, seed):
        rng = np.random.default_rng(seed)
        shape = (n_rx, n_tx, n_tones)
        packet = (rng.normal(size=shape) + 1j * rng.normal(size=shape)).astype(
            np.complex64
        )
        payload = framing.pack_data_payload(timestamp, packet)
        ts, decoded = framing.unpack_data_payload(payload, shape)
        assert ts == float(timestamp)
        np.testing.assert_array_equal(decoded, packet)


class TestStoreLayoutLock:
    """The v1 chunk layout, byte for byte, independent of HeaderCodec."""

    def test_pack_chunk_golden_bytes(self):
        n, shape = 3, (2, 1, 4)
        data = (
            np.arange(n * np.prod(shape), dtype=np.float32)
            .reshape((n, *shape))
            .astype(np.complex64)
        )
        data.imag = -1.0
        times = np.array([0.0, 0.5, 1.0], dtype=np.float64)

        packed = store_format.pack_chunk(7, data, times)

        payload = times.tobytes() + data.tobytes()
        golden = (
            b"RIMC"
            + struct.pack(
                "<HHQIIQI",
                1,  # format version
                0,  # flags
                7,  # chunk seq
                n,  # sample count
                0,  # reserved
                len(payload),
                zlib.crc32(payload) & 0xFFFFFFFF,
            )
            + payload
        )
        assert packed == golden

    @given(
        seq=st.integers(min_value=0, max_value=2**32),
        n=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25)
    def test_pack_chunk_round_trip(self, seq, n, seed):
        rng = np.random.default_rng(seed)
        shape = (n, 2, 1, 3)
        data = (rng.normal(size=shape) + 1j * rng.normal(size=shape)).astype(
            np.complex64
        )
        times = rng.normal(size=n)
        packed = store_format.pack_chunk(seq, data, times)
        header = store_format.unpack_header(packed)
        assert header.seq == seq
        assert header.n_samples == n
        got_data, got_times = store_format.unpack_payload(
            header, packed[store_format.HEADER_SIZE :], (2, 1, 3)
        )
        np.testing.assert_array_equal(got_times, times.astype(np.float64))
        np.testing.assert_array_equal(got_data, data)
