"""CSI phase sanitization (§3.2).

COTS CSI carries phase offsets from unsynchronized clocks: a per-packet
common phase (PLL initial phase + residual CFO) and a per-packet *linear*
phase slope across subcarriers (STO/SFO).  TRRS is immune to the common
phase (Eqn. 2 takes a magnitude) but the slope decorrelates inner products
between packets, so RIM calibrates "the other linear offsets by using the
sanitation approach employed in [13]" (SpotFi).

We estimate the slope per CSI vector from the tone-lag-1 autocorrelation

    slope = angle( Σ_s H[s+1] · conj(H[s]) )

which is the maximum-likelihood slope estimate for a constant-modulus
phase ramp and — unlike an unwrap-and-polyfit — is robust to phase noise
and 2π wraps.  The slope is then removed tone by tone.  Sanitization is
performed independently per antenna (§5, footnote 3).
"""

from __future__ import annotations

import numpy as np


def estimate_phase_slope(csi: np.ndarray) -> np.ndarray:
    """Per-vector linear phase slope across the tone axis.

    Args:
        csi: (..., S) complex CFRs; the last axis is the tone axis.

    Returns:
        (...) slopes in radians per tone index.  NaN inputs yield NaN.
    """
    csi = np.asarray(csi)
    if csi.shape[-1] < 2:
        raise ValueError("need at least 2 tones to estimate a slope")
    lag1 = (csi[..., 1:] * np.conj(csi[..., :-1])).sum(axis=-1)
    return np.angle(lag1)


def remove_phase_slope(csi: np.ndarray, slope: np.ndarray | None = None) -> np.ndarray:
    """Remove the linear phase ramp from CSI vectors.

    The rotation ``exp(-i·slope·tone)`` is assembled from real ``cos``/
    ``sin`` calls at the *input's* precision: for complex64 CSI the ramp
    is built in float32 (several times faster than a complex128 ``exp``
    and well inside single precision's own round-off), and for
    complex128 CSI the float64 ``cos - i·sin`` form is bit-identical to
    ``np.exp(-1j·phase)``.

    Args:
        csi: (..., S) complex CFRs.
        slope: Precomputed slopes; estimated from ``csi`` when omitted.

    Returns:
        Sanitized CSI of the same shape and dtype.
    """
    csi = np.asarray(csi)
    if slope is None:
        slope = estimate_phase_slope(csi)
    s = csi.shape[-1]
    # Center the ramp so sanitization never injects a tone-independent phase.
    tone_axis = np.arange(s) - (s - 1) / 2.0
    if csi.dtype == np.complex64:
        phase = np.asarray(slope, dtype=np.float32)[..., None] * tone_axis.astype(
            np.float32
        )
        ramp = np.empty(phase.shape, dtype=np.complex64)
    else:
        phase = np.asarray(slope, dtype=np.float64)[..., None] * tone_axis
        ramp = np.empty(phase.shape, dtype=np.complex128)
    np.cos(phase, out=ramp.real)
    np.sin(phase, out=ramp.imag)
    np.negative(ramp.imag, out=ramp.imag)
    out = csi * ramp
    return out if out.dtype == csi.dtype else out.astype(csi.dtype)


def sanitize_trace(data: np.ndarray) -> np.ndarray:
    """Sanitize a full CSI tensor (T, n_rx, n_tx, S), NaN packets preserved.

    Each (packet, rx, tx) CFR vector is sanitized independently, matching
    the paper's per-antenna linear phase calibration.
    """
    data = np.asarray(data)
    if data.ndim != 4:
        raise ValueError(f"expected (T, n_rx, n_tx, S) CSI, got {data.shape}")
    return remove_phase_slope(data)
