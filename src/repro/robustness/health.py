"""Per-block health telemetry and the graceful-degradation policy.

Every ``Rim.process`` call (and therefore every ``StreamingRim`` block)
produces a :class:`HealthReport`: how much input was lost, which RX chains
are alive, how many antenna pairs the estimator could actually use, how
confident the alignment vote was, and what the input guard repaired.  A
serving layer watches these instead of parsing logs.

Degradation policy (:func:`apply_degradation`): when the usable pair count
falls below ``RimConfig.health_min_pairs`` the estimate is no longer
trustworthy — speed holds the last known-good value over moving samples
(a pedestrian does not teleport to a stop because an antenna died) and
heading is marked unresolved (NaN) rather than reported from noise.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.robustness.guard import GuardReport

logger = logging.getLogger(__name__)


@dataclass
class HealthReport:
    """Health of one processed trace / stream block.

    Attributes:
        n_samples: Packets processed (after guarding).
        n_chains: RX chains in the array.
        loss_rate: Lost-slot fraction over live chains.
        chain_liveness: (n_rx,) fraction of finite packets per chain.
        dead_chains: Chains masked out as dead.
        usable_pairs: Antenna pairs not touching a dead chain.
        usable_groups: Parallel-isometric groups with at least one usable pair.
        alignment_confidence: Mean best-group quality over moving samples
            (0 when nothing moved or nothing tracked).
        repairs: Nonzero guard repair counters.
        degraded: True when the degradation policy kicked in.
        heading_unresolved: True when headings were withheld as untrustworthy.
    """

    n_samples: int
    n_chains: int
    loss_rate: float = 0.0
    chain_liveness: Optional[np.ndarray] = None
    dead_chains: List[int] = field(default_factory=list)
    usable_pairs: int = 0
    usable_groups: int = 0
    alignment_confidence: float = 0.0
    repairs: Dict[str, int] = field(default_factory=dict)
    degraded: bool = False
    heading_unresolved: bool = False

    @property
    def ok(self) -> bool:
        """True when the block needed neither repairs nor degradation."""
        return not self.degraded and not self.repairs and not self.dead_chains

    def summary(self) -> str:
        """A compact multi-line rendering for CLIs and logs."""
        if self.degraded:
            state = "DEGRADED"
        elif self.dead_chains or self.repairs:
            state = "impaired"
        else:
            state = "ok"
        lines = [
            f"health: {state} ({self.n_samples} packets, {self.n_chains} chains)",
            f"  loss rate        {self.loss_rate:.1%}",
        ]
        if self.chain_liveness is not None:
            live = " ".join(f"{v:.2f}" for v in np.asarray(self.chain_liveness))
            lines.append(f"  chain liveness   [{live}]")
        if self.dead_chains:
            lines.append(f"  dead chains      {self.dead_chains}")
        lines.append(
            f"  usable pairs     {self.usable_pairs} in {self.usable_groups} groups"
        )
        lines.append(f"  align confidence {self.alignment_confidence:.3f}")
        if self.repairs:
            fixes = ", ".join(f"{k}={v}" for k, v in self.repairs.items())
            lines.append(f"  repairs          {fixes}")
        if self.heading_unresolved:
            lines.append("  heading          unresolved (held back by policy)")
        return "\n".join(lines)


def build_health(
    n_samples: int,
    n_chains: int,
    guard_report: Optional[GuardReport],
    usable_pairs: int,
    usable_groups: int,
    tracks: Sequence = (),
    moving: Optional[np.ndarray] = None,
    extra_repairs: Optional[Dict[str, int]] = None,
) -> HealthReport:
    """Assemble a report from guard output and pipeline state."""
    report = HealthReport(
        n_samples=n_samples,
        n_chains=n_chains,
        usable_pairs=usable_pairs,
        usable_groups=usable_groups,
    )
    if guard_report is not None:
        report.loss_rate = guard_report.loss_rate
        report.chain_liveness = guard_report.chain_liveness
        report.dead_chains = list(guard_report.dead_chains)
        report.repairs = guard_report.repairs()
    if extra_repairs:
        merged = dict(report.repairs)
        for key, value in extra_repairs.items():
            merged[key] = merged.get(key, 0) + value
        report.repairs = {k: v for k, v in merged.items() if v}
    report.alignment_confidence = alignment_confidence(tracks, moving)
    return report


def alignment_confidence(
    tracks: Sequence, moving: Optional[np.ndarray] = None
) -> float:
    """Mean best-track quality over moving samples (0 if untracked/still)."""
    if not tracks:
        return 0.0
    quality = np.stack([np.asarray(t.quality, dtype=np.float64) for t in tracks])
    quality = np.nan_to_num(quality, nan=0.0)
    best = quality.max(axis=0)
    if moving is not None:
        moving = np.asarray(moving, dtype=bool)
        if not moving.any():
            return 0.0
        best = best[moving]
    return float(best.mean()) if best.size else 0.0


def apply_degradation(
    motion,
    health: HealthReport,
    min_pairs: int,
    last_good_speed: float = 0.0,
):
    """Enforce the degradation policy on a MotionEstimate.

    When fewer than ``min_pairs`` antenna pairs are usable, returns a copy
    of ``motion`` whose speed holds ``last_good_speed`` over moving samples
    and whose heading is entirely NaN; marks the health report accordingly.
    Otherwise returns ``motion`` unchanged.
    """
    if health.usable_pairs >= min_pairs:
        return motion
    logger.warning(
        "degradation policy engaged: %d usable pairs < %d; holding speed "
        "%.3f m/s and withholding headings",
        health.usable_pairs,
        min_pairs,
        float(last_good_speed),
    )
    health.degraded = True
    health.heading_unresolved = True
    speed = np.where(motion.moving, float(last_good_speed), 0.0)
    heading = np.full(motion.heading.shape, np.nan)
    return replace(motion, speed=speed, heading=heading)
