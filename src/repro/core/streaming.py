"""Streaming RIM: bounded-memory, block-incremental motion estimation.

The paper's deployment is a real-time C++ system (§5, §6.2.9; ~6% CPU on
a Surface Pro).  This module provides the equivalent online interface on
top of the batch kernels: CSI packets are pushed one at a time; every
``block_seconds`` the estimator reprocesses the new block plus a trailing
context window (long enough to cover the alignment-lag window W and the
virtual-antenna aperture V) and emits the motion increments for the new
samples only.

Memory is bounded by context + block regardless of trace length, and
latency equals the block length.  The streamed cumulative distance matches
the offline estimate up to block-boundary effects (verified in tests).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs
from repro.obs.provenance import SampleProvenance, block_breakdown, observe_breakdown
from repro.arrays.geometry import AntennaArray
from repro.channel.sampler import CsiTrace
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.core.sanitize import remove_phase_slope
from repro.motionsim.trajectory import Trajectory
from repro.perf.streamcache import StreamAlignmentCache
from repro.robustness.guard import GuardError, StreamGuard
from repro.robustness.health import HealthReport

logger = logging.getLogger(__name__)


@dataclass
class MotionUpdate:
    """Incremental output for one completed block.

    Attributes:
        times: (B,) timestamps of the block's samples.
        speed: (B,) speed estimates, m/s.
        heading: (B,) device-frame headings, radians (NaN = unresolved).
        moving: (B,) movement mask.
        block_distance: Distance covered within this block, meters.
        total_distance: Cumulative distance since the stream started.
        health: Health telemetry for this block (loss, liveness, repairs,
            degradation) — None only when the guard is off and the
            estimator produced no report.
        stats: Per-block instrumentation (wall time, per-stage spans, and
            — when the block-completing sample carried a provenance
            context — a ``"provenance"`` wire/queue-wait/kernel/emit
            latency breakdown) when :mod:`repro.obs` is enabled; None
            otherwise.
    """

    times: np.ndarray
    speed: np.ndarray
    heading: np.ndarray
    moving: np.ndarray
    block_distance: float
    total_distance: float
    health: Optional[HealthReport] = None
    stats: Optional[Dict[str, Any]] = None


class StreamingRim:
    """Online wrapper around :class:`~repro.core.rim.Rim`.

    Args:
        array: The receive antenna array.
        sampling_rate: CSI packet rate, Hz.
        config: RIM configuration (shared with the batch estimator).
        block_seconds: Emission cadence (and latency).
        carrier_wavelength: Carrier wavelength (for CsiTrace metadata).
    """

    def __init__(
        self,
        array: AntennaArray,
        sampling_rate: float,
        config: Optional[RimConfig] = None,
        block_seconds: float = 1.0,
        carrier_wavelength: float = 0.0516,
    ):
        if sampling_rate <= 0:
            raise ValueError("sampling_rate must be positive")
        if block_seconds <= 0:
            raise ValueError("block_seconds must be positive")
        self.array = array
        self.sampling_rate = float(sampling_rate)
        self.config = config or RimConfig()
        self.carrier_wavelength = carrier_wavelength

        self.block_samples = max(4, int(round(block_seconds * sampling_rate)))
        # Context must cover the lag window, the virtual aperture, and the
        # movement-detection lag so block-local processing sees the same
        # neighborhoods the offline pass would.
        movement_lag = int(round(self.config.movement_lag_seconds * sampling_rate))
        self.context_samples = (
            self.config.max_lag + self.config.virtual_window + movement_lag
        )

        self._rim = Rim(self.config)
        # Cross-block TRRS row reuse: the previous block's base-alignment
        # rows for the retained context window are seeded into the next
        # block's kernel store, so only rows involving freshly pushed
        # samples are computed (invalidated whenever the guard repairs or
        # resamples the buffer — see Rim._stream_cache_safe).
        self._align_cache = (
            StreamAlignmentCache() if self.config.stream_reuse else None
        )
        self._buffer_offset = 0  # global stream index of self._packets[0]
        # Packet-level guard: the block buffer must stay strictly monotonic
        # (a non-monotonic dt corrupts block distance), so duplicates and
        # late packets are rejected at the door rather than mid-block.
        self._guard = StreamGuard(policy=self.config.guard_policy)
        self._packets: List[np.ndarray] = []
        # Ingest-fused sanitize: phase sanitization is per-sample, so each
        # admitted packet is sanitized exactly once on arrival instead of
        # once per block it appears in (a context-window sample is
        # reprocessed by every block that retains it).  _sanitized is
        # parallel to _packets and trimmed identically; the estimator
        # falls back to its own sanitize pass whenever the fused view
        # cannot be trusted (guard repairs, pending loss interpolation).
        self._fuse_sanitize = bool(self.config.sanitize)
        self._sanitized: List[np.ndarray] = []
        self._times: List[float] = []
        # Parallel to _packets: the provenance context each admitted sample
        # arrived with (None when tracing is off) — trimmed identically.
        self._prov: List[Optional[SampleProvenance]] = []
        self._pending_start = 0  # buffer index where unreported samples begin
        self._total_distance = 0.0
        self._n_pushed = 0
        self._last_good_speed = 0.0
        self._clock_resamples = 0
        self._blocks_emitted = 0
        self._samples_emitted = 0

    @property
    def total_distance(self) -> float:
        """Cumulative streamed distance, meters."""
        return self._total_distance

    @property
    def buffered_samples(self) -> int:
        return len(self._packets)

    @property
    def pending_samples(self) -> int:
        """Admitted samples not yet covered by an emitted update."""
        return len(self._packets) - self._pending_start

    @property
    def blocks_emitted(self) -> int:
        """Updates emitted so far (the serving layer's block counter)."""
        return self._blocks_emitted

    @property
    def samples_emitted(self) -> int:
        """Samples covered by emitted updates (throughput accounting)."""
        return self._samples_emitted

    def push(
        self,
        packet: np.ndarray,
        timestamp: Optional[float] = None,
        provenance: Optional[SampleProvenance] = None,
    ):
        """Feed one CSI packet; returns a MotionUpdate when a block completes.

        Non-monotonic, duplicate, or non-finite timestamps are handled by
        the stream guard according to ``config.guard_policy``: rejected
        quietly under ``"repair"``/``"drop"`` (counted in the next block's
        health report) or raised as :class:`GuardError` under ``"raise"``.

        Args:
            packet: (n_rx, n_tx, S) complex CFRs for this packet (NaN for a
                lost packet slot).
            timestamp: Packet time; defaults to n / sampling_rate.
            provenance: Optional trace context riding this sample; resolved
                into a latency breakdown when its block emits (tracing only
                — never consulted by the numerics).

        Returns:
            A :class:`MotionUpdate` for the newly completed block, or None.
        """
        packet = np.asarray(packet)
        if packet.ndim != 3 or packet.shape[0] != self.array.n_antennas:
            raise ValueError(
                f"packet must be (n_rx={self.array.n_antennas}, n_tx, S), "
                f"got {packet.shape}"
            )
        if timestamp is None:
            timestamp = self._n_pushed / self.sampling_rate
        admitted = self._guard.admit(packet, float(timestamp))
        if admitted is None:
            return None
        packet, timestamp = admitted
        self._packets.append(packet)
        if self._fuse_sanitize:
            self._sanitized.append(self._sanitize_packet(packet))
        self._times.append(timestamp)
        self._prov.append(provenance if obs.enabled() else None)
        self._n_pushed += 1

        pending = len(self._packets) - self._pending_start
        if pending >= self.block_samples:
            return self._emit_block()
        return None

    def flush(self):
        """Process whatever remains in the buffer (end of stream)."""
        if len(self._packets) - self._pending_start == 0:
            return None
        return self._emit_block(final=True)

    # -- checkpoint / resume ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Everything needed to resume this stream bit-identically.

        Captures the retained packet buffer (context window + pending
        samples), the global buffer offset, the motion accumulator and
        degradation state, the cumulative emission counters, the stream
        guard's admission state, and the cross-block alignment cache.
        :class:`~repro.core.rim.Rim` itself holds no cross-call state, so
        config + array (which the caller must reconstruct the object
        with) complete the picture.  Arrays are copied; the snapshot
        stays valid as the stream moves on.
        """
        packets = (
            np.stack(self._packets, axis=0).astype(np.complex64)
            if self._packets
            else None
        )
        sanitized = (
            np.stack(self._sanitized, axis=0)
            if self._fuse_sanitize and self._sanitized
            else None
        )
        return {
            "version": 1,
            "packets": packets,
            "sanitized": sanitized,
            "times": np.asarray(self._times, dtype=np.float64),
            "pending_start": int(self._pending_start),
            "buffer_offset": int(self._buffer_offset),
            "total_distance": float(self._total_distance),
            "n_pushed": int(self._n_pushed),
            "last_good_speed": float(self._last_good_speed),
            "clock_resamples": int(self._clock_resamples),
            "blocks_emitted": int(self._blocks_emitted),
            "samples_emitted": int(self._samples_emitted),
            "guard": self._guard.state_dict(),
            "align_cache": (
                None if self._align_cache is None else self._align_cache.state_dict()
            ),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output into this (compatible) stream.

        The receiving object must be built with the same array, sampling
        rate, and config as the checkpointed one — geometry mismatches
        are rejected, semantic config differences are the caller's
        responsibility.  Cumulative counters (``blocks_emitted``,
        ``samples_emitted``, ``total_distance``, pushed/pending
        accounting) are restored too, so a resumed session keeps
        reporting stream-lifetime totals rather than restarting from
        zero.
        """
        version = int(state.get("version", 0))
        if version != 1:
            raise ValueError(
                f"unsupported StreamingRim state version {version} "
                "(this build reads version 1)"
            )
        packets = state["packets"]
        if packets is None:
            restored: List[np.ndarray] = []
        else:
            packets = np.asarray(packets)
            if packets.ndim != 4 or packets.shape[1] != self.array.n_antennas:
                raise ValueError(
                    f"checkpoint buffer shape {packets.shape} does not match "
                    f"an (n, n_rx={self.array.n_antennas}, n_tx, S) stream"
                )
            restored = [
                packets[k].astype(np.complex64) for k in range(packets.shape[0])
            ]
        times = np.asarray(state["times"], dtype=np.float64)
        if times.shape != (len(restored),):
            raise ValueError(
                f"checkpoint holds {len(restored)} packets but "
                f"{times.size} timestamps"
            )
        self._packets = restored
        # Restore the ingest-sanitized cache when the checkpoint carries a
        # matching one; otherwise (older checkpoint, sanitize toggled on
        # after the snapshot) recompute it — sanitization is per-sample,
        # so the rebuilt cache is bit-identical to an uninterrupted stream.
        if self._fuse_sanitize:
            sanitized = state.get("sanitized")
            usable = (
                restored
                and sanitized is not None
                and np.asarray(sanitized).shape
                == (len(restored), *restored[0].shape)
            )
            if usable:
                sanitized = np.asarray(sanitized)
                self._sanitized = [
                    sanitized[k].astype(np.complex64) for k in range(len(restored))
                ]
            else:
                self._sanitized = [self._sanitize_packet(p) for p in restored]
        else:
            self._sanitized = []
        self._times = [float(t) for t in times]
        # Provenance contexts are transient (live latency only) and are
        # deliberately not checkpointed; restored samples carry none.
        self._prov = [None] * len(restored)
        self._pending_start = int(state["pending_start"])
        self._buffer_offset = int(state["buffer_offset"])
        self._total_distance = float(state["total_distance"])
        self._n_pushed = int(state["n_pushed"])
        self._last_good_speed = float(state["last_good_speed"])
        self._clock_resamples = int(state["clock_resamples"])
        self._blocks_emitted = int(state["blocks_emitted"])
        self._samples_emitted = int(state["samples_emitted"])
        self._guard.load_state_dict(state["guard"])
        cache_state = state.get("align_cache")
        if self._align_cache is not None:
            if cache_state is None:
                self._align_cache.reset()
            else:
                self._align_cache.load_state_dict(cache_state)
        # A checkpoint taken with stream_reuse on, loaded into a stream
        # with it off, is fine: the cache is a pure accelerator.

    def reset(self) -> None:
        """Return to the just-constructed state for a fresh stream.

        Clears the packet buffer, motion accumulator, emission counters,
        guard watermark, and — coherently — the perf row cache, so a
        replay can reuse this object without leaking state (previously
        only reachable by rebuilding it).
        """
        self._packets = []
        self._sanitized = []
        self._times = []
        self._prov = []
        self._pending_start = 0
        self._buffer_offset = 0
        self._total_distance = 0.0
        self._n_pushed = 0
        self._last_good_speed = 0.0
        self._clock_resamples = 0
        self._blocks_emitted = 0
        self._samples_emitted = 0
        self._guard = StreamGuard(policy=self.config.guard_policy)
        if self._align_cache is not None:
            self._align_cache.reset()

    # -- internals ---------------------------------------------------------

    def _sanitize_packet(self, packet: np.ndarray) -> np.ndarray:
        """Sanitize one admitted packet at ingest (fused-sanitize path).

        The packet is cast to complex64 — the dtype the block path feeds
        :class:`~repro.channel.sampler.CsiTrace` — and sanitized with the
        same per-(rx, tx)-vector math a whole-block ``sanitize_trace``
        applies (slope estimation and ramp removal have no cross-sample
        coupling).  The result agrees with the block pass to complex64
        round-off (the vectorized block multiply rounds differently at
        SIMD-lane boundaries) and, crucially, is computed exactly once:
        every block that retains this sample sees the identical bits, so
        cross-block TRRS cache cells and checkpoint round-trips stay
        bit-consistent.
        """
        out = remove_phase_slope(np.ascontiguousarray(packet, dtype=np.complex64))
        obs.add("sanitize.samples", 1)
        return out

    def _emit_block(self, final: bool = False) -> MotionUpdate:
        """Process the buffer and emit the new samples, timing the block.

        Per-block latency (the real-time budget: it must stay under
        ``block_seconds`` to keep up with the packet rate, §5) is recorded
        in the ``stream.block_latency_s`` histogram and attached to the
        update's ``stats`` when :mod:`repro.obs` is enabled.

        When the block-completing sample carried a provenance context,
        the update's stats also get a ``"provenance"`` breakdown (wire /
        queue-wait / kernel / emit, summing exactly to ``e2e_s``) and the
        ``prov.*`` per-stage histograms are fed.
        """
        # The freshest pending sample is the one whose arrival completed
        # the block: its context measures current pipeline responsiveness.
        prov = None
        if obs.enabled():
            for ctx in reversed(self._prov[self._pending_start:]):
                if ctx is not None:
                    prov = ctx
                    break
        kernel_entry_s = time.perf_counter()
        span_cm = obs.span(
            "stream.block", n_buffered=len(self._packets), final=final
        )
        root = span_cm.__enter__()
        try:
            update = self._process_block(final)
        finally:
            span_cm.__exit__(None, None, None)
        kernel_exit_s = time.perf_counter()
        self._blocks_emitted += 1
        self._samples_emitted += int(update.times.size)
        if root is not None:
            obs.add("stream.blocks", 1)
            obs.add("stream.samples_emitted", int(update.times.size))
            obs.observe(
                "stream.block_latency_s", root.duration,
                bounds=obs.LATENCY_BOUNDS_S,
            )
            obs.set_gauge("stream.last_block_latency_s", root.duration)
            update.stats = {"block_latency_s": root.duration, **obs.span_stats(root)}
            if prov is not None:
                breakdown = block_breakdown(
                    prov,
                    kernel_entry_s,
                    kernel_exit_s,
                    time.perf_counter(),
                    n_samples=int(update.times.size),
                )
                observe_breakdown(breakdown)
                update.stats["provenance"] = breakdown
        return update

    def _process_block(self, final: bool = False) -> MotionUpdate:
        data = np.stack(self._packets, axis=0)
        times = np.asarray(self._times)
        t = data.shape[0]
        start_new = self._pending_start
        times, resampled = self._repair_clock(times)
        if resampled and self._align_cache is not None:
            # The clock repair changes nothing in the CSI data, but it marks
            # a stream whose buffer composition we no longer trust to match
            # the previous block sample for sample.
            self._align_cache.clear()

        trace = CsiTrace(
            data=data.astype(np.complex64),
            times=times,
            array=self.array,
            trajectory=_placeholder_trajectory(times),
            tx_positions=np.zeros((data.shape[2], 2)),
            carrier_wavelength=self.carrier_wavelength,
        )
        # Clock resampling rewrites timestamps only — the CSI samples are
        # untouched — so the ingest-sanitized view stays valid across it.
        presanitized = (
            np.stack(self._sanitized, axis=0)
            if self._fuse_sanitize and len(self._sanitized) == t
            else None
        )
        result = self._rim.process(
            trace,
            stream_cache=self._align_cache,
            stream_offset=self._buffer_offset,
            presanitized=presanitized,
        )

        motion = result.motion
        health = result.health
        if health is not None:
            repairs = dict(health.repairs)
            for key, value in self._guard.drain_counters().items():
                repairs[key] = repairs.get(key, 0) + value
            if resampled:
                repairs["clock_resampled"] = repairs.get("clock_resampled", 0) + 1
            health.repairs = repairs

        # Graceful degradation: a block with too little usable geometry
        # holds the last known-good speed instead of the batch default of
        # zero — motion does not stop because an antenna died mid-stream.
        speed = motion.speed
        if health is not None and health.degraded:
            speed = np.where(motion.moving, self._last_good_speed, 0.0)
        else:
            good = motion.moving & np.isfinite(motion.speed)
            if good.any():
                self._last_good_speed = float(motion.speed[np.nonzero(good)[0][-1]])

        sel = slice(start_new, t)
        dt = np.diff(times, prepend=times[0])
        dt[0] = 0.0
        speed_used = np.where(motion.moving & np.isfinite(speed), speed, 0.0)
        block_distance = float(np.sum(speed_used[sel] * dt[sel]))
        self._total_distance += block_distance

        update = MotionUpdate(
            times=times[sel].copy(),
            speed=speed[sel].copy(),
            heading=motion.heading[sel].copy(),
            moving=motion.moving[sel].copy(),
            block_distance=block_distance,
            total_distance=self._total_distance,
            health=health,
        )

        # Trim the buffer down to the context window.
        keep_from = max(0, t - self.context_samples)
        self._packets = self._packets[keep_from:]
        self._sanitized = self._sanitized[keep_from:]
        self._times = self._times[keep_from:]
        self._prov = self._prov[keep_from:]
        self._pending_start = t - keep_from
        self._buffer_offset += keep_from
        return update

    def _repair_clock(self, times: np.ndarray):
        """Snap drifted timestamps onto the nominal sampling grid.

        The batch guard cannot see the nominal rate from inside a block
        (the placeholder trajectory's clock IS the drifted clock), so the
        stream wrapper — which knows ``sampling_rate`` — checks drift here.
        """
        cfg = self.config
        if cfg.guard_policy == "off" or times.size < 2:
            return times, False
        median_dt = float(np.median(np.diff(times)))
        drift = median_dt * self.sampling_rate - 1.0
        if abs(drift) <= cfg.guard_max_drift:
            return times, False
        if cfg.guard_policy == "raise":
            raise GuardError(
                f"stream clock drifted {drift * 1e6:.0f} ppm from the nominal "
                f"{self.sampling_rate:g} Hz grid"
            )
        self._clock_resamples += 1
        logger.warning(
            "stream clock drifted %.0f ppm; resampled block onto the nominal "
            "%g Hz grid (resample #%d)",
            drift * 1e6,
            self.sampling_rate,
            self._clock_resamples,
        )
        return times[0] + np.arange(times.size) / self.sampling_rate, True


def _placeholder_trajectory(times: np.ndarray) -> Trajectory:
    """A zero trajectory: Rim only reads its clock, never its positions."""
    n = times.size
    return Trajectory(
        times=times,
        positions=np.zeros((n, 2)),
        orientations=np.zeros(n),
    )
