"""Named streaming sessions behind bounded ingest queues.

A :class:`ServeSession` wraps one :class:`~repro.core.streaming.StreamingRim`
with the pieces a serving layer needs and the estimator itself must not
know about:

* a **bounded ingest queue** — producers can run ahead of the estimator
  by at most ``queue_capacity`` packets;
* an explicit **backpressure policy** for a full queue:

  - ``"block"``: the producer pays — the offer call drains the queue
    through the estimator before admitting the packet (time spent is
    recorded as block latency);
  - ``"drop_oldest"``: the oldest queued packet is shed to make room
    (bounded staleness, unbounded producers);
  - ``"reject"``: the incoming packet is refused and the producer told
    so (explicit upstream backpressure);

* **TTL idle tracking** so :class:`SessionManager` can evict sessions
  whose receiver went away.

Shed / reject / blocked counts are folded into the ``repairs`` dict of
the next emitted :class:`~repro.robustness.health.HealthReport`, so a
dashboard watching session health sees load shedding next to guard
repairs.  When :mod:`repro.obs` is enabled, each session additionally
publishes queue-depth gauges, shed counters, and block-latency
histograms tagged by session id.

Thread model: different sessions are fully independent; one session must
be driven by one producer thread at a time (single-producer).  The
manager's own bookkeeping is lock-protected.
"""

from __future__ import annotations

import logging
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.arrays.geometry import AntennaArray
from repro.core.config import RimConfig
from repro.core.streaming import MotionUpdate, StreamingRim
from repro.obs.flight import FLIGHT
from repro.obs.provenance import SampleProvenance
from repro.store.writer import TraceWriter

logger = logging.getLogger(__name__)

BACKPRESSURE_POLICIES = ("block", "drop_oldest", "reject")

# Offer outcomes (returned by ServeSession.offer / SessionManager.push).
PUSH_ACCEPTED = "accepted"
PUSH_BLOCKED = "blocked"  # accepted after draining a full queue
PUSH_SHED_OLDEST = "shed_oldest"  # accepted; the oldest queued packet shed
PUSH_REJECTED = "rejected"  # refused; producer must back off


@dataclass
class ServeConfig:
    """Serving-side knobs of one session (estimator knobs live in RimConfig).

    Attributes:
        queue_capacity: Maximum packets a producer may queue ahead of the
            estimator before the backpressure policy engages.
        backpressure: Full-queue policy: ``"block"``, ``"drop_oldest"``,
            or ``"reject"``.
        ttl_seconds: Idle time after which :meth:`SessionManager.evict_idle`
            flushes and removes the session.
        block_seconds: Streaming emission cadence (passed to
            :class:`~repro.core.streaming.StreamingRim`).
    """

    queue_capacity: int = 256
    backpressure: str = "block"
    ttl_seconds: float = 300.0
    block_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if self.block_seconds <= 0:
            raise ValueError("block_seconds must be positive")


def _tagged(name: str, session: str) -> str:
    """Metric name carrying a session label, e.g. ``serve.depth{session=a}``."""
    return f"{name}{{session={session}}}"


class ServeSession:
    """One named receiver stream: bounded queue + StreamingRim + telemetry.

    Args:
        name: Session id (unique within a manager).
        array: Receive antenna array of this receiver.
        sampling_rate: CSI packet rate, Hz.
        rim_config: Estimator configuration.
        serve_config: Queue / backpressure / TTL configuration.
        carrier_wavelength: Carrier wavelength (CsiTrace metadata).
        clock: Monotonic time source (injectable for TTL tests).
        recorder: Optional :class:`~repro.store.writer.TraceWriter` —
            record-on-ingest: every offered packet is appended to the
            store *before* backpressure or guarding touches it, so the
            recording is the ground truth of what the receiver sent
            (replaying it reproduces the ingest, including the packets a
            loaded server shed).  Closed by :meth:`flush`.
    """

    def __init__(
        self,
        name: str,
        array: AntennaArray,
        sampling_rate: float,
        rim_config: Optional[RimConfig] = None,
        serve_config: Optional[ServeConfig] = None,
        carrier_wavelength: float = 0.0516,
        clock: Callable[[], float] = time.monotonic,
        recorder: Optional[TraceWriter] = None,
    ):
        self.name = name
        self.serve_config = serve_config or ServeConfig()
        self.stream = StreamingRim(
            array,
            sampling_rate,
            rim_config,
            block_seconds=self.serve_config.block_seconds,
            carrier_wavelength=carrier_wavelength,
        )
        self.recorder = recorder
        self._clock = clock
        self.created_at = clock()
        self.last_activity = self.created_at
        self._queue: Deque[
            Tuple[np.ndarray, Optional[float], Optional[SampleProvenance]]
        ] = deque()
        self._degrade_dumped = False
        self._updates: List[MotionUpdate] = []
        # Serving-side repairs folded into the next health report.
        self._pending_repairs: Dict[str, int] = {}
        self.n_offered = 0
        self.n_processed = 0
        self.n_shed = 0
        self.n_rejected = 0
        self.n_blocked = 0
        self.n_updates = 0
        self.degraded_blocks = 0
        self.block_wait_s = 0.0

    # -- queue state --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Packets queued ahead of the estimator right now."""
        return len(self._queue)

    def idle_seconds(self, now: Optional[float] = None) -> float:
        """Seconds since the last offer/poll touched this session."""
        return (self._clock() if now is None else now) - self.last_activity

    @property
    def total_distance(self) -> float:
        return self.stream.total_distance

    # -- ingest -------------------------------------------------------------

    def offer(
        self,
        packet: np.ndarray,
        timestamp: Optional[float] = None,
        provenance: Optional[SampleProvenance] = None,
    ) -> str:
        """Enqueue one packet, honoring the backpressure policy.

        Returns one of :data:`PUSH_ACCEPTED`, :data:`PUSH_BLOCKED`
        (admitted after a blocking drain), :data:`PUSH_SHED_OLDEST`
        (admitted, oldest queued packet shed), or :data:`PUSH_REJECTED`
        (refused — the producer must retry later or drop).

        While :mod:`repro.obs` is enabled every admitted packet carries a
        provenance context: the caller's (stamped ``ingest`` here), or a
        fresh one minted at this boundary (``wire_s`` = 0) so in-process
        producers and fault-lossy wire paths still yield a full latency
        breakdown on every update.
        """
        self.last_activity = self._clock()
        self.n_offered += 1
        obs.add(_tagged("serve.offered", self.name))
        if obs.enabled():
            if provenance is None:
                provenance = SampleProvenance(f"{self.name}:{self.n_offered - 1}")
            provenance.stamp_ingest()
        else:
            provenance = None
        if self.recorder is not None:
            self.recorder.append(np.asarray(packet), timestamp)
        status = PUSH_ACCEPTED
        if len(self._queue) >= self.serve_config.queue_capacity:
            policy = self.serve_config.backpressure
            if policy == "reject":
                self.n_rejected += 1
                self._tally("queue_rejected")
                obs.add(_tagged("serve.rejected", self.name))
                FLIGHT.record(
                    "backpressure", "serve", session=self.name, action="reject"
                )
                self._record_depth()
                return PUSH_REJECTED
            if policy == "drop_oldest":
                self._queue.popleft()
                self.n_shed += 1
                self._tally("queue_shed_oldest")
                obs.add(_tagged("serve.shed_oldest", self.name))
                FLIGHT.record(
                    "backpressure", "serve", session=self.name, action="shed_oldest"
                )
                status = PUSH_SHED_OLDEST
            else:  # block: consume the backlog before admitting more
                t0 = time.perf_counter()
                self.drain()
                waited = time.perf_counter() - t0
                self.n_blocked += 1
                self.block_wait_s += waited
                self._tally("queue_blocked")
                obs.observe(
                    _tagged("serve.block_wait_s", self.name),
                    waited,
                    bounds=obs.LATENCY_BOUNDS_S,
                )
                status = PUSH_BLOCKED
        self._queue.append((packet, timestamp, provenance))
        self._record_depth()
        return status

    def drain(self, max_packets: Optional[int] = None) -> List[MotionUpdate]:
        """Feed queued packets to the estimator; return any new updates."""
        n = len(self._queue) if max_packets is None else min(max_packets, len(self._queue))
        new: List[MotionUpdate] = []
        for _ in range(n):
            packet, timestamp, provenance = self._queue.popleft()
            if provenance is not None:
                provenance.stamp_dequeue()
            update = self.stream.push(packet, timestamp, provenance=provenance)
            self.n_processed += 1
            if update is not None:
                self._absorb(update)
                new.append(update)
        self._record_depth()
        return new

    def poll(self) -> List[MotionUpdate]:
        """Drain the queue and hand back every update since the last poll."""
        self.last_activity = self._clock()
        self.drain()
        out = self._updates
        self._updates = []
        return out

    def flush(self) -> List[MotionUpdate]:
        """End of stream: drain, flush the estimator, return all updates.

        Also finalizes the ingest recording (if any): the store's
        manifest is marked closed and its tail chunk drained.
        """
        self.drain()
        final = self.stream.flush()
        if final is not None:
            self._absorb(final)
        if self.recorder is not None:
            self.recorder.close()
        out = self._updates
        self._updates = []
        return out

    def adopt(
        self,
        stream: StreamingRim,
        n_ingested: int,
        updates: Optional[List[MotionUpdate]] = None,
        skip_updates: int = 0,
    ) -> int:
        """Transplant a replayed stream into this session (shard failover).

        The shard fleet resumes a dead worker's session by replaying its
        ingest recording through a fresh
        :class:`~repro.store.checkpoint.CheckpointedReplayer` and handing
        the replayed stream — plus the updates the replay regenerated —
        to a brand-new session on a surviving worker.  The first
        ``skip_updates`` regenerated updates were already delivered to
        the previous owner's consumers and are discarded; the rest are
        queued for the next :meth:`poll` so nothing is lost or repeated.

        Args:
            stream: The replayed estimator (mid-stream, not flushed).
            n_ingested: Packets the recording replayed (becomes the
                honest ``offered``/``processed`` baseline).
            updates: Every update the replay regenerated, in order.
            skip_updates: How many of ``updates`` were already delivered.

        Returns:
            The number of updates queued for delivery.
        """
        updates = list(updates or [])
        if not 0 <= skip_updates <= len(updates):
            raise ValueError(
                f"skip_updates {skip_updates} out of range for "
                f"{len(updates)} replayed updates"
            )
        self.stream = stream
        self.n_offered = int(n_ingested)
        self.n_processed = int(n_ingested)
        self.n_updates = len(updates)
        self._updates = updates[skip_updates:]
        self.last_activity = self._clock()
        return len(self._updates)

    def note_repair(self, key: str, n: int = 1) -> None:
        """Record an ingest-side repair (e.g. ``net_*`` transport faults).

        Counts fold into the ``repairs`` dict of the next emitted
        :class:`~repro.robustness.health.HealthReport`, exactly like the
        session's own backpressure tallies.
        """
        if n:
            self._tally(key, n)

    def stats(self) -> Dict[str, object]:
        """A flat serving-health snapshot (one table row per session)."""
        return {
            "session": self.name,
            "offered": self.n_offered,
            "processed": self.n_processed,
            "queued": self.queue_depth,
            "blocked": self.n_blocked,
            "shed": self.n_shed,
            "rejected": self.n_rejected,
            "updates": self.n_updates,
            "degraded_blocks": self.degraded_blocks,
            "distance_m": self.stream.total_distance,
            "block_wait_s": self.block_wait_s,
        }

    # -- internals ----------------------------------------------------------

    def _tally(self, key: str, n: int = 1) -> None:
        self._pending_repairs[key] = self._pending_repairs.get(key, 0) + n
        obs.add(_tagged("serve.repairs", self.name), n)

    def _record_depth(self) -> None:
        obs.set_gauge(_tagged("serve.queue_depth", self.name), len(self._queue))

    def _absorb(self, update: MotionUpdate) -> None:
        """Fold serving-side telemetry into an estimator update."""
        self.n_updates += 1
        if update.health is not None:
            if self._pending_repairs:
                merged = dict(update.health.repairs)
                for key, value in self._pending_repairs.items():
                    merged[key] = merged.get(key, 0) + value
                update.health.repairs = merged
                self._pending_repairs = {}
            if update.health.degraded:
                self.degraded_blocks += 1
                FLIGHT.record(
                    "guard_escalation",
                    "serve",
                    session=self.name,
                    degraded_blocks=self.degraded_blocks,
                    repairs=dict(update.health.repairs),
                )
                if not self._degrade_dumped:
                    # One artifact per session: the first escalation is
                    # the interesting one, a flapping guard must not
                    # spray dump files.
                    self._degrade_dumped = True
                    FLIGHT.auto_dump(f"guard-escalation-{self.name}")
        if update.stats is not None:
            obs.observe(
                _tagged("serve.block_latency_s", self.name),
                float(update.stats.get("block_latency_s", 0.0)),
                bounds=obs.LATENCY_BOUNDS_S,
            )
        self._updates.append(update)


class SessionManager:
    """Registry of named sessions: create / push / poll / evict.

    Eviction is cooperative: :meth:`evict_idle` runs on every
    :meth:`create` and may be called from a housekeeping loop; per-packet
    pushes never scan the registry.

    Args:
        rim_config: Default estimator config for new sessions.
        serve_config: Default serving config for new sessions.
        clock: Monotonic time source shared with sessions (injectable).
        record_dir: When set, every new session records its ingest into
            a chunked store at ``record_dir/<session-name>`` (see
            :class:`~repro.store.writer.TraceWriter`); replay later with
            ``python -m repro.cli replay`` or ``serve-sim --store-dir``.
        record_chunk_samples: Packets per recorded chunk file.  The
            shard fleet uses a small value so a killed worker loses at
            most one short chunk of un-synced tail.
    """

    def __init__(
        self,
        rim_config: Optional[RimConfig] = None,
        serve_config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        record_dir=None,
        record_chunk_samples: Optional[int] = None,
    ):
        self._rim_config = rim_config
        self._serve_config = serve_config or ServeConfig()
        self._clock = clock
        self.record_dir = None if record_dir is None else Path(record_dir)
        self.record_chunk_samples = record_chunk_samples
        self._sessions: Dict[str, ServeSession] = {}
        self._lock = threading.Lock()
        self.n_evicted = 0
        # Refresh queue-depth/session-count gauges at every registry
        # snapshot, so exporters see live values between pushes.  The
        # weakref collector unregisters itself once the manager is gone.
        ref = weakref.ref(self)

        def _collect() -> bool:
            manager = ref()
            if manager is None:
                return False
            manager._refresh_gauges()
            return True

        obs.METRICS.add_collector(_collect)

    def _refresh_gauges(self) -> None:
        if not obs.enabled():
            return
        with self._lock:
            sessions = list(self._sessions.values())
        obs.set_gauge("serve.sessions", len(sessions))
        for session in sessions:
            obs.set_gauge(
                _tagged("serve.queue_depth", session.name), session.queue_depth
            )

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def create(
        self,
        name: str,
        array: AntennaArray,
        sampling_rate: float,
        rim_config: Optional[RimConfig] = None,
        serve_config: Optional[ServeConfig] = None,
        carrier_wavelength: float = 0.0516,
    ) -> ServeSession:
        """Register a new session; evicts expired ones first.

        With a manager-level ``record_dir``, the session's ingest is
        recorded to ``record_dir/<name>``.
        """
        self.evict_idle()
        recorder = None
        if self.record_dir is not None:
            kwargs = {}
            if self.record_chunk_samples is not None:
                kwargs["chunk_samples"] = self.record_chunk_samples
            recorder = TraceWriter(
                self.record_dir / name,
                array,
                carrier_wavelength=carrier_wavelength,
                sampling_rate=sampling_rate,
                **kwargs,
            )
        session = ServeSession(
            name,
            array,
            sampling_rate,
            rim_config=rim_config or self._rim_config,
            serve_config=serve_config or self._serve_config,
            carrier_wavelength=carrier_wavelength,
            clock=self._clock,
            recorder=recorder,
        )
        return self.register(session)

    def register(self, session: ServeSession) -> ServeSession:
        """Install an externally built session (shard failover adoption).

        :meth:`create` builds and registers in one step; the shard
        worker instead rebuilds a session from a dead peer's recording
        (:meth:`ServeSession.adopt`) and registers the finished object.
        """
        with self._lock:
            if session.name in self._sessions:
                raise ValueError(f"session {session.name!r} already exists")
            self._sessions[session.name] = session
        obs.set_gauge("serve.sessions", len(self))
        FLIGHT.record("session", "serve", session=session.name, action="created")
        logger.info("session %s created", session.name, extra={"session": session.name})
        return session

    def get(self, name: str) -> ServeSession:
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise KeyError(f"unknown session {name!r}") from None

    def push(
        self,
        name: str,
        packet: np.ndarray,
        timestamp: Optional[float] = None,
        provenance: Optional[SampleProvenance] = None,
    ) -> str:
        """Offer one packet to a session; returns the offer status.

        ``provenance`` carries a wire-side trace context (minted at
        ``NetClient.send``); without one, the session mints its own at
        the ingest boundary while :mod:`repro.obs` is enabled.
        """
        status = self.get(name).offer(packet, timestamp, provenance=provenance)
        obs.add("serve.pushes")
        return status

    def poll(self, name: str) -> List[MotionUpdate]:
        """Drain a session and return its updates since the last poll."""
        return self.get(name).poll()

    def evict(self, name: str) -> List[MotionUpdate]:
        """Flush and remove one session; returns its final updates."""
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise KeyError(f"unknown session {name!r}")
        updates = session.flush()
        self.n_evicted += 1
        obs.add("serve.evictions")
        obs.set_gauge("serve.sessions", len(self))
        FLIGHT.record(
            "session", "serve", session=name, action="evicted",
            final_updates=len(updates),
        )
        logger.info(
            "session %s evicted (%d final updates)", name, len(updates),
            extra={"session": name},
        )
        return updates

    def evict_idle(self, now: Optional[float] = None) -> Dict[str, List[MotionUpdate]]:
        """Evict every session idle longer than its TTL.

        Returns:
            Final updates of each evicted session, keyed by name.
        """
        now = self._clock() if now is None else now
        with self._lock:
            expired = [
                name
                for name, s in self._sessions.items()
                if s.idle_seconds(now) > s.serve_config.ttl_seconds
            ]
        evicted: Dict[str, List[MotionUpdate]] = {}
        for name in expired:
            try:
                evicted[name] = self.evict(name)
            except KeyError:  # raced with an explicit evict
                pass
        return evicted

    def flush_all(self) -> Dict[str, List[MotionUpdate]]:
        """Flush every session in place (end of stream, no eviction)."""
        with self._lock:
            sessions = list(self._sessions.values())
        return {s.name: s.flush() for s in sessions}

    def stats(self) -> List[Dict[str, object]]:
        """Per-session serving-health rows, sorted by session name."""
        with self._lock:
            sessions = sorted(self._sessions.values(), key=lambda s: s.name)
        return [s.stats() for s in sessions]
