"""Network load generation: replay recorded traces over the socket.

:func:`run_net_load` turns ``serve-sim`` into an end-to-end network
benchmark: receiver traces (simulated, or read back from ``repro.store``
recordings) are streamed through a :class:`~repro.net.client.NetClient`
into a live :class:`~repro.net.server.NetServer`, optionally through a
:class:`~repro.net.faults.NetFaultPlan`, and the resulting
``MotionUpdate`` stream is compared bit-for-bit against an in-process
baseline.

The baseline is exact, not statistical: fault decisions are pure
functions of ``(seed, seq)``, so the set of samples that can ever reach
the server — :meth:`NetFaultPlan.delivered_seqs` — is known up front.
Feeding exactly those samples, in seq order, through an identically
configured in-process session must produce the identical motion stream;
any divergence is a transport-layer bug, not noise.  (Health reports are
excluded from the comparison — the networked run legitimately carries
extra ``net_*`` repair entries.)
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.sampler import CsiTrace
from repro.core.config import RimConfig
from repro.core.streaming import MotionUpdate
from repro.net.client import NetClient, NetClientConfig
from repro.net.faults import NetFaultPlan
from repro.net.server import NetServer, NetServerConfig
from repro.serve.session import ServeConfig, SessionManager


def updates_equal(
    a: Sequence[MotionUpdate], b: Sequence[MotionUpdate]
) -> bool:
    """True when two update streams carry identical motion content.

    Compares times/speed/heading/moving arrays bitwise (NaN == NaN) and
    the distance scalars exactly; health and stats are intentionally not
    compared (the networked stream adds ``net_*`` repairs).
    """
    if len(a) != len(b):
        return False
    for ua, ub in zip(a, b):
        if ua.times.shape != ub.times.shape:
            return False
        for fa, fb in (
            (ua.times, ub.times),
            (ua.speed, ub.speed),
            (ua.heading, ub.heading),
        ):
            if not np.array_equal(
                np.asarray(fa, dtype=np.float64),
                np.asarray(fb, dtype=np.float64),
                equal_nan=True,
            ):
                return False
        if not np.array_equal(
            np.asarray(ua.moving, dtype=bool), np.asarray(ub.moving, dtype=bool)
        ):
            return False
        if float(ua.block_distance) != float(ub.block_distance):
            return False
        if float(ua.total_distance) != float(ub.total_distance):
            return False
    return True


def baseline_updates(
    name: str,
    trace: CsiTrace,
    fault_plan: Optional[NetFaultPlan] = None,
    rim_config: Optional[RimConfig] = None,
    serve_config: Optional[ServeConfig] = None,
) -> List[MotionUpdate]:
    """The in-process reference: push exactly the deliverable samples.

    With a fault plan, only :meth:`NetFaultPlan.delivered_seqs` survive
    (drops and corruption are terminal; duplicates and reordering are
    repaired by the server); without one, every sample is pushed.
    """
    manager = SessionManager(rim_config=rim_config, serve_config=serve_config)
    manager.create(
        name,
        trace.array,
        trace.sampling_rate,
        carrier_wavelength=trace.carrier_wavelength,
    )
    n = trace.n_samples
    delivered = (
        fault_plan.delivered_seqs(n) if fault_plan is not None else range(n)
    )
    updates: List[MotionUpdate] = []
    for seq in range(n):
        if seq in delivered:
            manager.push(name, trace.data[seq], float(trace.times[seq]))
    updates.extend(manager.poll(name))
    updates.extend(manager.evict(name))
    return updates


def run_net_load(
    receivers: Sequence[Tuple[str, CsiTrace]],
    fault_plan: Optional[NetFaultPlan] = None,
    rim_config: Optional[RimConfig] = None,
    serve_config: Optional[ServeConfig] = None,
    net_config: Optional[NetServerConfig] = None,
    client_config: Optional[NetClientConfig] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    check_baseline: bool = True,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Dict[str, Any]:
    """Stream receiver traces through the network front-end.

    Args:
        receivers: ``(name, trace)`` pairs (from
            :func:`repro.serve.simulate.simulated_receivers` or
            :func:`~repro.serve.simulate.store_receivers`).
        fault_plan: Wire faults injected by each client; ``None`` = clean.
        rim_config, serve_config: Estimator / serving configuration
            (shared by the server and the baseline).
        net_config: Server transport config (ignored with ``host``).
        client_config: Client retry/backoff config.
        host, port: Send to an already-running server instead of an
            in-process loopback one (baseline checking then requires the
            remote server to share the estimator configuration).
        check_baseline: Compare each session's update stream against the
            in-process reference (:func:`updates_equal`).
        should_stop: Polled between samples; returning True ends each
            stream early but cleanly (BYE, estimator flush, final
            updates).  A stopped run skips the baseline comparison.

    Returns:
        A result dict: per-session transport/serving rows, an
        ``aggregate`` block (wall seconds, net ingest samples/s,
        reconnects, worst recovery time), per-client fault counters, and
        ``baseline_match`` (``None`` when unchecked).
    """
    own_server: Optional[NetServer] = None
    if host is None:
        own_server = NetServer(
            config=net_config or NetServerConfig(port=0),
            rim_config=rim_config,
            serve_config=serve_config,
        ).start()
        host = own_server.config.host
        port = own_server.port
    if port is None:
        raise ValueError("port is required when host is given")

    session_updates: Dict[str, List[MotionUpdate]] = {}
    fault_counters: Dict[str, Dict[str, int]] = {}
    n_sent = 0
    n_samples = 0
    n_reconnects = 0
    recovery_times: List[float] = []
    stopped = False
    t0 = time.perf_counter()
    try:
        for name, trace in receivers:
            if stopped:
                break
            client = NetClient(
                host,
                port,
                name,
                trace.array,
                trace.sampling_rate,
                sample_shape=tuple(trace.data.shape[1:]),
                carrier_wavelength=trace.carrier_wavelength,
                config=client_config,
                fault_plan=fault_plan,
            )
            client.connect()
            try:
                for k in range(trace.n_samples):
                    if should_stop is not None and should_stop():
                        stopped = True
                        break
                    client.send(float(trace.times[k]), trace.data[k])
                # Even a stopped stream says BYE: the session drains,
                # the estimator flushes, and the final updates arrive.
                session_updates[name] = client.finish()
            finally:
                client.close()
            n_samples += trace.n_samples
            n_sent += client.n_sent_frames
            n_reconnects += client.n_reconnects
            recovery_times.extend(client.recovery_times_s)
            fault_counters[name] = client.injector.counters()
        wall = time.perf_counter() - t0
        rows = (
            own_server.session_stats() if own_server is not None else []
        )
    finally:
        if own_server is not None:
            own_server.close()

    delivered = sum(int(r.get("processed", 0)) for r in rows)
    baseline_match: Optional[bool] = None
    if check_baseline and not stopped:
        baseline_match = all(
            updates_equal(
                session_updates[name],
                baseline_updates(
                    name,
                    trace,
                    fault_plan=fault_plan,
                    rim_config=rim_config,
                    serve_config=serve_config,
                ),
            )
            for name, trace in receivers
        )

    return {
        "sessions": rows,
        "updates": session_updates,
        "faults": fault_counters,
        "fault_plan": None if fault_plan is None else str(fault_plan),
        "baseline_match": baseline_match,
        "stopped_early": stopped,
        "aggregate": {
            "n_sessions": len(receivers),
            "n_samples": n_samples,
            "n_frames_sent": n_sent,
            "n_delivered": delivered,
            "wall_s": wall,
            "samples_per_second": (n_samples / wall) if wall > 0 else 0.0,
            "reconnects": n_reconnects,
            "recovery_s_max": max(recovery_times) if recovery_times else 0.0,
            "recovery_s_mean": (
                float(np.mean(recovery_times)) if recovery_times else 0.0
            ),
        },
    }


def render_net_table(result: Dict[str, Any]) -> str:
    """Human-readable transport + serving health table for one load run."""
    rows = result["sessions"]
    agg = result["aggregate"]
    header = (
        f"{'session':<8} {'sent':>7} {'deliv':>7} {'acked':>7} {'dups':>6} "
        f"{'gaps':>6} {'crc':>5} {'reconn':>7} {'blocks':>7} {'dist m':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row['session']):<8} {int(row['offered']):>7} "
            f"{int(row['processed']):>7} {int(row.get('acked', -1)):>7} "
            f"{int(row.get('net_dups', 0)):>6} {int(row.get('net_gaps', 0)):>6} "
            f"{int(row.get('net_crc', 0)):>5} {int(row.get('reconnects', 0)):>7} "
            f"{int(row['updates']):>7} {float(row['distance_m']):>8.3f}"
        )
    match = result.get("baseline_match")
    verdict = (
        "unchecked" if match is None else ("bit-identical" if match else "DIVERGED")
    )
    lines += [
        "-" * len(header),
        f"{agg['n_sessions']} sessions: {agg['n_samples']} samples in "
        f"{agg['wall_s'] * 1e3:.1f} ms wall "
        f"({agg['samples_per_second']:.0f} samples/s), "
        f"{agg['reconnects']} reconnects "
        f"(worst recovery {agg['recovery_s_max'] * 1e3:.1f} ms)",
        f"baseline: {verdict}",
    ]
    return "\n".join(lines)
