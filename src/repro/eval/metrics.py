"""Evaluation metrics shared by the experiments (§6.1).

The paper's accounting: distance errors are |estimated - true| per trace
and summarized as CDFs/medians; heading errors are the absolute angular
difference to the true direction; handwriting/tracking trajectory errors
use the minimum projection distance from each estimated location to the
ground-truth trajectory (their camera sync workaround, §6.3.1 — we keep
the same metric for comparability).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.env.geometry2d import point_segment_distance


def distance_error(estimated: float, truth: float) -> float:
    """Absolute moving-distance error, meters."""
    return float(abs(estimated - truth))


def heading_error_deg(estimated_rad: float, truth_deg: float) -> float:
    """Absolute heading error in degrees, wrapped to [0, 180]."""
    est_deg = np.rad2deg(estimated_rad)
    diff = (est_deg - truth_deg + 180.0) % 360.0 - 180.0
    return float(abs(diff))


def circular_mean(angles_rad: np.ndarray) -> float:
    """Mean direction of a set of angles (NaNs ignored)."""
    angles = np.asarray(angles_rad, dtype=np.float64)
    angles = angles[np.isfinite(angles)]
    if angles.size == 0:
        return float("nan")
    return float(np.arctan2(np.mean(np.sin(angles)), np.mean(np.cos(angles))))


def cdf(values: Sequence[float]) -> Dict[str, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return {"x": arr, "p": arr}
    p = np.arange(1, arr.size + 1) / arr.size
    return {"x": arr, "p": p}


def percentile_summary(values: Sequence[float]) -> Dict[str, float]:
    """median / mean / p90 / max of an error sample."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return {"median": float("nan"), "mean": float("nan"), "p90": float("nan"), "max": float("nan")}
    return {
        "median": float(np.median(arr)),
        "mean": float(arr.mean()),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
    }


def trajectory_projection_errors(estimated: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Min projection distance from each estimated point to the true path.

    Args:
        estimated: (N, 2) estimated positions.
        truth: (M, 2) ground-truth polyline.

    Returns:
        (N,) per-point distances.
    """
    estimated = np.atleast_2d(np.asarray(estimated, dtype=np.float64))
    truth = np.atleast_2d(np.asarray(truth, dtype=np.float64))
    if truth.shape[0] == 1:
        return np.linalg.norm(estimated - truth, axis=1)
    best = np.full(estimated.shape[0], np.inf)
    for k in range(truth.shape[0] - 1):
        d = point_segment_distance(estimated, truth[k], truth[k + 1])
        best = np.minimum(best, d)
    return best


def synchronized_position_errors(estimated: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-sample position error when both tracks share the time base."""
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimated.shape != truth.shape:
        raise ValueError(f"shape mismatch: {estimated.shape} vs {truth.shape}")
    return np.linalg.norm(estimated - truth, axis=1)


def detection_counts(
    detected: Sequence[bool], classified_ok: Sequence[bool]
) -> Dict[str, float]:
    """Gesture detection/classification bookkeeping (Fig. 19)."""
    detected = np.asarray(detected, dtype=bool)
    classified_ok = np.asarray(classified_ok, dtype=bool)
    n = detected.size
    if n == 0:
        return {"detection_rate": 0.0, "miss_rate": 0.0, "accuracy": 0.0}
    hit = detected & classified_ok
    return {
        "detection_rate": float(hit.mean()),
        "miss_rate": float((~detected).mean()),
        "accuracy": float(hit.sum() / max(1, detected.sum())),
    }
