#!/usr/bin/env python
"""Quickstart: turn a simulated WiFi radio into an inertial sensor.

Builds a multipath channel, slides a 3-antenna receiver 1.5 m across a
room while a single AP broadcasts at 200 Hz, and lets RIM recover the
moving distance and heading from CSI alone — no AP location, no
calibration, no inertial sensors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CsiSampler,
    ImpairmentConfig,
    MultipathChannel,
    Rim,
    RimConfig,
    ap_antenna_positions,
    line_trajectory,
    linear_array,
)
from repro.channel.scatterers import uniform_field


def main():
    rng = np.random.default_rng(42)

    # 1. A 20 m x 15 m room full of scatterers, one AP in a corner.
    room = uniform_field(20.0, 15.0, n_scatterers=120, rng=rng)
    channel = MultipathChannel(scatterers=room, los_gain=0.5)
    sampler = CsiSampler(
        channel=channel,
        tx_positions=ap_antenna_positions((1.0, 1.0), n_tx=3),
        impairments=ImpairmentConfig(snr_db=25.0),  # COTS-grade CSI
        rng=rng,
    )

    # 2. The device: a COTS NIC with 3 antennas at λ/2 spacing, pushed
    #    1.5 m across a desk at 0.5 m/s.
    truth = line_trajectory(
        start=(10.0, 8.0), direction_deg=0.0, speed=0.5, duration=3.0
    )
    trace = sampler.sample(truth, linear_array(3))
    print(f"captured {trace.n_samples} CSI packets "
          f"({trace.n_rx}x{trace.n_tx} links, {trace.n_subcarriers} tones)")

    # 3. RIM: CSI in, motion out.
    result = Rim(RimConfig(max_lag=60)).process(trace)

    est = result.total_distance
    print(f"true distance      : {truth.total_distance:6.3f} m")
    print(f"estimated distance : {est:6.3f} m")
    print(f"error              : {abs(est - truth.total_distance) * 100:6.1f} cm")

    headings = result.headings()
    headings = headings[np.isfinite(headings)]
    mean_heading = np.rad2deg(
        np.arctan2(np.mean(np.sin(headings)), np.mean(np.cos(headings)))
    )
    print(f"estimated heading  : {mean_heading:6.1f} deg (truth: 0.0 deg)")

    speed = result.motion.speed[result.motion.moving]
    print(f"median speed       : {np.median(speed[speed > 0]):6.3f} m/s (truth: 0.5)")


if __name__ == "__main__":
    main()
