"""Bench: Fig. 5 — alignment matrices over a square trajectory."""

from repro.eval.experiments import run_fig5_alignment_matrix
from repro.eval.report import print_report


def test_fig5_alignment_matrix(benchmark, quick):
    result = benchmark.pedantic(
        run_fig5_alignment_matrix, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 5 — alignment matrices (square trace)", result)
    m = result["measured"]
    # Shape: on most legs the strongest alignment matrix belongs to the
    # pair group parallel to the leg's direction.
    assert m["legs_with_correct_aligned_group"] >= 3
