"""Fault-tolerant network ingestion front-end (wire protocol + endpoints).

The paper's deployment streams CSI from a moving receiver to a consumer
over a real link; this package is that link's repo equivalent, built
robustness-first: CRC-framed packets with monotonic seqs
(:mod:`repro.net.framing`), a resyncing asyncio server that restores
order and feeds the serving layer (:mod:`repro.net.server`), a client
with capped-backoff reconnect and seq-ack resume
(:mod:`repro.net.client`), deterministic wire-fault injection
(:mod:`repro.net.faults`), and a store-replay load generator with an
exact in-process baseline (:mod:`repro.net.loadgen`).  Wire format and
recovery semantics are specified in ``docs/network.md``.
"""

from repro.net.client import NetClient, NetClientConfig, NetClientError
from repro.net.faults import NetFaultPlan, WireFaultInjector
from repro.net.framing import (
    Frame,
    FrameDecoder,
    FrameError,
    pack_frame,
    unpack_frame,
)
from repro.net.loadgen import (
    baseline_updates,
    render_net_table,
    run_net_load,
    updates_equal,
)
from repro.net.server import NetServer, NetServerConfig, SeqTracker

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameError",
    "NetClient",
    "NetClientConfig",
    "NetClientError",
    "NetFaultPlan",
    "NetServer",
    "NetServerConfig",
    "SeqTracker",
    "WireFaultInjector",
    "baseline_updates",
    "pack_frame",
    "render_net_table",
    "run_net_load",
    "unpack_frame",
    "updates_equal",
]
