"""Pipeline observability: span tracing, metrics, and profiling hooks.

``repro.obs`` is the instrumentation layer the rest of the package talks
to.  It owns one process-wide :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry`, both off by default:

* when **disabled** (the default) every hook is a no-op — ``span()``
  returns a shared null context manager and the metric helpers return
  immediately, so production streams pay nothing and numerics are
  untouched;
* when **enabled** (``obs.enable()``, ``repro.cli demo --trace``, or the
  ``profile`` subcommand) the hot paths record per-stage wall time, call
  counts, input shapes, and work counters, and ``Rim.process`` /
  ``StreamingRim`` attach a ``stats`` dict to their results the same way
  ``health`` flows today.

Typical profiling session::

    from repro import obs

    obs.enable()
    result = Rim().process(trace)          # result.stats now populated
    print(obs.render_span_table(result.stats["spans"]))
    print(obs.METRICS.render_table())
    obs.disable(); obs.reset()

Since PR 7 the layer also spans process boundaries:

* :mod:`repro.obs.provenance` — per-sample trace contexts stamped at
  create/ingest/dequeue/kernel/emit, resolved into a wire/queue-wait/
  kernel/emit latency breakdown on every ``MotionUpdate``;
* :mod:`repro.obs.export` — JSONL snapshot exporter, Prometheus-style
  text exposition, stdlib HTTP endpoint, and the obs-top table builder;
* :mod:`repro.obs.flight` — an always-on bounded flight recorder
  (``obs.FLIGHT``) dumped to a JSON artifact on protocol errors, guard
  escalations, and graceful shutdown.

Instrumentation is observational only: enabling it must never change a
single output bit (enforced by ``tests/test_obs.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.obs.export import (
    TELEMETRY_SCHEMA,
    MetricsHTTPServer,
    TelemetryExporter,
    parse_exposition,
    render_exposition,
)
from repro.obs.flight import (
    FLIGHT,
    FLIGHT_SCHEMA,
    FlightRecorder,
    validate_flight_dump,
)
from repro.obs.metrics import (
    LATENCY_BOUNDS_S,
    PROMINENCE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.provenance import (
    PROV_HISTOGRAMS,
    SampleProvenance,
    block_breakdown,
    observe_breakdown,
    validate_breakdown,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    aggregate_spans,
    render_span_table,
)

TRACER = Tracer(enabled=False)
METRICS = MetricsRegistry()


def enabled() -> bool:
    """Is instrumentation currently recording?"""
    return TRACER.enabled


def enable() -> None:
    """Turn span tracing and metric collection on, process-wide."""
    TRACER.enabled = True


def disable() -> None:
    """Turn instrumentation off (recorded data is kept until reset())."""
    TRACER.enabled = False


def reset() -> None:
    """Drop all recorded spans and metrics."""
    TRACER.reset()
    METRICS.reset()


def span(name: str, **meta: Any):
    """Open a span on the global tracer (no-op singleton when disabled)."""
    return TRACER.span(name, **meta)


def add(name: str, n: float = 1) -> None:
    """Increment a counter — only while instrumentation is enabled."""
    if TRACER.enabled:
        METRICS.counter(name).add(n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge — only while instrumentation is enabled."""
    if TRACER.enabled:
        METRICS.gauge(name).set(value)


def observe(
    name: str, value: float, bounds: Optional[Sequence[float]] = None
) -> None:
    """Record a histogram observation — only while enabled."""
    if TRACER.enabled:
        METRICS.histogram(name, bounds=bounds).observe(value)


def span_stats(root: Span) -> Dict[str, Any]:
    """Package a finished span tree as a result-attachable ``stats`` dict."""
    return {
        "wall_s": root.duration,
        "spans": aggregate_spans(root),
        "meta": dict(root.meta),
    }


__all__ = [
    "FLIGHT",
    "FLIGHT_SCHEMA",
    "LATENCY_BOUNDS_S",
    "METRICS",
    "NULL_SPAN",
    "PROMINENCE_BOUNDS",
    "PROV_HISTOGRAMS",
    "TELEMETRY_SCHEMA",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "SampleProvenance",
    "Span",
    "TRACER",
    "TelemetryExporter",
    "Tracer",
    "add",
    "aggregate_spans",
    "block_breakdown",
    "disable",
    "enable",
    "enabled",
    "observe",
    "observe_breakdown",
    "parse_exposition",
    "render_exposition",
    "render_span_table",
    "reset",
    "set_gauge",
    "span",
    "span_stats",
    "validate_breakdown",
    "validate_flight_dump",
]
