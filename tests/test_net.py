"""Tests for the fault-tolerant network ingestion front-end (repro.net)."""

import threading

import numpy as np
import pytest

from repro.core.streaming import MotionUpdate
from repro.motionsim.profiles import line_trajectory
from repro.net import (
    FrameDecoder,
    FrameError,
    NetClient,
    NetClientConfig,
    NetClientError,
    NetFaultPlan,
    NetServer,
    NetServerConfig,
    SeqTracker,
    WireFaultInjector,
    baseline_updates,
    pack_frame,
    render_net_table,
    run_net_load,
    unpack_frame,
    updates_equal,
)
from repro.net import framing
from repro.robustness.health import HealthReport
from repro.serve.session import ServeConfig
from repro.shutdown import GracefulShutdown


@pytest.fixture(scope="module")
def net_trace(fast_sampler, three_antenna):
    """One short receiver trace for loopback runs."""
    traj = line_trajectory((10.0, 8.0), 30.0, 0.5, 1.5)
    return fast_sampler.sample(traj, three_antenna)


def _packet(seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(3, 2, 8)) + 1j * rng.normal(size=(3, 2, 8))
    ).astype(np.complex64)


# -- framing -------------------------------------------------------------------


class TestFraming:
    def test_round_trip_all_types(self):
        for frame_type in framing.FRAME_TYPES:
            raw = pack_frame(frame_type, session_id=7, seq=42, payload=b"xyz")
            frame = unpack_frame(raw)
            assert frame.frame_type == frame_type
            assert frame.session_id == 7
            assert frame.seq == 42
            assert frame.payload == b"xyz"

    def test_unknown_type_and_oversize_rejected(self):
        with pytest.raises(FrameError):
            pack_frame(99)
        with pytest.raises(FrameError):
            pack_frame(
                framing.FRAME_DATA,
                payload=b"\0" * (framing.MAX_PAYLOAD_BYTES + 1),
            )

    def test_payload_corruption_detected(self):
        raw = bytearray(pack_frame(framing.FRAME_DATA, seq=3, payload=b"abcdef"))
        raw[framing.HEADER_SIZE + 2] ^= 0xFF
        with pytest.raises(FrameError, match="CRC"):
            unpack_frame(bytes(raw))

    def test_seq_corruption_detected(self):
        # seq lives at header offset 12; the CRC covers it.
        raw = bytearray(pack_frame(framing.FRAME_DATA, seq=3, payload=b"abc"))
        raw[12] ^= 0x01
        with pytest.raises(FrameError, match="CRC"):
            unpack_frame(bytes(raw))

    def test_truncation_detected(self):
        raw = pack_frame(framing.FRAME_DATA, payload=b"abcdef")
        with pytest.raises(FrameError):
            unpack_frame(raw[:-2])

    def test_data_payload_round_trip_bit_exact(self):
        packet = _packet(3)
        payload = framing.pack_data_payload(1.25, packet)
        ts, decoded = framing.unpack_data_payload(payload, packet.shape)
        assert ts == 1.25
        assert decoded.dtype == np.complex64
        np.testing.assert_array_equal(decoded, packet)

    def test_data_payload_shape_mismatch_rejected(self):
        payload = framing.pack_data_payload(0.0, _packet())
        with pytest.raises(FrameError):
            framing.unpack_data_payload(payload, (3, 2, 9))

    def test_update_round_trip(self):
        health = HealthReport(
            n_samples=10,
            n_chains=3,
            loss_rate=0.1,
            chain_liveness=np.array([1.0, 0.5, 0.0]),
            dead_chains=[2],
            usable_pairs=2,
            usable_groups=1,
            alignment_confidence=0.9,
            repairs={"net_gap_samples": 4},
            degraded=True,
            heading_unresolved=False,
        )
        update = MotionUpdate(
            times=np.array([0.0, 0.1, np.nan]),
            speed=np.array([0.5, np.nan, 0.25]),
            heading=np.array([30.0, -12.5, np.nan]),
            moving=np.array([True, False, True]),
            block_distance=0.125,
            total_distance=1.75,
            health=health,
        )
        decoded = framing.decode_update(framing.encode_update(update))
        assert updates_equal([update], [decoded])
        assert decoded.health is not None
        assert decoded.health.repairs == {"net_gap_samples": 4}
        assert decoded.health.degraded is True
        np.testing.assert_array_equal(
            decoded.health.chain_liveness, health.chain_liveness
        )

    def test_update_without_health(self):
        update = MotionUpdate(
            times=np.array([0.0]),
            speed=np.array([0.1]),
            heading=np.array([0.0]),
            moving=np.array([True]),
            block_distance=0.0,
            total_distance=0.0,
            health=None,
        )
        assert framing.decode_update(framing.encode_update(update)).health is None


class TestFrameDecoder:
    def test_incremental_feed(self):
        raw = b"".join(
            pack_frame(framing.FRAME_DATA, seq=k, payload=bytes([k]) * 5)
            for k in range(4)
        )
        decoder = FrameDecoder()
        seen = []
        for at in range(0, len(raw), 7):  # drip-feed in odd-sized chunks
            decoder.feed(raw[at : at + 7])
            seen.extend(decoder.frames())
        assert [f.seq for f in seen] == [0, 1, 2, 3]
        assert decoder.n_frames == 4
        assert decoder.n_crc_dropped == 0

    def test_resync_after_junk(self):
        good = pack_frame(framing.FRAME_DATA, seq=9, payload=b"ok")
        decoder = FrameDecoder()
        decoder.feed(b"\x00garbage-without-magic\xff" + good)
        frames = list(decoder.frames())
        assert [f.seq for f in frames] == [9]
        assert decoder.n_resyncs >= 1

    def test_corrupt_frame_dropped_next_recovered(self):
        bad = bytearray(pack_frame(framing.FRAME_DATA, seq=1, payload=b"abcd"))
        bad[framing.HEADER_SIZE] ^= 0x5A
        good = pack_frame(framing.FRAME_DATA, seq=2, payload=b"efgh")
        decoder = FrameDecoder()
        decoder.feed(bytes(bad) + good)
        frames = list(decoder.frames())
        assert [f.seq for f in frames] == [2]
        assert decoder.n_crc_dropped == 1

    def test_never_yields_wrong_data(self):
        # Flip every single byte of a frame in turn: decode must give
        # either the pristine frame (flip in a later frame's bytes) or
        # nothing from the damaged one — never altered content.
        payload = b"payload-bytes"
        raw = pack_frame(framing.FRAME_DATA, seq=5, payload=payload)
        for at in range(len(raw)):
            damaged = bytearray(raw)
            damaged[at] ^= 0x01
            decoder = FrameDecoder()
            decoder.feed(bytes(damaged))
            for frame in decoder.frames():
                assert frame.seq == 5
                assert frame.payload == payload


# -- sequence tracking ---------------------------------------------------------


class TestSeqTracker:
    def test_in_order(self):
        tracker = SeqTracker(window=4)
        out = []
        for seq in range(5):
            out.extend(tracker.admit(seq, float(seq), _packet()))
        assert [seq for seq, _, _ in out] == [0, 1, 2, 3, 4]
        assert tracker.ack == 4
        assert tracker.n_duplicates == 0
        assert tracker.n_gap_samples == 0

    def test_reorder_within_window(self):
        tracker = SeqTracker(window=4)
        out = list(tracker.admit(1, 1.0, _packet()))
        assert out == []
        out = tracker.admit(0, 0.0, _packet())
        assert [seq for seq, _, _ in out] == [0, 1]
        assert tracker.ack == 1

    def test_duplicates_suppressed(self):
        tracker = SeqTracker(window=4)
        tracker.admit(0, 0.0, _packet())
        assert tracker.admit(0, 0.0, _packet()) == []
        tracker.admit(2, 2.0, _packet())  # pending
        assert tracker.admit(2, 2.0, _packet()) == []
        assert tracker.n_duplicates == 2

    def test_gap_advance_past_window(self):
        tracker = SeqTracker(window=2)
        # seq 0 never arrives; 1..3 overflow the 2-sample window.
        assert tracker.admit(1, 1.0, _packet()) == []
        assert tracker.admit(2, 2.0, _packet()) == []
        out = tracker.admit(3, 3.0, _packet())
        assert [seq for seq, _, _ in out] == [1, 2, 3]
        assert tracker.n_gap_samples == 1
        assert tracker.ack == 3

    def test_flush_counts_gaps(self):
        tracker = SeqTracker(window=8)
        tracker.admit(0, 0.0, _packet())
        tracker.admit(3, 3.0, _packet())
        out = tracker.flush()
        assert [seq for seq, _, _ in out] == [3]
        assert tracker.n_gap_samples == 2  # seqs 1 and 2 lost
        assert tracker.ack == 3


# -- fault plans ---------------------------------------------------------------


class TestNetFaultPlan:
    def test_decisions_deterministic(self):
        plan = NetFaultPlan(seed=3, drop_fraction=0.3, corrupt_fraction=0.2)
        for seq in range(64):
            assert plan.drops(seq) == plan.drops(seq)
            assert plan.corrupts(seq) == plan.corrupts(seq)
        again = NetFaultPlan(seed=3, drop_fraction=0.3, corrupt_fraction=0.2)
        assert plan.delivered_seqs(200) == again.delivered_seqs(200)

    def test_swaps_only_even(self):
        plan = NetFaultPlan(reorder_fraction=1.0)
        assert all(plan.swaps_with_next(seq) for seq in range(0, 10, 2))
        assert not any(plan.swaps_with_next(seq) for seq in range(1, 10, 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            NetFaultPlan(drop_fraction=1.5)
        with pytest.raises(ValueError):
            NetFaultPlan(delay_s=-1.0)
        with pytest.raises(ValueError):
            NetFaultPlan(disconnect_after=0)

    def test_is_clean(self):
        assert NetFaultPlan().is_clean
        assert not NetFaultPlan(drop_fraction=0.1).is_clean
        assert not NetFaultPlan(disconnect_after=5).is_clean

    def test_from_spec(self):
        plan = NetFaultPlan.from_spec(
            "drop=0.05,dup=0.1,reorder=0.2,corrupt=0.01,delay=0.02,"
            "disconnect=40,seed=7"
        )
        assert plan.drop_fraction == 0.05
        assert plan.duplicate_fraction == 0.1
        assert plan.reorder_fraction == 0.2
        assert plan.corrupt_fraction == 0.01
        assert plan.delay_fraction == 0.02
        assert plan.disconnect_after == 40
        assert plan.seed == 7
        assert NetFaultPlan.from_spec("") == NetFaultPlan()
        with pytest.raises(ValueError, match="unknown net fault spec key"):
            NetFaultPlan.from_spec("bogus=1")
        with pytest.raises(ValueError, match="malformed"):
            NetFaultPlan.from_spec("drop")

    def test_corrupt_bytes_header_intact(self):
        plan = NetFaultPlan(corrupt_fraction=1.0)
        raw = pack_frame(framing.FRAME_DATA, seq=4, payload=b"x" * 32)
        mangled = plan.corrupt_bytes(4, raw)
        assert mangled != raw
        assert mangled[: framing.HEADER_SIZE] == raw[: framing.HEADER_SIZE]
        with pytest.raises(FrameError, match="CRC"):
            unpack_frame(mangled)

    def test_expected_repairs_consistent(self):
        plan = NetFaultPlan(seed=1, drop_fraction=0.2, corrupt_fraction=0.1)
        n = 100
        repairs = plan.expected_repairs(n)
        delivered = plan.delivered_seqs(n)
        assert repairs["net_crc_dropped"] == sum(
            1 for s in range(n) if plan.corrupts(s)
        )
        high = max(delivered)
        assert repairs["net_gap_samples"] == sum(
            1 for s in range(high + 1) if s not in delivered
        )


class TestWireFaultInjector:
    def test_clean_passthrough(self):
        injector = WireFaultInjector(NetFaultPlan())
        frame = pack_frame(framing.FRAME_DATA, seq=0, payload=b"a")
        assert injector.admit(0, frame) == [(frame, 0.0)]

    def test_swap_held_and_released(self):
        injector = WireFaultInjector(NetFaultPlan(reorder_fraction=1.0))
        f0 = pack_frame(framing.FRAME_DATA, seq=0, payload=b"0")
        f1 = pack_frame(framing.FRAME_DATA, seq=1, payload=b"1")
        assert injector.admit(0, f0) == []  # held
        out = injector.admit(1, f1)
        assert [w for w, _ in out] == [f1, f0]
        assert injector.n_reordered == 1

    def test_flush_releases_end_of_stream_hold(self):
        injector = WireFaultInjector(NetFaultPlan(reorder_fraction=1.0))
        f0 = pack_frame(framing.FRAME_DATA, seq=0, payload=b"0")
        assert injector.admit(0, f0) == []
        assert [w for w, _ in injector.flush()] == [f0]
        assert injector.flush() == []

    def test_disconnect_fires_once(self):
        injector = WireFaultInjector(NetFaultPlan(disconnect_after=2))
        assert not injector.should_disconnect()
        assert injector.should_disconnect()
        assert not injector.should_disconnect()


# -- loopback integration ------------------------------------------------------


def _sum_net_repairs(updates):
    totals = {}
    for update in updates:
        if update.health is None:
            continue
        for key, value in update.health.repairs.items():
            if key.startswith("net_"):
                totals[key] = totals.get(key, 0) + int(value)
    return totals


class TestLoopback:
    def test_clean_run_bit_identical(self, net_trace):
        result = run_net_load([("rx00", net_trace)])
        assert result["baseline_match"] is True
        agg = result["aggregate"]
        assert agg["n_samples"] == net_trace.n_samples
        assert agg["n_delivered"] == net_trace.n_samples
        assert agg["reconnects"] == 0
        table = render_net_table(result)
        assert "bit-identical" in table

    def test_faulted_run_bit_identical_with_accounted_repairs(self, net_trace):
        plan = NetFaultPlan(
            seed=2,
            drop_fraction=0.05,
            duplicate_fraction=0.05,
            reorder_fraction=0.1,
            corrupt_fraction=0.03,
        )
        result = run_net_load([("rx00", net_trace)], fault_plan=plan)
        assert result["baseline_match"] is True
        expected = plan.expected_repairs(net_trace.n_samples)
        repairs = _sum_net_repairs(result["updates"]["rx00"])
        # Gaps are exact; corrupt/duplicate counts can only grow (resent
        # frames are re-faulted, wire dups of the same seq pile up).
        assert repairs.get("net_gap_samples", 0) == expected["net_gap_samples"]
        assert (
            repairs.get("net_crc_dropped", 0) >= expected["net_crc_dropped"]
        )
        assert (
            repairs.get("net_duplicate_dropped", 0)
            >= expected["net_duplicate_dropped"]
        )

    def test_reconnect_resume_bit_identical(self, net_trace):
        plan = NetFaultPlan(disconnect_after=max(2, net_trace.n_samples // 3))
        result = run_net_load(
            [("rx00", net_trace)],
            fault_plan=plan,
            client_config=NetClientConfig(backoff_base_s=0.01),
        )
        assert result["baseline_match"] is True
        assert result["aggregate"]["reconnects"] >= 1
        assert result["aggregate"]["recovery_s_max"] > 0.0
        # Resume must not replay acked samples: the estimator saw each
        # delivered seq exactly once, so the stream equals the clean one.
        clean = baseline_updates("rx00", net_trace)
        assert updates_equal(result["updates"]["rx00"], clean)

    def test_faults_plus_disconnect(self, net_trace):
        plan = NetFaultPlan(
            seed=5,
            drop_fraction=0.05,
            reorder_fraction=0.1,
            corrupt_fraction=0.02,
            disconnect_after=max(2, net_trace.n_samples // 2),
        )
        result = run_net_load(
            [("rx00", net_trace)],
            fault_plan=plan,
            client_config=NetClientConfig(backoff_base_s=0.01),
        )
        assert result["baseline_match"] is True
        assert result["aggregate"]["reconnects"] >= 1

    def test_multi_session(self, net_trace):
        result = run_net_load([("rx00", net_trace), ("rx01", net_trace)])
        assert result["baseline_match"] is True
        assert result["aggregate"]["n_sessions"] == 2
        assert len(result["sessions"]) == 2

    def test_backpressure_reject_reaches_wire_sessions(self, net_trace):
        # A tiny reject queue still yields a clean protocol run; the
        # serve-layer policy applies to network pushes like local ones.
        result = run_net_load(
            [("rx00", net_trace)],
            serve_config=ServeConfig(queue_capacity=8, backpressure="block"),
        )
        assert result["baseline_match"] is True

    def test_should_stop_ends_cleanly(self, net_trace):
        calls = {"n": 0}

        def stop_soon():
            calls["n"] += 1
            return calls["n"] > 10

        result = run_net_load(
            [("rx00", net_trace)], should_stop=stop_soon, check_baseline=True
        )
        assert result["stopped_early"] is True
        assert result["baseline_match"] is None  # skipped when stopped
        # The stream still finished with a BYE: final updates arrived.
        assert isinstance(result["updates"]["rx00"], list)

    def test_updates_resent_after_midstream_socket_loss(self, net_trace):
        # UPDATE frames written while the link dies must be redelivered
        # after reconnect (update seq + UACK resend), not lost: kill the
        # socket after the full send — with updates potentially still in
        # flight — and the resumed stream must match the clean baseline.
        server = NetServer(config=NetServerConfig(port=0, ack_every=4)).start()
        try:
            client = NetClient(
                server.config.host,
                server.port,
                "rx00",
                net_trace.array,
                net_trace.sampling_rate,
                sample_shape=tuple(net_trace.data.shape[1:]),
                carrier_wavelength=net_trace.carrier_wavelength,
                config=NetClientConfig(backoff_base_s=0.01),
            )
            client.connect()
            try:
                for k in range(net_trace.n_samples):
                    client.send(float(net_trace.times[k]), net_trace.data[k])
                client._sock.close()  # hard-kill without draining updates
                client._handle_disconnect()
                updates = client.finish()
            finally:
                client.close()
            assert client.n_reconnects >= 1
            assert updates_equal(updates, baseline_updates("rx00", net_trace))
        finally:
            server.close()

    def test_client_suppresses_resent_update_duplicates(self, net_trace):
        # A server resend after a lost UACK duplicates updates on the
        # wire; the client must keep exactly one copy per update seq.
        update = MotionUpdate(
            times=np.array([0.0, 0.5]),
            speed=np.array([0.25, 0.5]),
            heading=np.array([10.0, 20.0]),
            moving=np.array([True, True]),
            block_distance=0.5,
            total_distance=0.5,
            health=None,
        )
        client = NetClient(
            "127.0.0.1",
            0,
            "rx00",
            net_trace.array,
            net_trace.sampling_rate,
            sample_shape=tuple(net_trace.data.shape[1:]),
        )
        payload = framing.encode_update(update)
        for seq in (0, 1, 0, 1, 2):  # seqs 0 and 1 resent
            client._decoder.feed(
                pack_frame(framing.FRAME_UPDATE, 1, seq, payload)
            )
        client._process_frames()
        assert len(client.updates) == 3
        assert client._update_next == 3

    def test_reattach_requires_resume_token(self, net_trace):
        # Without the WELCOME's resume token, a second client claiming a
        # live session name is refused — and the live connection is not
        # superseded by the failed attempt.
        server = NetServer(config=NetServerConfig(port=0)).start()
        try:
            first = NetClient(
                server.config.host,
                server.port,
                "rx00",
                net_trace.array,
                net_trace.sampling_rate,
                sample_shape=tuple(net_trace.data.shape[1:]),
            )
            first.connect()
            try:
                first.send(float(net_trace.times[0]), net_trace.data[0])
                intruder = NetClient(
                    server.config.host,
                    server.port,
                    "rx00",
                    net_trace.array,
                    net_trace.sampling_rate,
                    sample_shape=tuple(net_trace.data.shape[1:]),
                    config=NetClientConfig(max_connect_attempts=1),
                )
                with pytest.raises(NetClientError, match="resume token"):
                    intruder.connect()
                intruder.close()
                # The live session is untouched: sending still works.
                first.send(float(net_trace.times[1]), net_trace.data[1])
                first.finish()
            finally:
                first.close()
        finally:
            server.close()

    def test_reattach_geometry_mismatch_refused(self, net_trace):
        # Even with the right token, a reattach declaring a different
        # sample shape is refused instead of having every DATA frame
        # silently dropped by the payload-length check.
        server = NetServer(config=NetServerConfig(port=0)).start()
        try:
            first = NetClient(
                server.config.host,
                server.port,
                "rx00",
                net_trace.array,
                net_trace.sampling_rate,
                sample_shape=tuple(net_trace.data.shape[1:]),
            )
            first.connect()
            try:
                for k in range(2):
                    first.send(float(net_trace.times[k]), net_trace.data[k])
                shape = tuple(net_trace.data.shape[1:])
                mismatched = NetClient(
                    server.config.host,
                    server.port,
                    "rx00",
                    net_trace.array,
                    net_trace.sampling_rate,
                    sample_shape=shape[:-1] + (shape[-1] + 1,),
                    config=NetClientConfig(max_connect_attempts=1),
                )
                mismatched._token = first._token  # token alone is not enough
                with pytest.raises(NetClientError, match="geometry mismatch"):
                    mismatched.connect()
                mismatched.close()
                first.finish()
            finally:
                first.close()
        finally:
            server.close()

    def test_socket_stays_blocking_with_write_budget(self, net_trace):
        # The connected socket must stay blocking (with io_timeout_s as
        # the write budget): a non-blocking socket would turn send-buffer
        # backpressure into spurious reconnect storms.
        server = NetServer(config=NetServerConfig(port=0)).start()
        try:
            client = NetClient(
                server.config.host,
                server.port,
                "rx00",
                net_trace.array,
                net_trace.sampling_rate,
                sample_shape=tuple(net_trace.data.shape[1:]),
                config=NetClientConfig(io_timeout_s=3.5),
            )
            client.connect()
            try:
                assert client._sock.gettimeout() == 3.5
                for k in range(2):
                    client.send(float(net_trace.times[k]), net_trace.data[k])
                assert client._sock.gettimeout() == 3.5
                client.finish()
            finally:
                client.close()
        finally:
            server.close()

    def test_explicit_server_client_resume_state(self, net_trace):
        server = NetServer(
            config=NetServerConfig(port=0, ack_every=8)
        ).start()
        try:
            client = NetClient(
                server.config.host,
                server.port,
                "rx00",
                net_trace.array,
                net_trace.sampling_rate,
                sample_shape=tuple(net_trace.data.shape[1:]),
                carrier_wavelength=net_trace.carrier_wavelength,
            )
            client.connect()
            try:
                for k in range(net_trace.n_samples):
                    client.send(float(net_trace.times[k]), net_trace.data[k])
                updates = client.finish()
            finally:
                client.close()
            assert updates_equal(updates, baseline_updates("rx00", net_trace))
            rows = server.session_stats()
            assert len(rows) == 1
            assert int(rows[0]["acked"]) == net_trace.n_samples - 1
        finally:
            server.close()


# -- graceful shutdown ---------------------------------------------------------


class TestGracefulShutdown:
    def test_request_stop_and_stopper(self):
        stop = GracefulShutdown()
        assert not stop.triggered
        assert not stop.should_stop()
        stop.request_stop()
        assert stop.triggered
        assert stop.stopper()()

    def test_inert_off_main_thread(self):
        seen = {}

        def worker():
            with GracefulShutdown() as stop:
                seen["installed"] = stop._installed
                stop.request_stop()
                seen["stops"] = stop.should_stop()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == {"installed": False, "stops": True}

    def test_serve_sim_should_stop(self, fast_sampler, three_antenna):
        from repro.serve import run_serve_sim

        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.0)
        trace = fast_sampler.sample(traj, three_antenna)
        result = run_serve_sim(
            receivers=[("rx00", trace)], n_workers=1, should_stop=lambda: True
        )
        # Stopped before any push: sessions exist and drained cleanly.
        assert result["sessions"][0]["processed"] == 0

    def test_checkpoint_replay_should_stop(self, tmp_path, net_trace):
        from repro.store import CheckpointedReplayer, TraceReader, write_trace

        root = tmp_path / "store"
        write_trace(root, net_trace, chunk_samples=64)
        with TraceReader(root) as reader:
            replayer = CheckpointedReplayer(reader, block_seconds=1.0)
            calls = {"n": 0}

            def stop_after_two():
                calls["n"] += 1
                return calls["n"] > 2

            replayer.run(should_stop=stop_after_two)
            assert replayer.cursor == 2  # stopped at a chunk boundary
            assert not replayer.exhausted
            # Resumable: finishing the run matches an uninterrupted one.
            tail = replayer.run()
            assert replayer.exhausted
            assert isinstance(tail, list)
