"""Bench: Fig. 11 — moving-distance accuracy (the headline result).

Paper: 2.3 cm median (desktop), 8.4 cm median (cart); NLOS ≈ LOS.
"""

from repro.eval.experiments import run_fig11_distance_accuracy
from repro.eval.report import print_report


def test_fig11_distance_accuracy(benchmark, quick):
    result = benchmark.pedantic(
        run_fig11_distance_accuracy, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 11 — moving distance accuracy", result)
    m = result["measured"]
    # Shape: centimeter-scale medians; desktop (slow, controlled) beats
    # cart; NLOS does not blow up relative to LOS.
    assert m["desktop_median_cm"] < 10.0
    assert m["cart_median_cm"] < 25.0
    # NLOS does not blow up: it stays at the same centimeter scale as LOS
    # (an absolute bound — with few LOS traces the ratio is meaningless).
    if m["cart_nlos_median_cm"] == m["cart_nlos_median_cm"]:  # non-NaN
        assert m["cart_nlos_median_cm"] < 25.0
