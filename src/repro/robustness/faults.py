"""Deterministic CSI fault injection for robustness testing.

Real COTS CSI ingestion breaks in ways the channel-level impairment model
(`repro.channel.impairments`) does not cover: RX chains die or flap, loss
arrives in bursts longer than the interpolator's reach, timestamps come
back out of order or duplicated, sampling clocks drift, AGC steps the gain
mid-trace, and packets arrive truncated.  A :class:`FaultPlan` composes
any subset of these orthogonal fault classes and applies them to a
:class:`~repro.channel.sampler.CsiTrace` (or replays them as a packet
stream), seeded so every sweep is reproducible.

The injector perturbs only what a receiver would observe — ``data`` and
``times`` — never the ground-truth trajectory, so evaluation against truth
still works on a faulted trace.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, fields, replace
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.channel.sampler import CsiTrace

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class FaultPlan:
    """A composable, seedable description of ingestion faults.

    Attributes:
        seed: RNG seed; the same plan on the same trace is byte-identical.
        dead_chains: RX chains that produce no usable CSI at all (NaN for
            the whole trace) — a dead cable / front-end.
        flaky_chain: One RX chain that drops out in bursts (loose
            connector); ``None`` disables.
        flaky_rate: Fraction of the flaky chain's packets lost.
        flaky_burst: Mean dropout burst length of the flaky chain, packets.
        loss_rate: Extra bursty loss applied to *all* chains (congested
            medium); fraction of packets lost.
        loss_burst: Mean burst length of that loss, packets — set it above
            ``RimConfig.interpolation_max_gap`` to defeat interpolation.
        reorder_fraction: Fraction of packets delivered out of order
            (swapped with their successor, carrying their true timestamps).
        duplicate_fraction: Fraction of packets delivered twice (same
            payload, same timestamp).
        timestamp_jitter_std: Std-dev of additive timestamp noise, seconds
            (host-side timestamping jitter).
        clock_drift: Fractional sampling-clock drift; 100e-6 means the
            reported timestamps run 100 ppm fast.
        gain_step_db: Magnitude of AGC gain steps applied to the CSI, dB.
        n_gain_steps: Number of AGC steps over the trace (0 disables).
        truncate_fraction: Fraction of packets whose subcarrier tail is
            corrupted (NaN from a random cut point on) — truncated capture.
    """

    seed: int = 0
    dead_chains: Tuple[int, ...] = ()
    flaky_chain: Optional[int] = None
    flaky_rate: float = 0.25
    flaky_burst: int = 4
    loss_rate: float = 0.0
    loss_burst: int = 10
    reorder_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    timestamp_jitter_std: float = 0.0
    clock_drift: float = 0.0
    gain_step_db: float = 0.0
    n_gain_steps: int = 0
    truncate_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("flaky_rate", "loss_rate", "reorder_fraction",
                     "duplicate_fraction", "truncate_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.flaky_burst < 1 or self.loss_burst < 1:
            raise ValueError("burst lengths must be >= 1 packet")
        if self.timestamp_jitter_std < 0:
            raise ValueError("timestamp_jitter_std must be >= 0")
        if self.n_gain_steps < 0:
            raise ValueError("n_gain_steps must be >= 0")
        if any(c < 0 for c in self.dead_chains):
            raise ValueError("dead_chains must be non-negative indices")

    @property
    def is_clean(self) -> bool:
        """True when the plan injects nothing."""
        return (
            not self.dead_chains
            and self.flaky_chain is None
            and self.loss_rate == 0.0
            and self.reorder_fraction == 0.0
            and self.duplicate_fraction == 0.0
            and self.timestamp_jitter_std == 0.0
            and self.clock_drift == 0.0
            and (self.gain_step_db == 0.0 or self.n_gain_steps == 0)
            and self.truncate_fraction == 0.0
        )

    # -- application -------------------------------------------------------

    def apply(self, trace: CsiTrace) -> CsiTrace:
        """Return a faulted copy of ``trace`` (ground truth untouched)."""
        if self.is_clean:
            return trace
        logger.debug("injecting faults into %d-sample trace: %s", trace.n_samples, self)
        rng = np.random.default_rng(self.seed)
        data = np.array(trace.data, dtype=np.complex64, copy=True)
        times = np.array(trace.times, dtype=np.float64, copy=True)
        t, n_rx = data.shape[0], data.shape[1]

        for chain in (self.dead_chains or ()):
            if chain >= n_rx:
                raise ValueError(f"dead chain {chain} out of range (n_rx={n_rx})")

        # AGC gain steps: piecewise-constant common gain, random step signs.
        if self.gain_step_db != 0.0 and self.n_gain_steps > 0:
            gain_db = np.zeros(t)
            steps = rng.choice(np.arange(1, t), size=min(self.n_gain_steps, t - 1),
                               replace=False)
            for at in steps:
                gain_db[at:] += self.gain_step_db * rng.choice((-1.0, 1.0))
            data *= (10.0 ** (gain_db / 20.0)).astype(np.float32)[:, None, None, None]

        # Bursty loss on all chains (beyond the interpolator's reach).
        lost = _burst_mask(rng, t, self.loss_rate, self.loss_burst)
        if lost.any():
            data[lost] = np.nan + 1j * np.nan

        # Flaky chain: the same burst process confined to one chain.
        if self.flaky_chain is not None:
            if self.flaky_chain >= n_rx:
                raise ValueError(
                    f"flaky chain {self.flaky_chain} out of range (n_rx={n_rx})"
                )
            flap = _burst_mask(rng, t, self.flaky_rate, self.flaky_burst)
            data[flap, self.flaky_chain] = np.nan + 1j * np.nan

        # Dead chains: nothing ever arrives.
        for chain in self.dead_chains:
            data[:, chain] = np.nan + 1j * np.nan

        # Truncated packets: NaN subcarrier tails from a random cut point.
        if self.truncate_fraction > 0.0:
            s = data.shape[3]
            hit = rng.uniform(size=t) < self.truncate_fraction
            for k in np.nonzero(hit)[0]:
                cut = int(rng.integers(max(1, s // 4), max(2, 3 * s // 4)))
                data[k, :, :, cut:] = np.nan + 1j * np.nan

        # Clock faults: jitter, then drift (both leave packet order intact
        # in ``data``; jitter may locally invert the reported timestamps).
        if self.timestamp_jitter_std > 0.0:
            times = times + rng.normal(0.0, self.timestamp_jitter_std, t)
        if self.clock_drift != 0.0:
            times = times[0] + (times - times[0]) * (1.0 + self.clock_drift)

        # Delivery reordering: swap a packet with its successor, each
        # keeping its own timestamp — the receiver sees time run backwards.
        if self.reorder_fraction > 0.0:
            order = np.arange(t)
            swaps = np.nonzero(rng.uniform(size=t - 1) < self.reorder_fraction)[0]
            done_until = -1
            for k in swaps:
                if k <= done_until:  # keep swaps disjoint
                    continue
                order[k], order[k + 1] = order[k + 1], order[k]
                done_until = k + 1
            data = data[order]
            times = times[order]

        # Duplicate delivery: the same packet (and timestamp) twice.
        if self.duplicate_fraction > 0.0:
            dup = np.nonzero(rng.uniform(size=data.shape[0]) < self.duplicate_fraction)[0]
            index = np.sort(np.concatenate([np.arange(data.shape[0]), dup]))
            data = data[index]
            times = times[index]

        return replace(trace, data=data, times=times)

    def iter_packets(self, trace: CsiTrace) -> Iterator[Tuple[np.ndarray, float]]:
        """Replay the faulted trace as an ingestion stream.

        Yields ``(packet, timestamp)`` in delivery order — the exact
        sequence :meth:`~repro.core.streaming.StreamingRim.push` would see.
        """
        faulted = self.apply(trace)
        for k in range(faulted.data.shape[0]):
            yield faulted.data[k], float(faulted.times[k])

    # -- parsing -----------------------------------------------------------

    _SPEC_ALIASES = {
        "loss": "loss_rate",
        "burst": "loss_burst",
        "reorder": "reorder_fraction",
        "duplicate": "duplicate_fraction",
        "jitter": "timestamp_jitter_std",
        "drift": "clock_drift",
        "gain_db": "gain_step_db",
        "gain_steps": "n_gain_steps",
        "truncate": "truncate_fraction",
        "dead_chain": "dead_chains",
    }

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI spec like ``"dead_chain=1,loss=0.1,burst=12"``.

        Keys are field names or their short aliases (``loss``, ``burst``,
        ``reorder``, ``duplicate``, ``jitter``, ``drift``, ``gain_db``,
        ``gain_steps``, ``truncate``, ``dead_chain``).  ``dead_chain``
        accepts ``+``-separated indices (``dead_chain=0+2``).
        """
        spec = (spec or "").strip()
        if not spec:
            return cls()
        field_types = {f.name: f.type for f in fields(cls)}
        kwargs = {}
        for item in spec.split(","):
            if "=" not in item:
                raise ValueError(f"malformed fault spec item {item!r} (want key=value)")
            key, value = (part.strip() for part in item.split("=", 1))
            name = cls._SPEC_ALIASES.get(key, key)
            if name not in field_types:
                known = sorted(set(field_types) | set(cls._SPEC_ALIASES))
                raise ValueError(
                    f"unknown fault spec key {key!r}; known keys: {', '.join(known)}"
                )
            if name == "dead_chains":
                kwargs[name] = tuple(int(v) for v in value.split("+"))
            elif name in ("seed", "flaky_chain", "flaky_burst", "loss_burst",
                          "n_gain_steps"):
                kwargs[name] = int(value)
            else:
                kwargs[name] = float(value)
        return cls(**kwargs)


def _burst_mask(
    rng: np.random.Generator, t: int, rate: float, mean_burst: int
) -> np.ndarray:
    """(T,) loss mask with the target rate from geometric-length bursts."""
    mask = np.zeros(t, dtype=bool)
    if rate <= 0.0 or t == 0:
        return mask
    target = rate * t
    lost = 0
    # Cap iterations so a pathological draw can never spin forever.
    for _ in range(4 * t):
        if lost >= target:
            break
        start = int(rng.integers(0, t))
        length = 1 + rng.geometric(1.0 / max(1, mean_burst)) - 1
        stop = min(t, start + max(1, int(length)))
        fresh = np.count_nonzero(~mask[start:stop])
        mask[start:stop] = True
        lost += fresh
    return mask
