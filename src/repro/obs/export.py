"""Telemetry export: JSONL snapshot stream, Prometheus-style exposition,
stdlib HTTP endpoint, and the ``obs-top`` dashboard's table builder.

Three consumers, one registry:

* :class:`TelemetryExporter` — a daemon thread that appends one
  ``metrics`` event per interval to a JSONL file (schema
  :data:`TELEMETRY_SCHEMA`), plus a ``final`` event on stop.  Append-only
  so a crashed run still leaves every snapshot up to the crash.
* :func:`render_exposition` / :func:`parse_exposition` — Prometheus text
  format v0.0.4 (the subset documented in docs/observability.md):
  ``rim_``-prefixed families, session tags as ``{session="..."}``
  labels, histograms as cumulative ``_bucket{le=...}`` + ``_sum`` +
  ``_count``.  The parser doubles as the CI validator.
* :class:`MetricsHTTPServer` — a tiny stdlib HTTP endpoint
  (``/metrics``, ``/metrics.json``, ``/flight.json``, ``/healthz``)
  NetServer and serve-sim can expose during a run.

Everything is stdlib-only and pull-based: nothing here mutates metrics,
so exporters can run concurrently with the hot path (per-metric locks in
:mod:`repro.obs.metrics` keep snapshots torn-free).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

TELEMETRY_SCHEMA = "rim-telemetry/v1"

_TAGGED_RE = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>.*)\}$")
_EXPO_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"')


def _default_registry():
    from repro import obs

    return obs.METRICS


def parse_metric_name(name: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"serve.queue_depth{session=rx00}"`` into base + labels."""
    m = _TAGGED_RE.match(name)
    if not m:
        return name, {}
    labels: Dict[str, str] = {}
    for part in m.group("labels").split(","):
        part = part.strip()
        if not part:
            continue
        key, _, val = part.partition("=")
        labels[key.strip()] = val.strip().strip('"')
    return m.group("base"), labels


def prom_name(base: str) -> str:
    """Registry name -> exposition family name (``rim_`` + underscores)."""
    return "rim_" + re.sub(r"[^a-zA-Z0-9_]", "_", base)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, _escape_label(str(v)))
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_exposition(metrics: Optional[Dict[str, Dict[str, Any]]] = None) -> str:
    """Render a registry snapshot as Prometheus-style exposition text.

    Args:
        metrics: A :meth:`MetricsRegistry.snapshot` dict; defaults to a
            fresh snapshot of the global registry.
    """
    if metrics is None:
        metrics = _default_registry().snapshot()

    # Group registry entries into exposition families: same base name,
    # possibly many label sets (one per session tag).
    families: Dict[str, Dict[str, Any]] = {}
    for name, snap in sorted(metrics.items()):
        base, labels = parse_metric_name(name)
        family = prom_name(base)
        if snap["type"] == "counter":
            family += "_total"
        entry = families.setdefault(
            family,
            {"type": snap["type"], "help": snap.get("help", ""), "rows": []},
        )
        entry["rows"].append((labels, snap))

    lines: List[str] = []
    type_names = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}
    for family, entry in families.items():
        if entry["help"]:
            lines.append(f"# HELP {family} {entry['help']}")
        lines.append(f"# TYPE {family} {type_names[entry['type']]}")
        for labels, snap in entry["rows"]:
            if entry["type"] in ("counter", "gauge"):
                lines.append(
                    f"{family}{_fmt_labels(labels)} {_fmt_value(snap['value'])}"
                )
            else:
                cumulative = 0
                for bound, n in zip(snap["bounds"], snap["counts"]):
                    cumulative += n
                    ble = dict(labels, le=_fmt_value(bound))
                    lines.append(
                        f"{family}_bucket{_fmt_labels(ble)} {cumulative}"
                    )
                cumulative += snap["counts"][-1]
                binf = dict(labels, le="+Inf")
                lines.append(f"{family}_bucket{_fmt_labels(binf)} {cumulative}")
                lines.append(
                    f"{family}_sum{_fmt_labels(labels)} {_fmt_value(snap['sum'])}"
                )
                lines.append(f"{family}_count{_fmt_labels(labels)} {snap['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse (and validate) exposition text back into families.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``
    and raises ``ValueError`` on malformed lines, samples without a TYPE
    declaration, or histograms whose buckets are not cumulative or whose
    ``+Inf`` bucket disagrees with ``_count``.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            families[parts[2]] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue
        m = _EXPO_LINE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        name = m.group("name")
        labels = {
            lm.group("key"): lm.group("val")
            for lm in _LABEL_RE.finditer(m.group("labels") or "")
        }
        value_text = m.group("value")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {value_text!r}"
            ) from exc
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        families[family]["samples"].append((name, labels, value))

    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, Dict[str, Any]]) -> None:
    for family, entry in families.items():
        if entry["type"] != "histogram":
            continue
        # Partition samples per label set (minus 'le').
        series: Dict[Tuple, Dict[str, Any]] = {}
        for name, labels, value in entry["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            rec = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                rec["buckets"].append((labels.get("le", ""), value))
            elif name.endswith("_sum"):
                rec["sum"] = value
            elif name.endswith("_count"):
                rec["count"] = value
        for key, rec in series.items():
            if rec["count"] is None or rec["sum"] is None or not rec["buckets"]:
                raise ValueError(
                    f"histogram {family}{dict(key)} missing bucket/sum/count"
                )
            values = [v for _, v in rec["buckets"]]
            if any(b > a for a, b in zip(values[1:], values)):
                raise ValueError(
                    f"histogram {family}{dict(key)} buckets not cumulative"
                )
            if rec["buckets"][-1][0] != "+Inf":
                raise ValueError(
                    f"histogram {family}{dict(key)} missing +Inf bucket"
                )
            if values[-1] != rec["count"]:
                raise ValueError(
                    f"histogram {family}{dict(key)} +Inf bucket "
                    f"{values[-1]} != count {rec['count']}"
                )


# -- JSONL snapshot stream ------------------------------------------------


class TelemetryExporter:
    """Daemon thread appending periodic registry snapshots to a JSONL file.

    Args:
        path: Output JSONL file (created/truncated at start).
        interval_s: Seconds between snapshots.
        registry: Defaults to the global ``obs.METRICS``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        interval_s: float = 1.0,
        registry=None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.path = Path(path)
        self.interval_s = float(interval_s)
        self._registry = registry
        self._seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._mu = threading.Lock()

    @property
    def registry(self):
        return self._registry if self._registry is not None else _default_registry()

    def write_snapshot(self, event: str = "metrics") -> Dict[str, Any]:
        """Append one snapshot event; returns the event dict."""
        record = {
            "schema": TELEMETRY_SCHEMA,
            "event": event,
            "ts": time.time(),
            "metrics": self.registry.snapshot(),
        }
        with self._mu:
            record["seq"] = self._seq
            self._seq += 1
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_snapshot()

    def start(self) -> "TelemetryExporter":
        if self._thread is not None:
            raise RuntimeError("exporter already started")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("", encoding="utf-8")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-exporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and append one final snapshot."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.write_snapshot(event="final")

    def __enter__(self) -> "TelemetryExporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def read_last_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Last ``metrics`` event of a telemetry JSONL file (for obs-top)."""
    last: Optional[Dict[str, Any]] = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "metrics" in record:
                last = record
    if last is None:
        raise ValueError(f"no metrics events found in {path}")
    return last


# -- obs-top table --------------------------------------------------------


def snapshot_percentile(snap: Dict[str, Any], q: float) -> float:
    """Approximate q-quantile from a histogram *snapshot* dict."""
    count = snap.get("count", 0)
    if not count:
        return math.nan
    target = q * count
    running = 0
    bounds = snap["bounds"]
    vmax = snap["max"]
    for k, n in enumerate(snap["counts"]):
        running += n
        if running >= target and n:
            if k < len(bounds):
                return min(bounds[k], vmax)
            return vmax
    return vmax


def session_rows(metrics: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-session dashboard rows from one registry snapshot.

    Each row: ``{"session", "offered", "queue_depth", "p50_s", "p95_s",
    "repairs"}``.  Throughput needs two snapshots and is filled in by the
    obs-top loop (delta offered / delta time).
    """
    per_session: Dict[str, Dict[str, Any]] = {}

    def row(session: str) -> Dict[str, Any]:
        return per_session.setdefault(
            session,
            {
                "session": session,
                "offered": 0,
                "queue_depth": 0.0,
                "p50_s": math.nan,
                "p95_s": math.nan,
                "repairs": 0,
            },
        )

    for name, snap in metrics.items():
        base, labels = parse_metric_name(name)
        session = labels.get("session")
        if session is None:
            continue
        if base == "serve.offered":
            row(session)["offered"] = snap["value"]
        elif base == "serve.queue_depth":
            row(session)["queue_depth"] = snap["value"]
        elif base == "serve.repairs":
            row(session)["repairs"] = snap["value"]
        elif base == "serve.block_latency_s":
            row(session)["p50_s"] = snapshot_percentile(snap, 0.5)
            row(session)["p95_s"] = snapshot_percentile(snap, 0.95)
    return [per_session[k] for k in sorted(per_session)]


def render_dashboard(
    rows: List[Dict[str, Any]], title: str = "rim obs-top"
) -> str:
    """Fixed-width per-session table for the obs-top CLI verb."""
    header = (
        f"{'session':<12} {'offered':>9} {'rate/s':>8} {'depth':>6} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'repairs':>8}"
    )
    lines = [title, header, "-" * len(header)]
    if not rows:
        lines.append("(no per-session metrics yet)")
    for r in rows:
        rate = r.get("rate")
        p50, p95 = r.get("p50_s"), r.get("p95_s")
        lines.append(
            f"{r['session']:<12} {r['offered']:>9g} "
            f"{('-' if rate is None else format(rate, '.1f')):>8} "
            f"{r['queue_depth']:>6g} "
            f"{('-' if p50 != p50 else format(p50 * 1e3, '.2f')):>8} "
            f"{('-' if p95 != p95 else format(p95 * 1e3, '.2f')):>8} "
            f"{r['repairs']:>8g}"
        )
    return "\n".join(lines)


# -- HTTP endpoint --------------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "rim-metrics/1"

    def log_message(self, fmt, *args):  # pragma: no cover - silence stderr
        pass

    def _respond(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            registry = self.server.registry  # type: ignore[attr-defined]
            if self.path == "/metrics":
                body = render_exposition(registry.snapshot()).encode("utf-8")
                self._respond(body, "text/plain; version=0.0.4; charset=utf-8")
            elif self.path == "/metrics.json":
                payload = {
                    "schema": TELEMETRY_SCHEMA,
                    "event": "metrics",
                    "ts": time.time(),
                    "metrics": registry.snapshot(),
                }
                self._respond(
                    json.dumps(payload, sort_keys=True).encode("utf-8"),
                    "application/json",
                )
            elif self.path == "/flight.json":
                from repro import obs

                payload = obs.FLIGHT.payload("http-request")
                self._respond(
                    json.dumps(payload, sort_keys=True).encode("utf-8"),
                    "application/json",
                )
            elif self.path == "/healthz":
                self._respond(b"ok\n", "text/plain; charset=utf-8")
            else:
                self._respond(b"not found\n", "text/plain; charset=utf-8", 404)
        except Exception:  # pragma: no cover - endpoint must never crash
            try:
                self._respond(b"error\n", "text/plain; charset=utf-8", 500)
            except OSError:
                pass


class MetricsHTTPServer:
    """Tiny stdlib HTTP endpoint serving the metrics registry.

    Args:
        host: Bind address (loopback by default).
        port: TCP port; 0 picks an ephemeral one (read back via ``.port``).
        registry: Defaults to the global ``obs.METRICS``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, registry=None):
        self._registry = registry
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._server.daemon_threads = True
        self._server.registry = (  # type: ignore[attr-defined]
            registry if registry is not None else _default_registry()
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL (no path): append ``/metrics``, ``/metrics.json``, ..."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsHTTPServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
