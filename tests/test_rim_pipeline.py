"""Integration tests of the full RIM pipeline on simulated CSI."""

import numpy as np
import pytest

from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.motionsim.profiles import (
    back_and_forth_trajectory,
    line_trajectory,
    rotation_trajectory,
    still_trajectory,
    stop_and_go_trajectory,
)


@pytest.fixture(scope="module")
def rim():
    return Rim(RimConfig(max_lag=50))


class TestStatic:
    def test_still_device_reports_zero(self, fast_sampler, three_antenna, rim):
        traj = still_trajectory((10.0, 8.0), 1.5)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        assert result.total_distance == pytest.approx(0.0, abs=1e-9)
        assert not result.motion.moving.any()
        assert result.total_rotation == 0.0


class TestDistance:
    def test_one_meter_line(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        err = abs(result.total_distance - traj.total_distance)
        assert err < 0.10  # paper: cm-scale; generous bound for tiny test setup

    def test_cumulative_distance_monotone(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        cum = result.cumulative_distance()
        assert np.all(np.diff(cum) >= -1e-12)

    def test_speed_near_truth(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        moving_speed = result.motion.speed[result.motion.moving]
        moving_speed = moving_speed[moving_speed > 0]
        assert np.median(moving_speed) == pytest.approx(0.5, rel=0.15)

    def test_opposite_direction_same_distance(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 180.0, 0.5, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        assert abs(result.total_distance - 1.0) < 0.12

    def test_stop_and_go_distance(self, fast_sampler, three_antenna, rim):
        traj = stop_and_go_trajectory((10.0, 8.0), 0.0, 0.5, [1.0, 1.0], [0.8])
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        assert abs(result.total_distance - traj.total_distance) < 0.15


class TestHeading:
    def test_heading_sign_from_lag(self, fast_sampler, three_antenna, rim):
        """Motion along +x vs -x flips the reported heading."""
        fwd = fast_sampler.sample(
            line_trajectory((10.0, 8.0), 0.0, 0.5, 1.6), three_antenna
        )
        bwd = fast_sampler.sample(
            line_trajectory((10.0, 8.0), 180.0, 0.5, 1.6), three_antenna
        )
        h_fwd = rim.process(fwd).headings()
        h_bwd = rim.process(bwd).headings()
        mean_fwd = np.arctan2(*np.flip([np.nanmean(np.cos(h_fwd)), np.nanmean(np.sin(h_fwd))]))
        mean_bwd = np.arctan2(*np.flip([np.nanmean(np.cos(h_bwd)), np.nanmean(np.sin(h_bwd))]))
        assert abs(mean_fwd) < np.deg2rad(20.0)
        assert abs(abs(mean_bwd) - np.pi) < np.deg2rad(20.0)

    def test_hexagon_resolves_30deg(self, fast_sampler, hexagon):
        traj = line_trajectory((10.0, 8.0), 30.0, 0.5, 1.6)
        trace = fast_sampler.sample(traj, hexagon)
        result = Rim(RimConfig(max_lag=50)).process(trace)
        h = result.headings()
        h = h[np.isfinite(h)]
        assert h.size > 0
        mean = np.arctan2(np.mean(np.sin(h)), np.mean(np.cos(h)))
        assert abs(np.rad2deg(mean) - 30.0) < 16.0

    def test_heading_nan_when_still(self, fast_sampler, three_antenna, rim):
        traj = still_trajectory((10.0, 8.0), 1.0)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        assert np.isnan(result.headings()).all()


class TestDirectionReversal:
    def test_back_and_forth_net_displacement(self, fast_sampler, three_antenna, rim):
        traj = back_and_forth_trajectory((10.0, 8.0), 0.0, 0.5, 0.5)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        # Total path length ~1 m but net displacement ~0.
        assert abs(result.total_distance - 1.0) < 0.2
        positions = result.trajectory(start=(0.0, 0.0))
        assert np.linalg.norm(positions[-1]) < 0.3


class TestRotation:
    def test_rotation_detected(self, fast_sampler, hexagon):
        traj = rotation_trajectory((10.0, 8.0), 180.0, angular_speed_deg=120.0)
        trace = fast_sampler.sample(traj, hexagon)
        result = Rim(RimConfig(max_lag=140)).process(trace)
        assert len(result.motion.rotations) >= 1
        assert result.total_rotation > 0

    def test_rotation_sign(self, fast_sampler, hexagon):
        traj = rotation_trajectory((10.0, 8.0), -150.0, angular_speed_deg=120.0)
        trace = fast_sampler.sample(traj, hexagon)
        result = Rim(RimConfig(max_lag=140)).process(trace)
        assert result.total_rotation < 0

    def test_no_false_rotation_on_translation(self, fast_sampler, hexagon):
        traj = line_trajectory((10.0, 8.0), 60.0, 0.5, 1.6)
        trace = fast_sampler.sample(traj, hexagon)
        result = Rim(RimConfig(max_lag=50)).process(trace)
        assert len(result.motion.rotations) == 0

    def test_linear_array_never_reports_rotation(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.2)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        assert result.ring_tracks == []
        assert result.motion.rotations == []


class TestRobustness:
    def test_packet_loss_tolerated(self, fast_channel, three_antenna):
        from repro.channel.impairments import ImpairmentConfig
        from repro.channel.sampler import CsiSampler, ap_antenna_positions

        sampler = CsiSampler(
            channel=fast_channel,
            tx_positions=ap_antenna_positions((1.0, 1.0), n_tx=2),
            impairments=ImpairmentConfig(snr_db=25.0, packet_loss_rate=0.05),
            rng=np.random.default_rng(99),
        )
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = sampler.sample(traj, three_antenna)
        result = Rim(RimConfig(max_lag=50)).process(trace)
        assert abs(result.total_distance - 1.0) < 0.2

    def test_trajectory_shape(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.0)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        positions = result.trajectory(start=(3.0, 4.0))
        assert positions.shape == (trace.n_samples, 2)
        np.testing.assert_allclose(positions[0], [3.0, 4.0])

    def test_orientation_rotates_world_frame(self, fast_sampler, three_antenna, rim):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.6)
        trace = fast_sampler.sample(traj, three_antenna)
        result = rim.process(trace)
        east = result.trajectory(start=(0.0, 0.0), orientation=0.0)
        north = result.trajectory(start=(0.0, 0.0), orientation=np.pi / 2)
        # Rotating the device frame by 90° turns the east track north.
        np.testing.assert_allclose(
            north[-1], [-east[-1][1], east[-1][0]], atol=0.05
        )
