"""Ablations of RIM's design choices (DESIGN.md §5).

Each ablation removes one mechanism the paper argues for and measures the
damage on a fixed workload:

* **metric** — replace phase-bearing TRRS with magnitude-only correlation
  (why time-reversal focusing needs the complex channel, §3.2);
* **tracking** — replace DP peak tracking with per-column argmax (§4.2);
* **sanitize** — skip the linear phase sanitization under strong timing
  jitter (§3.2);
* **parallel averaging** — track single-pair matrices instead of averaging
  parallel isometric pairs (§4.2).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.arrays.geometry import hexagonal_array, linear_array
from repro.channel.impairments import ImpairmentConfig
from repro.core.alignment import alignment_matrix
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.core.sanitize import sanitize_trace
from repro.core.tracking import greedy_argmax_path, track_peaks
from repro.core.trrs import normalize_csi
from repro.eval.pairsutil import magnitude_normalize
from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
from repro.motionsim.profiles import line_trajectory


def run_ablation_metric(seed: int = 0, quick: bool = False) -> Dict:
    """TRRS (complex) vs magnitude-only similarity for alignment."""
    bed = make_testbed(seed=seed)
    duration = 1.6 if quick else 3.0
    traj = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 0.5, duration)
    trace = bed.sampler.sample(traj, linear_array(3))
    data = sanitize_trace(trace.data)
    fs = trace.sampling_rate

    def prominence(norm):
        m = alignment_matrix(
            norm[:, 0],
            norm[:, 1],
            max_lag=40,
            virtual_window=31,
            sampling_rate=fs,
            normalized=True,
        )
        rows = m.values[40:]
        finite = np.isfinite(rows).all(axis=1)
        sel = rows[finite]
        if sel.size == 0:
            return 0.0
        return float((sel.max(axis=1) - np.median(sel, axis=1)).mean())

    trrs_prom = prominence(normalize_csi(data))
    mag_prom = prominence(magnitude_normalize(data))
    return {
        "measured": {
            "trrs_prominence": trrs_prom,
            "magnitude_only_prominence": mag_prom,
            "trrs_wins": bool(trrs_prom > mag_prom),
        },
        "paper": {"note": "TRRS exploits time-reversal focusing of the complex CFR"},
    }


def run_ablation_tracking(seed: int = 0, quick: bool = False) -> Dict:
    """DP peak tracking vs per-column argmax under packet loss."""
    bed = make_testbed(
        seed=seed,
        impairments=ImpairmentConfig(snr_db=15.0, packet_loss_rate=0.05),
    )
    duration = 2.0 if quick else 4.0
    speed = 0.5
    traj = line_trajectory(MEASUREMENT_SPOTS[1], 0.0, speed, duration)
    trace = bed.sampler.sample(traj, linear_array(3))
    norm = normalize_csi(sanitize_trace(trace.data))
    fs = trace.sampling_rate
    m = alignment_matrix(
        norm[:, 0],
        norm[:, 1],
        max_lag=40,
        virtual_window=31,
        sampling_rate=fs,
        normalized=True,
    )
    expected_lag = trace.array.separation(0, 1) * fs / speed
    dp = track_peaks(m)
    greedy = greedy_argmax_path(m)
    interior = slice(45, trace.n_samples - 5)

    def lag_rmse(path):
        lags = path.lags[interior]
        return float(np.sqrt(np.mean((lags - expected_lag) ** 2)))

    return {
        "measured": {
            "dp_lag_rmse": lag_rmse(dp),
            "greedy_lag_rmse": lag_rmse(greedy),
            "dp_wins": bool(lag_rmse(dp) <= lag_rmse(greedy)),
        },
        "paper": {"note": "DP rejects jumpy peaks the argmax falls for (§4.2)"},
    }


def run_ablation_sanitize(seed: int = 0, quick: bool = False) -> Dict:
    """Distance accuracy with sanitization on vs off under SFO/STO."""
    impairments = ImpairmentConfig(snr_db=25.0, timing_jitter_std=0.6)
    bed = make_testbed(seed=seed, impairments=impairments)
    duration = 2.0 if quick else 4.0
    traj = line_trajectory(MEASUREMENT_SPOTS[2], 0.0, 0.5, duration)
    trace = bed.sampler.sample(traj, linear_array(3))

    errors = {}
    for label, sanitize in (("with_sanitize", True), ("without_sanitize", False)):
        rim = Rim(RimConfig(max_lag=50, sanitize=sanitize))
        res = rim.process(trace)
        errors[label] = abs(res.total_distance - traj.total_distance)
    return {
        "measured": {
            "error_with_sanitize_cm": 100 * errors["with_sanitize"],
            "error_without_sanitize_cm": 100 * errors["without_sanitize"],
            "sanitize_wins": bool(
                errors["with_sanitize"] <= errors["without_sanitize"]
            ),
        },
        "paper": {"note": "linear offsets calibrated via [13] (§3.2)"},
    }


def run_ablation_parallel_averaging(seed: int = 0, quick: bool = False) -> Dict:
    """Group-averaged matrices vs single-pair matrices (hexagon, §4.2)."""
    bed = make_testbed(
        seed=seed, impairments=ImpairmentConfig(snr_db=12.0)
    )
    duration = 1.6 if quick else 3.0
    traj = line_trajectory(MEASUREMENT_SPOTS[3], 30.0, 0.5, duration)
    trace = bed.sampler.sample(traj, hexagonal_array())

    errors = {}
    for label, averaging in (("with_averaging", True), ("without_averaging", False)):
        rim = Rim(RimConfig(max_lag=50, use_parallel_averaging=averaging))
        res = rim.process(trace)
        errors[label] = abs(res.total_distance - traj.total_distance)
    return {
        "measured": {
            "error_with_averaging_cm": 100 * errors["with_averaging"],
            "error_without_averaging_cm": 100 * errors["without_averaging"],
        },
        "paper": {"note": "parallel isometric pairs share delays; averaging augments them"},
    }
