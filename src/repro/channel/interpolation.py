"""CSI interpolation across lost packets (§5, §7 "Packet loss").

The paper inserts null CSI for lost packets and notes RIM "can tolerate
packet loss to a certain extent by interpolation".  This module implements
that recovery: complex-linear interpolation of each (rx, tx, tone) series
across NaN gaps, bounded by a maximum gap length — long outages stay NaN
(interpolating across them would fabricate a channel the device never
measured, corrupting alignment instead of helping it).
"""

from __future__ import annotations

import numpy as np


def interpolate_lost_packets(data: np.ndarray, max_gap: int = 5) -> np.ndarray:
    """Fill NaN packets by linear interpolation along the time axis.

    Args:
        data: (T, n_rx, n_tx, S) complex CSI with NaN rows for lost
            packets (per-NIC loss makes whole antennas' packets NaN).
        max_gap: Longest run of consecutive lost packets to bridge; longer
            gaps are left as NaN.

    Returns:
        A new tensor of the same shape with short gaps filled.
    """
    data = np.asarray(data)
    if data.ndim != 4:
        raise ValueError(f"expected (T, n_rx, n_tx, S) CSI, got {data.shape}")
    if max_gap < 1:
        return data.copy()

    out = data.copy()
    t = data.shape[0]
    # Loss is per packet per RX chain: detect gaps on the (T, n_rx) grid.
    lost = np.isnan(data.real).any(axis=(2, 3))
    for rx in range(data.shape[1]):
        gaps = _gap_runs(lost[:, rx])
        for start, stop in gaps:
            if stop - start > max_gap:
                continue
            before = start - 1
            after = stop
            if before < 0 or after >= t:
                continue  # gap touches the trace border: nothing to anchor
            left = data[before, rx].astype(np.complex128)
            right = data[after, rx].astype(np.complex128)
            # COTS packets carry independent PLL phases; mixing raw complex
            # values would beat against that random phase.  Rotate the
            # right anchor onto the left one first (the relative phase that
            # maximizes their coherence), then interpolate.
            inner = (np.conj(right) * left).sum()
            if np.abs(inner) > 0:
                right = right * (inner / np.abs(inner))
            span = after - before
            for k in range(start, stop):
                w = (k - before) / span
                out[k, rx] = ((1.0 - w) * left + w * right).astype(data.dtype)
    return out


def loss_fraction(data: np.ndarray) -> float:
    """Fraction of (packet, rx) slots lost in a CSI tensor."""
    data = np.asarray(data)
    lost = np.isnan(data.real).any(axis=(2, 3))
    return float(lost.mean()) if lost.size else 0.0


def _gap_runs(lost: np.ndarray):
    """Yield (start, stop) runs of consecutive lost packets."""
    t = lost.size
    k = 0
    while k < t:
        if not lost[k]:
            k += 1
            continue
        start = k
        while k < t and lost[k]:
            k += 1
        yield start, k
