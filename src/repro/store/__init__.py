"""Durable trace store: chunked CSI recording, integrity-checked replay,
and streaming checkpoint/resume.

The paper's premise is that CSI recorded once along a trajectory is
re-visited later (virtual antennas, §3.1); real deployments likewise
record once and reprocess many times.  This package is that substrate:

* :mod:`repro.store.format` — the on-disk chunk layout (CRC-32 headers)
  and the :class:`StoreCorruptionError` bridge into the guard-policy
  vocabulary.
* :mod:`repro.store.writer` — :class:`TraceWriter` / :func:`write_trace`:
  append-only, crash-safe recording.
* :mod:`repro.store.reader` — :class:`TraceReader`: random access, lazy
  iteration, optional mmap, raise/drop/repair fault handling with
  :class:`StoreReport` telemetry.
* :mod:`repro.store.checkpoint` — :class:`CheckpointedReplayer`:
  stop-at-chunk-*k*, resume-bit-identically replay on top of
  :class:`~repro.core.streaming.StreamingRim`.
* :mod:`repro.store.convert` — legacy ``.npz`` ↔ chunked store migration.

See ``docs/storage.md`` for the format spec and guarantees.
"""

from repro.store.checkpoint import (
    CheckpointedReplayer,
    load_checkpoint,
    save_checkpoint,
)
from repro.store.convert import npz_to_store, store_to_npz
from repro.store.format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MANIFEST_NAME,
    ChunkHeader,
    StoreCorruptionError,
    StoreError,
    chunk_filename,
)
from repro.store.reader import ChunkRecord, StoreReport, TraceReader
from repro.store.writer import DEFAULT_CHUNK_SAMPLES, TraceWriter, write_trace

__all__ = [
    "CheckpointedReplayer",
    "ChunkHeader",
    "ChunkRecord",
    "DEFAULT_CHUNK_SAMPLES",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "MANIFEST_NAME",
    "StoreCorruptionError",
    "StoreError",
    "StoreReport",
    "TraceReader",
    "TraceWriter",
    "chunk_filename",
    "load_checkpoint",
    "npz_to_store",
    "save_checkpoint",
    "store_to_npz",
    "write_trace",
]
