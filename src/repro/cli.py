"""Command-line interface: run demos and regenerate paper experiments.

Usage::

    python -m repro.cli demo                 # quickstart distance demo
    python -m repro.cli demo --trace         # ... with pipeline profiling
    python -m repro.cli list                 # list reproducible figures
    python -m repro.cli run fig11 [--full]   # regenerate one figure
    python -m repro.cli run all  [--full]    # regenerate everything
    python -m repro.cli profile              # emit BENCH_perf.json
    python -m repro.cli serve-sim            # concurrent multi-receiver replay
    python -m repro.cli record --out DIR     # record a simulated receiver
    python -m repro.cli replay DIR           # integrity-checked store replay
    python -m repro.cli convert SRC DEST     # legacy .npz <-> chunked store
    python -m repro.cli net-serve            # TCP ingestion server
    python -m repro.cli net-load             # network load client (loopback
                                             # by default; --fault-plan for
                                             # wire faults)
    python -m repro.cli obs-top              # live per-session telemetry
    python -m repro.cli bench run --matrix M # experiment-matrix sweep
    python -m repro.cli bench table T.json   # re-render a run table
    python -m repro.cli bench compare A B    # cell-by-cell regression check

``--log-level debug`` surfaces the pipeline's structured logging (guard
repairs, degradation, clock resampling) on stderr; the level propagates
to every ``repro.*`` module logger and records carry a ``[session]``
tag when the emitting layer knows one.

The long-runners accept telemetry flags (``--metrics-port``,
``--telemetry-jsonl``, ``--metrics-out``, ``--flight-dir``); any of
them enables :mod:`repro.obs` for the run, serves / exports registry
snapshots, and dumps the fault flight recorder on exit.  ``obs-top``
renders a per-session dashboard from a live ``--endpoint`` or an
exported ``--file``.

The long-runners (``serve-sim``, ``record``, ``replay``, ``net-serve``,
``net-load``) handle SIGINT/SIGTERM gracefully: the first signal drains
sessions, flushes writers, and prints the final health/metrics table; a
second signal aborts hard.
"""

from __future__ import annotations

import argparse
import contextlib
import logging
import sys
from typing import Callable, Dict

from repro.eval.report import render_report


class _SessionTagFilter(logging.Filter):
    """Default ``record.session`` so the root format never KeyErrors.

    Layers that know their session pass ``extra={"session": name}``;
    everything else renders as ``[-]``.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "session"):
            record.session = "-"
        return True


#: Module loggers the CLI verbosity is propagated to explicitly, so a
#: library embedder's own root configuration cannot swallow ``--log-level
#: debug`` for the pipeline's structured logs.
_LOG_MODULES = (
    "repro.core",
    "repro.robustness",
    "repro.net",
    "repro.serve",
    "repro.store",
    "repro.obs",
)


def configure_logging(level: str) -> None:
    """Install the stderr handler and propagate *level* to repro loggers."""
    numeric = getattr(logging, level.upper())
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s [%(session)s]: %(message)s")
    )
    handler.addFilter(_SessionTagFilter())
    root = logging.getLogger()
    root.addHandler(handler)
    root.setLevel(numeric)
    for name in _LOG_MODULES:
        logging.getLogger(name).setLevel(numeric)


def _add_telemetry_flags(sub_parser) -> None:
    group = sub_parser.add_argument_group(
        "telemetry", "any of these enables repro.obs for the run"
    )
    group.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve live metrics over HTTP on this port (0 = ephemeral); "
        "paths: /metrics, /metrics.json, /flight.json, /healthz",
    )
    group.add_argument(
        "--telemetry-jsonl", default=None, metavar="PATH",
        help="append periodic registry snapshots to PATH as JSONL",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a final Prometheus-style exposition to PATH on exit",
    )
    group.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="dump flight-recorder artifacts into DIR (on protocol "
        "errors, guard escalations, and exit)",
    )


@contextlib.contextmanager
def _telemetry(args):
    """Wire the telemetry flags around a long-running verb.

    Yields the live :class:`~repro.obs.MetricsHTTPServer` (or None), so
    callers can print its URL; tears everything down — final JSONL
    snapshot, exposition file, flight dump — on the way out even when
    the verb raises.
    """
    from repro import obs

    flag_names = ("metrics_port", "telemetry_jsonl", "metrics_out", "flight_dir")
    if all(getattr(args, name, None) is None for name in flag_names):
        yield None
        return
    was_enabled = obs.enabled()
    obs.enable()
    if args.flight_dir:
        obs.FLIGHT.configure(args.flight_dir)
    exporter = server = None
    try:
        if args.telemetry_jsonl:
            exporter = obs.TelemetryExporter(args.telemetry_jsonl).start()
        if args.metrics_port is not None:
            server = obs.MetricsHTTPServer(port=args.metrics_port).start()
            print(f"metrics endpoint: {server.url}/metrics", file=sys.stderr)
        yield server
    finally:
        if exporter is not None:
            exporter.stop()
        if server is not None:
            server.stop()
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(obs.render_exposition())
        if args.flight_dir:
            obs.FLIGHT.auto_dump("cli-exit")
        if not was_enabled:
            obs.disable()


def _register_runners() -> Dict[str, Callable]:
    from repro.eval import ablations, applications, experiments, extensions

    return {
        "fig4": experiments.run_fig4_trrs_resolution,
        "fig5": experiments.run_fig5_alignment_matrix,
        "fig6": experiments.run_fig6_deviated_retracing,
        "fig7": experiments.run_fig7_movement_detection,
        "fig8": experiments.run_fig8_peak_tracking,
        "fig11": experiments.run_fig11_distance_accuracy,
        "fig12": experiments.run_fig12_heading_accuracy,
        "fig13": experiments.run_fig13_rotation_accuracy,
        "fig14": experiments.run_fig14_ap_location,
        "fig15": experiments.run_fig15_accumulation,
        "fig16": experiments.run_fig16_sampling_rate,
        "fig17": experiments.run_fig17_virtual_antennas,
        "fig18": applications.run_fig18_handwriting,
        "fig19": applications.run_fig19_gesture,
        "fig20": applications.run_fig20_pure_tracking,
        "fig21": applications.run_fig21_fusion_tracking,
        "sec629": applications.run_sec629_complexity,
        "ablation-metric": ablations.run_ablation_metric,
        "ablation-tracking": ablations.run_ablation_tracking,
        "ablation-sanitize": ablations.run_ablation_sanitize,
        "ablation-averaging": ablations.run_ablation_parallel_averaging,
        "ext-wiball": extensions.run_wiball_vs_rim,
        "ext-loss": extensions.run_loss_robustness,
        "ext-finedir": extensions.run_fine_direction,
        "sweep-antennas": extensions.run_antenna_count_sweep,
        "sweep-bandwidth": extensions.run_bandwidth_sweep,
        "sweep-streaming": extensions.run_streaming_throughput,
        "navigation": extensions.run_navigation,
    }


def cmd_demo(args) -> int:
    from repro import Rim, RimConfig, linear_array, obs
    from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
    from repro.motionsim.profiles import line_trajectory

    bed = make_testbed(seed=1)
    truth = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 0.5, 3.0)
    trace = bed.sampler.sample(truth, linear_array(3))
    fault_spec = getattr(args, "fault_plan", "")
    if fault_spec:
        from repro.robustness import FaultPlan

        trace = FaultPlan.from_spec(fault_spec).apply(trace)
        print(f"injected faults: {fault_spec}")
    if args.trace:
        obs.reset()
        obs.enable()
    rim = Rim(RimConfig(max_lag=60, kernel_backend=args.kernel))
    result = rim.process(trace)
    err_cm = abs(result.total_distance - truth.total_distance) * 100
    print(f"simulated a {truth.total_distance:.1f} m push past a single unknown AP")
    print(f"RIM estimated {result.total_distance:.3f} m (error {err_cm:.1f} cm)")
    if result.health is not None:
        print()
        print(result.health.summary())
    if args.trace and result.stats is not None:
        obs.disable()
        print()
        print(obs.render_span_table(result.stats["spans"]))
        print()
        print(obs.METRICS.render_table())
    return 0


def cmd_profile(args) -> int:
    import json

    from repro.eval.perf import (
        check_perf_regression,
        render_perf_summary,
        run_perf_baseline,
        validate_perf_payload,
        write_perf_baseline,
    )

    payload = run_perf_baseline(seed=args.seed, quick=not args.full)
    validate_perf_payload(payload)
    write_perf_baseline(args.out, payload)
    print(render_perf_summary(payload))
    print(f"\nwrote {args.out}")
    if args.gate:
        with open(args.gate, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_perf_regression(
            payload, baseline, max_regression=args.max_regression
        )
        if failures:
            print(f"perf gate vs {args.gate}: FAIL", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"perf gate vs {args.gate}: ok")
    return 0


def cmd_serve_sim(args) -> int:
    from repro.serve.simulate import render_serve_table, run_serve_sim
    from repro.shutdown import GracefulShutdown

    with _telemetry(args), GracefulShutdown() as stop:
        if args.shards:
            from repro.shard import render_shard_table, run_shard_sim

            result = run_shard_sim(
                n_sessions=args.sessions,
                shards=args.shards,
                seed=args.seed,
                duration_s=args.duration,
                backpressure=args.policy,
                queue_capacity=args.queue_capacity,
                block_seconds=args.block_seconds,
                store_dir=args.store_dir,
                record_dir=args.record_dir,
                should_stop=stop.stopper(),
            )
        else:
            result = run_serve_sim(
                n_sessions=args.sessions,
                n_workers=args.workers,
                seed=args.seed,
                duration_s=args.duration,
                backpressure=args.policy,
                queue_capacity=args.queue_capacity,
                block_seconds=args.block_seconds,
                store_dir=args.store_dir,
                record_dir=args.record_dir,
                should_stop=stop.stopper(),
            )
    if stop.triggered:
        print(
            f"{stop.signal_name}: replay stopped early; sessions drained "
            "and flushed",
            file=sys.stderr,
        )
    source = (
        f"recorded receivers from {args.store_dir}"
        if args.store_dir
        else f"{args.sessions} simulated receivers"
    )
    if args.shards:
        print(
            f"replaying {source} over {args.shards} shard processes "
            f"(policy {args.policy!r})"
        )
        print()
        print(render_shard_table(result))
        agg = result["aggregate"]
        if agg["degraded_blocks"] or agg["rejected"]:
            print()
            print(
                f"warning: {agg['degraded_blocks']} degraded blocks, "
                f"{agg['rejected']} rejected packets",
                file=sys.stderr,
            )
        return 0
    print(
        f"replaying {source} over "
        f"{args.workers} workers (policy {args.policy!r})"
    )
    print()
    print(render_serve_table(result))
    agg = result["aggregate"]
    if agg["degraded_blocks"] or agg["rejected"]:
        print()
        print(
            f"warning: {agg['degraded_blocks']} degraded blocks, "
            f"{agg['rejected']} rejected packets",
            file=sys.stderr,
        )
    return 0


def cmd_record(args) -> int:
    from repro.arrays.geometry import linear_array
    from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
    from repro.motionsim.profiles import line_trajectory
    from repro.shutdown import GracefulShutdown
    from repro.store import TraceWriter

    # The guard covers the whole command: a signal during the (long)
    # trace simulation still ends in a closed, replayable store.
    with GracefulShutdown() as stop:
        bed = make_testbed(seed=args.seed)
        truth = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 0.5, args.duration)
        trace = bed.sampler.sample(truth, linear_array(3))
        if args.fault_plan:
            from repro.robustness import FaultPlan

            trace = FaultPlan.from_spec(args.fault_plan).apply(trace)
            print(f"injected faults: {args.fault_plan}")
        # Stream packet-by-packet (instead of one bulk write) so an
        # interrupt leaves a valid store: whole chunks on disk, manifest
        # closed.
        writer = TraceWriter(
            args.out,
            trace.array,
            carrier_wavelength=trace.carrier_wavelength,
            chunk_samples=args.chunk_samples,
            tx_positions=trace.tx_positions,
            trajectory=trace.trajectory,
            sampling_rate=trace.sampling_rate if trace.n_samples >= 2 else None,
        )
        with writer:
            for k in range(trace.n_samples):
                if stop.should_stop():
                    break
                writer.append(trace.data[k], float(trace.times[k]))
    if stop.triggered:
        print(
            f"{stop.signal_name}: recording stopped early; store flushed "
            "and manifest closed",
            file=sys.stderr,
        )
    print(
        f"recorded {writer.n_samples} samples "
        f"({truth.total_distance:.1f} m walk) into {args.out}: "
        f"{writer.n_chunks} chunks, {writer.bytes_written} bytes"
    )
    return 0


def cmd_replay(args) -> int:
    from repro.core.config import RimConfig
    from repro.shutdown import GracefulShutdown
    from repro.store import CheckpointedReplayer, TraceReader

    reader = TraceReader(args.store, policy=args.guard)
    config = RimConfig(guard_policy="repair" if args.guard == "repair" else args.guard)
    if args.resume:
        replayer = CheckpointedReplayer.resume(
            reader, args.resume, config=config, block_seconds=args.block_seconds
        )
        print(f"resumed from {args.resume} at chunk {replayer.cursor}")
    else:
        replayer = CheckpointedReplayer(
            reader, config=config, block_seconds=args.block_seconds
        )
    with GracefulShutdown() as stop:
        updates = replayer.run(
            max_chunks=args.max_chunks, should_stop=stop.stopper()
        )
    if stop.triggered:
        print(
            f"{stop.signal_name}: replay stopped at chunk {replayer.cursor} "
            "(checkpointable boundary)",
            file=sys.stderr,
        )
    if args.checkpoint:
        replayer.save(args.checkpoint)
        print(f"checkpoint written to {args.checkpoint} at chunk {replayer.cursor}")

    # Store-level repairs come from the reader's report; health reports
    # carry the same counts (folded in per block), so only the guard's
    # own repairs are merged from there.
    repairs: Dict[str, int] = dict(reader.report.repairs())
    for update in updates:
        if update.health is not None:
            for key, value in update.health.repairs.items():
                if not key.startswith("store_"):
                    repairs[key] = repairs.get(key, 0) + value
    report = reader.report
    print(
        f"replayed {report.n_chunks_read}/{report.n_chunks} chunks "
        f"({report.n_samples_read} samples) from {args.store} "
        f"under guard {args.guard!r}"
    )
    print(
        f"{len(updates)} updates, total distance "
        f"{replayer.stream.total_distance:.3f} m"
    )
    if repairs:
        print("repairs: " + ", ".join(f"{k}={v}" for k, v in sorted(repairs.items())))
    missing = [key for key in args.expect_repair if not repairs.get(key)]
    if missing:
        print(
            f"expected repair counters missing or zero: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_net_serve(args) -> int:
    import time
    from pathlib import Path

    from repro.net import NetServer, NetServerConfig, render_net_table
    from repro.serve.session import ServeConfig
    from repro.shutdown import GracefulShutdown

    config = NetServerConfig(
        host=args.host,
        port=args.port,
        reorder_window=args.reorder_window,
        heartbeat_s=args.heartbeat,
        idle_timeout_s=args.idle_timeout,
    )
    serve_config = ServeConfig(
        backpressure=args.policy,
        queue_capacity=args.queue_capacity,
        block_seconds=args.block_seconds,
    )
    router = None
    if args.shards:
        from repro.shard.router import ShardRouter, fleet_sync_loop

        router = ShardRouter(
            args.shards,
            serve_config=serve_config,
            record_dir=args.record_dir or None,
        )
        router.wait_ready()
        server = NetServer(config=config, manager=router, serve_config=serve_config)
    else:
        server = NetServer(config=config, serve_config=serve_config)
        if args.record_dir:
            server.manager.record_dir = Path(args.record_dir)
    with _telemetry(args):
        server.start()
        where = f"{config.host}:{server.port}"
        if router is not None:
            print(f"net server listening on {where} ({args.shards} shards)")
        else:
            print(f"net server listening on {where}")
        with GracefulShutdown() as stop:
            if router is not None:
                fleet_sync_loop(router, interval_s=2.0, should_stop=stop.should_stop)
            rows = []
            try:
                while not stop.should_stop():
                    time.sleep(0.2)
            finally:
                server.close()
                if router is not None:
                    # Stats live in the workers; capture before teardown.
                    rows = server.session_stats()
                    router.close()
    if stop.triggered:
        print(
            f"{stop.signal_name}: server stopped; sessions flushed",
            file=sys.stderr,
        )
    if router is None:
        rows = server.session_stats()
    if rows:
        print()
        print(
            render_net_table(
                {
                    "sessions": rows,
                    "baseline_match": None,
                    "aggregate": {
                        "n_sessions": len(rows),
                        "n_samples": sum(int(r["offered"]) for r in rows),
                        "wall_s": 0.0,
                        "samples_per_second": 0.0,
                        "reconnects": sum(
                            int(r.get("reconnects", 0)) for r in rows
                        ),
                        "recovery_s_max": 0.0,
                    },
                }
            )
        )
    return 0


def cmd_net_load(args) -> int:
    from repro.net import NetFaultPlan, render_net_table, run_net_load
    from repro.serve.session import ServeConfig
    from repro.serve.simulate import simulated_receivers, store_receivers
    from repro.shutdown import GracefulShutdown

    if args.store_dir:
        receivers = store_receivers(args.store_dir)
        source = f"recorded receivers from {args.store_dir}"
    else:
        receivers = simulated_receivers(
            args.sessions, seed=args.seed, duration_s=args.duration
        )
        source = f"{args.sessions} simulated receivers"
    plan = NetFaultPlan.from_spec(args.fault_plan) if args.fault_plan else None
    serve_config = ServeConfig(
        backpressure=args.policy,
        queue_capacity=args.queue_capacity,
        block_seconds=args.block_seconds,
    )
    loopback = args.host is None
    print(
        f"streaming {source} over "
        f"{'a loopback server' if loopback else f'{args.host}:{args.port}'}"
        + (f" with wire faults: {args.fault_plan}" if args.fault_plan else "")
    )
    with _telemetry(args), GracefulShutdown() as stop:
        result = run_net_load(
            receivers,
            fault_plan=plan,
            serve_config=serve_config,
            host=args.host,
            port=args.port,
            check_baseline=loopback and not args.no_baseline,
            should_stop=stop.stopper(),
        )
    if stop.triggered:
        print(
            f"{stop.signal_name}: load stopped early; streams closed with "
            "BYE and sessions flushed",
            file=sys.stderr,
        )
    print()
    print(render_net_table(result))
    if result["baseline_match"] is False:
        print(
            "network stream DIVERGED from the in-process baseline",
            file=sys.stderr,
        )
        return 1
    if args.expect_recovery:
        agg = result["aggregate"]
        if not result.get("stopped_early") and agg["reconnects"] < 1:
            print(
                "expected at least one reconnect-resume, saw none",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_bench(args) -> int:
    import json
    from pathlib import Path

    from repro.bench import (
        compare_tables,
        gate_reference_cell,
        load_spec,
        parse_filters,
        render_bench_csv,
        render_bench_table,
        run_matrix,
        validate_run_table,
    )
    from repro.shutdown import GracefulShutdown

    if args.bench_command == "table":
        with open(args.table, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        validate_run_table(payload)
        render = render_bench_csv if args.format == "csv" else render_bench_table
        print(render(payload), end="")
        return 0

    if args.bench_command == "compare":
        with open(args.old, "r", encoding="utf-8") as fh:
            old = json.load(fh)
        with open(args.new, "r", encoding="utf-8") as fh:
            new = json.load(fh)
        validate_run_table(old)
        validate_run_table(new)
        failures = compare_tables(old, new, max_regression=args.max_regression)
        if failures:
            print(f"bench compare {args.old} -> {args.new}: FAIL", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"bench compare {args.old} -> {args.new}: ok")
        return 0

    # bench run
    spec = load_spec(args.matrix)
    if args.repetitions is not None:
        spec.repetitions = args.repetitions
        spec.validate()
    if args.seed is not None:
        spec.seed = args.seed
    filters = parse_filters(args.filter)
    with GracefulShutdown() as stop:
        payload = run_matrix(
            spec,
            filters=filters,
            should_stop=stop.stopper(),
            progress=lambda line: print(line, file=sys.stderr),
        )
    if stop.triggered:
        print(
            f"{stop.signal_name}: sweep stopped early; table covers "
            "finished cells only",
            file=sys.stderr,
        )
    print()
    print(render_bench_table(payload), end="")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        with open(out / "run_table.json", "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        (out / "run_table.md").write_text(
            render_bench_table(payload), encoding="utf-8"
        )
        (out / "run_table.csv").write_text(
            render_bench_csv(payload), encoding="utf-8"
        )
        print(f"wrote {out}/run_table.{{json,md,csv}}", file=sys.stderr)
    if args.gate:
        with open(args.gate, "r", encoding="utf-8") as fh:
            perf_payload = json.load(fh)
        failures = gate_reference_cell(
            payload, perf_payload, max_regression=args.max_regression
        )
        if failures:
            print(f"bench gate vs {args.gate}: FAIL", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"bench gate vs {args.gate}: ok")
    return 0


def cmd_obs_top(args) -> int:
    import json
    import time
    from urllib.request import urlopen

    from repro.obs.export import (
        read_last_snapshot,
        render_dashboard,
        session_rows,
    )

    if bool(args.endpoint) == bool(args.file):
        print(
            "obs-top needs exactly one source: --endpoint URL or --file PATH",
            file=sys.stderr,
        )
        return 2

    def fetch() -> Dict:
        if args.endpoint:
            url = args.endpoint.rstrip("/") + "/metrics.json"
            with urlopen(url, timeout=5.0) as resp:
                return json.loads(resp.read().decode("utf-8"))
        return read_last_snapshot(args.file)

    title = f"rim obs-top — {args.endpoint or args.file}"
    # session -> (offered, snapshot ts): throughput is the offered delta
    # between consecutive snapshots.
    previous: Dict[str, tuple] = {}
    while True:
        try:
            payload = fetch()
        except (OSError, ValueError) as exc:
            print(f"obs-top: {exc}", file=sys.stderr)
            return 1
        now = float(payload.get("ts", time.time()))
        rows = session_rows(payload.get("metrics", {}))
        for row in rows:
            before = previous.get(row["session"])
            if before is not None and now > before[1]:
                row["rate"] = (row["offered"] - before[0]) / (now - before[1])
            previous[row["session"]] = (row["offered"], now)
        print(render_dashboard(rows, title=title))
        if args.once:
            return 0
        time.sleep(args.interval)
        print()


def cmd_convert(args) -> int:
    from pathlib import Path

    from repro.store import npz_to_store, store_to_npz
    from repro.store.format import MANIFEST_NAME

    src = Path(args.src)
    if src.is_dir() and (src / MANIFEST_NAME).is_file():
        n = store_to_npz(src, args.dest, policy=args.guard)
        print(f"converted store {src} -> legacy archive {args.dest} ({n} samples)")
    elif src.is_file():
        writer = npz_to_store(src, args.dest, chunk_samples=args.chunk_samples)
        print(
            f"converted legacy archive {src} -> store {args.dest} "
            f"({writer.n_chunks} chunks, {writer.n_samples} samples)"
        )
    else:
        print(f"{src} is neither a trace store nor an .npz archive", file=sys.stderr)
        return 2
    return 0


def cmd_list(_args) -> int:
    runners = _register_runners()
    print("reproducible experiments:")
    for name, fn in runners.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<20} {doc}")
    return 0


def cmd_run(args) -> int:
    runners = _register_runners()
    targets = list(runners) if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in runners]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(runners)}", file=sys.stderr)
        return 2
    for name in targets:
        result = runners[name](seed=args.seed, quick=not args.full)
        print(render_report(name, result))
        if args.plot:
            from repro.eval.figures import render_result_figures

            print()
            print(render_result_figures(name, result))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RIM (SIGCOMM'19) reproduction: RF-based inertial measurement",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="stderr logging verbosity for the pipeline's structured logs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a 30-second distance-tracking demo")
    demo.add_argument(
        "--fault-plan",
        default="",
        metavar="SPEC",
        help="inject ingestion faults before processing, e.g. "
        '"dead_chain=1,loss=0.1,burst=12,reorder=0.02" '
        "(see repro.robustness.FaultPlan.from_spec)",
    )
    demo.add_argument(
        "--trace",
        action="store_true",
        help="enable repro.obs instrumentation and print span/metric tables",
    )
    demo.add_argument(
        "--kernel",
        default="auto",
        metavar="BACKEND",
        help='alignment kernel backend ("auto", "reference", "batched"; '
        "auto honors the RIM_KERNEL env var)",
    )
    sub.add_parser("list", help="list reproducible figures")

    run = sub.add_parser("run", help="regenerate a paper figure")
    run.add_argument("experiment", help='figure id (e.g. "fig11") or "all"')
    run.add_argument("--full", action="store_true", help="paper-scale workload")
    run.add_argument("--seed", type=int, default=0, help="scenario seed")
    run.add_argument("--plot", action="store_true", help="render ASCII figures")

    profile = sub.add_parser(
        "profile", help="profile the pipeline and write a perf baseline"
    )
    profile.add_argument(
        "--out", default="BENCH_perf.json", help="output JSON path"
    )
    profile.add_argument("--seed", type=int, default=0, help="scenario seed")
    profile.add_argument(
        "--full", action="store_true", help="longer, paper-scale workload"
    )
    profile.add_argument(
        "--gate",
        metavar="PATH",
        default=None,
        help="fail if the fresh run regresses vs the committed baseline at PATH",
    )
    profile.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed fractional rim.process slowdown for --gate (default 0.25)",
    )

    serve = sub.add_parser(
        "serve-sim",
        help="replay N simulated receivers concurrently through repro.serve",
    )
    serve.add_argument(
        "--sessions", type=int, default=8, help="simulated receiver count"
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="worker threads driving sessions"
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="fan sessions across N shard worker processes (repro.shard) "
        "instead of one in-process manager",
    )
    serve.add_argument("--seed", type=int, default=0, help="testbed seed")
    serve.add_argument(
        "--duration", type=float, default=2.0,
        help="per-receiver trajectory duration, seconds",
    )
    serve.add_argument(
        "--policy", default="block", choices=("block", "drop_oldest", "reject"),
        help="backpressure policy for a full ingest queue",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=256,
        help="per-session ingest queue bound (packets)",
    )
    serve.add_argument(
        "--block-seconds", type=float, default=1.0,
        help="streaming emission cadence, seconds",
    )
    serve.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="replay recorded receivers from this store / fleet directory "
        "instead of simulating",
    )
    serve.add_argument(
        "--record-dir", default=None, metavar="DIR",
        help="record every session's ingest into chunked stores under DIR",
    )
    _add_telemetry_flags(serve)

    record = sub.add_parser(
        "record", help="record a simulated receiver into a chunked trace store"
    )
    record.add_argument(
        "--out", required=True, metavar="DIR", help="store directory to create"
    )
    record.add_argument("--seed", type=int, default=1, help="testbed seed")
    record.add_argument(
        "--duration", type=float, default=3.0,
        help="trajectory duration, seconds",
    )
    record.add_argument(
        "--chunk-samples", type=int, default=256, help="packets per chunk file"
    )
    record.add_argument(
        "--fault-plan", default="", metavar="SPEC",
        help="inject ingestion faults before recording "
        "(see repro.robustness.FaultPlan.from_spec)",
    )

    replay = sub.add_parser(
        "replay",
        help="replay a recorded store through the streaming estimator",
    )
    replay.add_argument("store", help="store directory to replay")
    replay.add_argument(
        "--guard", default="repair", choices=("raise", "drop", "repair"),
        help="fault policy for corrupt/missing chunks (and the stream guard)",
    )
    replay.add_argument(
        "--block-seconds", type=float, default=1.0,
        help="streaming emission cadence, seconds",
    )
    replay.add_argument(
        "--max-chunks", type=int, default=None, metavar="K",
        help="stop after K chunks (the checkpoint boundary)",
    )
    replay.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a resume checkpoint (.npz) after the run",
    )
    replay.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a checkpoint written by --checkpoint",
    )
    replay.add_argument(
        "--expect-repair", action="append", default=[], metavar="KEY",
        help="exit nonzero unless this repair counter is present and nonzero "
        "(CI assertion; repeatable)",
    )

    net_serve = sub.add_parser(
        "net-serve", help="run the TCP CSI ingestion server"
    )
    net_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    net_serve.add_argument(
        "--port", type=int, default=7316, help="bind port (0 = ephemeral)"
    )
    net_serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="fan sessions across N shard worker processes (repro.shard); "
        "with --record-dir, a dead shard's sessions resume on survivors",
    )
    net_serve.add_argument(
        "--policy", default="block", choices=("block", "drop_oldest", "reject"),
        help="backpressure policy for a full ingest queue",
    )
    net_serve.add_argument(
        "--queue-capacity", type=int, default=256,
        help="per-session ingest queue bound (packets)",
    )
    net_serve.add_argument(
        "--block-seconds", type=float, default=1.0,
        help="streaming emission cadence, seconds",
    )
    net_serve.add_argument(
        "--reorder-window", type=int, default=64,
        help="out-of-order samples buffered before a gap is skipped",
    )
    net_serve.add_argument(
        "--heartbeat", type=float, default=2.0,
        help="per-connection PING cadence, seconds",
    )
    net_serve.add_argument(
        "--idle-timeout", type=float, default=30.0,
        help="close connections idle this long, seconds",
    )
    net_serve.add_argument(
        "--record-dir", default=None, metavar="DIR",
        help="record every session's ingest into chunked stores under DIR",
    )
    _add_telemetry_flags(net_serve)

    net_load = sub.add_parser(
        "net-load",
        help="stream receivers through the network front-end "
        "(loopback server by default)",
    )
    net_load.add_argument(
        "--host", default=None,
        help="send to an already-running server (default: spin up loopback)",
    )
    net_load.add_argument(
        "--port", type=int, default=7316, help="server port (with --host)"
    )
    net_load.add_argument(
        "--sessions", type=int, default=2, help="simulated receiver count"
    )
    net_load.add_argument("--seed", type=int, default=0, help="testbed seed")
    net_load.add_argument(
        "--duration", type=float, default=2.0,
        help="per-receiver trajectory duration, seconds",
    )
    net_load.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="replay recorded receivers from this store / fleet directory "
        "instead of simulating",
    )
    net_load.add_argument(
        "--fault-plan", default="", metavar="SPEC",
        help="wire faults injected between client and server, e.g. "
        '"drop=0.05,reorder=0.1,corrupt=0.02,disconnect=100" '
        "(see repro.net.NetFaultPlan.from_spec)",
    )
    net_load.add_argument(
        "--policy", default="block", choices=("block", "drop_oldest", "reject"),
        help="backpressure policy for a full ingest queue",
    )
    net_load.add_argument(
        "--queue-capacity", type=int, default=256,
        help="per-session ingest queue bound (packets)",
    )
    net_load.add_argument(
        "--block-seconds", type=float, default=1.0,
        help="streaming emission cadence, seconds",
    )
    net_load.add_argument(
        "--no-baseline", action="store_true",
        help="skip the bit-identity comparison against the in-process run",
    )
    net_load.add_argument(
        "--expect-recovery", action="store_true",
        help="exit nonzero unless at least one reconnect-resume happened "
        "(CI assertion for disconnect fault plans)",
    )
    _add_telemetry_flags(net_load)

    obs_top = sub.add_parser(
        "obs-top",
        help="render a live per-session telemetry table "
        "(throughput, latency percentiles, queue depth, repairs)",
    )
    obs_top.add_argument(
        "--endpoint", default=None, metavar="URL",
        help="metrics HTTP endpoint base URL (a long-runner's "
        "--metrics-port), e.g. http://127.0.0.1:9316",
    )
    obs_top.add_argument(
        "--file", default=None, metavar="PATH",
        help="read the latest snapshot from a --telemetry-jsonl file "
        "instead of a live endpoint",
    )
    obs_top.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh period, seconds",
    )
    obs_top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )

    bench = sub.add_parser(
        "bench",
        help="experiment-matrix benchmarking (repro.bench): run a matrix "
        "sweep, re-render a run table, or compare two tables",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="expand and run a matrix spec, emit the run table"
    )
    bench_run.add_argument(
        "--matrix", required=True, metavar="PATH",
        help="matrix spec file (.toml on python >= 3.11, .json anywhere)",
    )
    bench_run.add_argument(
        "--out", default=None, metavar="DIR",
        help="write run_table.{json,md,csv} into DIR",
    )
    bench_run.add_argument(
        "--filter", action="append", default=[], metavar="KEY=VALUE",
        help="only run matching cells: an axis (shards=2, kernel=batched) "
        "or cell=SUBSTRING against the full cell key; repeatable (AND)",
    )
    bench_run.add_argument(
        "--repetitions", type=int, default=None, metavar="N",
        help="override the spec's measured repetitions per cell",
    )
    bench_run.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    bench_run.add_argument(
        "--gate", default=None, metavar="PATH",
        help="gate the run table's reference cell against the committed "
        "perf baseline at PATH (BENCH_perf.json)",
    )
    bench_run.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional regression for --gate (default 0.25)",
    )

    bench_table = bench_sub.add_parser(
        "table", help="validate and re-render a saved run table"
    )
    bench_table.add_argument("table", help="run_table.json path")
    bench_table.add_argument(
        "--format", default="md", choices=("md", "csv"), help="output format"
    )

    bench_compare = bench_sub.add_parser(
        "compare", help="cell-by-cell regression check between two run tables"
    )
    bench_compare.add_argument("old", help="baseline run_table.json")
    bench_compare.add_argument("new", help="fresh run_table.json")
    bench_compare.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional regression per cell (default 0.25)",
    )

    convert = sub.add_parser(
        "convert", help="convert legacy .npz <-> chunked trace store"
    )
    convert.add_argument("src", help=".npz archive or store directory")
    convert.add_argument("dest", help="destination (direction is inferred)")
    convert.add_argument(
        "--chunk-samples", type=int, default=256,
        help="packets per chunk file (npz -> store direction)",
    )
    convert.add_argument(
        "--guard", default="raise", choices=("raise", "drop", "repair"),
        help="store read policy (store -> npz direction); the default "
        "refuses to archive a corrupt store",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    handlers = {
        "demo": cmd_demo,
        "list": cmd_list,
        "run": cmd_run,
        "profile": cmd_profile,
        "serve-sim": cmd_serve_sim,
        "record": cmd_record,
        "replay": cmd_replay,
        "convert": cmd_convert,
        "net-serve": cmd_net_serve,
        "net-load": cmd_net_load,
        "obs-top": cmd_obs_top,
        "bench": cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
