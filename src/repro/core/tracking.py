"""Dynamic-programming TRRS peak tracking (§4.2, Eqns. 6-8; Fig. 8).

Column argmaxes of an alignment matrix are corrupted by measurement noise,
packet loss, and wagging movements.  RIM instead finds, per pair, the path
of lags that maximizes the accumulated score

    S(q_kl → q_jn) = e_kl + e_jn + ω·C(q_kl, q_jn),   C = |l - n| / (2W)

with ω < 0 punishing jumpy lag transitions — the moving speed (hence the
alignment delay) cannot fluctuate much between consecutive packets.  The
Bellman recursion (Eqn. 6) runs once forward with backpointers, then the
best terminal state is traced back (Eqn. 8).

``refine_lags`` adds sub-sample resolution by fitting a parabola through
the TRRS values around each tracked integer lag — this is what converts the
millimeter-level TRRS peak sharpness (Fig. 4) into sub-centimeter speed
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.alignment import AlignmentMatrix


@dataclass
class TrackedPath:
    """Result of DP peak tracking over an alignment matrix.

    Attributes:
        lag_indices: (T,) column index of the tracked peak per time step.
        lags: (T,) integer lags (lag_indices shifted by -W).
        refined_lags: (T,) sub-sample lags after parabolic refinement.
        path_trrs: (T,) TRRS value along the tracked path (NaN treated as 0
            during tracking but reported as NaN here).
        score: Total accumulated DP score of the optimal path.
    """

    lag_indices: np.ndarray
    lags: np.ndarray
    refined_lags: np.ndarray
    path_trrs: np.ndarray
    score: float


def track_peaks(
    matrix: AlignmentMatrix,
    transition_weight: float = -2.0,
    refine: bool = True,
) -> TrackedPath:
    """Track the alignment-delay peak sequence through a TRRS matrix.

    Args:
        matrix: The per-pair (possibly group-averaged) alignment matrix.
        transition_weight: ω of Eqn. 7 (must be negative): cost weight on
            lag jumps, normalized by the window width.
        refine: Apply parabolic sub-sample refinement.

    Returns:
        The optimal :class:`TrackedPath`.
    """
    if transition_weight >= 0:
        raise ValueError(f"transition weight ω must be negative, got {transition_weight}")
    # One owned copy with NaN -> 0 (lost packets carry no evidence, Eqn. 6).
    # Leaner than np.nan_to_num, which also scans for ±inf — TRRS values
    # are in [0, 1] or NaN, never infinite.
    e = np.array(matrix.values, dtype=np.float64)
    np.copyto(e, 0.0, where=np.isnan(e))
    t, n_lags = e.shape
    if t == 0:
        empty = np.zeros(0)
        return TrackedPath(empty.astype(int), empty.astype(int), empty, empty, 0.0)

    with obs.span("dp_tracking", pair=matrix.pair, shape=(t, n_lags)):
        return _track_peaks(matrix, e, transition_weight, refine)


def _track_peaks(
    matrix: AlignmentMatrix,
    e: np.ndarray,
    transition_weight: float,
    refine: bool,
) -> TrackedPath:
    t, n_lags = e.shape
    obs.add("dp.paths_tracked", 1)
    obs.add("dp.cells", t * n_lags)
    lag_axis = np.arange(n_lags)
    # ω·C(l, n) with C = |l-n| / (2W)  (2W = n_lags - 1 columns span).
    jump_cost = (
        transition_weight
        * np.abs(lag_axis[:, None] - lag_axis[None, :])
        / max(1, n_lags - 1)
    )

    score = e[0].copy()
    backptr = np.zeros((t, n_lags), dtype=np.int32)
    # The Bellman loop runs T times over an (L, L) candidate table; reusing
    # preallocated buffers keeps the loop free of large allocations.
    candidate = np.empty((n_lags, n_lags))
    base = np.empty(n_lags)
    for step in range(1, t):
        # Transition score from every l to every n (Eqn. 7): the e terms of
        # both endpoints plus the jump penalty.
        np.add(score, e[step - 1], out=base)
        np.add(base[:, None], jump_cost, out=candidate)
        best_prev = np.argmax(candidate, axis=0)
        backptr[step] = best_prev
        np.add(candidate[best_prev, lag_axis], e[step], out=score)

    lag_indices = np.empty(t, dtype=np.int64)
    lag_indices[-1] = int(np.argmax(score))
    for step in range(t - 1, 0, -1):
        lag_indices[step - 1] = backptr[step, lag_indices[step]]

    return finalize_path(matrix, lag_indices, float(np.max(score)), refine)


def finalize_path(
    matrix: AlignmentMatrix,
    lag_indices: np.ndarray,
    score: float,
    refine: bool,
) -> TrackedPath:
    """Assemble a :class:`TrackedPath` from tracked integer lag columns.

    Shared by the reference recursion above and the batched DP kernels
    (:mod:`repro.perf.dptrack`): everything downstream of the forward
    pass — lag shifting, path-TRRS gathering, parabolic refinement — is
    identical regardless of which kernel produced ``lag_indices``.
    """
    t = lag_indices.size
    lags = lag_indices - matrix.max_lag
    path_trrs = matrix.values[np.arange(t), lag_indices]
    refined = (
        refine_lags(matrix.values, lag_indices) - matrix.max_lag
        if refine
        else lags.astype(np.float64)
    )
    return TrackedPath(
        lag_indices=lag_indices,
        lags=lags,
        refined_lags=refined,
        path_trrs=path_trrs,
        score=float(score),
    )


def greedy_argmax_path(matrix: AlignmentMatrix) -> TrackedPath:
    """Per-column argmax baseline (the 'ideal case' of §4.2) — no smoothing.

    Used by the ablation bench to show what DP tracking buys.
    """
    e = np.nan_to_num(matrix.values, nan=0.0)
    t = e.shape[0]
    lag_indices = np.argmax(e, axis=1).astype(np.int64)
    lags = lag_indices - matrix.max_lag
    path_trrs = matrix.values[np.arange(t), lag_indices]
    refined = refine_lags(matrix.values, lag_indices) - matrix.max_lag
    return TrackedPath(
        lag_indices=lag_indices,
        lags=lags,
        refined_lags=refined,
        path_trrs=path_trrs,
        score=float(np.nansum(path_trrs)),
    )


def refine_lags(values: np.ndarray, lag_indices: np.ndarray) -> np.ndarray:
    """Sub-sample peak positions via 3-point parabolic interpolation.

    Args:
        values: (T, L) TRRS matrix.
        lag_indices: (T,) integer peak columns.

    Returns:
        (T,) float column positions; clamped to ±0.5 around the integer
        peak, falling back to the integer position at matrix borders or
        around NaNs.
    """
    t, n_lags = values.shape
    out = lag_indices.astype(np.float64)
    interior = (lag_indices > 0) & (lag_indices < n_lags - 1)
    idx = np.nonzero(interior)[0]
    if idx.size == 0:
        return out
    center = values[idx, lag_indices[idx]]
    left = values[idx, lag_indices[idx] - 1]
    right = values[idx, lag_indices[idx] + 1]
    denom = left - 2.0 * center + right
    valid = np.isfinite(denom) & np.isfinite(left) & np.isfinite(right) & (np.abs(denom) > 1e-12)
    shift = np.zeros_like(center)
    shift[valid] = 0.5 * (left[valid] - right[valid]) / denom[valid]
    shift = np.clip(shift, -0.5, 0.5)
    out[idx] = lag_indices[idx] + shift
    return out
