"""Benchmark harness configuration.

Each bench regenerates one paper figure on the simulated testbed and prints
a paper-vs-measured table.  Set ``RIM_FULL=1`` to run paper-scale workloads
(more traces, longer distances); the default sizes finish on a laptop in
minutes while keeping every workload's shape.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    """True when paper-scale workloads were requested via RIM_FULL=1."""
    return os.environ.get("RIM_FULL", "0") not in ("0", "", "false", "False")


@pytest.fixture(scope="session")
def quick() -> bool:
    """Benches run quick workloads unless RIM_FULL=1."""
    return not full_scale()
