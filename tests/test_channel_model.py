"""Unit tests for scatterer fields and the multipath channel model."""

import numpy as np
import pytest

from repro.channel.constants import SPEED_OF_LIGHT, wavelength
from repro.channel.model import MultipathChannel, _integer_power, _tone_phasor_block
from repro.channel.ofdm import make_grid
from repro.channel.scatterers import (
    ScattererField,
    clustered_field,
    ring_field,
    uniform_field,
)
from repro.env.floorplan import Floorplan, Wall


class TestConstants:
    def test_wavelength_default(self):
        assert wavelength() == pytest.approx(0.05164, rel=1e-3)

    def test_wavelength_invalid(self):
        with pytest.raises(ValueError):
            wavelength(0.0)

    def test_half_wavelength_matches_paper(self):
        from repro.channel.constants import HALF_WAVELENGTH

        assert HALF_WAVELENGTH == pytest.approx(0.0258, abs=2e-4)


class TestScattererField:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ScattererField(positions=np.zeros((3, 3)), reflectivity=np.zeros(3))
        with pytest.raises(ValueError):
            ScattererField(positions=np.zeros((3, 2)), reflectivity=np.zeros(2))

    def test_excess_defaults_to_zero(self):
        field = ScattererField(positions=np.zeros((2, 2)), reflectivity=np.ones(2))
        np.testing.assert_array_equal(field.excess_lengths, [0.0, 0.0])

    def test_negative_excess_rejected(self):
        with pytest.raises(ValueError):
            ScattererField(
                positions=np.zeros((2, 2)),
                reflectivity=np.ones(2),
                excess_lengths=np.array([1.0, -0.5]),
            )

    def test_uniform_field_bounds(self, rng):
        field = uniform_field(20, 10, n_scatterers=50, rng=rng)
        assert field.n_scatterers == 50
        assert (field.positions[:, 0] >= 0).all() and (field.positions[:, 0] <= 20).all()
        assert (field.positions[:, 1] >= 0).all() and (field.positions[:, 1] <= 10).all()

    def test_uniform_field_needs_scatterers(self):
        with pytest.raises(ValueError):
            uniform_field(10, 10, n_scatterers=0)

    def test_ring_field_radius(self, rng):
        field = ring_field((5, 5), 3.0, n_scatterers=30, radial_jitter=0.0, rng=rng)
        radii = np.linalg.norm(field.positions - np.array([5, 5]), axis=1)
        np.testing.assert_allclose(radii, 3.0, rtol=1e-9)

    def test_ring_field_invalid_radius(self):
        with pytest.raises(ValueError):
            ring_field((0, 0), -1.0)

    def test_clustered_field_count(self, rng):
        field = clustered_field(20, 15, n_clusters=4, scatterers_per_cluster=5, rng=rng)
        assert field.n_scatterers == 20


class TestTonePhasors:
    def test_integer_power_negative(self):
        base = np.array([np.exp(1j * 0.3)])
        np.testing.assert_allclose(
            _integer_power(base, -3), np.exp(-3j * 0.3), rtol=1e-12
        )

    def test_integer_power_zero(self):
        base = np.array([2.0 + 0j])
        np.testing.assert_allclose(_integer_power(base, 0), 1.0)

    def test_phasor_block_matches_direct_exp(self):
        grid = make_grid().grouped(8)
        delays = np.array([[5.0, 12.0], [7.5, 30.0]])
        block = _tone_phasor_block(delays, grid)
        freqs = grid.frequencies
        direct = np.exp(
            -2j * np.pi * delays[:, :, None] * freqs[None, None, :] / SPEED_OF_LIGHT
        )
        np.testing.assert_allclose(block, direct.astype(np.complex64), atol=1e-4)


class TestMultipathChannel:
    def _channel(self, rng, **kw):
        field = ring_field((5, 5), 4.0, n_scatterers=25, rng=rng)
        return MultipathChannel(scatterers=field, grid=make_grid().grouped(16), **kw)

    def test_cfr_shape(self, rng):
        ch = self._channel(rng)
        h = ch.cfr((0.0, 0.0), np.random.default_rng(0).uniform(4, 6, (7, 2)))
        assert h.shape == (7, 16)
        assert h.dtype == np.complex64

    def test_cfr_validates_tx_shape(self, rng):
        ch = self._channel(rng)
        with pytest.raises(ValueError):
            ch.cfr((0.0, 0.0, 0.0), np.zeros((3, 2)))

    def test_cfr_validates_rx_shape(self, rng):
        ch = self._channel(rng)
        with pytest.raises(ValueError):
            ch.cfr((0.0, 0.0), np.zeros((3, 3)))

    def test_cfr_deterministic(self, rng):
        ch = self._channel(rng)
        pos = np.array([[5.0, 5.0], [5.01, 5.0]])
        h1 = ch.cfr((0.0, 0.0), pos)
        h2 = ch.cfr((0.0, 0.0), pos)
        np.testing.assert_array_equal(h1, h2)

    def test_same_position_same_cfr(self, rng):
        ch = self._channel(rng)
        pos = np.array([[5.0, 5.0], [5.0, 5.0]])
        h = ch.cfr((0.0, 0.0), pos)
        np.testing.assert_allclose(h[0], h[1], rtol=1e-5)

    def test_spatial_decorrelation(self, rng):
        """TRRS must decay within ~1 cm of motion (the paper's Fig. 4)."""
        ch = self._channel(rng, los_gain=0.3)
        xs = 5.0 + np.arange(0, 40) * 0.005
        pos = np.stack([xs, np.full_like(xs, 5.0)], axis=1)
        h = ch.cfr((0.0, 0.0), pos)
        hn = h / np.linalg.norm(h, axis=1, keepdims=True)
        corr = np.abs(hn @ hn[0].conj()) ** 2
        assert corr[0] == pytest.approx(1.0, abs=1e-5)
        # 2 cm away the channel must have substantially decorrelated.
        assert corr[4] < 0.85

    def test_wall_reduces_amplitude(self, rng):
        field = ring_field((8, 5), 2.0, n_scatterers=20, rng=rng)
        grid = make_grid().grouped(16)
        wallplan = Floorplan(
            width=20, height=10, walls=[Wall((4, 0), (4, 10), attenuation=0.3)]
        )
        open_ch = MultipathChannel(scatterers=field, grid=grid, los_gain=1.0)
        wall_ch = MultipathChannel(
            scatterers=field, grid=grid, floorplan=wallplan, los_gain=1.0
        )
        rx = np.array([[8.0, 5.0]])
        p_open = np.abs(open_ch.cfr((0.0, 5.0), rx)) ** 2
        p_wall = np.abs(wall_ch.cfr((0.0, 5.0), rx)) ** 2
        assert p_wall.mean() < p_open.mean()

    def test_los_gain_zero_removes_direct_path(self, rng):
        field = ScattererField(
            positions=np.array([[100.0, 100.0]]),
            reflectivity=np.array([1e-9 + 0j]),
        )
        ch = MultipathChannel(
            scatterers=field, grid=make_grid().grouped(8), los_gain=0.0
        )
        h = ch.cfr((0.0, 0.0), np.array([[1.0, 0.0]]))
        assert np.abs(h).max() < 1e-6

    def test_los_only_amplitude_follows_inverse_distance(self, rng):
        field = ScattererField(
            positions=np.array([[500.0, 500.0]]),
            reflectivity=np.array([0.0 + 0j]),
        )
        ch = MultipathChannel(
            scatterers=field, grid=make_grid().grouped(8), los_gain=1.0
        )
        h1 = ch.cfr((0.0, 0.0), np.array([[2.0, 0.0]]))
        h2 = ch.cfr((0.0, 0.0), np.array([[4.0, 0.0]]))
        ratio = np.abs(h1).mean() / np.abs(h2).mean()
        assert ratio == pytest.approx(2.0, rel=1e-3)

    def test_blocks_respect_attenuation_refresh(self, rng):
        ch = self._channel(rng)
        ch.attenuation_refresh = 0.05
        rx = np.stack([np.linspace(4, 6, 300), np.full(300, 5.0)], axis=1)
        blocks = list(ch._blocks(rx))
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 300
        for (s1, e1), (s2, e2) in zip(blocks, blocks[1:]):
            assert e1 == s2
        assert len(blocks) > 5
