"""Deterministic wire-level fault injection for the network front-end.

:class:`NetFaultPlan` is the transport-layer sibling of
:class:`repro.robustness.FaultPlan`: where that plan perturbs CSI
*contents* (dead chains, NaN bursts, clock faults), this one perturbs
*delivery* — frames dropped, duplicated, reordered, corrupted in flight,
delayed, or the connection severed mid-stream.  It is applied by the
client (:class:`repro.net.client.NetClient`) between framing and the
socket, so the server under test sees genuinely damaged wire traffic.

Every decision is a pure function of ``(seed, seq)``, which is what makes
reconnect-resume testable: when the client resends a window after a
reconnect, each frame is re-faulted exactly as before, so the set of
sequence numbers that can ever reach the server —
:meth:`NetFaultPlan.delivered_seqs` — is known in advance and the
delivered stream can be compared bit-for-bit against an in-process
baseline fed exactly those samples.

Fault classes (all independent per sample, except reordering):

* ``drop_fraction`` — the frame is never written.
* ``duplicate_fraction`` — the frame is written twice back-to-back.
* ``reorder_fraction`` — adjacent disjoint swaps: sample ``2k`` is held
  and written after ``2k+1``.
* ``corrupt_fraction`` — one payload byte is flipped; the server's frame
  CRC catches it and drops the frame (counted, never parsed).
* ``delay_fraction`` / ``delay_s`` — the frame is written after a pause.
* ``disconnect_after`` — after that many DATA frames have been written
  the client hard-closes the socket once, forcing a reconnect-resume.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import FrozenSet, List, Tuple

import numpy as np


@dataclass(frozen=True)
class NetFaultPlan:
    """A composable, seedable description of wire faults.

    Attributes:
        seed: RNG seed; decisions are pure functions of ``(seed, seq)``,
            so resending a sample re-applies the same faults.
        drop_fraction: Fraction of DATA frames never written.
        duplicate_fraction: Fraction of DATA frames written twice.
        reorder_fraction: Fraction of even-seq DATA frames swapped with
            their successor (adjacent disjoint swaps).
        corrupt_fraction: Fraction of DATA frames with one payload byte
            flipped in flight (dropped by the server's CRC).
        delay_fraction: Fraction of DATA frames written after a pause.
        delay_s: Length of that pause, seconds.
        disconnect_after: Hard-close the socket after this many DATA
            frames have been written (once per run); ``None`` disables.
    """

    seed: int = 0
    drop_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    reorder_fraction: float = 0.0
    corrupt_fraction: float = 0.0
    delay_fraction: float = 0.0
    delay_s: float = 0.005
    disconnect_after: "int | None" = None

    def __post_init__(self) -> None:
        for name in (
            "drop_fraction",
            "duplicate_fraction",
            "reorder_fraction",
            "corrupt_fraction",
            "delay_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.disconnect_after is not None and self.disconnect_after < 1:
            raise ValueError("disconnect_after must be >= 1 DATA frame")

    @property
    def is_clean(self) -> bool:
        """True when the plan injects nothing."""
        return (
            self.drop_fraction == 0.0
            and self.duplicate_fraction == 0.0
            and self.reorder_fraction == 0.0
            and self.corrupt_fraction == 0.0
            and self.delay_fraction == 0.0
            and self.disconnect_after is None
        )

    # -- per-sample decisions ----------------------------------------------

    def _draws(self, seq: int) -> np.ndarray:
        """Five uniform draws for sample ``seq`` (drop, dup, corrupt,
        delay, reorder), stable across processes and resends."""
        rng = np.random.default_rng((0x52494D4E, self.seed, seq))
        return rng.uniform(size=5)

    def drops(self, seq: int) -> bool:
        return bool(self._draws(seq)[0] < self.drop_fraction)

    def duplicates(self, seq: int) -> bool:
        return bool(self._draws(seq)[1] < self.duplicate_fraction)

    def corrupts(self, seq: int) -> bool:
        return bool(self._draws(seq)[2] < self.corrupt_fraction)

    def delays(self, seq: int) -> bool:
        return bool(self._draws(seq)[3] < self.delay_fraction)

    def swaps_with_next(self, seq: int) -> bool:
        """True when samples ``seq`` and ``seq+1`` are delivered swapped.

        Decided only at even seqs, so swaps are disjoint by construction.
        """
        if seq % 2 != 0:
            return False
        return bool(self._draws(seq)[4] < self.reorder_fraction)

    def corrupt_bytes(self, seq: int, frame: bytes) -> bytes:
        """Flip one payload byte of an encoded frame (header left intact
        so the damage is a CRC failure, not a resync)."""
        from repro.net.framing import HEADER_SIZE

        if len(frame) <= HEADER_SIZE:
            at = len(frame) - 1  # empty payload: flip inside the CRC field
        else:
            rng = np.random.default_rng((0xC0584255, self.seed, seq))
            at = HEADER_SIZE + int(rng.integers(0, len(frame) - HEADER_SIZE))
        flipped = bytearray(frame)
        flipped[at] ^= 0x5A
        return bytes(flipped)

    def delivered_seqs(self, n: int) -> FrozenSet[int]:
        """Seqs (of ``range(n)``) that can ever reach the session.

        A sample is undeliverable when the plan drops it or corrupts it
        (corruption survives resends because decisions are per-seq
        deterministic); everything else — duplicated, reordered, delayed,
        interrupted by a disconnect — is delivered eventually.
        """
        return frozenset(
            seq
            for seq in range(n)
            if not (self.drops(seq) or self.corrupts(seq))
        )

    def expected_repairs(self, n: int) -> dict:
        """Fault counts the server should account for over ``range(n)``.

        Keys mirror the ``net_*`` entries the server folds into
        ``HealthReport.repairs``.  Gap accounting is conservative: every
        undeliverable seq below the delivered high-water mark must
        eventually be skipped.
        """
        delivered = self.delivered_seqs(n)
        high = max(delivered) if delivered else -1
        gaps = sum(1 for seq in range(high + 1) if seq not in delivered)
        corrupted = sum(1 for seq in range(n) if self.corrupts(seq))
        duplicated = sum(
            1
            for seq in range(n)
            if seq in delivered and self.duplicates(seq)
        )
        return {
            "net_crc_dropped": corrupted,
            "net_gap_samples": gaps,
            "net_duplicate_dropped": duplicated,
        }

    # -- parsing -----------------------------------------------------------

    _SPEC_ALIASES = {
        "drop": "drop_fraction",
        "duplicate": "duplicate_fraction",
        "dup": "duplicate_fraction",
        "reorder": "reorder_fraction",
        "corrupt": "corrupt_fraction",
        "delay": "delay_fraction",
        "disconnect": "disconnect_after",
    }

    @classmethod
    def from_spec(cls, spec: str) -> "NetFaultPlan":
        """Parse a compact CLI spec like ``"drop=0.05,reorder=0.1,disconnect=200"``.

        Keys are field names or their short aliases (``drop``, ``dup``/
        ``duplicate``, ``reorder``, ``corrupt``, ``delay``,
        ``disconnect``).
        """
        spec = (spec or "").strip()
        if not spec:
            return cls()
        field_names = {f.name for f in fields(cls)}
        kwargs: dict = {}
        for item in spec.split(","):
            if "=" not in item:
                raise ValueError(
                    f"malformed net fault spec item {item!r} (want key=value)"
                )
            key, value = (part.strip() for part in item.split("=", 1))
            name = cls._SPEC_ALIASES.get(key, key)
            if name not in field_names:
                known = sorted(field_names | set(cls._SPEC_ALIASES))
                raise ValueError(
                    f"unknown net fault spec key {key!r}; known keys: "
                    f"{', '.join(known)}"
                )
            if name in ("seed", "disconnect_after"):
                kwargs[name] = int(value)
            else:
                kwargs[name] = float(value)
        return cls(**kwargs)


class WireFaultInjector:
    """Applies a :class:`NetFaultPlan` to an outgoing DATA frame stream.

    Sits between the client's framing and its socket writes.  Stateful
    only for reordering (one held frame) and the single mid-stream
    disconnect; everything else is the plan's pure per-seq decisions.
    """

    def __init__(self, plan: NetFaultPlan):
        self.plan = plan
        self._held: "Tuple[int, bytes] | None" = None  # (seq, frame) awaiting swap
        self._sent_data = 0
        self._disconnected_once = False
        self.n_dropped = 0
        self.n_duplicated = 0
        self.n_corrupted = 0
        self.n_reordered = 0
        self.n_delayed = 0

    def reset_stream(self) -> None:
        """Forget the in-flight swap (the transport died under it)."""
        self._held = None

    def admit(self, seq: int, frame: bytes) -> List[Tuple[bytes, float]]:
        """Fault one DATA frame; returns ``(bytes, pre-write delay)`` writes."""
        plan = self.plan
        if plan.is_clean:
            return [(frame, 0.0)]
        out: List[Tuple[bytes, float]] = []

        if plan.drops(seq):
            self.n_dropped += 1
            frame = b""
        elif plan.corrupts(seq):
            self.n_corrupted += 1
            frame = plan.corrupt_bytes(seq, frame)

        delay = plan.delay_s if (frame and plan.delays(seq)) else 0.0
        if delay:
            self.n_delayed += 1

        if self._held is not None:
            # ``seq`` is the successor of the held frame: emit swapped.
            held_seq, held_frame = self._held
            self._held = None
            if frame:
                out.append((frame, delay))
            if held_frame:
                out.append((held_frame, 0.0))
            if frame and held_frame:
                self.n_reordered += 1
            if frame and plan.duplicates(seq):
                self.n_duplicated += 1
                out.append((frame, 0.0))
            if held_frame and plan.duplicates(held_seq):
                self.n_duplicated += 1
                out.append((held_frame, 0.0))
            return out

        if plan.swaps_with_next(seq):
            self._held = (seq, frame)
            return []

        if frame:
            out.append((frame, delay))
            if plan.duplicates(seq):
                self.n_duplicated += 1
                out.append((frame, 0.0))
        return out

    def flush(self) -> List[Tuple[bytes, float]]:
        """Release a swap held at end-of-stream (no successor is coming)."""
        if self._held is None:
            return []
        held_seq, held_frame = self._held
        self._held = None
        if not held_frame:
            return []
        out = [(held_frame, 0.0)]
        if self.plan.duplicates(held_seq):
            self.n_duplicated += 1
            out.append((held_frame, 0.0))
        return out

    def should_disconnect(self) -> bool:
        """Count one written DATA frame; True when it is time to sever."""
        if self.plan.disconnect_after is None or self._disconnected_once:
            return False
        self._sent_data += 1
        if self._sent_data >= self.plan.disconnect_after:
            self._disconnected_once = True
            return True
        return False

    def counters(self) -> dict:
        return {
            "dropped": self.n_dropped,
            "duplicated": self.n_duplicated,
            "corrupted": self.n_corrupted,
            "reordered": self.n_reordered,
            "delayed": self.n_delayed,
        }
