"""Runners for the §7 extension experiments and scaling sweeps.

Same contract as :mod:`repro.eval.experiments`; these quantify the paper's
discussion-section claims rather than its evaluation figures.  The
benchmark files under ``benchmarks/`` and the CLI both dispatch here.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.arrays.geometry import hexagonal_array, linear_array, uniform_circular_array
from repro.channel.impairments import ImpairmentConfig
from repro.channel.ofdm import make_grid
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.core.sanitize import sanitize_trace
from repro.core.streaming import StreamingRim
from repro.core.wiball import WiballSpeedEstimator
from repro.eval.metrics import circular_mean, heading_error_deg
from repro.eval.setup import MEASUREMENT_SPOTS, make_testbed
from repro.motionsim.profiles import line_trajectory


def _merge_health(agg: Dict, health) -> None:
    """Fold one HealthReport into a runner-level aggregate (in place)."""
    if health is None:
        return
    agg["runs"] = agg.get("runs", 0) + 1
    agg["max_loss_rate"] = max(agg.get("max_loss_rate", 0.0), health.loss_rate)
    repairs = agg.setdefault("repairs", {})
    for key, value in health.repairs.items():
        repairs[key] = repairs.get(key, 0) + value
    if health.dead_chains:
        agg.setdefault("dead_chains", []).extend(health.dead_chains)
    if health.degraded:
        agg["degraded"] = agg.get("degraded", 0) + 1


def run_wiball_vs_rim(seed: int = 30, quick: bool = False) -> Dict:
    """RIM (retracing) vs WiBall (decay) distance on the same traces."""
    n = 2 if quick else 4
    rim_errors, wiball_errors = [], []
    for k in range(n):
        bed = make_testbed(seed=seed + k)
        traj = line_trajectory(
            MEASUREMENT_SPOTS[k % 9], 0.0, 1.0, 3.0 if quick else 5.0
        )
        trace = bed.sampler.sample(traj, linear_array(3))
        rim_res = Rim(RimConfig(max_lag=60)).process(trace)
        rim_errors.append(abs(rim_res.total_distance - traj.total_distance))

        data = sanitize_trace(trace.data)
        wb = WiballSpeedEstimator(trace.carrier_wavelength).estimate(
            data[:, 0], trace.sampling_rate
        )
        wiball_errors.append(abs(wb.distance - traj.total_distance))
    return {
        "measured": {
            "rim_median_error_cm": 100 * float(np.median(rim_errors)),
            "wiball_median_error_cm": 100 * float(np.median(wiball_errors)),
            "rim_wins": bool(np.median(rim_errors) < np.median(wiball_errors)),
        },
        "paper": {
            "note": "§7: WiBall offers (less accurate) distance in arbitrary directions"
        },
    }


def run_loss_robustness(seed: int = 40, quick: bool = False) -> Dict:
    """Distance error versus packet loss rate (§5/§7 'Packet loss')."""
    rates = [0.0, 0.1, 0.3] if quick else [0.0, 0.05, 0.1, 0.2, 0.3]
    medians = {}
    health_agg: Dict = {}
    reps = 1 if quick else 2
    for rate in rates:
        errors = []
        for r in range(reps):
            bed = make_testbed(
                seed=seed + r,
                impairments=ImpairmentConfig(
                    snr_db=25.0, packet_loss_rate=rate, loss_burstiness=3.0
                ),
            )
            traj = line_trajectory(MEASUREMENT_SPOTS[r % 9], 0.0, 0.5, 3.0)
            trace = bed.sampler.sample(traj, linear_array(3))
            res = Rim(RimConfig(max_lag=60)).process(trace)
            errors.append(abs(res.total_distance - traj.total_distance))
            _merge_health(health_agg, res.health)
        medians[rate] = 100 * float(np.median(errors))
    return {
        "measured": {"median_error_cm_by_loss": medians},
        "paper": {"note": "RIM tolerates packet loss to a certain extent (§7)"},
        "health": health_agg or None,
    }


def run_fine_direction(seed: int = 50, quick: bool = False) -> Dict:
    """Heading error on off-grid directions, grid vs refined (§7)."""
    directions = [10.0, 40.0] if quick else [10.0, 20.0, 40.0, 70.0, 100.0, -50.0]
    errors = {False: [], True: []}
    for k, d in enumerate(directions):
        for fine in (False, True):
            bed = make_testbed(seed=seed + k)
            traj = line_trajectory(MEASUREMENT_SPOTS[k % 9], d, 0.5, 2.0)
            trace = bed.sampler.sample(traj, hexagonal_array())
            res = Rim(RimConfig(max_lag=60, fine_direction=fine)).process(trace)
            errors[fine].append(heading_error_deg(circular_mean(res.headings()), d))
    return {
        "measured": {
            "grid_mean_error_deg": float(np.mean(errors[False])),
            "refined_mean_error_deg": float(np.mean(errors[True])),
        },
        "paper": {
            "note": "§7: finer directions from TRRS strengths of adjacent pairs"
        },
    }


def run_antenna_count_sweep(seed: int = 60, quick: bool = False) -> Dict:
    """Heading error vs antenna count on a UCA (§7 'Antenna array')."""
    counts = [4, 8] if quick else [4, 6, 8, 12]
    directions = [17.0] if quick else [17.0, 52.0, 101.0]
    errors = {}
    for n in counts:
        errs = []
        arr = uniform_circular_array(n)
        for k, d in enumerate(directions):
            bed = make_testbed(seed=seed + k)
            traj = line_trajectory(MEASUREMENT_SPOTS[k % 9], d, 0.5, 1.6)
            trace = bed.sampler.sample(traj, arr)
            res = Rim(RimConfig(max_lag=60)).process(trace)
            errs.append(heading_error_deg(circular_mean(res.headings()), d))
        errors[n] = float(np.mean(errs))
    return {
        "measured": {"mean_heading_error_deg_by_antennas": errors},
        "paper": {"note": "§7: more antennas offer better resolution immediately"},
    }


def run_bandwidth_sweep(seed: int = 70, quick: bool = False) -> Dict:
    """Distance error vs channel bandwidth / tone count (§3.2)."""
    configs = (
        {"40MHz/114": make_grid(bandwidth=40e6), "20MHz/56": make_grid(bandwidth=20e6)}
        if quick
        else {
            "40MHz/114": make_grid(bandwidth=40e6),
            "40MHz/30grp": make_grid(bandwidth=40e6).grouped(30),
            "20MHz/56": make_grid(bandwidth=20e6),
            "20MHz/14grp": make_grid(bandwidth=20e6).grouped(14),
        }
    )
    reps = 1 if quick else 3
    medians = {}
    for label, grid in configs.items():
        errs = []
        for r in range(reps):
            bed = make_testbed(seed=seed + r, grid=grid)
            traj = line_trajectory(MEASUREMENT_SPOTS[r % 9], 0.0, 0.5, 3.0)
            trace = bed.sampler.sample(traj, linear_array(3))
            res = Rim(RimConfig(max_lag=60)).process(trace)
            errs.append(abs(res.total_distance - traj.total_distance))
        medians[label] = 100 * float(np.median(errs))
    return {
        "measured": {"median_error_cm_by_channel": medians},
        "paper": {"note": "§3.2: focusing intensifies with larger bandwidth"},
    }


def run_streaming_throughput(seed: int = 80, quick: bool = False) -> Dict:
    """Online pipeline throughput vs the 200 Hz packet rate (§5)."""
    bed = make_testbed(seed=seed)
    duration = 2.0 if quick else 5.0
    traj = line_trajectory(MEASUREMENT_SPOTS[0], 0.0, 0.5, duration)
    arr = linear_array(3)
    trace = bed.sampler.sample(traj, arr)
    cfg = RimConfig(max_lag=60)

    stream = StreamingRim(
        arr,
        trace.sampling_rate,
        cfg,
        block_seconds=1.0,
        carrier_wavelength=trace.carrier_wavelength,
    )
    health_agg: Dict = {}
    start = time.perf_counter()
    for k in range(trace.n_samples):
        update = stream.push(trace.data[k], trace.times[k])
        if update is not None:
            _merge_health(health_agg, update.health)
    update = stream.flush()
    elapsed = time.perf_counter() - start
    if update is not None:
        _merge_health(health_agg, update.health)

    offline = Rim(cfg).process(trace).total_distance
    return {
        "measured": {
            "samples_per_second": trace.n_samples / elapsed,
            "real_time_at_200hz": bool(trace.n_samples / elapsed >= 200.0),
            "streamed_vs_offline_gap_cm": 100 * abs(stream.total_distance - offline),
        },
        "paper": {"note": "§5: real-time system; §6.2.9 ~6% CPU"},
        "health": health_agg or None,
    }


def run_navigation(seed: int = 9, quick: bool = False) -> Dict:
    """Closed-loop AGV waypoint navigation on RIM feedback (§6.3.3)."""
    from repro.apps.navigation import WaypointNavigator

    bed = make_testbed(seed=seed)
    navigator = WaypointNavigator(
        bed.sampler, hexagonal_array(), rng=np.random.default_rng(seed)
    )
    if quick:
        waypoints = [(11.0, 13.5), (11.0, 14.5)]
    else:
        waypoints = [(12.0, 13.5), (12.0, 14.8), (16.0, 14.8), (16.0, 13.4)]
    result = navigator.navigate((8.0, 13.5), waypoints, max_steps=160)
    errors = [e for e in result.arrival_errors if e == e]
    return {
        "measured": {
            "waypoints_reached": sum(result.reached),
            "n_waypoints": len(waypoints),
            "mean_arrival_error_cm": 100 * float(np.mean(errors))
            if errors
            else float("nan"),
            "distance_driven_m": result.total_true_distance,
        },
        "paper": {"note": "AGV steering closed over RIM alone (§6.3.3 use case)"},
    }
