"""``repro.perf`` — kernel backends for the alignment hot path.

The package owns the *kernel backend registry* (which implementation of
the TRRS/alignment kernels the pipeline runs), the batched kernels
themselves, and the streaming cross-block row cache:

* :mod:`repro.perf.registry` — backend selection via
  ``RimConfig.kernel_backend`` / the ``RIM_KERNEL`` env var;
* :mod:`repro.perf.kernels` — ``reference`` (the serial oracle) and
  ``batched`` (one einsum per lag across all pairs, with cell reuse);
* :mod:`repro.perf.streamcache` — incremental reuse of the context
  window's TRRS rows across streaming blocks.

All backends are numerically equivalent; ``batched`` is the default.
See ``docs/performance.md``.
"""

from __future__ import annotations

from repro.perf.kernels import (
    BaseRowStore,
    BatchedBackend,
    KernelBackend,
    ReferenceBackend,
)
from repro.perf.dptrack import dp_track_batch, native_available
from repro.perf.registry import (
    DEFAULT_BACKEND,
    DEFAULT_KERNEL_DTYPE,
    RIM_KERNEL_DTYPE_ENV,
    RIM_KERNEL_ENV,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    resolve_kernel_dtype,
)
from repro.perf.streamcache import StreamAlignmentCache

# The reference oracle is always float64 — it defines the numbers every
# other backend is measured against; only batched kernels honour the
# opt-in precision.
register_backend("reference", lambda config: ReferenceBackend())
register_backend(
    "batched",
    lambda config: BatchedBackend(
        threads=getattr(config, "kernel_threads", 0),
        dtype=resolve_kernel_dtype(config),
    ),
)

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_KERNEL_DTYPE",
    "RIM_KERNEL_DTYPE_ENV",
    "RIM_KERNEL_ENV",
    "BaseRowStore",
    "BatchedBackend",
    "KernelBackend",
    "ReferenceBackend",
    "StreamAlignmentCache",
    "available_backends",
    "dp_track_batch",
    "get_backend",
    "native_available",
    "register_backend",
    "resolve_backend_name",
    "resolve_kernel_dtype",
]
