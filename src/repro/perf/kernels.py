"""TRRS kernel backends: the batched alignment hot path.

The alignment matrices of §3.2 dominate ``Rim.process`` wall time (see
``BENCH_perf.json``).  The serial path builds each pair's banded matrix
with one complex einsum per lag *per pair*; this module restructures the
work around a shared cell store and two batched kernels: contiguous row
runs are reduced by BLAS band GEMMs (the complex inner product fused
into **one** real GEMM per pair over interleaved re/im operands, Re and
Im landing in alternating result columns — see
:meth:`BaseRowStore.real_views`), and scattered strided rows are
gathered per lag column and reduced with one einsum across **all**
requested pairs at once.  The backend also serves the ``track_paths``
capability — DP peak tracking (§4.2) batched across every matrix of a
group at once (:mod:`repro.perf.dptrack`) — and an opt-in ``float32``
precision for both kernels (``RimConfig.kernel_dtype``).

The batched backend additionally keeps a per-trace :class:`BaseRowStore`
of computed cells, which buys two kinds of reuse:

* the strided ``virtual_window=1`` rows computed by the pre-detection
  screen (§4.3) are *not* recomputed when the full tracking pass later
  needs the same pair at full resolution;
* :class:`~repro.core.streaming.StreamingRim` seeds the store with the
  previous block's rows (see :mod:`repro.perf.streamcache`), so only the
  cells involving newly pushed samples are evaluated per block.

Every backend must be numerically equivalent to ``reference``: NaN
propagation from lost packets is identical cell for cell, and values
agree within 1e-9 (the GEMM accumulation order differs from einsum's by
a few float64 ulps; the gather kernel is bit-identical).
``tests/test_kernel_backends.py`` enforces this on clean and
fault-injected traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.alignment import (
    AlignmentMatrix,
    alignment_matrix,
    nan_moving_average,
)
from repro.core.tracking import TrackedPath, finalize_path, track_peaks
from repro.perf.dptrack import dp_track_batch


class KernelBackend:
    """Interface every kernel backend implements.

    A backend turns batched *pair-matrix requests* into
    :class:`~repro.core.alignment.AlignmentMatrix` lists.  One *store*
    (an opaque per-trace object from :meth:`make_store`) is threaded
    through all requests of a single ``Rim.process`` call so backends
    can reuse work across pipeline stages.
    """

    name = "abstract"

    def make_store(self, norm: np.ndarray, max_lag: int):
        """Per-trace state for one pipeline run over ``norm`` (T,R,K,S)."""
        raise NotImplementedError

    def matrices(
        self,
        store,
        pairs: Sequence,
        *,
        virtual_window: int,
        sampling_rate: float,
        time_stride: int = 1,
    ) -> List[AlignmentMatrix]:
        """Alignment matrices for ``pairs``, batched however the backend likes."""
        raise NotImplementedError

    def seed_store(self, store, cache, offset: int) -> None:
        """Pre-populate ``store`` from a cross-block cache (no-op by default)."""

    def export_store(self, store, cache, offset: int) -> None:
        """Publish ``store`` rows into a cross-block cache (no-op by default)."""

    def track_paths(
        self,
        matrices: Sequence[AlignmentMatrix],
        *,
        transition_weight: float,
        refine: bool = True,
    ) -> List[TrackedPath]:
        """DP peak tracking for a batch of alignment matrices (§4.2).

        The default implementation is the oracle: one reference
        :func:`~repro.core.tracking.track_peaks` recursion per matrix.
        Batched backends may track the whole stack in one pass; whatever
        they do must reproduce the reference paths bit for bit (same
        candidate sums, same first-index argmax tie-breaks).
        """
        return [
            track_peaks(m, transition_weight=transition_weight, refine=refine)
            for m in matrices
        ]


class ReferenceBackend(KernelBackend):
    """The original serial per-pair path — the numerical oracle.

    Delegates every pair to :func:`repro.core.alignment.alignment_matrix`
    exactly as the pipeline did before backends existed, including its
    per-pair ``alignment_matrix`` obs spans and work counters.  No reuse,
    no caching: what this backend computes is what every other backend
    must reproduce bit for bit.
    """

    name = "reference"

    class _Store:
        __slots__ = ("norm", "max_lag")

        def __init__(self, norm, max_lag):
            self.norm = norm
            self.max_lag = max_lag

    def make_store(self, norm, max_lag):
        return self._Store(norm, max_lag)

    def matrices(self, store, pairs, *, virtual_window, sampling_rate, time_stride=1):
        return [
            alignment_matrix(
                store.norm[:, p.i],
                store.norm[:, p.j],
                max_lag=store.max_lag,
                virtual_window=virtual_window,
                sampling_rate=sampling_rate,
                pair=(p.i, p.j),
                time_stride=time_stride,
                normalized=True,
            )
            for p in pairs
        ]


class BaseRowStore:
    """Per-trace store of computed base-TRRS cells for antenna pairs.

    For each ordered pair key ``(i, j)`` it holds a ``(T, 2W+1)`` value
    matrix (NaN where never computed or outside the lag band) and a
    boolean ``known`` mask of the same shape marking cells that have been
    evaluated.  Requests only compute cells that are requested, inside
    the band, and not yet known — which is what makes pre-screen rows,
    cross-stage rows, and cross-block seeded rows free.
    """

    def __init__(self, norm: np.ndarray, max_lag: int, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"unsupported kernel dtype {dtype!r}")
        cdtype = np.complex64 if self.dtype == np.float32 else np.complex128
        self.norm = norm if norm.dtype == cdtype else norm.astype(cdtype)
        self.cdtype = np.dtype(cdtype)
        self.max_lag = int(max_lag)
        self.t = int(norm.shape[0])
        self.n_lags = 2 * self.max_lag + 1
        self.values: Dict[Tuple[int, int], np.ndarray] = {}
        self.known: Dict[Tuple[int, int], np.ndarray] = {}
        self._band: Optional[np.ndarray] = None
        self._real: Optional[np.ndarray] = None
        self._fused: Optional[np.ndarray] = None

    def entry(self, key: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        """The (values, known) arrays of ``key``, created NaN/False on miss."""
        if key not in self.values:
            self.values[key] = np.full((self.t, self.n_lags), np.nan, dtype=self.dtype)
            self.known[key] = np.zeros((self.t, self.n_lags), dtype=bool)
        return self.values[key], self.known[key]

    def band(self) -> np.ndarray:
        """(T, 2W+1) mask of in-band cells: the partner sample t-l exists."""
        if self._band is None:
            partner = (
                np.arange(self.t)[:, None]
                - np.arange(-self.max_lag, self.max_lag + 1)[None, :]
            )
            self._band = (partner >= 0) & (partner < self.t)
        return self._band

    def real_views(self) -> Tuple[np.ndarray, np.ndarray]:
        """Interleaved real operands for the one-GEMM band kernel.

        Returns ``(real, fusedT)`` in the store's real dtype:

        * ``real``: ``(K, R, T, 2S)`` C-contiguous — ``real[k, a, t]``
          is snapshot ``(t, a, k)`` as interleaved ``re, im`` pairs, so
          a row-run slice ``real[:, i, r0:r1]`` is a zero-copy batched
          GEMM operand;
        * ``fusedT``: ``(K, R, 2S, T, 2)`` — the partner operand already
          transposed for the product.  Row ``2s`` holds tone ``s``
          itself (``z``) and row ``2s+1`` holds ``-i·z`` (i.e. ``im``
          and ``-re`` interleaved), so a window slice
          ``fusedT[:, j, :, u0:u1]`` reshapes (zero-copy, the last two
          axes are memory-adjacent) to ``(K, 2S, 2·nu)`` and one batched
          matmul per pair yields Re and Im as interleaved columns:
          ``Re⟨conj(x), y⟩`` in even, ``Im⟨conj(x), y⟩`` in odd ones.
        """
        if self._real is None:
            stacked = np.ascontiguousarray(self.norm.transpose(2, 1, 0, 3))
            real = stacked.view(self.dtype)
            k, r, t, s2 = real.shape
            # Built in the complex domain: -i·z IS the [im, -re]
            # interleave when viewed as reals, so two contiguous-chunk
            # assignments replace four strided ones.
            ct = np.empty((k, r, s2, t), dtype=self.cdtype)
            zt = stacked.transpose(0, 1, 3, 2)
            ct[:, :, 0::2, :] = zt
            np.multiply(zt, np.asarray(-1j, dtype=self.cdtype), out=ct[:, :, 1::2, :])
            self._real = real
            self._fused = ct.view(self.dtype).reshape(k, r, s2, t, 2)
        return self._real, self._fused


class BatchedBackend(KernelBackend):
    """Batched einsum kernels over a :class:`BaseRowStore`.

    Args:
        threads: Fan the per-lag columns out over a thread pool of this
            size (the einsum inner products release the GIL for the bulk
            of their work).  ``0``/``1`` means serial.
        dtype: Kernel precision: ``"float64"`` (default) reproduces the
            reference oracle bit for bit / within the 1e-9 GEMM budget;
            ``"float32"`` opts in to single-precision TRRS and DP
            kernels with the documented error budget
            (``docs/performance.md``).
    """

    name = "batched"

    def __init__(self, threads: int = 0, dtype: str = "float64"):
        self.threads = int(threads)
        dtype = str(dtype)
        if dtype not in ("float64", "float32"):
            raise ValueError(f"unsupported kernel dtype {dtype!r}")
        self.dtype_name = dtype
        self.dtype = np.dtype(np.float32 if dtype == "float32" else np.float64)

    def make_store(self, norm, max_lag):
        return BaseRowStore(norm, max_lag, dtype=self.dtype)

    def seed_store(self, store, cache, offset):
        cache.seed(store, offset)

    def export_store(self, store, cache, offset):
        cache.capture(store, offset)

    def track_paths(self, matrices, *, transition_weight, refine=True):
        """Batched DP tracking: one forward pass over the whole stack.

        Matrices are grouped by shape (one pipeline stage's matrices all
        share one) and each group runs through
        :func:`repro.perf.dptrack.dp_track_batch` — the banded native
        kernel when available, the exact batched numpy recursion
        otherwise.  In float64 mode the paths are bit-identical to the
        reference oracle; in float32 mode the evidence is quantized once
        on entry and tracked at single precision.
        """
        matrices = list(matrices)
        if not matrices:
            return []
        if transition_weight >= 0:
            raise ValueError(
                f"transition weight ω must be negative, got {transition_weight}"
            )
        paths: List[Optional[TrackedPath]] = [None] * len(matrices)
        by_shape: Dict[Tuple[int, int], List[int]] = {}
        for idx, m in enumerate(matrices):
            by_shape.setdefault(m.values.shape, []).append(idx)
        for (t, n_lags), idxs in by_shape.items():
            if t == 0:
                empty = np.zeros(0)
                for idx in idxs:
                    paths[idx] = TrackedPath(
                        empty.astype(int), empty.astype(int), empty, empty, 0.0
                    )
                continue
            with obs.span(
                "dp_tracking",
                backend=self.name,
                n_paths=len(idxs),
                shape=(t, n_lags),
                dtype=self.dtype_name,
            ):
                obs.add("dp.paths_tracked", len(idxs))
                obs.add("dp.cells", len(idxs) * t * n_lags)
                e = np.empty((len(idxs), t, n_lags), dtype=self.dtype)
                for s, idx in enumerate(idxs):
                    e[s] = matrices[idx].values
                np.copyto(e, 0.0, where=np.isnan(e))
                lag_idx, scores = dp_track_batch(e, transition_weight)
                for s, idx in enumerate(idxs):
                    paths[idx] = finalize_path(
                        matrices[idx], lag_idx[s], float(scores[s]), refine
                    )
        return paths

    def matrices(self, store, pairs, *, virtual_window, sampling_rate, time_stride=1):
        pairs = list(pairs)
        if not pairs:
            return []
        t, n_lags, w = store.t, store.n_lags, store.max_lag
        with obs.span(
            "alignment_matrix",
            backend=self.name,
            n_pairs=len(pairs),
            shape=(t, n_lags),
            virtual_window=virtual_window,
            time_stride=time_stride,
        ):
            rows = np.arange(0, t, time_stride) if time_stride > 1 else None
            fresh_cells = _compute_cells(store, pairs, rows, self.threads)
            obs.add("alignment.matrices", len(pairs))
            obs.add("alignment.cells", fresh_cells)

            lags = np.arange(-w, w + 1)
            out = []
            for p in pairs:
                vals = store.values[(p.i, p.j)]
                if rows is not None:
                    # The store may know more rows than this strided request
                    # (seeded or computed by another stage); the reference
                    # semantics are "skipped rows are NaN", so mask them.
                    masked = np.full((t, n_lags), np.nan, dtype=vals.dtype)
                    masked[rows] = vals[rows]
                    values = masked
                elif virtual_window > 1:
                    values = nan_moving_average(vals, virtual_window)
                else:
                    values = vals.copy()
                out.append(
                    AlignmentMatrix(
                        values=values,
                        lags=lags,
                        sampling_rate=sampling_rate,
                        pair=(p.i, p.j),
                    )
                )
            return out


# Rows per BLAS band job.  The partner window spans chunk+2W columns, so
# the fraction of computed cells the band actually keeps falls as chunks
# grow ((chunk+2W)/(2W+1) waste); smaller chunks claw that back until
# dgemm's small-m efficiency loss wins.  48 is the measured sweet spot at
# W=60 — the per-job index prep that used to tax small chunks is memoized
# across jobs (it only depends on the chunk geometry, not its position).
_GEMM_CHUNK = 48
_MIN_GEMM_SPAN = 16  # narrower clusters fall back to the gather kernel
# The BLAS kernel is >10x cheaper per cell than the per-lag gather, so
# needed-row clusters separated by small gaps of already-known rows (the
# pre-screen's stride pattern) are merged and recomputed wholesale rather
# than handed to the gather kernel row by row.
_MERGE_GAP = 16


def _compute_cells(
    store: BaseRowStore,
    pairs: Sequence,
    rows: Optional[np.ndarray],
    threads: int,
) -> int:
    """Evaluate all requested-but-unknown cells for ``pairs``; count them.

    Needs are tracked **per pair**: a pair whose requested cells are all
    known (seeded from the stream cache, or computed by an earlier
    stage's request) costs nothing even when it shares a request with a
    fresh pair.  Each pair's rows with at least one unknown requested
    in-band cell are split into contiguous runs.  Long runs go to the
    BLAS band kernel: one batched GEMM per (pair, run-chunk) against the
    ``[t-W, t+W]`` partner window produces the re/im inner products of
    every (row, lag) cell across all TX chains at once — dgemm turns the
    memory-bound per-lag reduction into a cache-blocked compute kernel
    several times faster than numpy's complex einsum.  Scattered rows
    (strided pre-screens) are gathered per lag column and reduced with
    one einsum across all pairs that need them.
    """
    t, n_lags, w = store.t, store.n_lags, store.max_lag
    keys = [(p.i, p.j) for p in pairs]
    entries = [store.entry(k) for k in keys]

    if rows is None:
        row_mask = np.ones(t, dtype=bool)
    else:
        row_mask = np.zeros(t, dtype=bool)
        row_mask[rows] = True

    band = store.band()
    request = band & row_mask[:, None]
    pair_needed = [request & ~known for _, known in entries]
    fresh = int(sum(pn.sum() for pn in pair_needed))
    if fresh == 0:
        return 0

    gemm_jobs: List[Tuple[int, int, int]] = []  # (pair index, r0, r1)
    # Per-pair scattered needs; sc_needed[p] is None when pair p has no
    # scattered cells, so the einsum path can skip it entirely.
    sc_needed: List[Optional[np.ndarray]] = []
    for p_idx, pn in enumerate(pair_needed):
        pr = np.nonzero(pn.any(axis=1))[0]
        if pr.size == 0:
            sc_needed.append(None)
            continue
        splits = np.nonzero(np.diff(pr) > _MERGE_GAP)[0] + 1
        sc_mask = np.zeros(t, dtype=bool)
        for cluster in np.split(pr, splits):
            span0, span1 = int(cluster[0]), int(cluster[-1]) + 1
            if span1 - span0 >= _MIN_GEMM_SPAN:
                for r0 in range(span0, span1, _GEMM_CHUNK):
                    gemm_jobs.append((p_idx, r0, min(span1, r0 + _GEMM_CHUNK)))
            else:
                sc_mask[cluster] = True
        sc_needed.append(pn & sc_mask[:, None] if sc_mask.any() else None)

    lags_arr = np.arange(-w, w + 1)
    if gemm_jobs:
        real, fused_t = store.real_views()
        n_k, s2 = real.shape[0], real.shape[3]
    # Interior chunks of equal size share identical band geometry — the
    # index prep depends only on (rows, left offset, window width), so
    # one entry serves every job but the first/last (benign data race
    # under threads: a lost update just recomputes).
    gemm_prep: Dict[Tuple[int, int, int], Tuple[np.ndarray, ...]] = {}

    def run_gemm(job: Tuple[int, int, int]) -> None:
        p_idx, r0, r1 = job
        u0, u1 = max(0, r0 - w), min(t, r1 + w)
        nu = u1 - u0
        prep_key = (r1 - r0, r0 - u0, nu)
        prep = gemm_prep.get(prep_key)
        if prep is None:
            # C[r - r0, u - u0] maps to cell (r, lag) via u = r - lag.
            j_win = (np.arange(r1 - r0) + (r0 - u0))[:, None] - lags_arr[None, :]
            valid = (j_win >= 0) & (j_win < nu)
            jcol = np.clip(j_win, 0, nu - 1)
            ridx = np.arange(r1 - r0)[:, None]
            gemm_prep[prep_key] = prep = (valid, jcol, ridx)
        valid, jcol, ridx = prep
        i, j = keys[p_idx]
        values, known = entries[p_idx]
        # One batched GEMM over all K TX chains, both operands zero-copy
        # views: the transposed fused partner interleaves z with -i·z
        # rows, so the product's even columns are Re and its odd columns
        # Im of the complex inner product — the same dot rows the
        # two-GEMM form computed, from a single BLAS call.
        a = real[:, i, r0:r1]  # (K, rows, 2S)
        b = fused_t[:, j, :, u0:u1].reshape(n_k, s2, 2 * nu)
        out = a @ b  # (K, rows, 2nu)
        re = out[..., 0::2]
        im = out[..., 1::2]
        mag = re * re + im * im  # (K, rows, nu)
        acc = mag.sum(axis=0) if n_k > 1 else mag[0]
        acc /= n_k
        band_vals = acc[ridx, jcol]
        np.copyto(values[r0:r1], np.where(valid, band_vals, np.nan))
        known[r0:r1] |= valid

    # Per-lag gather jobs for the scattered rows.  Only the scattered
    # rows are conjugated — a strided pre-screen touches a small subset
    # of the trace, and the gather kernel should stay O(that subset).
    i_idx = [k[0] for k in keys]
    j_idx = [k[1] for k in keys]
    einsum_jobs: List[Tuple[int, np.ndarray]] = []
    sc_any = [sn for sn in sc_needed if sn is not None]
    if sc_any:
        sc_union = sc_any[0].copy()
        for sn in sc_any[1:]:
            sc_union |= sn
        scat_rows = np.nonzero(sc_union.any(axis=1))[0]
        stack_i = np.conj(
            store.norm[np.ix_(scat_rows, i_idx)].transpose(1, 0, 2, 3)
        )  # (P, Rs, K, S)
        row_pos = np.zeros(t, dtype=np.intp)
        row_pos[scat_rows] = np.arange(scat_rows.size)
        for col in range(n_lags):
            rws = np.nonzero(sc_union[:, col])[0]
            if rws.size:
                einsum_jobs.append((col, rws))

    def run_einsum(job: Tuple[int, np.ndarray]) -> None:
        col, rws = job
        lag = col - w
        a = stack_i[:, row_pos[rws]].transpose(1, 0, 2, 3)  # (R, P, K, S)
        b = store.norm[np.ix_(rws - lag, j_idx)]
        inner = np.einsum("rpks,rpks->rpk", a, b)
        vals = (np.abs(inner) ** 2).mean(axis=-1)  # (R, P)
        for p_idx, (values, known) in enumerate(entries):
            # Write only this pair's own scattered needs: cells a GEMM
            # job owns (same pair, other rows) must have one writer.
            scn = sc_needed[p_idx]
            if scn is None:
                continue
            m = scn[rws, col]
            if not m.any():
                continue
            rsel = rws[m]
            values[rsel, col] = vals[m, p_idx]
            known[rsel, col] = True

    jobs = [(run_gemm, j) for j in gemm_jobs] + [
        (run_einsum, j) for j in einsum_jobs
    ]
    if threads > 1 and len(jobs) > 1:
        from concurrent.futures import ThreadPoolExecutor

        # Each (pair, row) cell has exactly one writer: GEMM jobs own
        # disjoint (pair, row-range) blocks and einsum jobs write only a
        # pair's scattered cells in disjoint columns, so shared arrays
        # are safe.
        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(lambda fj: fj[0](fj[1]), jobs))
    else:
        for fn, job in jobs:
            fn(job)
    return fresh
