"""Cross-cutting physics properties of the substrate and kernels.

These pin down relationships the algorithms silently rely on: channel
reciprocity, the alignment-matrix shift identity, the STAR retracing
geometry for every array, and TRRS behavior under the exact impairments
the impairer injects.
"""

import numpy as np
import pytest

from repro.arrays.geometry import (
    hexagonal_array,
    l_shaped_array,
    linear_array,
    uniform_circular_array,
)
from repro.arrays.pairs import all_pairs, best_pair_for_direction
from repro.channel.model import MultipathChannel
from repro.channel.ofdm import make_grid
from repro.channel.scatterers import ring_field
from repro.core.alignment import alignment_matrix
from repro.core.trrs import normalize_csi, trrs_cfr


@pytest.fixture(scope="module")
def channel():
    rng = np.random.default_rng(31)
    field = ring_field((5.0, 5.0), 4.0, n_scatterers=30, rng=rng)
    return MultipathChannel(scatterers=field, grid=make_grid().grouped(20), los_gain=0.4)


class TestReciprocity:
    def test_swapping_tx_rx_gives_same_cfr(self, channel):
        """H(A→B) = H(B→A) in the ray model (the §3.2 moving-TX basis)."""
        a = np.array([1.0, 2.0])
        b = np.array([6.0, 7.0])
        h_ab = channel.cfr(a, b[None, :])
        h_ba = channel.cfr(b, a[None, :])
        np.testing.assert_allclose(h_ab, h_ba, rtol=1e-4)

    def test_reciprocity_with_walls(self):
        from repro.env.floorplan import Floorplan, Wall

        rng = np.random.default_rng(32)
        field = ring_field((5.0, 5.0), 4.0, n_scatterers=20, rng=rng)
        plan = Floorplan(width=12, height=12, walls=[Wall((6, 0), (6, 12), 0.4)])
        ch = MultipathChannel(
            scatterers=field, grid=make_grid().grouped(16), floorplan=plan
        )
        a = np.array([2.0, 5.0])
        b = np.array([10.0, 5.0])
        np.testing.assert_allclose(
            ch.cfr(a, b[None, :]), ch.cfr(b, a[None, :]), rtol=1e-4
        )


class TestStarGeometryAllArrays:
    """The retracing identity must hold for every array geometry: moving
    along a pair's axis, the follower reproduces the leader's channel
    after the separation distance."""

    @pytest.mark.parametrize(
        "array",
        [linear_array(3), l_shaped_array(), hexagonal_array(), uniform_circular_array(8)],
        ids=["linear", "l-shaped", "hexagonal", "uca8"],
    )
    def test_retracing_peak(self, channel, array):
        pair = all_pairs(array)[0]
        speed = 0.5
        fs = 200.0
        direction = pair.axis_angle  # move along the pair ray i→j
        n = 120
        times = np.arange(n) / fs
        centers = np.array([5.0, 5.0]) + speed * np.outer(
            times, [np.cos(direction), np.sin(direction)]
        )
        world = array.world_positions(centers, np.zeros(n))
        h_i = channel.cfr((0.0, 0.0), world[:, pair.i, :])
        h_j = channel.cfr((0.0, 0.0), world[:, pair.j, :])

        lag = int(round(pair.separation / speed * fs))
        assert lag < n
        # Antenna j leads along ray i→j, so H_i(t) ≈ H_j(t - lag).
        peak = trrs_cfr(h_i[lag:], h_j[: n - lag]).mean()
        clutter = trrs_cfr(h_i[lag:], h_j[lag:]).mean()
        assert peak > clutter + 0.2
        assert peak > 0.7


class TestAlignmentShiftIdentity:
    def test_g_ji_is_diagonal_shift_of_g_ij(self, rng):
        """G_ji[t, l] = G_ij[t − l, −l] — the identity that lets rotation
        sensing reason about ring-ordered pairs without recomputation."""
        a = normalize_csi(
            rng.standard_normal((30, 2, 12)) + 1j * rng.standard_normal((30, 2, 12))
        )
        b = normalize_csi(
            rng.standard_normal((30, 2, 12)) + 1j * rng.standard_normal((30, 2, 12))
        )
        g_ij = alignment_matrix(a, b, 4, 1, 100.0, normalized=True)
        g_ji = alignment_matrix(b, a, 4, 1, 100.0, normalized=True)
        for t in range(6, 24):
            for lag in range(-4, 5):
                expected = g_ij.values[t - lag, g_ij.lag_index(-lag)]
                got = g_ji.values[t, g_ji.lag_index(lag)]
                if np.isfinite(expected) and np.isfinite(got):
                    assert got == pytest.approx(expected, rel=1e-6)


class TestImpairmentInvariance:
    def test_trrs_immune_to_common_phase(self, rng):
        h = rng.standard_normal(40) + 1j * rng.standard_normal(40)
        rotated = h * np.exp(1j * rng.uniform(0, 2 * np.pi))
        assert trrs_cfr(h, rotated) == pytest.approx(1.0, abs=1e-9)

    def test_trrs_hurt_by_phase_slope_then_restored(self, rng):
        from repro.core.sanitize import remove_phase_slope

        # Smooth multipath-like CFR.
        tones = np.arange(60)
        h = sum(
            (rng.standard_normal() + 1j * rng.standard_normal())
            * np.exp(-2j * np.pi * tones * tau / 60)
            for tau in (1.5, 4.2, 9.8)
        )
        ramped = h * np.exp(1j * 0.2 * tones)
        assert trrs_cfr(h, ramped) < 0.6
        fixed = remove_phase_slope(ramped)
        base = remove_phase_slope(h)
        assert trrs_cfr(base, fixed) > 0.95

    def test_best_pair_consistency_with_supported_directions(self):
        """best_pair_for_direction realizes exactly the advertised grid."""
        from repro.arrays.pairs import supported_directions

        arr = hexagonal_array()
        for direction in supported_directions(arr):
            pair, sign = best_pair_for_direction(arr, float(direction))
            realized = pair.heading(sign)
            err = np.abs(np.angle(np.exp(1j * (realized - direction))))
            assert err < 1e-6
