"""Unit tests for the IMU simulators and dead-reckoning baselines."""

import numpy as np
import pytest

from repro.imu.deadreckoning import (
    accelerometer_movement_indicator,
    gyro_rotation_angle,
    gyroscope_movement_indicator,
    integrate_imu,
)
from repro.imu.sensors import ImuNoiseModel, ImuSimulator
from repro.motionsim.profiles import (
    line_trajectory,
    polyline_trajectory,
    rotation_trajectory,
    still_trajectory,
    stop_and_go_trajectory,
)


def _noiseless():
    return ImuNoiseModel(
        accel_noise_density=0.0,
        accel_bias_stability=0.0,
        accel_initial_bias=0.0,
        gyro_noise_density=0.0,
        gyro_bias_stability=0.0,
        gyro_initial_bias=0.0,
        mag_noise_std=0.0,
        mag_distortion_amplitude=0.0,
    )


class TestImuSimulator:
    def test_output_shapes(self):
        traj = line_trajectory((0, 0), 0, 1.0, 1.0)
        imu = ImuSimulator(rng=np.random.default_rng(0)).simulate(traj)
        t = traj.n_samples
        assert imu.accel.shape == (t, 2)
        assert imu.gyro.shape == (t,)
        assert imu.mag_heading.shape == (t,)

    def test_needs_three_samples(self):
        traj = still_trajectory((0, 0), 0.005, sampling_rate=200.0)
        with pytest.raises(ValueError):
            ImuSimulator().simulate(traj.slice(0, 2))

    def test_noiseless_constant_velocity_zero_accel(self):
        traj = line_trajectory((0, 0), 0, 1.0, 1.0)
        imu = ImuSimulator(_noiseless(), rng=np.random.default_rng(0)).simulate(traj)
        assert np.abs(imu.accel[5:-5]).max() < 1e-6

    def test_noiseless_gyro_matches_angular_rate(self):
        traj = rotation_trajectory((0, 0), 90.0, angular_speed_deg=45.0)
        imu = ImuSimulator(_noiseless(), rng=np.random.default_rng(0)).simulate(traj)
        np.testing.assert_allclose(imu.gyro[5:-5], np.deg2rad(45.0), rtol=1e-6)

    def test_noiseless_magnetometer_reports_orientation(self):
        traj = rotation_trajectory((0, 0), 90.0)
        imu = ImuSimulator(_noiseless(), rng=np.random.default_rng(0)).simulate(traj)
        np.testing.assert_allclose(imu.mag_heading, traj.orientations, atol=1e-9)

    def test_magnetometer_distorted_indoors(self):
        traj = line_trajectory((0, 0), 0, 1.0, 5.0)
        noise = _noiseless()
        noise.mag_distortion_amplitude = np.deg2rad(15.0)
        imu = ImuSimulator(noise, rng=np.random.default_rng(1)).simulate(traj)
        errors = np.abs(imu.mag_heading - traj.orientations)
        assert errors.max() > np.deg2rad(3.0)

    def test_gyro_bias_drifts(self):
        traj = still_trajectory((0, 0), 30.0, sampling_rate=100.0)
        imu = ImuSimulator(rng=np.random.default_rng(2)).simulate(traj)
        drift = abs(gyro_rotation_angle(imu))
        assert drift > 0.0  # a still device should report exactly zero


class TestDeadReckoning:
    def test_noiseless_integration_recovers_straight_track(self):
        traj = line_trajectory((0, 0), 0, 1.0, 3.0)
        imu = ImuSimulator(_noiseless(), rng=np.random.default_rng(0)).simulate(traj)
        result = integrate_imu(imu, initial_heading=0.0, initial_velocity=(1.0, 0.0))
        err = np.linalg.norm(result.positions[-1] - traj.positions[-1])
        assert err < 0.05  # numerical integration error only

    def test_noisy_accelerometer_blows_up(self):
        """§6.2.1: accelerometers produce errors of tens of meters."""
        traj = line_trajectory((0, 0), 0, 1.0, 30.0)
        imu = ImuSimulator(rng=np.random.default_rng(3)).simulate(traj)
        result = integrate_imu(imu, initial_heading=0.0, initial_velocity=(1.0, 0.0))
        final_err = np.linalg.norm(result.positions[-1] - traj.positions[-1])
        assert final_err > 1.0

    def test_distance_monotone(self):
        traj = line_trajectory((0, 0), 0, 1.0, 2.0)
        imu = ImuSimulator(rng=np.random.default_rng(4)).simulate(traj)
        result = integrate_imu(imu)
        assert np.all(np.diff(result.distance) >= 0)

    def test_gyro_rotation_angle_noiseless(self):
        traj = rotation_trajectory((0, 0), 120.0)
        imu = ImuSimulator(_noiseless(), rng=np.random.default_rng(5)).simulate(traj)
        assert np.rad2deg(gyro_rotation_angle(imu)) == pytest.approx(120.0, rel=1e-2)

    def test_gyro_rotation_angle_noisy_still_good(self):
        """§6.2.3: the gyroscope is good at short rotations."""
        traj = rotation_trajectory((0, 0), 180.0, angular_speed_deg=120.0)
        imu = ImuSimulator(rng=np.random.default_rng(6)).simulate(traj)
        assert np.rad2deg(gyro_rotation_angle(imu)) == pytest.approx(180.0, abs=5.0)


class TestMovementIndicators:
    def test_accelerometer_misses_constant_velocity(self):
        """Fig. 7: no acceleration during steady motion — the indicator
        cannot distinguish cruising from stopping."""
        traj = stop_and_go_trajectory((0, 0), 0, 1.0, [2.0, 2.0], [1.0])
        imu = ImuSimulator(rng=np.random.default_rng(7)).simulate(traj)
        ind = accelerometer_movement_indicator(imu)
        truth = traj.speeds() > 0.05
        # During cruise (well inside a move segment) the indicator is as low
        # as during the stop.
        cruise = ind[truth][50:-50]
        assert np.median(cruise) < 0.5

    def test_gyroscope_blind_to_translation(self):
        """The gyro indicator carries no information about translation:
        its level during movement matches its level during stops."""
        traj = stop_and_go_trajectory((0, 0), 0, 1.0, [2.0, 2.0], [1.5])
        imu = ImuSimulator(rng=np.random.default_rng(8)).simulate(traj)
        ind = gyroscope_movement_indicator(imu)
        truth = traj.speeds() > 0.05
        gap = abs(np.median(ind[truth]) - np.median(ind[~truth]))
        assert gap < 0.25

    def test_indicator_normalized(self):
        traj = stop_and_go_trajectory((0, 0), 0, 1.0, [1.0, 1.0], [0.5])
        imu = ImuSimulator(rng=np.random.default_rng(9)).simulate(traj)
        for ind in (
            accelerometer_movement_indicator(imu),
            gyroscope_movement_indicator(imu),
        ):
            assert ind.min() >= 0.0
            assert ind.max() <= 1.0
