"""Run-table renderers: Markdown and CSV, following the repo's
``render_*`` conventions (pure function of the payload, returns a
string, no I/O)."""

from __future__ import annotations

import io
from typing import Any, Dict, List

from repro.bench.spec import AXES


def _fmt_ms(value: Any) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value * 1e3:.1f}"


def _health_summary(health: Dict[str, Any]) -> str:
    parts = [
        f"{key[:4]}={int(health[key])}"
        for key in ("blocked", "shed", "rejected", "degraded_blocks", "reconnects")
        if int(health.get(key, 0))
    ]
    return " ".join(parts) if parts else "clean"


def render_bench_table(payload: Dict[str, Any]) -> str:
    """Markdown run table: one row per cell with spread and latency."""
    lines = [
        f"# bench run table — {payload['name']}",
        "",
        f"- cells: {payload['n_cells']} × {payload['repetitions']} reps"
        f" on {payload['n_cpus']} cpus",
        f"- digest: `{payload['digest']}`",
    ]
    if payload.get("filters"):
        lines.append(f"- filters: `{' '.join(payload['filters'])}`")
    if payload.get("stopped_early"):
        lines.append("- **stopped early** — table covers finished cells only")
    lines += [
        "",
        "| cell | sess/s | spread | samples/s | p50 ms | p95 ms | p99 ms "
        "| updates | health |",
        "|---|---:|---:|---:|---:|---:|---:|---:|---|",
    ]
    for row in payload["rows"]:
        rate = row["sessions_per_second"]
        lines.append(
            f"| `{row['key']}` "
            f"| {rate['mean']:.2f} "
            f"| {rate['spread_frac']:.1%} "
            f"| {row['samples_per_second']['mean']:.0f} "
            f"| {_fmt_ms(row.get('latency_p50_s'))} "
            f"| {_fmt_ms(row.get('latency_p95_s'))} "
            f"| {_fmt_ms(row.get('latency_p99_s'))} "
            f"| {row['n_updates']} "
            f"| {_health_summary(row['health'])} |"
        )
    capacity = payload.get("capacity") or []
    if capacity:
        lines += ["", render_capacity_table(capacity)]
    return "\n".join(lines) + "\n"


def render_capacity_table(models: List[Dict[str, Any]]) -> str:
    """Markdown capacity-model table: one row per fitted group."""
    lines = [
        "## capacity model (sessions/s vs shards)",
        "",
        "| group | model | slope | intercept | r² | knee | slope after |",
        "|---|---|---:|---:|---:|---:|---:|",
    ]
    for model in models:
        fit = model["fit"]
        knee = fit.get("knee")
        slope_after = fit.get("slope_after")
        lines.append(
            f"| `{model['group']}` "
            f"| {fit['model']} "
            f"| {fit['slope']:.3f} "
            f"| {fit['intercept']:.3f} "
            f"| {fit['r2']:.4f} "
            f"| {knee if knee is not None else '-'} "
            f"| {f'{slope_after:.3f}' if slope_after is not None else '-'} |"
        )
    return "\n".join(lines) + "\n"


def render_bench_csv(payload: Dict[str, Any]) -> str:
    """CSV run table: one row per cell, axes split into columns."""
    import csv

    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        list(AXES)
        + [
            "seed",
            "reps",
            "sessions_per_second_mean",
            "sessions_per_second_stdev",
            "sessions_per_second_spread_frac",
            "samples_per_second_mean",
            "wall_s_mean",
            "latency_p50_s",
            "latency_p95_s",
            "latency_p99_s",
            "n_updates",
            "total_distance_m",
            "blocked",
            "shed",
            "rejected",
            "degraded_blocks",
            "reconnects",
        ]
    )
    for row in payload["rows"]:
        cell = row["cell"]
        health = row["health"]
        writer.writerow(
            [cell[axis] for axis in AXES]
            + [
                row["seed"],
                len(row["reps"]),
                f"{row['sessions_per_second']['mean']:.6f}",
                f"{row['sessions_per_second']['stdev']:.6f}",
                f"{row['sessions_per_second']['spread_frac']:.6f}",
                f"{row['samples_per_second']['mean']:.6f}",
                f"{row['wall_s']['mean']:.6f}",
                row.get("latency_p50_s"),
                row.get("latency_p95_s"),
                row.get("latency_p99_s"),
                row["n_updates"],
                f"{row['total_distance_m']!r}",
                health.get("blocked", 0),
                health.get("shed", 0),
                health.get("rejected", 0),
                health.get("degraded_blocks", 0),
                health.get("reconnects", 0),
            ]
        )
    return buf.getvalue()
