"""Tests for the §7 extension features.

Covers WiBall-style direction-free speed (core.wiball), fine direction
refinement (core.finedirection), packet-loss interpolation
(channel.interpolation), gyro calibration via RIM (fusion.calibration),
and the reciprocal moving-TX deployment (§3.2).
"""

import numpy as np
import pytest

from repro.channel.interpolation import (
    interpolate_lost_packets,
    loss_fraction,
)
from repro.core.config import RimConfig
from repro.core.rim import Rim
from repro.core.sanitize import sanitize_trace
from repro.core.wiball import (
    FIRST_J0_ZERO,
    WiballSpeedEstimator,
    speed_from_decay,
)
from repro.fusion.calibration import apply_calibration, calibrate_gyro
from repro.imu.sensors import ImuNoiseModel, ImuSimulator
from repro.motionsim.profiles import line_trajectory, still_trajectory


class TestWiball:
    def test_speed_from_synthetic_j0_decay(self):
        """A synthetic J0² curve inverts to the exact speed."""
        from scipy.special import j0

        fs, wavelength, v = 200.0, 0.0516, 0.8
        lags = np.arange(0, 60)
        d = v * lags / fs
        curve = j0(2 * np.pi * d / wavelength) ** 2
        est = speed_from_decay(curve, fs, wavelength, smoothing=1, calibration=1.0)
        assert est == pytest.approx(v, rel=0.15)

    def test_no_decay_gives_nan(self):
        curve = np.linspace(1.0, 0.99, 30)  # essentially static channel
        assert np.isnan(speed_from_decay(curve, 200.0, 0.05, smoothing=1))

    def test_estimates_speed_off_axis(self, fast_sampler, three_antenna):
        """WiBall works in directions the linear array cannot retrace."""
        traj = line_trajectory((10.0, 8.0), 63.0, 0.8, 3.0)
        trace = fast_sampler.sample(traj, three_antenna)
        data = sanitize_trace(trace.data)
        est = WiballSpeedEstimator(wavelength=trace.carrier_wavelength)
        out = est.estimate(data[:, 0], trace.sampling_rate)
        speeds = out.speeds[np.isfinite(out.speeds)]
        assert speeds.size > 0
        # Decimeter-class accuracy: within a factor ~1.6 of truth.
        assert 0.5 < np.median(speeds) / 0.8 < 1.6

    def test_distance_integration_positive(self, fast_sampler, three_antenna):
        traj = line_trajectory((10.0, 8.0), 120.0, 0.8, 2.0)
        trace = fast_sampler.sample(traj, three_antenna)
        data = sanitize_trace(trace.data)
        out = WiballSpeedEstimator(trace.carrier_wavelength).estimate(
            data[:, 0], trace.sampling_rate
        )
        assert out.distance > 0.4

    def test_constant_first_zero(self):
        from scipy.special import j0

        assert FIRST_J0_ZERO == pytest.approx(2.405, abs=0.001)
        assert j0(FIRST_J0_ZERO) == pytest.approx(0.0, abs=1e-4)


class TestFineDirection:
    def test_on_grid_direction_unchanged(self, fast_sampler, hexagon):
        """Exactly-aligned motion should not be pulled off the grid much."""
        traj = line_trajectory((10.0, 8.0), 30.0, 0.5, 1.6)
        trace = fast_sampler.sample(traj, hexagon)
        res = Rim(RimConfig(max_lag=50, fine_direction=True)).process(trace)
        h = res.headings()
        h = h[np.isfinite(h)]
        mean = np.rad2deg(np.arctan2(np.mean(np.sin(h)), np.mean(np.cos(h))))
        assert abs(mean - 30.0) < 12.0

    def test_off_grid_direction_improves_or_matches(self, fast_sampler, hexagon):
        traj = line_trajectory((10.0, 8.0), 40.0, 0.5, 1.6)
        errors = {}
        for fine in (False, True):
            trace = fast_sampler.sample(traj, hexagon)
            res = Rim(RimConfig(max_lag=50, fine_direction=fine)).process(trace)
            h = res.headings()
            h = h[np.isfinite(h)]
            mean = np.arctan2(np.mean(np.sin(h)), np.mean(np.cos(h)))
            errors[fine] = abs(np.rad2deg(mean) - 40.0)
        # The refinement must not be catastrophically worse than the grid.
        assert errors[True] <= errors[False] + 10.0

    def test_empty_tracks_passthrough(self):
        from repro.core.finedirection import refine_headings

        heading = np.array([0.1, 0.2, np.nan])
        out = refine_headings([], np.array([-1, -1, -1]), heading)
        np.testing.assert_array_equal(out[:2], heading[:2])
        assert np.isnan(out[2])


class TestInterpolation:
    def _csi_with_gap(self, rng, t=20, gap=(8, 10)):
        data = (
            rng.standard_normal((t, 2, 1, 8)) + 1j * rng.standard_normal((t, 2, 1, 8))
        ).astype(np.complex64)
        data[gap[0] : gap[1]] = np.nan
        return data

    def test_short_gap_filled(self, rng):
        data = self._csi_with_gap(rng)
        out = interpolate_lost_packets(data, max_gap=5)
        assert np.isfinite(out).all()

    def test_long_gap_left_nan(self, rng):
        data = self._csi_with_gap(rng, gap=(5, 15))
        out = interpolate_lost_packets(data, max_gap=5)
        assert np.isnan(out[7]).all()

    def test_border_gap_left_nan(self, rng):
        data = self._csi_with_gap(rng, gap=(0, 2))
        out = interpolate_lost_packets(data, max_gap=5)
        assert np.isnan(out[0]).all()

    def test_phase_aligned_interpolation(self, rng):
        """A random common phase between anchors must not null the fill."""
        base = (rng.standard_normal(8) + 1j * rng.standard_normal(8)).astype(
            np.complex64
        )
        data = np.tile(base, (5, 1, 1, 1))
        data[3] *= np.exp(1j * np.pi * 0.97)  # near-opposite phase anchor
        data[1:3] = np.nan
        out = interpolate_lost_packets(data, max_gap=5)
        # Interpolated magnitude stays near the anchors' magnitude.
        ratio = np.abs(out[1]).mean() / np.abs(base).mean()
        assert ratio > 0.8

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            interpolate_lost_packets(np.zeros((5, 2, 8), dtype=np.complex64))

    def test_loss_fraction(self, rng):
        data = self._csi_with_gap(rng, t=10, gap=(2, 4))
        assert loss_fraction(data) == pytest.approx(0.2)

    def test_untouched_without_loss(self, rng):
        data = (
            rng.standard_normal((6, 1, 1, 4)) + 1j * rng.standard_normal((6, 1, 1, 4))
        ).astype(np.complex64)
        out = interpolate_lost_packets(data)
        np.testing.assert_array_equal(out, data)

    def test_pipeline_with_loss(self, fast_channel, three_antenna):
        from repro.channel.impairments import ImpairmentConfig
        from repro.channel.sampler import CsiSampler, ap_antenna_positions

        sampler = CsiSampler(
            channel=fast_channel,
            tx_positions=ap_antenna_positions((1.0, 1.0), n_tx=2),
            impairments=ImpairmentConfig(
                snr_db=25.0, packet_loss_rate=0.15, loss_burstiness=3.0
            ),
            rng=np.random.default_rng(17),
        )
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = sampler.sample(traj, three_antenna)
        res = Rim(RimConfig(max_lag=50, interpolate_loss=True)).process(trace)
        assert abs(res.total_distance - 1.0) < 0.25


class TestGyroCalibration:
    def _rim_result_with_mask(self, times, moving):
        from repro.core.motion import MotionEstimate
        from repro.core.movement import MovementResult
        from repro.core.rim import RimResult

        motion = MotionEstimate(
            times=times,
            moving=moving,
            speed=np.zeros(times.size),
            heading=np.full(times.size, np.nan),
            group_choice=np.full(times.size, -1, dtype=np.int64),
        )
        return RimResult(
            motion=motion,
            movement=MovementResult(np.zeros(times.size), moving, 0.95),
            group_tracks=[],
        )

    def test_bias_recovered_from_static_period(self):
        bias_true = np.deg2rad(1.7)
        traj = still_trajectory((0, 0), 4.0, sampling_rate=100.0)
        noise = ImuNoiseModel(
            gyro_initial_bias=0.0, gyro_bias_stability=0.0, gyro_noise_density=np.deg2rad(0.02)
        )
        imu = ImuSimulator(noise, rng=np.random.default_rng(0)).simulate(traj)
        imu.gyro += bias_true
        rim_result = self._rim_result_with_mask(
            traj.times, np.zeros(traj.n_samples, dtype=bool)
        )
        cal = calibrate_gyro(imu, rim_result)
        assert cal.bias == pytest.approx(bias_true, abs=np.deg2rad(0.3))
        assert cal.n_static_samples == traj.n_samples

    def test_no_static_samples_gives_nan(self):
        traj = line_trajectory((0, 0), 0, 1.0, 2.0, sampling_rate=100.0)
        imu = ImuSimulator(rng=np.random.default_rng(1)).simulate(traj)
        rim_result = self._rim_result_with_mask(
            traj.times, np.ones(traj.n_samples, dtype=bool)
        )
        cal = calibrate_gyro(imu, rim_result)
        assert np.isnan(cal.bias)
        assert cal.scale == 1.0

    def test_apply_calibration_removes_bias(self):
        traj = still_trajectory((0, 0), 3.0, sampling_rate=100.0)
        noise = ImuNoiseModel(gyro_initial_bias=np.deg2rad(2.0), gyro_bias_stability=0.0)
        imu = ImuSimulator(noise, rng=np.random.default_rng(2)).simulate(traj)
        rim_result = self._rim_result_with_mask(
            traj.times, np.zeros(traj.n_samples, dtype=bool)
        )
        cal = calibrate_gyro(imu, rim_result)
        corrected = apply_calibration(imu, cal)
        assert abs(corrected.gyro.mean()) < abs(imu.gyro.mean()) * 0.3


class TestMovingTx:
    def test_reciprocity_shape(self, fast_sampler, three_antenna):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.0)
        trace = fast_sampler.sample_moving_tx(traj, three_antenna)
        assert trace.data.shape[1] == 3  # moving antennas
        assert trace.data.shape[2] == fast_sampler.tx_positions.shape[0]

    def test_reciprocal_channel_matches_clean(self, clean_sampler, three_antenna):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 0.5)
        rx_case = clean_sampler.sample(traj, three_antenna)
        tx_case = clean_sampler.sample_moving_tx(traj, three_antenna)
        np.testing.assert_allclose(rx_case.data, tx_case.data, rtol=1e-5)

    def test_rim_tracks_a_moving_transmitter(self, fast_sampler, three_antenna):
        """§3.2: RIM estimates the motion of whichever end is moving."""
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 2.0)
        trace = fast_sampler.sample_moving_tx(traj, three_antenna)
        res = Rim(RimConfig(max_lag=50)).process(trace)
        assert abs(res.total_distance - 1.0) < 0.15
