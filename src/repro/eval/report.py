"""Paper-vs-measured table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Dict


def format_value(value) -> str:
    """Human-friendly scalar formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, dict):
        inner = ", ".join(f"{k}={format_value(v)}" for k, v in value.items())
        return "{" + inner + "}"
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    return str(value)


def render_report(title: str, result: Dict) -> str:
    """Render one experiment's paper-vs-measured comparison.

    Args:
        title: Figure/section label, e.g. "Fig. 11".
        result: A runner output with "measured" and "paper" keys.

    Returns:
        A multi-line table string.
    """
    measured = result.get("measured", {})
    paper = result.get("paper", {})
    keys = list(measured.keys())
    for key in paper:
        if key not in keys:
            keys.append(key)

    width = max([len(k) for k in keys] + [10])
    lines = [f"== {title} ==", f"{'metric'.ljust(width)}  {'paper':>16}  {'measured':>16}"]
    for key in keys:
        p = format_value(paper[key]) if key in paper else "-"
        m = format_value(measured[key]) if key in measured else "-"
        if key == "note":
            lines.append(f"{key.ljust(width)}  {p}")
            continue
        lines.append(f"{key.ljust(width)}  {p:>16}  {m:>16}")
    return "\n".join(lines)


def print_report(title: str, result: Dict) -> None:
    """Print the rendered comparison (used by the benches)."""
    print()
    print(render_report(title, result))
