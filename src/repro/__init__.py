"""repro — a faithful reproduction of RIM: RF-based Inertial Measurement.

Wu, Zhang, Fan, Liu. "RF-based Inertial Measurement", ACM SIGCOMM 2019.

The package turns simulated commodity-WiFi CSI into inertial measurements:
moving distance, heading direction, and rotating angle, using a single
arbitrarily placed AP whose location is unknown.

Quickstart::

    from repro import (
        Rim, RimConfig, CsiSampler, MultipathChannel,
        hexagonal_array, line_trajectory,
    )
    from repro.channel.scatterers import uniform_field
    from repro.channel.sampler import ap_antenna_positions

    channel = MultipathChannel(scatterers=uniform_field(20, 15, rng=rng))
    sampler = CsiSampler(channel=channel, tx_positions=ap_antenna_positions((1, 1)))
    trace = sampler.sample(line_trajectory((10, 8), 0.0, 1.0, 5.0), hexagonal_array())
    result = Rim().process(trace)
    print(result.total_distance)
"""

from repro import obs
from repro.arrays.geometry import (
    AntennaArray,
    hexagonal_array,
    l_shaped_array,
    linear_array,
    square_array,
    uniform_circular_array,
)
from repro.channel.impairments import CsiImpairer, ImpairmentConfig
from repro.channel.model import MultipathChannel
from repro.channel.ofdm import SubcarrierGrid, make_grid
from repro.channel.sampler import CsiSampler, CsiTrace, ap_antenna_positions
from repro.core.config import RimConfig
from repro.core.rim import Rim, RimResult
from repro.core.streaming import MotionUpdate, StreamingRim
from repro.core.trrs import trrs_cfr, trrs_cir
from repro.env.floorplan import Floorplan, Wall, empty_floorplan, office_floorplan
from repro.motionsim.profiles import (
    back_and_forth_trajectory,
    line_trajectory,
    polyline_trajectory,
    rotation_trajectory,
    square_trajectory,
    still_trajectory,
    stop_and_go_trajectory,
)
from repro.motionsim.trajectory import Trajectory
from repro.robustness import (
    FaultPlan,
    GuardError,
    HealthReport,
    StreamGuard,
    guard_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AntennaArray",
    "CsiImpairer",
    "CsiSampler",
    "CsiTrace",
    "FaultPlan",
    "Floorplan",
    "GuardError",
    "HealthReport",
    "ImpairmentConfig",
    "MotionUpdate",
    "MultipathChannel",
    "Rim",
    "RimConfig",
    "RimResult",
    "StreamGuard",
    "StreamingRim",
    "SubcarrierGrid",
    "Trajectory",
    "Wall",
    "ap_antenna_positions",
    "back_and_forth_trajectory",
    "empty_floorplan",
    "guard_trace",
    "hexagonal_array",
    "l_shaped_array",
    "line_trajectory",
    "linear_array",
    "make_grid",
    "obs",
    "office_floorplan",
    "polyline_trajectory",
    "rotation_trajectory",
    "square_array",
    "square_trajectory",
    "still_trajectory",
    "stop_and_go_trajectory",
    "trrs_cfr",
    "trrs_cir",
    "uniform_circular_array",
]
