"""Declarative experiment-matrix specs: the ``repro.bench`` run table input.

A matrix spec is a plain dict (loaded from TOML or JSON, or built in
code) describing a sweep over the serving stack's capacity axes —
session count, shard count, kernel backend, kernel precision, wire-fault
plan, backpressure policy — times a repetition count.  The shape follows
the benchalot/muBench idiom: ``axes`` holds the per-axis value lists,
everything else is a scalar knob shared by every cell::

    name = "smoke"
    repetitions = 2
    seed = 0
    duration_s = 1.0

    [axes]
    sessions = [2, 4]
    shards = [1, 2]
    kernel = ["reference", "batched"]

:func:`expand_matrix` expands the cross product into :class:`Cell`
values in a deterministic order (axes iterated in :data:`AXES` order,
values in spec order), so the same spec always produces the same run
table layout.  Validation happens eagerly in :meth:`MatrixSpec.validate`
— a bad axis name or value fails before any cell runs.
"""

from __future__ import annotations

import itertools
import json
import zlib
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Tuple


class BenchError(ValueError):
    """A matrix spec, run table, or bench run is invalid."""


#: Sweepable axes, in canonical (expansion and cell-key) order.
AXES: Tuple[str, ...] = (
    "sessions", "shards", "kernel", "dtype", "fault_plan", "backpressure"
)

#: Default value for every axis a spec leaves unswept.
AXIS_DEFAULTS: Dict[str, Any] = {
    "sessions": 4,
    "shards": 0,  # 0 = one in-process SessionManager (repro.serve)
    "kernel": "batched",
    "dtype": "float64",
    "fault_plan": "",  # non-empty = loopback net front-end (repro.net)
    "backpressure": "block",
}

_KNOWN_DTYPES = ("float64", "float32")
_KNOWN_POLICIES = ("block", "drop_oldest", "reject")


@dataclass(frozen=True)
class Cell:
    """One fully resolved point of the experiment matrix."""

    sessions: int
    shards: int
    kernel: str
    dtype: str
    fault_plan: str
    backpressure: str

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``sessions=4/shards=1/kernel=batched/...``."""
        return "/".join(f"{axis}={getattr(self, axis)}" for axis in AXES)

    @property
    def deterministic(self) -> bool:
        """Whether the cell's outputs are replay-deterministic.

        ``block`` backpressure never sheds, so update counts and total
        distance are pure functions of the (seeded) workload — including
        the net path, whose wire faults are pure functions of
        ``(seed, seq)``.  ``drop_oldest``/``reject`` shed based on queue
        timing, so only their workload identity is deterministic.
        """
        return self.backpressure == "block"

    def to_dict(self) -> Dict[str, Any]:
        return {axis: getattr(self, axis) for axis in AXES}


@dataclass
class MatrixSpec:
    """A validated experiment matrix: axes x repetitions plus shared knobs.

    Args:
        name: Spec name (labels the run table).
        axes: Axis name -> list of values to sweep; unlisted axes pin to
            :data:`AXIS_DEFAULTS`.
        repetitions: Measured runs per cell (spread comes from these).
        warmup: Unmeasured runs per cell before the measured ones.
        cooldown_s: Sleep between measured runs (muBench-style cooldown).
        seed: Workload seed — receivers are sampled once per session
            count from this seed, so every cell sweeping the same
            session count replays the identical workload.
        duration_s: Per-receiver trajectory duration, seconds.
        block_seconds: Streaming emission cadence, seconds.
        workers: Worker-thread count for in-process (``shards=0``) cells.
        queue_capacity: Per-session ingest queue bound, packets.
    """

    name: str
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    repetitions: int = 1
    warmup: int = 0
    cooldown_s: float = 0.0
    seed: int = 0
    duration_s: float = 1.0
    block_seconds: float = 1.0
    workers: int = 4
    queue_capacity: int = 256

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise BenchError(f"spec needs a non-empty name, got {self.name!r}")
        if not isinstance(self.axes, dict):
            raise BenchError(f"axes must be a dict, got {type(self.axes).__name__}")
        unknown = sorted(set(self.axes) - set(AXES))
        if unknown:
            raise BenchError(
                f"unknown axes {unknown}: sweepable axes are {list(AXES)}"
            )
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise BenchError(
                    f"axis {axis!r} must be a non-empty list, got {values!r}"
                )
            if len(set(map(str, values))) != len(values):
                raise BenchError(f"axis {axis!r} has duplicate values: {values}")
            for value in values:
                self._validate_axis_value(axis, value)
        if int(self.repetitions) < 1:
            raise BenchError(f"repetitions must be >= 1, got {self.repetitions}")
        if int(self.warmup) < 0:
            raise BenchError(f"warmup must be >= 0, got {self.warmup}")
        if float(self.cooldown_s) < 0:
            raise BenchError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if float(self.duration_s) <= 0:
            raise BenchError(f"duration_s must be > 0, got {self.duration_s}")
        if float(self.block_seconds) <= 0:
            raise BenchError(
                f"block_seconds must be > 0, got {self.block_seconds}"
            )
        if int(self.workers) < 1:
            raise BenchError(f"workers must be >= 1, got {self.workers}")
        if int(self.queue_capacity) < 1:
            raise BenchError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )

    @staticmethod
    def _validate_axis_value(axis: str, value: Any) -> None:
        if axis == "sessions":
            if not isinstance(value, int) or value < 1:
                raise BenchError(f"sessions values must be ints >= 1, got {value!r}")
        elif axis == "shards":
            if not isinstance(value, int) or value < 0:
                raise BenchError(f"shards values must be ints >= 0, got {value!r}")
        elif axis == "dtype":
            if value not in _KNOWN_DTYPES:
                raise BenchError(
                    f"dtype values must be one of {_KNOWN_DTYPES}, got {value!r}"
                )
        elif axis == "backpressure":
            if value not in _KNOWN_POLICIES:
                raise BenchError(
                    f"backpressure values must be one of {_KNOWN_POLICIES}, "
                    f"got {value!r}"
                )
        elif axis in ("kernel", "fault_plan"):
            if not isinstance(value, str):
                raise BenchError(f"{axis} values must be strings, got {value!r}")
            if axis == "kernel" and not value:
                raise BenchError("kernel values must be non-empty backend names")

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "MatrixSpec":
        """Build and validate a spec from a parsed TOML/JSON dict."""
        if not isinstance(raw, dict):
            raise BenchError(f"matrix spec must be a dict, got {type(raw).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise BenchError(
                f"unknown spec keys {unknown}: known keys are {sorted(known)}"
            )
        if "name" not in raw:
            raise BenchError("matrix spec needs a 'name'")
        return cls(**raw)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "repetitions": int(self.repetitions),
            "warmup": int(self.warmup),
            "cooldown_s": float(self.cooldown_s),
            "seed": int(self.seed),
            "duration_s": float(self.duration_s),
            "block_seconds": float(self.block_seconds),
            "workers": int(self.workers),
            "queue_capacity": int(self.queue_capacity),
        }


def load_spec(path) -> MatrixSpec:
    """Load a matrix spec from a ``.toml`` or ``.json`` file.

    TOML needs the stdlib ``tomllib`` (python >= 3.11); JSON works
    everywhere, so CI smoke matrices stay loadable on every tier-1
    interpreter.
    """
    path = Path(path)
    if not path.is_file():
        raise BenchError(f"matrix spec not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".json":
        raw = json.loads(path.read_text(encoding="utf-8"))
    elif suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # python < 3.11
            raise BenchError(
                f"loading {path} needs tomllib (python >= 3.11); "
                "use a .json spec on older interpreters"
            ) from exc
        raw = tomllib.loads(path.read_text(encoding="utf-8"))
    else:
        raise BenchError(
            f"matrix spec must be .toml or .json, got {path.name!r}"
        )
    return MatrixSpec.from_dict(raw)


def expand_matrix(spec: MatrixSpec) -> List[Cell]:
    """Expand the spec's cross product into cells, deterministically.

    Axes iterate in :data:`AXES` order with each axis's values in spec
    order; unswept axes pin to :data:`AXIS_DEFAULTS`.  Unsupported
    combinations (a wire-fault plan on a sharded cell — ``run_net_load``
    drives a single-manager loopback server) fail here, before any cell
    runs.
    """
    value_lists = [
        list(spec.axes.get(axis, [AXIS_DEFAULTS[axis]])) for axis in AXES
    ]
    cells = [Cell(*combo) for combo in itertools.product(*value_lists)]
    for cell in cells:
        if cell.fault_plan and cell.shards >= 1:
            raise BenchError(
                f"cell {cell.key} combines a wire-fault plan with a shard "
                "fleet; the net front-end path benches a single-manager "
                "loopback server (drop the shards axis or the fault plan)"
            )
    return cells


def cell_seed(spec_seed: int, key: str) -> int:
    """Deterministic per-cell seed derived from the spec seed and key."""
    return (int(spec_seed) * 1_000_003 + zlib.crc32(key.encode("utf-8"))) % (2**31)


def parse_filters(exprs: Iterable[str]) -> List[Tuple[str, str]]:
    """Parse ``--filter KEY=VALUE`` expressions.

    ``KEY`` is an axis name (exact value match against the cell) or the
    literal ``cell`` (substring match against the full cell key).
    """
    filters: List[Tuple[str, str]] = []
    for expr in exprs:
        key, sep, value = expr.partition("=")
        if not sep or not key:
            raise BenchError(f"filter must look like KEY=VALUE, got {expr!r}")
        if key != "cell" and key not in AXES:
            raise BenchError(
                f"filter key must be 'cell' or one of {list(AXES)}, got {key!r}"
            )
        filters.append((key, value))
    return filters


def match_cell(cell: Cell, filters: Sequence[Tuple[str, str]]) -> bool:
    """Whether a cell passes every filter (AND semantics)."""
    for key, value in filters:
        if key == "cell":
            if value not in cell.key:
                return False
        elif str(getattr(cell, key)) != value:
            return False
    return True
