"""Chunked trace store: round trips, the corruption matrix, and conversion.

The acceptance contract (ISSUE 5): a corrupted chunk under the ``repair``
policy never crashes the pipeline and is visible in both
``HealthReport.repairs`` and the ``store.*`` metrics; every fault class
(bit-flip payload, truncated tail, duplicated / missing sequence number)
behaves per policy (raise / drop / repair); legacy ``.npz`` and chunked
stores convert losslessly in both directions.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro import obs
from repro.core.config import RimConfig
from repro.io import check_format_version
from repro.robustness.guard import GuardError
from repro.store import (
    CheckpointedReplayer,
    StoreCorruptionError,
    StoreError,
    TraceReader,
    TraceWriter,
    npz_to_store,
    store_to_npz,
    write_trace,
)
from repro.store.format import HEADER_SIZE, MANIFEST_NAME

CHUNK = 64  # small chunks so a short trace spans many files


@pytest.fixture(scope="module")
def recorded(tmp_path_factory, line_trace):
    """One pristine store of the shared line trace; tests copy, never mutate."""
    root = tmp_path_factory.mktemp("pristine") / "store"
    write_trace(root, line_trace, chunk_samples=CHUNK)
    return root


@pytest.fixture()
def store(recorded, tmp_path):
    """A private, mutable copy of the pristine store."""
    dest = tmp_path / "store"
    shutil.copytree(recorded, dest)
    return dest


def _chunk(store, k):
    return store / f"chunk-{k:08d}.rimc"


def _bitflip(store, k, offset=HEADER_SIZE + 40):
    path = _chunk(store, k)
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))


# -- round trips --------------------------------------------------------------


def test_write_read_round_trip(store, line_trace):
    with TraceReader(store, policy="raise") as reader:
        assert reader.n_chunks == -(-line_trace.n_samples // CHUNK)
        assert reader.n_samples == line_trace.n_samples
        out = reader.read_trace()
    assert np.array_equal(out.data, line_trace.data)
    assert np.array_equal(out.times, line_trace.times)
    assert np.array_equal(out.trajectory.positions, line_trace.trajectory.positions)
    assert np.array_equal(out.tx_positions, line_trace.tx_positions)
    assert out.carrier_wavelength == line_trace.carrier_wavelength
    assert out.array.name == line_trace.array.name
    assert not reader.report.repairs()


def test_random_access_and_mmap_agree(store):
    with TraceReader(store, policy="raise") as plain, TraceReader(
        store, policy="raise", use_mmap=True
    ) as mapped:
        for k in range(plain.n_chunks):
            d0, t0 = plain.read_chunk(k)
            d1, t1 = mapped.read_chunk(k)
            assert np.array_equal(d0, d1)
            assert np.array_equal(t0, t1)
        with pytest.raises(IndexError):
            plain.read_chunk(plain.n_chunks)


def test_writer_refuses_existing_store(store, three_antenna):
    with pytest.raises(StoreError, match="existing recording"):
        TraceWriter(store, three_antenna)


def test_writer_rejects_shape_change(tmp_path, three_antenna):
    with TraceWriter(tmp_path / "s", three_antenna, sampling_rate=100.0) as w:
        w.append(np.zeros((3, 1, 8), dtype=np.complex64))
        with pytest.raises(StoreError, match="does not match"):
            w.append(np.zeros((3, 2, 8), dtype=np.complex64))
    with pytest.raises(StoreError, match="closed"):
        w.append(np.zeros((3, 1, 8), dtype=np.complex64))
    with pytest.raises(StoreError, match="RX chains"):
        with TraceWriter(tmp_path / "s2", three_antenna, sampling_rate=100.0) as w2:
            w2.append(np.zeros((2, 1, 8), dtype=np.complex64))


def test_writer_synthesizes_times_from_rate(tmp_path, three_antenna):
    with TraceWriter(tmp_path / "s", three_antenna, sampling_rate=50.0) as w:
        w.append(np.zeros((10, 3, 1, 8), dtype=np.complex64))
    with TraceReader(tmp_path / "s", policy="raise") as reader:
        _, times = reader.read_chunk(0)
    assert np.allclose(times, np.arange(10) / 50.0)


def test_manifest_version_rejected(store):
    manifest = json.loads((store / MANIFEST_NAME).read_text())
    manifest["format_version"] = 99
    (store / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="version 99"):
        TraceReader(store)


def test_check_format_version_shared_helper():
    assert check_format_version(1, (1, 2)) == 1
    with pytest.raises(ValueError, match="unsupported"):
        check_format_version(3, (1, 2))
    with pytest.raises(ValueError, match="not an integer"):
        check_format_version("abc", (1,))


# -- the corruption matrix ----------------------------------------------------


def _corrupt(store, fault):
    """Apply one fault class; return the expected nonzero report keys."""
    if fault == "bitflip":
        _bitflip(store, 1)
        return {"store_crc_failed", "store_crc_nanfilled"}
    if fault == "truncated_tail":
        last = max(store.glob("chunk-*.rimc"))
        last.write_bytes(last.read_bytes()[: HEADER_SIZE + 7])
        return {"store_torn_truncated"}
    if fault == "duplicate_seq":
        # The repair policy additionally NaN-fills the hole the dropped
        # duplicate leaves behind.
        _chunk(store, 2).write_bytes(_chunk(store, 1).read_bytes())
        return {
            "store_duplicates_dropped",
            "store_seq_gaps",
            "store_gap_samples_filled",
        }
    if fault == "missing_seq":
        _chunk(store, 1).unlink()
        return {"store_seq_gaps", "store_gap_samples_filled"}
    raise AssertionError(fault)


FAULTS = ("bitflip", "truncated_tail", "duplicate_seq", "missing_seq")


@pytest.mark.parametrize("fault", FAULTS)
def test_corruption_raise_policy(store, fault):
    _corrupt(store, fault)
    with pytest.raises(StoreCorruptionError):
        reader = TraceReader(store, policy="raise")
        list(reader.iter_chunks())  # bitflip is only detected at read time


@pytest.mark.parametrize("fault", FAULTS)
def test_corruption_is_guarderror(store, fault):
    """Store corruption composes with existing ``except GuardError`` handlers."""
    _corrupt(store, fault)
    with pytest.raises(GuardError):
        list(TraceReader(store, policy="raise").iter_chunks())


@pytest.mark.parametrize("fault", FAULTS)
def test_corruption_drop_policy(store, fault, line_trace):
    _corrupt(store, fault)
    reader = TraceReader(store, policy="drop")
    records = list(reader.iter_chunks())
    repairs = reader.report.repairs()
    assert repairs, "drop must still count what it dropped"
    # Drop never fills: fewer samples than recorded, none of them NaN-filled.
    total = sum(r.times.size for r in records)
    assert total < line_trace.n_samples
    assert reader.report.crc_nanfilled == 0
    assert reader.report.gap_samples_filled == 0


@pytest.mark.parametrize("fault", FAULTS)
def test_corruption_repair_policy(store, fault, line_trace):
    expected_keys = _corrupt(store, fault)
    reader = TraceReader(store, policy="repair")
    records = list(reader.iter_chunks())
    repairs = reader.report.repairs()
    assert set(repairs) == expected_keys
    if fault in ("bitflip", "missing_seq"):
        # Repair restores the full sample count with NaN loss bursts on
        # the nominal clock, and the stream of timestamps stays monotonic.
        total = sum(r.times.size for r in records)
        assert total == line_trace.n_samples
        filled = [r for r in records if r.repairs]
        assert len(filled) == 1
        assert np.isnan(filled[0].data.real).all()
    times = np.concatenate([r.times for r in records])
    assert np.all(np.diff(times) > 0)


@pytest.mark.parametrize("fault", FAULTS)
def test_repair_replay_never_crashes_and_reports_health(store, fault):
    """The acceptance criterion: corrupt chunk + ``repair`` -> clean replay
    with the store repairs visible in ``HealthReport.repairs``."""
    expected_keys = _corrupt(store, fault)
    reader = TraceReader(store, policy="repair")
    replayer = CheckpointedReplayer(
        reader, config=RimConfig(guard_policy="repair"), block_seconds=0.5
    )
    updates = replayer.run()
    assert updates, "replay must still produce motion updates"
    seen = set()
    for update in updates:
        assert update.health is not None
        seen.update(k for k in update.health.repairs if k.startswith("store_"))
    # Everything the reader repaired before the last update must have been
    # folded into some health report (the torn tail is truncated at open,
    # before any chunk is fed, so it is reported from the first block on).
    assert expected_keys & seen == expected_keys & set(reader.report.repairs())


def test_store_metrics_published(store):
    _bitflip(store, 1)
    obs.reset()
    obs.enable()
    try:
        reader = TraceReader(store, policy="repair")
        list(reader.iter_chunks())
        metrics = obs.METRICS
        assert metrics.get("store.chunks_read").value == reader.n_chunks - 1
        assert metrics.get("store.crc_failures").value == 1
        assert metrics.get("store.bytes_read").value > 0
    finally:
        obs.reset()
        obs.disable()


def test_torn_final_chunk_crash_recovery(tmp_path, three_antenna):
    """A writer killed mid-chunk loses at most the torn tail."""
    root = tmp_path / "s"
    w = TraceWriter(root, three_antenna, sampling_rate=100.0, chunk_samples=16)
    w.append(np.ones((40, 3, 1, 8), dtype=np.complex64))
    # 2 full chunks on disk, 8 samples still buffered; simulate the crash
    # by abandoning the writer and tearing the last durable chunk.
    last = max(root.glob("chunk-*.rimc"))
    last.write_bytes(last.read_bytes()[:20])
    reader = TraceReader(root, policy="repair")
    assert reader.report.torn_chunks_truncated == 1
    assert reader.n_chunks == 1
    out = list(reader.iter_chunks())
    assert sum(r.times.size for r in out) == 16


# -- conversion ---------------------------------------------------------------


def test_convert_round_trip_npz_to_store_to_npz(store, tmp_path, line_trace):
    from repro.io import load_trace, save_trace

    npz = tmp_path / "legacy.npz"
    save_trace(npz, line_trace)
    converted = tmp_path / "converted"
    npz_to_store(npz, converted, chunk_samples=CHUNK)
    back = tmp_path / "back.npz"
    store_to_npz(converted, back)
    out = load_trace(back)
    assert np.array_equal(out.data, line_trace.data)
    assert np.array_equal(out.times, line_trace.times)
    assert np.array_equal(out.trajectory.positions, line_trace.trajectory.positions)


def test_convert_refuses_corrupt_store_by_default(store, tmp_path):
    _bitflip(store, 0)
    with pytest.raises(StoreCorruptionError):
        store_to_npz(store, tmp_path / "out.npz")
    # ... but archives NaN-filled under repair.
    store_to_npz(store, tmp_path / "out.npz", policy="repair")


# -- serve integration --------------------------------------------------------


def test_record_on_ingest_round_trip(tmp_path, line_trace):
    from repro.serve.session import SessionManager

    manager = SessionManager(record_dir=tmp_path / "fleet")
    manager.create("rx00", line_trace.array, line_trace.sampling_rate,
                   carrier_wavelength=line_trace.carrier_wavelength)
    for k in range(line_trace.n_samples):
        manager.push("rx00", line_trace.data[k], float(line_trace.times[k]))
    manager.flush_all()
    with TraceReader(tmp_path / "fleet" / "rx00", policy="raise") as reader:
        out = reader.read_trace()
    assert np.array_equal(out.data, line_trace.data)
    assert np.array_equal(out.times, line_trace.times)


def test_serve_sim_store_dir_replays_recording(tmp_path, line_trace):
    from repro.serve.simulate import run_serve_sim

    fleet = tmp_path / "fleet"
    live = run_serve_sim(
        receivers=[("rx00", line_trace)], n_workers=1, record_dir=fleet
    )
    replayed = run_serve_sim(store_dir=fleet, n_workers=1)
    assert replayed["aggregate"]["total_samples"] == line_trace.n_samples
    assert replayed["aggregate"]["total_distance_m"] == pytest.approx(
        live["aggregate"]["total_distance_m"]
    )
