"""Terminal-friendly figure rendering for experiment results.

The paper presents its evaluation as CDFs and line plots; these helpers
render the measured series as ASCII so ``python -m repro.cli run figX
--plot`` (and the examples) can show the curve shapes without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def ascii_plot(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
    marker: str = "*",
) -> str:
    """Render one series as an ASCII scatter/line plot.

    Args:
        x, y: The series (finite points only are drawn).
        width, height: Canvas size in characters.
        x_label, y_label: Axis annotations.
        marker: Point marker character.

    Returns:
        A multi-line plot string.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    ok = np.isfinite(x) & np.isfinite(y)
    x, y = x[ok], y[ok]
    if x.size == 0:
        return "(no finite data)"

    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for xv, yv in zip(x, y):
        col = int((xv - x_lo) / x_span * (width - 1))
        row = int((1.0 - (yv - y_lo) / y_span) * (height - 1))
        canvas[row][col] = marker

    lines = []
    for r, row in enumerate(canvas):
        if r == 0:
            prefix = f"{y_hi:9.3g} |"
        elif r == height - 1:
            prefix = f"{y_lo:9.3g} |"
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 10 + f" {x_lo:<10.3g}" + " " * max(0, width - 24) + f"{x_hi:>10.3g}"
    )
    if x_label or y_label:
        lines.append(" " * 10 + f" x: {x_label}   y: {y_label}")
    return "\n".join(lines)


def ascii_cdf(values: Sequence[float], width: int = 60, height: int = 14, x_label: str = "") -> str:
    """Render an empirical CDF (the paper's favorite presentation)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return "(no finite data)"
    p = np.arange(1, arr.size + 1) / arr.size
    return ascii_plot(arr, p, width=width, height=height, x_label=x_label, y_label="CDF")


def ascii_bars(data: Dict, width: int = 44, unit: str = "") -> str:
    """Horizontal bar chart for keyed scalars (per-site/per-V medians)."""
    items = [(str(k), float(v)) for k, v in data.items() if np.isfinite(float(v))]
    if not items:
        return "(no finite data)"
    peak = max(v for _, v in items) or 1.0
    label_width = max(len(k) for k, _ in items)
    lines = []
    for key, value in items:
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{key.rjust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def render_result_figures(name: str, result: Dict) -> str:
    """Best-effort figure rendering for a runner's output dict."""
    blocks = []
    measured = result.get("measured", {})
    for key, value in measured.items():
        if isinstance(value, dict) and value and all(
            isinstance(v, (int, float)) for v in value.values()
        ):
            blocks.append(f"-- {key} --\n" + ascii_bars(value))
    for errors_key in ("desktop_errors", "cart_errors", "errors"):
        if errors_key in result:
            vals = np.asarray(result[errors_key], dtype=float)
            if vals.size >= 3:
                blocks.append(
                    f"-- CDF of {errors_key} --\n" + ascii_cdf(vals, x_label=errors_key)
                )
    if not blocks:
        return f"({name}: nothing figure-shaped in this result)"
    return "\n\n".join(blocks)
