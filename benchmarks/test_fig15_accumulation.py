"""Bench: Fig. 15 — error versus movement distance (no accumulation)."""

from repro.eval.experiments import run_fig15_accumulation
from repro.eval.report import print_report


def test_fig15_accumulation(benchmark, quick):
    result = benchmark.pedantic(
        run_fig15_accumulation, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 15 — impact of movement distance", result)
    m = result["measured"]
    # Shape: unlike inertial integration (quadratic blow-up), the error
    # grows at most mildly with distance.
    assert m["max_median_cm"] < 40.0
    assert m["growth_ratio"] < 20.0
