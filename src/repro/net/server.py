"""Asyncio TCP ingestion server: wire frames in, MotionUpdates back out.

One connection carries one named session.  The server decodes frames with
the resyncing :class:`~repro.net.framing.FrameDecoder` (corrupt frames
cost themselves, not the connection), restores sample order behind a
bounded reorder window (:class:`SeqTracker`), suppresses duplicates,
skips unrecoverable gaps, and feeds the surviving samples — in sequence
order — to a :class:`~repro.serve.session.SessionManager` through its
existing backpressure policies.  Emitted ``MotionUpdate``s stream back as
UPDATE frames; cumulative ACKs tell the client the delivered high-water
mark so a reconnect resumes exactly after it.

Fault accounting goes to two places so neither dashboards nor health
consumers need the other: ``net.*`` obs metrics (connection-level), and
``net_*`` entries folded into the session's next
:class:`~repro.robustness.health.HealthReport` via
:meth:`~repro.serve.session.ServeSession.note_repair`.

Reconnect-resume: the server keeps a per-session *attachment* (sequence
tracker + session handle) alive across connections.  A client re-HELLOing
an existing session name — presenting the resume token issued in the
first WELCOME and the same geometry — gets a WELCOME carrying
``resume_seq`` — the cumulative ack — and resends only what came after;
anything duplicated in flight is suppressed by seq, so no sample ever
reaches the estimator twice.

The update stream is reliable in the other direction too: every emitted
``MotionUpdate`` is assigned a monotonic update seq and retained until
the client's cumulative UACK covers it.  After a reconnect the server
rewinds its send cursor to the acked mark and retransmits everything
unacked; the client suppresses resent duplicates by seq.  An update
written to a connection that dies mid-flight is therefore redelivered,
not lost — which is what makes the "bit-identical to an uninterrupted
run" guarantee hold under forced disconnects.

Liveness: the server PINGs each connection every ``heartbeat_s`` (the
PING carries the current ack, doubling as an ack refresh) and closes
connections idle past ``idle_timeout_s``; the client's reconnect loop
handles the rest.

Thread model: the asyncio loop runs on a daemon thread so synchronous
code (CLI, tests, benchmarks) can drive the server with plain calls.
Transport state — decoder, sequence tracker, ack/update bookkeeping — is
touched only from the loop thread.  Estimator work
(``SessionManager.push``, ``ServeSession.poll``/``flush``) runs on a
dedicated single-thread executor per session, preserving the serve
layer's single-producer contract while keeping the event loop free: a
slow estimator block (notably ``backpressure="block"``, whose offer
drains the whole queue synchronously) stalls only its own session, never
heartbeats, acks, or other sessions' I/O.
"""

from __future__ import annotations

import asyncio
import logging
import secrets
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.config import RimConfig
from repro.io import array_from_manifest
from repro.net import framing
from repro.net.framing import Frame, FrameDecoder, FrameError
from repro.obs.flight import FLIGHT
from repro.obs.provenance import SampleProvenance
from repro.serve.session import ServeConfig, ServeSession, SessionManager

logger = logging.getLogger(__name__)

DEFAULT_PORT = 7316  # "RIM" on a phone keypad, close enough


@dataclass
class NetServerConfig:
    """Transport-side knobs (estimator/serving knobs live elsewhere).

    Attributes:
        host: Bind address.
        port: Bind port (0 = ephemeral; read back via ``server.port``).
        reorder_window: Out-of-order samples buffered per session before
            the gap is declared lost and skipped.
        ack_every: Send a cumulative ACK after this many delivered
            samples (heartbeat PINGs refresh the ack regardless).
        heartbeat_s: PING cadence per connection.
        idle_timeout_s: Close a connection after this long without a
            frame from the client.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    reorder_window: int = 64
    ack_every: int = 32
    heartbeat_s: float = 2.0
    idle_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        if self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        if self.heartbeat_s <= 0 or self.idle_timeout_s <= 0:
            raise ValueError("heartbeat/idle timeouts must be positive")


class SeqTracker:
    """Restore sequence order behind a bounded reorder window.

    Samples arrive tagged with a monotonic seq.  The tracker delivers
    them in seq order, holding early arrivals in a pending buffer of at
    most ``window`` samples; when the buffer overflows, the missing seqs
    are declared lost (``n_gap_samples``) and delivery advances to the
    earliest held sample.  Duplicates — retransmissions after reconnect
    or wire-level duplication — are dropped by seq.

    ``ack`` is the cumulative delivered high-water mark: every seq at or
    below it has been delivered or counted as a gap, so a resuming
    client replays strictly after it and nothing reaches the session
    twice.
    """

    def __init__(self, window: int = 64):
        self.window = int(window)
        self.next_seq = 0
        self.pending: Dict[int, Tuple[float, np.ndarray]] = {}
        self.n_delivered = 0
        self.n_duplicates = 0
        self.n_gap_samples = 0

    @property
    def ack(self) -> int:
        """Cumulative ack: highest seq accounted for (-1 before any)."""
        return self.next_seq - 1

    def admit(
        self, seq: int, timestamp: float, packet: np.ndarray
    ) -> List[Tuple[int, float, np.ndarray]]:
        """Accept one arrival; return samples now deliverable, in order."""
        if seq < self.next_seq or seq in self.pending:
            self.n_duplicates += 1
            return []
        self.pending[seq] = (timestamp, packet)
        out = self._release_in_order()
        if len(self.pending) > self.window:
            # The gap has outlived the window: skip to the earliest held
            # sample, counting every missing seq as lost.
            resume_at = min(self.pending)
            self.n_gap_samples += resume_at - self.next_seq
            self.next_seq = resume_at
            out.extend(self._release_in_order())
        return out

    def flush(self) -> List[Tuple[int, float, np.ndarray]]:
        """End of stream: deliver everything held, counting the gaps."""
        out = self._release_in_order()
        while self.pending:
            resume_at = min(self.pending)
            self.n_gap_samples += resume_at - self.next_seq
            self.next_seq = resume_at
            out.extend(self._release_in_order())
        return out

    def reset_pending(self) -> None:
        """Drop held out-of-order samples (client will resend past ack)."""
        self.pending.clear()

    def _release_in_order(self) -> List[Tuple[int, float, np.ndarray]]:
        out: List[Tuple[int, float, np.ndarray]] = []
        while self.next_seq in self.pending:
            timestamp, packet = self.pending.pop(self.next_seq)
            out.append((self.next_seq, timestamp, packet))
            self.next_seq += 1
            self.n_delivered += 1
        return out


@dataclass
class _Attachment:
    """Per-session server state that survives reconnects."""

    session_id: int
    name: str
    session: ServeSession
    tracker: SeqTracker
    sample_shape: Tuple[int, ...]
    array_manifest: Any  # HELLO geometry, revalidated on reattach
    token: str  # resume token a reattaching HELLO must present
    executor: ThreadPoolExecutor  # single-thread estimator lane
    acked_sent: int = -1  # last ack value actually framed to the client
    delivered_since_ack: int = 0
    crc_noted: int = 0  # decoder CRC drops already folded into repairs
    n_reconnects: int = 0
    finished: bool = False
    connected: bool = False
    conn_gen: int = 0  # bumped per attach; stale handlers check before clearing
    writer: Optional[asyncio.StreamWriter] = None
    repairs_noted: Dict[str, int] = field(default_factory=dict)
    final_updates: list = field(default_factory=list)
    # Update-stream reliability: every emitted update gets a monotonic
    # seq and stays buffered until the client's cumulative UACK covers
    # it; a reconnect rewinds update_sent to update_acked so anything
    # unacked is retransmitted on the new connection.
    update_seq: int = 0  # next update seq to assign
    update_sent: int = -1  # highest seq written to the live connection
    update_acked: int = -1  # highest seq the client confirmed (UACK)
    unacked_updates: Dict[int, bytes] = field(default_factory=dict)
    # Side-band provenance: create stamps from client TELEMETRY frames by
    # sample seq (consumed at ingest), and resolved latency breakdowns by
    # update seq (sent — and resent — alongside their UPDATE frames).
    pending_prov: Dict[int, float] = field(default_factory=dict)
    unacked_breakdowns: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    def fold_repairs(self) -> None:
        """Sync tracker/decoder fault counters into session repairs.

        Runs on the session's ingest thread (it mutates session state).
        """
        counts = {
            "net_duplicate_dropped": self.tracker.n_duplicates,
            "net_gap_samples": self.tracker.n_gap_samples,
            "net_crc_dropped": self.crc_noted,
        }
        for key, total in counts.items():
            fresh = total - self.repairs_noted.get(key, 0)
            if fresh > 0:
                self.session.note_repair(key, fresh)
                self.repairs_noted[key] = total

    def prune_updates(self) -> None:
        """Drop buffered updates the client has confirmed receiving."""
        for seq in [s for s in self.unacked_updates if s <= self.update_acked]:
            del self.unacked_updates[seq]
        for seq in [s for s in self.unacked_breakdowns if s <= self.update_acked]:
            del self.unacked_breakdowns[seq]


class NetServer:
    """The TCP ingestion front-end (see module docstring for protocol).

    Args:
        manager: Session registry fed by delivered samples.  The server
            creates sessions on HELLO using the geometry the client
            declares.
        config: Transport configuration.
        rim_config: Estimator config for sessions created over the wire.
        serve_config: Serving config (queue/backpressure) for the same.
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        config: Optional[NetServerConfig] = None,
        rim_config: Optional[RimConfig] = None,
        serve_config: Optional[ServeConfig] = None,
    ):
        self.manager = manager or SessionManager(
            rim_config=rim_config, serve_config=serve_config
        )
        self.config = config or NetServerConfig()
        self._rim_config = rim_config
        self._serve_config = serve_config
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._attachments: Dict[str, _Attachment] = {}
        self._next_session_id = 1
        self._started = threading.Event()
        self._closed = False
        self.port: Optional[int] = None
        self.n_connections = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "NetServer":
        """Bind and serve on a daemon thread; returns self when listening."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="rim-net-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("network server failed to start listening")
        # Refresh the retained-frame gauge at every registry snapshot, so
        # exporters see the live unacked-update backlog between pumps.
        obs.METRICS.add_collector(self._collect_metrics)
        return self

    def _collect_metrics(self) -> None:
        if not obs.enabled():
            return
        try:
            retained = sum(
                len(a.unacked_updates) for a in list(self._attachments.values())
            )
        except RuntimeError:  # raced a HELLO registering an attachment
            return
        obs.set_gauge("net.retained_frames", retained)

    def close(self, flush_sessions: bool = True) -> None:
        """Stop listening, drop connections, optionally flush sessions."""
        obs.METRICS.remove_collector(self._collect_metrics)
        if self._loop is None or self._closed:
            return
        self._closed = True
        loop = self._loop
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
        future.result(timeout=10.0)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # With the loop stopped, drain each session's ingest lane before
        # touching its estimator from this thread.
        for att in self._attachments.values():
            att.executor.shutdown(wait=True)
            if flush_sessions and not att.finished:
                self._finish_stream(att)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self._bind())
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _bind(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("net server listening on %s:%d", self.config.host, self.port)

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- stats --------------------------------------------------------------

    def session_stats(self) -> List[Dict[str, object]]:
        """Serving rows extended with transport counters per session."""
        rows = []
        for row in self.manager.stats():
            att = self._attachments.get(str(row["session"]))
            if att is not None:
                row = dict(row)
                row["acked"] = att.tracker.ack
                row["net_dups"] = att.tracker.n_duplicates
                row["net_gaps"] = att.tracker.n_gap_samples
                row["net_crc"] = att.crc_noted
                row["reconnects"] = att.n_reconnects
            rows.append(row)
        return rows

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.n_connections += 1
        obs.add("net.connections")
        decoder = FrameDecoder()
        att: Optional[_Attachment] = None
        my_gen = -1
        last_rx = asyncio.get_running_loop().time()
        heartbeat: Optional[asyncio.Task] = None
        try:
            while True:
                timeout = self.config.idle_timeout_s - (
                    asyncio.get_running_loop().time() - last_rx
                )
                if timeout <= 0:
                    logger.warning("connection idle past timeout; closing")
                    obs.add("net.idle_closed")
                    FLIGHT.record(
                        "connection", "net",
                        session=None if att is None else att.name,
                        action="idle_closed",
                    )
                    break
                try:
                    data = await asyncio.wait_for(
                        reader.read(1 << 16), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    continue  # recheck idle budget
                if not data:
                    break  # peer closed
                last_rx = asyncio.get_running_loop().time()
                decoder.feed(data)
                # Tracker-released samples accumulate here and go to the
                # ingest thread in one batch per read.
                batch: List[Tuple[int, float, np.ndarray]] = []
                done = False
                for frame in decoder.frames():
                    obs.add("net.frames_rx")
                    if att is None:
                        att = self._handle_hello(frame, writer)
                        if att is None:
                            done = True
                            break
                        my_gen = att.conn_gen
                        heartbeat = asyncio.get_running_loop().create_task(
                            self._heartbeat(att, writer)
                        )
                        continue
                    status = await self._handle_frame(
                        att, frame, writer, batch, decoder
                    )
                    if status:
                        done = True
                        break
                if att is not None and not done:
                    self._note_decoder_faults(att, decoder)
                    await self._deliver(att, batch)
                    await self._pump_session(att, writer)
                await writer.drain()
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError, FrameError) as exc:
            logger.warning("connection dropped: %s", exc)
            FLIGHT.record(
                "connection", "net",
                session=None if att is None else att.name,
                action="dropped", error=str(exc),
            )
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
            if att is not None and att.conn_gen == my_gen:
                att.connected = False
                att.writer = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _handle_hello(
        self, frame: Frame, writer: asyncio.StreamWriter
    ) -> Optional[_Attachment]:
        """First frame of a connection: open or reattach a session."""
        if frame.frame_type != framing.FRAME_HELLO:
            self._send_error(writer, f"expected HELLO, got {frame.type_name}")
            return None
        try:
            hello = framing.unpack_json_payload(frame.payload, where="HELLO")
            name = str(hello["name"])
            sample_shape = tuple(int(v) for v in hello["sample_shape"])
        except (FrameError, KeyError, TypeError, ValueError) as exc:
            self._send_error(writer, f"malformed HELLO: {exc}")
            return None

        att = self._attachments.get(name)
        if att is not None:
            if att.finished:
                self._send_error(writer, f"session {name!r} already finished")
                return None
            # A reattach must prove it is the same client before it can
            # supersede the live connection: the resume token issued in
            # the first WELCOME, and identical geometry (a mismatched
            # shape would have every DATA frame silently dropped by the
            # payload-length check).
            if hello.get("token") != att.token:
                self._send_error(
                    writer, f"bad resume token for session {name!r}"
                )
                return None
            if (
                sample_shape != att.sample_shape
                or hello.get("array") != att.array_manifest
            ):
                self._send_error(
                    writer,
                    f"HELLO geometry mismatch for session {name!r}: "
                    f"sample_shape {sample_shape} vs {att.sample_shape}",
                )
                return None
            if att.connected and att.writer is not None:
                # A reconnecting client usually beats our detection of
                # its dead socket: the newest HELLO wins, the stale
                # handler is kicked loose.
                logger.warning(
                    "session %s: superseding a stale connection", name,
                    extra={"session": name},
                )
                obs.add("net.superseded")
                FLIGHT.record(
                    "connection", "net", session=name, action="superseded"
                )
                try:
                    att.writer.close()
                except (OSError, RuntimeError):
                    pass
            # Reattach: held out-of-order samples are forgotten (the
            # client resends everything past the ack anyway), and the
            # update cursor rewinds so unacked updates are resent.
            att.tracker.reset_pending()
            att.update_sent = att.update_acked
            att.n_reconnects += 1
            obs.add("net.reconnects")
            FLIGHT.record(
                "reconnect", "net", session=name, resume_seq=att.tracker.ack
            )
            logger.info(
                "session %s reattached (resume after seq %d)", name, att.tracker.ack,
                extra={"session": name},
            )
        else:
            try:
                array = array_from_manifest(hello["array"])
                session = self.manager.create(
                    name,
                    array,
                    float(hello["sampling_rate"]),
                    rim_config=self._rim_config,
                    serve_config=self._serve_config,
                    carrier_wavelength=float(
                        hello.get("carrier_wavelength", 0.0516)
                    ),
                )
            except (KeyError, TypeError, ValueError) as exc:
                self._send_error(writer, f"bad HELLO for session {name!r}: {exc}")
                return None
            att = _Attachment(
                session_id=self._next_session_id,
                name=name,
                session=session,
                tracker=SeqTracker(self.config.reorder_window),
                sample_shape=sample_shape,
                array_manifest=hello.get("array"),
                token=secrets.token_hex(16),
                executor=ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"rim-net-ingest-{name}"
                ),
            )
            self._next_session_id += 1
            self._attachments[name] = att
            FLIGHT.record(
                "connection", "net", session=name, action="opened",
                session_id=att.session_id,
            )
            logger.info(
                "session %s opened (id %d)", name, att.session_id,
                extra={"session": name},
            )
        att.connected = True
        att.conn_gen += 1
        att.writer = writer
        writer.write(
            framing.pack_frame(
                framing.FRAME_WELCOME,
                att.session_id,
                0,
                framing.pack_json_payload(
                    {
                        "session_id": att.session_id,
                        "resume_seq": att.tracker.ack,
                        "token": att.token,
                    }
                ),
            )
        )
        return att

    async def _handle_frame(
        self,
        att: _Attachment,
        frame: Frame,
        writer: asyncio.StreamWriter,
        batch: List[Tuple[int, float, np.ndarray]],
        decoder: FrameDecoder,
    ) -> bool:
        """Dispatch one post-HELLO frame; True ends the connection.

        DATA frames only extend ``batch`` (delivered to the ingest
        thread once per read); everything else is handled in place.
        """
        if frame.frame_type == framing.FRAME_DATA:
            obs.add("net.data_rx")
            try:
                timestamp, packet = framing.unpack_data_payload(
                    frame.payload, att.sample_shape
                )
            except FrameError as exc:
                # Wrong-geometry payload: drop-and-continue, never crash.
                logger.warning("dropping undecodable DATA frame: %s", exc)
                att.crc_noted += 1
                obs.add("net.crc_dropped")
                return False
            batch.extend(att.tracker.admit(frame.seq, timestamp, packet))
            return False
        if frame.frame_type == framing.FRAME_TELEMETRY:
            # Side-band create stamp for an upcoming DATA sample.  Loss-
            # tolerant: a malformed stamp is dropped, a stale one (its
            # DATA frame was lost to faults) is pruned below the tracker
            # cursor, and a hard cap bounds the dict under pathological
            # loss so telemetry can never grow server memory.
            try:
                created_s = framing.unpack_sample_telemetry(frame.payload)
            except FrameError:
                return False
            att.pending_prov[frame.seq] = created_s
            cap = max(1024, 4 * self.config.reorder_window)
            if len(att.pending_prov) > cap:
                for seq in [
                    s for s in att.pending_prov if s < att.tracker.next_seq
                ]:
                    del att.pending_prov[seq]
                while len(att.pending_prov) > cap:
                    del att.pending_prov[min(att.pending_prov)]
            return False
        if frame.frame_type == framing.FRAME_UACK:
            att.update_acked = max(att.update_acked, frame.seq - 1)
            att.prune_updates()
            return False
        if frame.frame_type == framing.FRAME_PONG:
            return False
        if frame.frame_type == framing.FRAME_BYE:
            await self._deliver(att, batch)
            batch.clear()
            self._note_decoder_faults(att, decoder)
            await self._finish_stream_async(att)
            await self._pump_session(att, writer, force_ack=True)
            writer.write(framing.pack_frame(framing.FRAME_BYE, att.session_id))
            # The BYE rides behind the final updates on the same stream,
            # and a finished session cannot be reattached: the unacked
            # buffer has done its job.
            att.unacked_updates.clear()
            att.unacked_breakdowns.clear()
            att.pending_prov.clear()
            return True
        if frame.frame_type == framing.FRAME_HELLO:
            self._send_error(writer, "duplicate HELLO on open session")
            return True
        logger.warning("ignoring unexpected %s frame", frame.type_name)
        return False

    # -- estimator offload (per-session ingest thread) ----------------------

    async def _deliver(
        self, att: _Attachment, batch: List[Tuple[int, float, np.ndarray]]
    ) -> None:
        """Push tracker-released samples on the session's ingest thread."""
        if not batch:
            return
        await asyncio.get_running_loop().run_in_executor(
            att.executor, self._ingest_samples, att, list(batch)
        )
        att.delivered_since_ack += len(batch)

    def _ingest_samples(
        self, att: _Attachment, batch: List[Tuple[int, float, np.ndarray]]
    ) -> None:
        """Ingest-thread body: feed delivered samples to the session."""
        for seq, timestamp, packet in batch:
            self.manager.push(
                att.name,
                packet,
                timestamp,
                provenance=self._sample_provenance(att, seq),
            )

    def _sample_provenance(
        self, att: _Attachment, seq: int
    ) -> Optional[SampleProvenance]:
        """Trace context for one delivered sample (None when tracing is off).

        Uses the client's wire create stamp when its TELEMETRY frame made
        it through; otherwise mints a context at this ingest boundary so
        fault-lossy wire paths still yield full breakdowns (wire_s = 0).
        """
        created_s = att.pending_prov.pop(seq, None)
        if not obs.enabled():
            return None
        return SampleProvenance(f"{att.name}:{seq}", created_s=created_s)

    async def _finish_stream_async(self, att: _Attachment) -> None:
        """Deliver held samples, flush the estimator, mark finished."""
        if att.finished:
            return
        held = att.tracker.flush()
        await asyncio.get_running_loop().run_in_executor(
            att.executor, self._finish_session, att, held
        )
        att.delivered_since_ack += len(held)
        att.finished = True

    def _finish_session(
        self, att: _Attachment, held: List[Tuple[int, float, np.ndarray]]
    ) -> None:
        """Ingest-thread body of the finish: push, fold, flush."""
        for seq, timestamp, packet in held:
            self.manager.push(
                att.name,
                packet,
                timestamp,
                provenance=self._sample_provenance(att, seq),
            )
        # Fold transport faults in *before* the estimator flush so the
        # final block's HealthReport carries the net_* repairs.
        att.fold_repairs()
        att.final_updates.extend(att.session.flush())

    def _finish_stream(self, att: _Attachment) -> None:
        """Synchronous finish, for :meth:`close` after the loop stopped
        (the session's executor must already be drained)."""
        if att.finished:
            return
        self._finish_session(att, att.tracker.flush())
        att.finished = True

    def _poll_session(self, att: _Attachment) -> list:
        """Ingest-thread body of a poll: fold repairs, drain, collect."""
        att.fold_repairs()
        return att.session.poll()

    # -- frame emission ------------------------------------------------------

    def _note_decoder_faults(
        self, att: _Attachment, decoder: FrameDecoder
    ) -> None:
        """Attribute this connection's decode faults to its session."""
        fresh_crc = decoder.n_crc_dropped - getattr(decoder, "_crc_seen", 0)
        fresh_resync = decoder.n_resyncs - getattr(decoder, "_resync_seen", 0)
        if fresh_crc:
            att.crc_noted += fresh_crc
            obs.add("net.crc_dropped", fresh_crc)
        if fresh_resync:
            obs.add("net.resyncs", fresh_resync)
        decoder._crc_seen = decoder.n_crc_dropped  # type: ignore[attr-defined]
        decoder._resync_seen = decoder.n_resyncs  # type: ignore[attr-defined]

    async def _pump_session(
        self,
        att: _Attachment,
        writer: asyncio.StreamWriter,
        force_ack: bool = False,
    ) -> None:
        """Queue fresh updates, stream unsent ones, and (maybe) ACK.

        Fresh updates are sequenced into the unacked buffer whether or
        not they can be written right now.  Writes go only to the
        session's *live* connection: a stale handler (superseded by a
        reconnect mid-await) still queues, but leaves transmission to
        the current connection, so nothing is marked sent on a dead
        socket.
        """
        if att.finished:
            fresh = att.final_updates
            att.final_updates = []
        else:
            fresh = await asyncio.get_running_loop().run_in_executor(
                att.executor, self._poll_session, att
            )
        for update in fresh:
            att.unacked_updates[att.update_seq] = framing.encode_update(update)
            # UPDATE payloads exclude stats by design (golden-bytes lock),
            # so the latency breakdown rides a side-band TELEMETRY frame
            # kept — and resent — alongside its update.
            if update.stats and isinstance(
                update.stats.get("provenance"), dict
            ):
                att.unacked_breakdowns[att.update_seq] = update.stats[
                    "provenance"
                ]
            att.update_seq += 1
        if att.writer is not writer or writer.is_closing():
            return
        while att.update_sent + 1 < att.update_seq:
            seq = att.update_sent + 1
            att.update_sent = seq
            payload = att.unacked_updates.get(seq)
            if payload is None:
                continue  # UACKed while unsent (ack outran a rewind)
            obs.add("net.updates_tx")
            writer.write(
                framing.pack_frame(
                    framing.FRAME_UPDATE, att.session_id, seq, payload
                )
            )
            breakdown = att.unacked_breakdowns.get(seq)
            if breakdown is not None:
                writer.write(
                    framing.pack_update_telemetry(
                        att.session_id, seq, breakdown
                    )
                )
        if force_ack or att.delivered_since_ack >= self.config.ack_every:
            self._send_ack(att, writer)

    def _send_ack(self, att: _Attachment, writer: asyncio.StreamWriter) -> None:
        ack = att.tracker.ack
        # seq field carries ack+1 so ack=-1 (nothing yet) fits unsigned.
        writer.write(
            framing.pack_frame(framing.FRAME_ACK, att.session_id, ack + 1)
        )
        att.acked_sent = ack
        att.delivered_since_ack = 0
        obs.add("net.acks_tx")

    def _send_error(self, writer: asyncio.StreamWriter, message: str) -> None:
        logger.warning("protocol error: %s", message)
        obs.add("net.protocol_errors")
        FLIGHT.record("protocol_error", "net", error=message)
        FLIGHT.auto_dump("protocol-error")
        writer.write(
            framing.pack_frame(
                framing.FRAME_ERROR,
                0,
                0,
                framing.pack_json_payload({"error": message}),
            )
        )

    async def _heartbeat(
        self, att: _Attachment, writer: asyncio.StreamWriter
    ) -> None:
        """PING (carrying the ack) every heartbeat_s while connected."""
        try:
            while att.connected and not writer.is_closing():
                await asyncio.sleep(self.config.heartbeat_s)
                if writer.is_closing():
                    return
                writer.write(
                    framing.pack_frame(
                        framing.FRAME_PING, att.session_id, att.tracker.ack + 1
                    )
                )
                att.acked_sent = att.tracker.ack
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            return
