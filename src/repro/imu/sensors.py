"""MEMS inertial sensor simulators — the baselines RIM is compared against.

The paper contrasts RIM with the accelerometer/gyroscope/magnetometer of a
Bosch BNO055 unit (§5) and reports:

* accelerometers cannot track distance — double integration of noisy,
  biased readings blows up to tens of meters (§6.2.1);
* gyroscopes drift with integration but deliver decent rotating angles
  (§6.2.3) — yet see *nothing* during sideway movements (§6.3.3);
* magnetometers report device orientation, not heading, and are easily
  distorted indoors (§1).

Each simulator follows the standard MEMS stochastic error model: white
measurement noise plus a bias random walk, with defaults in the range of
consumer-grade parts (datasheet-level, not calibrated-lab-level, matching
the "low-cost inertial sensors" the paper refers to [12]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.motionsim.trajectory import Trajectory

GRAVITY = 9.80665


@dataclass
class ImuNoiseModel:
    """Stochastic error parameters of a consumer MEMS IMU.

    Attributes:
        accel_noise_density: Accelerometer white noise, m/s² per √Hz.
        accel_bias_stability: Std-dev of the accelerometer bias random-walk
            increment per second, m/s².
        accel_initial_bias: Std-dev of the constant turn-on bias, m/s².
        gyro_noise_density: Gyroscope white noise, rad/s per √Hz.
        gyro_bias_stability: Gyro bias random-walk increment per second.
        gyro_initial_bias: Std-dev of the gyro turn-on bias, rad/s.
        mag_noise_std: Magnetometer angular noise, radians.
        mag_distortion_amplitude: Peak indoor soft-iron distortion of the
            reported orientation, radians (position dependent).
        mag_distortion_scale: Spatial scale of the distortion field, meters.
    """

    accel_noise_density: float = 0.003 * GRAVITY
    accel_bias_stability: float = 0.002
    accel_initial_bias: float = 0.05
    gyro_noise_density: float = np.deg2rad(0.02)
    gyro_bias_stability: float = np.deg2rad(0.01)
    gyro_initial_bias: float = np.deg2rad(0.3)
    mag_noise_std: float = np.deg2rad(2.0)
    mag_distortion_amplitude: float = np.deg2rad(15.0)
    mag_distortion_scale: float = 4.0


@dataclass
class ImuReadings:
    """Simulated IMU output along a trajectory.

    Attributes:
        times: (T,) timestamps, seconds.
        accel: (T, 2) body-frame linear acceleration, m/s² (gravity
            removed, as consumer fusion stacks report).
        gyro: (T,) angular rate about the vertical axis, rad/s.
        mag_heading: (T,) magnetometer orientation estimate, radians.
    """

    times: np.ndarray
    accel: np.ndarray
    gyro: np.ndarray
    mag_heading: np.ndarray


class ImuSimulator:
    """Generates noisy IMU readings for a ground-truth trajectory."""

    def __init__(
        self,
        noise: Optional[ImuNoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.noise = noise or ImuNoiseModel()
        self.rng = rng or np.random.default_rng()
        # Frozen spatial distortion field for the magnetometer: random
        # sinusoidal pattern over position (steel/rebar in the building).
        self._mag_phase = self.rng.uniform(0, 2 * np.pi, 4)
        self._mag_weights = self.rng.standard_normal(4)
        norm = np.abs(self._mag_weights).sum() or 1.0
        self._mag_weights /= norm

    def simulate(self, trajectory: Trajectory) -> ImuReadings:
        """Produce accelerometer/gyro/magnetometer readings.

        Args:
            trajectory: Ground-truth pose; sampling rate defines the IMU
                output data rate.

        Returns:
            :class:`ImuReadings` with the configured noise injected.
        """
        t = trajectory.n_samples
        if t < 3:
            raise ValueError("need at least 3 samples to differentiate twice")
        fs = trajectory.sampling_rate
        dt = 1.0 / fs
        n = self.noise

        # True world-frame acceleration, then into the body frame.
        vel = np.gradient(trajectory.positions, trajectory.times, axis=0)
        acc_world = np.gradient(vel, trajectory.times, axis=0)
        theta = trajectory.orientations
        cos, sin = np.cos(theta), np.sin(theta)
        acc_body = np.stack(
            [
                cos * acc_world[:, 0] + sin * acc_world[:, 1],
                -sin * acc_world[:, 0] + cos * acc_world[:, 1],
            ],
            axis=1,
        )
        accel = (
            acc_body
            + self.rng.normal(0.0, n.accel_initial_bias, (1, 2))
            + np.cumsum(
                self.rng.normal(0.0, n.accel_bias_stability * np.sqrt(dt), (t, 2)),
                axis=0,
            )
            + self.rng.normal(0.0, n.accel_noise_density * np.sqrt(fs), (t, 2))
        )

        # True angular rate + gyro errors.
        omega = np.gradient(np.unwrap(theta), trajectory.times)
        gyro = (
            omega
            + self.rng.normal(0.0, n.gyro_initial_bias)
            + np.cumsum(self.rng.normal(0.0, n.gyro_bias_stability * np.sqrt(dt), t))
            + self.rng.normal(0.0, n.gyro_noise_density * np.sqrt(fs), t)
        )

        # Magnetometer: true orientation + position-dependent distortion.
        pos = trajectory.positions
        scale = 2 * np.pi / n.mag_distortion_scale
        distortion = n.mag_distortion_amplitude * (
            self._mag_weights[0] * np.sin(scale * pos[:, 0] + self._mag_phase[0])
            + self._mag_weights[1] * np.cos(scale * pos[:, 1] + self._mag_phase[1])
            + self._mag_weights[2] * np.sin(scale * (pos[:, 0] + pos[:, 1]) + self._mag_phase[2])
            + self._mag_weights[3] * np.cos(scale * (pos[:, 0] - pos[:, 1]) + self._mag_phase[3])
        )
        mag_heading = (
            theta + distortion + self.rng.normal(0.0, n.mag_noise_std, t)
        )

        return ImuReadings(
            times=trajectory.times.copy(),
            accel=accel,
            gyro=gyro,
            mag_heading=mag_heading,
        )
