"""Shard router: N worker processes behind one SessionManager-shaped API.

:class:`ShardRouter` spawns ``n_shards`` worker processes (each running
:func:`repro.shard.worker.shard_worker_main` around a private
:class:`~repro.serve.session.SessionManager`), assigns sessions to
shards by consistent hash of the session name
(:class:`~repro.shard.ring.HashRing`), and ships CSI packets and control
messages over per-shard pipes using the CRC-protected
:mod:`repro.shard.messages` codec.

The router mirrors the ``SessionManager`` surface (``create`` / ``push``
/ ``poll`` / ``flush_all`` / ``stats`` / ``names``), so
:class:`repro.net.server.NetServer` and the serve simulator drive a
fleet exactly like a single in-process manager; ``create`` returns a
:class:`ShardSessionProxy` that forwards the per-session methods a
caller holds onto.

**Failover.**  When a shard dies (detected on any pipe error, an
explicit :meth:`check_shards`, or a test's :meth:`kill_shard`), its
sessions are re-assigned among the survivors by the same ring and
resumed from their ingest recordings: the adopting worker replays the
victim's store through a
:class:`~repro.store.checkpoint.CheckpointedReplayer` and continues the
stream bit-identically.  The router tracks how many updates each
session already delivered, so replay-regenerated updates are neither
lost nor repeated.  Durability is anchored at :meth:`sync` barriers
(workers drain recorder tails to disk); packets offered after the last
sync that were still in a dead worker's memory are the only loss, and
they are bounded by the short shard chunk size.

**Telemetry.**  Each worker keeps its own :mod:`repro.obs` registry;
the router registers a snapshot collector that pulls per-shard
SNAPSHOT deltas and folds them into the router-process registry
(:meth:`~repro.obs.metrics.MetricsRegistry.apply_snapshot`), so the
PR-7 exporters (JSONL, Prometheus exposition, ``obs-top``) see
``serve.*`` / ``net.*`` metrics for the whole fleet.

Thread model: any number of producer threads may drive *different*
sessions concurrently (per-shard pipe sends are serialized by a lock);
one session must be driven by one producer at a time, exactly like
``SessionManager``.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.arrays.geometry import AntennaArray
from repro.core.config import RimConfig
from repro.core.streaming import MotionUpdate
from repro.io import array_to_manifest
from repro.obs.flight import FLIGHT
from repro.obs.provenance import SampleProvenance
from repro.serve.session import PUSH_ACCEPTED, ServeConfig
from repro.shard import messages as msg
from repro.shard.ring import HashRing
from repro.shard.worker import SHARD_CHUNK_SAMPLES, WorkerInit, shard_worker_main

logger = logging.getLogger(__name__)

_PIPE_ERRORS = (BrokenPipeError, ConnectionResetError, EOFError, OSError)


class ShardError(RuntimeError):
    """A fleet-level failure (no survivors, protocol breach, timeout)."""


class _ShardDown(Exception):
    """Internal: a pipe operation found its shard dead."""

    def __init__(self, shard: "_Shard", cause: BaseException):
        super().__init__(f"{shard.name} is down: {cause}")
        self.shard = shard
        self.cause = cause


def default_start_method() -> str:
    """Worker start method: ``RIM_SHARD_START`` env override, else fork
    where available (fast startup; workers reset inherited obs state) and
    spawn elsewhere."""
    env = os.environ.get("RIM_SHARD_START", "").strip().lower()
    methods = multiprocessing.get_all_start_methods()
    if env:
        if env not in methods:
            raise ShardError(
                f"RIM_SHARD_START={env!r} not available (have {methods})"
            )
        return env
    return "fork" if "fork" in methods else "spawn"


@dataclass
class _Shard:
    """Router-side handle of one worker process."""

    name: str
    process: Any
    conn: Any
    lock: threading.Lock = field(default_factory=threading.Lock)
    alive: bool = True
    seq: int = 0
    last_snapshot: Optional[Dict[str, Any]] = None


@dataclass
class _SessionRecord:
    """What the router must remember to route, poll, and fail over."""

    name: str
    owner: str
    array_manifest: Dict[str, Any]
    sampling_rate: float
    carrier_wavelength: float
    delivered: int = 0  # updates handed to the consumer so far
    generation: int = 0  # failover count == recording generations - 1
    flushed: bool = False


class ShardSessionProxy:
    """Session-shaped handle to a session living on some shard.

    Forwards :meth:`offer` / :meth:`poll` / :meth:`flush` /
    :meth:`note_repair` / :meth:`stats` over the owning shard's pipe;
    survives failover transparently (the router re-resolves the owner on
    every call).  ``offer`` returns :data:`~repro.serve.session.
    PUSH_ACCEPTED` optimistically — the worker applies the real
    backpressure policy on its side of the pipe, and blocked/shed/
    rejected tallies surface through :meth:`stats` and health reports;
    the OS pipe itself throttles a producer that runs far ahead.
    """

    def __init__(self, router: "ShardRouter", name: str):
        self._router = router
        self.name = name

    def offer(
        self,
        packet: np.ndarray,
        timestamp: Optional[float] = None,
        provenance: Optional[SampleProvenance] = None,
    ) -> str:
        return self._router.push(self.name, packet, timestamp, provenance=provenance)

    def poll(self) -> List[MotionUpdate]:
        return self._router.poll(self.name)

    def flush(self) -> List[MotionUpdate]:
        return self._router.flush(self.name)

    def note_repair(self, key: str, n: int = 1) -> None:
        self._router.note_repair(self.name, key, n)

    def stats(self) -> Dict[str, object]:
        for row in self._router.stats():
            if row.get("session") == self.name:
                return row
        raise KeyError(f"unknown session {self.name!r}")


class ShardRouter:
    """Spawn and drive a fleet of shard workers (see module docstring).

    Args:
        n_shards: Worker process count.
        rim_config: Estimator config shared by every session.
        serve_config: Serving config shared by every session.
        record_dir: Shared ingest-recording root.  Required for
            failover resume; None disables recording (a dead shard's
            sessions are then unrecoverable and failover raises).
        chunk_samples: Packets per recorded chunk (small by default so a
            kill loses little un-synced tail).
        start_method: ``multiprocessing`` start method; default
            :func:`default_start_method`.
        request_timeout_s: Round-trip budget for control requests.
        vnodes: Ring smoothness (virtual nodes per shard).
        enable_worker_obs: Collect :mod:`repro.obs` metrics inside
            workers and aggregate them here; defaults to the router
            process's ``obs.enabled()`` at construction time.
    """

    def __init__(
        self,
        n_shards: int,
        rim_config: Optional[RimConfig] = None,
        serve_config: Optional[ServeConfig] = None,
        record_dir=None,
        chunk_samples: int = SHARD_CHUNK_SAMPLES,
        start_method: Optional[str] = None,
        request_timeout_s: float = 120.0,
        vnodes: int = 64,
        enable_worker_obs: Optional[bool] = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.rim_config = rim_config
        self.serve_config = serve_config or ServeConfig()
        self.record_dir = None if record_dir is None else Path(record_dir)
        self.chunk_samples = int(chunk_samples)
        self.start_method = start_method or default_start_method()
        self.request_timeout_s = float(request_timeout_s)
        if enable_worker_obs is None:
            enable_worker_obs = obs.enabled()
        self.enable_worker_obs = bool(enable_worker_obs)
        self.n_failovers = 0
        self._closed = False
        self._lock = threading.RLock()  # topology: shards, ring, sessions
        self._sessions: Dict[str, _SessionRecord] = {}
        self._ring = HashRing([], vnodes=vnodes)
        self._shards: Dict[str, _Shard] = {}

        ctx = multiprocessing.get_context(self.start_method)
        for k in range(self.n_shards):
            name = f"shard-{k}"
            init = WorkerInit(
                shard_name=name,
                record_dir=None if self.record_dir is None else str(self.record_dir),
                rim_config=rim_config,
                serve_config=self.serve_config,
                chunk_samples=self.chunk_samples,
                enable_obs=self.enable_worker_obs,
                log_level=logging.getLogger("repro").getEffectiveLevel(),
            )
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, init),
                name=f"rim-{name}",
                daemon=True,
            )
            process.start()
            child_conn.close()  # parent keeps one end; EOF then means death
            self._shards[name] = _Shard(name=name, process=process, conn=parent_conn)
            self._ring.add(name)

        obs.set_gauge("shard.shards_alive", self.n_shards)
        # Aggregate worker metrics into this process's registry at every
        # snapshot; the weakref collector detaches once the router is
        # closed or collected.
        ref = weakref.ref(self)

        def _collect() -> bool:
            router = ref()
            if router is None or router._closed:
                return False
            router.refresh_metrics()
            return True

        obs.METRICS.add_collector(_collect)
        logger.info(
            "shard fleet up: %d workers (%s start)", self.n_shards, self.start_method
        )

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def wait_ready(self, timeout_s: float = 60.0) -> None:
        """Block until every worker answers a PING (imports finished).

        Call before a timed window so worker startup (interpreter spawn,
        numpy import) is excluded from throughput measurements.
        """
        for shard in self._alive():
            self._request(shard, msg.MSG_PING, timeout=timeout_s)

    def close(self, timeout_s: float = 30.0) -> None:
        """Flush every session, stop every worker, release the pipes."""
        if self._closed:
            return
        try:
            self.flush_all()
        except ShardError:
            logger.warning("flush during close failed; shutting down anyway")
        for shard in self._alive():
            try:
                self._request(shard, msg.MSG_SHUTDOWN, timeout=timeout_s)
            except (_ShardDown, ShardError):
                pass
        self._closed = True
        for shard in self._shards.values():
            shard.process.join(timeout=timeout_s)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.alive = False
        obs.set_gauge("shard.shards_alive", 0)
        logger.info("shard fleet down")

    # -- SessionManager surface ---------------------------------------------

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def shard_of(self, name: str) -> str:
        """The shard currently owning ``name`` (for tests and tables)."""
        with self._lock:
            return self._sessions[name].owner

    def create(
        self,
        name: str,
        array: AntennaArray,
        sampling_rate: float,
        rim_config: Optional[RimConfig] = None,
        serve_config: Optional[ServeConfig] = None,
        carrier_wavelength: float = 0.0516,
    ) -> ShardSessionProxy:
        """Register a session on its ring-assigned shard.

        Per-session config overrides must match the fleet-wide configs
        the workers were spawned with (configuration is per-fleet, not
        per-session, in sharded mode).
        """
        if rim_config is not None and rim_config != self.rim_config:
            raise ShardError(
                "per-session rim_config differs from the fleet's; "
                "configure the ShardRouter instead"
            )
        if serve_config is not None and serve_config != self.serve_config:
            raise ShardError(
                "per-session serve_config differs from the fleet's; "
                "configure the ShardRouter instead"
            )
        record = _SessionRecord(
            name=name,
            owner="",
            array_manifest=array_to_manifest(array),
            sampling_rate=float(sampling_rate),
            carrier_wavelength=float(carrier_wavelength),
        )
        spec = msg.pack_json(
            {
                "array": record.array_manifest,
                "sampling_rate": record.sampling_rate,
                "carrier_wavelength": record.carrier_wavelength,
            }
        )
        with self._lock:
            if name in self._sessions:
                raise ValueError(f"session {name!r} already exists")
            self._sessions[name] = record
        try:
            self._per_session(
                name, lambda shard: self._request(shard, msg.MSG_CREATE, name, spec)
            )
        except Exception:
            with self._lock:
                self._sessions.pop(name, None)
            raise
        obs.add("shard.sessions_created")
        return ShardSessionProxy(self, name)

    def get(self, name: str) -> ShardSessionProxy:
        with self._lock:
            if name not in self._sessions:
                raise KeyError(f"unknown session {name!r}")
        return ShardSessionProxy(self, name)

    def push(
        self,
        name: str,
        packet: np.ndarray,
        timestamp: Optional[float] = None,
        provenance: Optional[SampleProvenance] = None,
    ) -> str:
        """Ship one packet to the owning shard (fire-and-forget).

        The worker applies backpressure on its side; the return value is
        always :data:`PUSH_ACCEPTED` (see :class:`ShardSessionProxy`).
        ``provenance`` does not cross the pipe — the worker mints its
        own ingest-boundary context when obs is enabled.
        """
        payload = msg.pack_data(timestamp, packet)
        self._per_session(
            name,
            lambda shard: self._send(
                shard, msg.pack_message(msg.MSG_DATA, name, 0, payload)
            ),
        )
        obs.add("serve.pushes")
        return PUSH_ACCEPTED

    def poll(self, name: str) -> List[MotionUpdate]:
        """Drain a session on its shard; return updates since last poll."""
        reply = self._per_session(
            name, lambda shard: self._request(shard, msg.MSG_POLL, name)
        )
        return self._deliver(name, reply)

    def flush(self, name: str) -> List[MotionUpdate]:
        """End-of-stream flush of one session (closes its recording)."""
        reply = self._per_session(
            name, lambda shard: self._request(shard, msg.MSG_FLUSH, name)
        )
        with self._lock:
            record = self._sessions.get(name)
            if record is not None:
                record.flushed = True
        return self._deliver(name, reply)

    def evict(self, name: str) -> List[MotionUpdate]:
        """Flush and remove one session fleet-wide."""
        reply = self._per_session(
            name, lambda shard: self._request(shard, msg.MSG_EVICT, name)
        )
        updates = self._deliver(name, reply)
        with self._lock:
            self._sessions.pop(name, None)
        return updates

    def note_repair(self, name: str, key: str, n: int = 1) -> None:
        """Forward an ingest-side repair tally (e.g. ``net_*`` faults)."""
        payload = msg.pack_json({"key": key, "n": int(n)})
        self._per_session(
            name,
            lambda shard: self._send(
                shard, msg.pack_message(msg.MSG_NOTE, name, 0, payload)
            ),
        )

    def flush_all(self) -> Dict[str, List[MotionUpdate]]:
        """Flush every session in place; returns final updates by name."""
        out: Dict[str, List[MotionUpdate]] = {}
        with self._lock:
            names = [r.name for r in self._sessions.values() if not r.flushed]
        for name in sorted(names):
            out[name] = self.flush(name)
        return out

    def stats(self) -> List[Dict[str, object]]:
        """Per-session serving-health rows across every shard.

        Rows match :meth:`SessionManager.stats` plus a ``shard`` column.
        """
        rows: List[Dict[str, object]] = []
        for shard in self._alive():
            try:
                reply = self._request(shard, msg.MSG_STATS)
            except _ShardDown as down:
                self._on_shard_death(down.shard)
                continue
            body = reply.json()
            for row in body.get("rows", []):
                row = dict(row)
                row["shard"] = body.get("shard", shard.name)
                rows.append(row)
        rows.sort(key=lambda row: str(row.get("session", "")))
        return rows

    # -- fleet operations ---------------------------------------------------

    def sync(self) -> int:
        """Durability barrier: drain every recorder tail to disk.

        Returns the number of sessions synced.  After this returns, a
        ``SIGKILL`` of any worker loses no packet offered before the
        call — the anchor of the failover bit-identity guarantee.
        """
        synced = 0
        for shard in self._alive():
            try:
                reply = self._request(shard, msg.MSG_SYNC)
            except _ShardDown as down:
                self._on_shard_death(down.shard)
                continue
            synced += int(reply.json().get("synced", 0))
        return synced

    def check_shards(self) -> List[str]:
        """Detect dead workers and fail their sessions over; returns the
        names of shards found dead on this sweep."""
        dead: List[str] = []
        for shard in self._alive():
            if not shard.process.is_alive():
                dead.append(shard.name)
                self._on_shard_death(shard)
        return dead

    def kill_shard(self, index: int, failover: bool = True) -> str:
        """SIGKILL one worker (fault injection for tests and soaks).

        With ``failover=True`` the victim's sessions are immediately
        resumed on the survivors; otherwise the death is left for the
        next pipe error or :meth:`check_shards` sweep to discover.
        """
        name = f"shard-{index}"
        with self._lock:
            shard = self._shards[name]
        if shard.process.pid is None:
            raise ShardError(f"{name} was never started")
        os.kill(shard.process.pid, signal.SIGKILL)
        shard.process.join(timeout=10.0)
        FLIGHT.record("shard_kill", "shard", shard=name)
        logger.warning("%s killed (fault injection)", name)
        if failover:
            self._on_shard_death(shard)
        return name

    def alive_shards(self) -> List[str]:
        """Names of shards currently believed alive."""
        return [shard.name for shard in self._alive()]

    def fleet_stats(self) -> Dict[str, Any]:
        """Fleet-level summary: shard liveness, placement, failovers."""
        with self._lock:
            placement: Dict[str, int] = {name: 0 for name in self._shards}
            for record in self._sessions.values():
                placement[record.owner] = placement.get(record.owner, 0) + 1
            return {
                "n_shards": self.n_shards,
                "alive": [s.name for s in self._shards.values() if s.alive],
                "n_sessions": len(self._sessions),
                "sessions_per_shard": placement,
                "failovers": self.n_failovers,
                "start_method": self.start_method,
            }

    def refresh_metrics(self) -> None:
        """Fold each worker's metric deltas into this process's registry.

        Runs as an :class:`~repro.obs.metrics.MetricsRegistry` collector
        before every snapshot; a shard whose pipe is busy is skipped
        this round rather than blocking the exporter.
        """
        if not self.enable_worker_obs:
            return
        for shard in self._alive():
            if not shard.lock.acquire(timeout=0.2):
                continue
            try:
                reply = self._roundtrip_locked(
                    shard, msg.MSG_SNAPSHOT, "", b"", self.request_timeout_s
                )
            except _ShardDown:
                continue  # the next data-path touch handles the failover
            finally:
                shard.lock.release()
            snapshot = reply.json().get("metrics", {})
            obs.METRICS.apply_snapshot(snapshot, previous=shard.last_snapshot)
            shard.last_snapshot = snapshot

    # -- internals ----------------------------------------------------------

    def _alive(self) -> List[_Shard]:
        with self._lock:
            return [shard for shard in self._shards.values() if shard.alive]

    def _owner(self, name: str) -> _Shard:
        with self._lock:
            record = self._sessions.get(name)
            if record is None:
                raise KeyError(f"unknown session {name!r}")
            if not record.owner:
                record.owner = self._assign_shard(name)
            return self._shards[record.owner]

    def _assign_shard(self, name: str) -> str:
        """Bounded-load consistent placement (call with the lock held).

        Walks the ring's preference order for ``name`` and takes the
        first live shard with spare capacity — ``ceil((n+1)/alive)``
        sessions — so small fleets stay balanced (plain consistent
        hashing can easily put every one of 4 sessions on the same of 2
        shards) while a session's placement stays a pure function of the
        ring membership and the sessions placed before it.
        """
        counts: Dict[str, int] = {
            shard.name: 0 for shard in self._shards.values() if shard.alive
        }
        if not counts:
            raise ShardError("no live shards to place a session on")
        for record in self._sessions.values():
            if record.owner in counts and not record.flushed:
                counts[record.owner] += 1
        total = sum(counts.values())
        capacity = max(1, -(-(total + 1) // len(counts)))
        for node in self._ring.preference(name):
            if counts.get(node, capacity) < capacity:
                return node
        return self._ring.assign(name)

    def _per_session(self, name: str, op: Callable[[_Shard], Any]) -> Any:
        """Run ``op`` against the session's owner, failing over on death."""
        for _ in range(self.n_shards + 1):
            shard = self._owner(name)
            try:
                return op(shard)
            except _ShardDown as down:
                self._on_shard_death(down.shard)
        raise ShardError(f"no shard could serve session {name!r}")

    def _send(self, shard: _Shard, raw: bytes) -> None:
        with shard.lock:
            if not shard.alive:
                raise _ShardDown(shard, RuntimeError("already marked dead"))
            try:
                shard.conn.send_bytes(raw)
            except _PIPE_ERRORS as exc:
                raise _ShardDown(shard, exc) from exc

    def _request(
        self,
        shard: _Shard,
        msg_type: int,
        name: str = "",
        payload: bytes = b"",
        timeout: Optional[float] = None,
    ) -> msg.ShardMessage:
        timeout = self.request_timeout_s if timeout is None else timeout
        with shard.lock:
            if not shard.alive:
                raise _ShardDown(shard, RuntimeError("already marked dead"))
            return self._roundtrip_locked(shard, msg_type, name, payload, timeout)

    def _roundtrip_locked(
        self, shard: _Shard, msg_type: int, name: str, payload: bytes, timeout: float
    ) -> msg.ShardMessage:
        shard.seq += 1
        seq = shard.seq
        try:
            shard.conn.send_bytes(msg.pack_message(msg_type, name, seq, payload))
            if not shard.conn.poll(timeout):
                if not shard.process.is_alive():
                    raise _ShardDown(
                        shard, RuntimeError("worker process exited")
                    )
                raise ShardError(
                    f"{shard.name}: no reply to {msg.msg_name(msg_type)} "
                    f"within {timeout:.0f}s"
                )
            raw = shard.conn.recv_bytes()
        except _PIPE_ERRORS as exc:
            raise _ShardDown(shard, exc) from exc
        reply = msg.unpack_message(raw, where=shard.name)
        if reply.seq != seq:
            raise ShardError(
                f"{shard.name}: reply seq {reply.seq} != request seq {seq} "
                "(pipe protocol violation)"
            )
        if reply.msg_type == msg.MSG_ERROR:
            body = reply.json()
            kind = body.get("kind", "")
            error = body.get("error", "shard error")
            if kind == "KeyError":
                raise KeyError(error)
            if kind == "ValueError":
                raise ValueError(error)
            raise ShardError(f"{shard.name}: {kind}: {error}")
        return reply

    def _deliver(self, name: str, reply: msg.ShardMessage) -> List[MotionUpdate]:
        updates = msg.unpack_updates(reply.payload)
        if updates:
            with self._lock:
                record = self._sessions.get(name)
                if record is not None:
                    record.delivered += len(updates)
        return updates

    def _on_shard_death(self, shard: _Shard) -> None:
        """Mark a shard dead and resume its sessions on the survivors."""
        with self._lock:
            if not shard.alive:
                return
            shard.alive = False
            self.n_failovers += 1
            if shard.name in self._ring:
                self._ring.remove(shard.name)
            try:
                shard.conn.close()
            except OSError:
                pass
            victims = [
                record
                for record in self._sessions.values()
                if record.owner == shard.name and not record.flushed
            ]
            survivors = [s for s in self._shards.values() if s.alive]
            obs.set_gauge("shard.shards_alive", len(survivors))
            obs.add("shard.failovers")
            FLIGHT.record(
                "shard_death", "shard", shard=shard.name,
                sessions=[record.name for record in victims],
            )
            FLIGHT.auto_dump(f"shard-death-{shard.name}")
            if not survivors:
                raise ShardError(
                    f"{shard.name} died and no shards survive; fleet lost"
                )
            if victims and self.record_dir is None:
                raise ShardError(
                    f"{shard.name} died holding {len(victims)} sessions but the "
                    "fleet has no record_dir; sessions are unrecoverable"
                )
            logger.warning(
                "%s died; resuming %d sessions on %d survivors",
                shard.name, len(victims), len(survivors),
            )
            for record in victims:
                self._adopt(record)

    def _adopt(self, record: _SessionRecord) -> None:
        """Resume one victim session on a ring-chosen survivor."""
        assert self.record_dir is not None
        record.generation += 1
        stores = [str(self.record_dir / record.name)] + [
            str(self.record_dir / f"{record.name}@g{g}")
            for g in range(1, record.generation)
        ]
        spec = msg.pack_json(
            {
                "stores": stores,
                "skip_updates": record.delivered,
                "generation": record.generation,
                "array": record.array_manifest,
                "sampling_rate": record.sampling_rate,
                "carrier_wavelength": record.carrier_wavelength,
            }
        )
        while True:
            target_name = self._assign_shard(record.name)
            target = self._shards[target_name]
            try:
                reply = self._request(target, msg.MSG_ADOPT, record.name, spec)
            except _ShardDown as down:
                self._on_shard_death(down.shard)
                continue
            body = reply.json()
            record.owner = target_name
            obs.add("shard.sessions_adopted")
            logger.info(
                "session %s resumed on %s (gen %d): %s packets replayed, "
                "%s updates queued",
                record.name, target_name, record.generation,
                body.get("n_ingested"), body.get("n_queued"),
            )
            return


def fleet_sync_loop(
    router: ShardRouter,
    interval_s: float,
    should_stop: Callable[[], bool],
) -> threading.Thread:
    """Start a housekeeping thread: periodic :meth:`ShardRouter.sync` +
    :meth:`ShardRouter.check_shards` until ``should_stop()``.

    Long-running fronts (``net-serve --shards``) use this so the
    durability barrier advances and dead workers are noticed even when
    no request traffic touches them.
    """

    def _loop() -> None:
        while not should_stop():
            time.sleep(interval_s)
            if should_stop():
                return
            try:
                router.check_shards()
                router.sync()
            except ShardError:
                logger.exception("fleet housekeeping failed")
                return

    thread = threading.Thread(target=_loop, name="rim-fleet-sync", daemon=True)
    thread.start()
    return thread
