"""Bench: Fig. 4 — spatial resolution of TRRS (self- and cross-antenna)."""

from repro.eval.experiments import run_fig4_trrs_resolution
from repro.eval.report import print_report


def test_fig4_trrs_resolution(benchmark, quick):
    result = benchmark.pedantic(
        run_fig4_trrs_resolution, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 4 — TRRS spatial resolution", result)
    m = result["measured"]
    # Shape: self-TRRS visibly drops within 5 mm; the cross-antenna peak
    # sits at the physical antenna separation.
    assert m["self_drop_within_5mm"] > 0.02
    assert abs(m["cross_peak_at_mm"] - m["expected_peak_mm"]) < 6.0
    assert m["cross_peak_value"] > 0.3
