"""Integration tests for the application layer (§6.3)."""

import numpy as np
import pytest

from repro.apps.gesture import GestureDetection, GestureRecognizer, _nearest_gesture
from repro.apps.handwriting import handwriting_config, summarize, write_letter
from repro.core.config import RimConfig
from repro.core.motion import MotionEstimate
from repro.core.movement import MovementResult
from repro.core.rim import Rim, RimResult
from repro.motionsim.gestures import (
    GESTURES,
    GestureProfile,
    gesture_direction_deg,
    gesture_trajectory,
)
from repro.motionsim.handwriting import (
    available_letters,
    handwriting_trajectory,
    letter_waypoints,
    word_trajectories,
)


class TestHandwritingStrokes:
    def test_letters_available(self):
        letters = available_letters()
        assert "R" in letters
        assert "I" in letters
        assert len(letters) >= 10

    def test_waypoints_scaled(self):
        pts = letter_waypoints("I", height=0.2, origin=(1.0, 2.0))
        assert pts[:, 1].min() >= 2.0
        assert pts[:, 1].max() <= 2.0 + 0.2 + 1e-9
        assert pts[:, 0].min() >= 1.0

    def test_unknown_letter_rejected(self):
        with pytest.raises(ValueError):
            letter_waypoints("!")

    def test_case_insensitive(self):
        np.testing.assert_allclose(letter_waypoints("r"), letter_waypoints("R"))

    def test_trajectory_positive_length(self):
        traj = handwriting_trajectory("M", origin=(0, 0), pen_speed=0.3)
        assert traj.total_distance > 0.4

    def test_word_trajectories_advance(self):
        trajs = word_trajectories("RIM", origin=(0, 0))
        assert len(trajs) == 3
        x_starts = [t.positions[:, 0].min() for t in trajs]
        assert x_starts[0] < x_starts[1] < x_starts[2]

    def test_handwriting_config_scales_window(self):
        slow = handwriting_config(0.1, 200.0)
        fast = handwriting_config(1.0, 200.0)
        assert slow.max_lag > fast.max_lag


class TestGestureMotion:
    def test_gesture_directions(self):
        assert gesture_direction_deg("right") == 0.0
        assert gesture_direction_deg("up") == 90.0
        with pytest.raises(ValueError):
            gesture_direction_deg("diagonal")

    def test_trajectory_returns_to_start(self, rng):
        traj = gesture_trajectory("left", start=(2.0, 2.0), rng=rng)
        np.testing.assert_allclose(traj.positions[0], [2.0, 2.0], atol=1e-9)
        np.testing.assert_allclose(traj.positions[-1], [2.0, 2.0], atol=1e-6)

    def test_unknown_gesture_rejected(self, rng):
        with pytest.raises(ValueError):
            gesture_trajectory("wave", rng=rng)

    def test_variability(self):
        rng = np.random.default_rng(0)
        d1 = gesture_trajectory("up", rng=rng).total_distance
        d2 = gesture_trajectory("up", rng=rng).total_distance
        assert d1 != d2


class TestGestureRecognizer:
    def _result_with_heading(self, heading_seq, fs=100.0):
        t = len(heading_seq)
        motion = MotionEstimate(
            times=np.arange(t) / fs,
            moving=np.ones(t, dtype=bool),
            speed=np.full(t, 0.5),
            heading=np.asarray(heading_seq, dtype=float),
            group_choice=np.zeros(t, dtype=np.int64),
        )
        movement = MovementResult(
            indicator=np.zeros(t), moving=motion.moving, threshold=0.9
        )
        return RimResult(motion=motion, movement=movement, group_tracks=[])

    def test_out_and_back_detected(self):
        heading = [0.0] * 30 + [np.pi] * 30
        detections = GestureRecognizer().recognize(self._result_with_heading(heading))
        assert len(detections) == 1
        assert detections[0].gesture == "right"

    def test_one_way_motion_rejected(self):
        heading = [0.0] * 60
        detections = GestureRecognizer().recognize(self._result_with_heading(heading))
        assert detections == []

    def test_up_gesture(self):
        heading = [np.pi / 2] * 30 + [-np.pi / 2] * 30
        detections = GestureRecognizer().recognize(self._result_with_heading(heading))
        assert detections and detections[0].gesture == "up"

    def test_short_episode_ignored(self):
        heading = [0.0] * 3 + [np.pi] * 3
        detections = GestureRecognizer(min_samples=10).recognize(
            self._result_with_heading(heading)
        )
        assert detections == []

    def test_nearest_gesture(self):
        label, err = _nearest_gesture(np.deg2rad(85.0))
        assert label == "up"
        assert err == pytest.approx(np.deg2rad(5.0), abs=1e-9)

    def test_end_to_end_recognition(self, fast_sampler, l_array):
        """Simulated gesture through the full pipeline (Fig. 19)."""
        rng = np.random.default_rng(11)
        rim = Rim(RimConfig(max_lag=50))
        hits = 0
        cases = [("right", 0), ("up", 1)]
        for gesture, k in cases:
            traj = gesture_trajectory(
                gesture,
                start=(10.0, 8.0),
                profile=GestureProfile(direction_jitter_deg=2.0),
                rng=rng,
            )
            trace = fast_sampler.sample(traj, l_array)
            detections = GestureRecognizer().recognize(rim.process(trace))
            if detections and detections[0].gesture == gesture:
                hits += 1
        assert hits >= 1  # at least one of two small-scale gestures lands


class TestHandwritingApp:
    def test_write_letter_metrics(self, fast_sampler, hexagon):
        result = write_letter(
            fast_sampler,
            hexagon,
            "I",
            origin=(10.0, 8.0),
            height=0.25,
            pen_speed=0.25,
        )
        assert result.letter == "I"
        assert result.errors.shape[0] == result.estimated.shape[0]
        assert result.mean_error < 0.25

    def test_summarize(self, fast_sampler, hexagon):
        r = write_letter(
            fast_sampler, hexagon, "L", origin=(10.0, 8.0), pen_speed=0.25
        )
        stats = summarize([r])
        assert "median" in stats
        assert stats["per_letter_mean"]["L"] == r.mean_error

    def test_summarize_empty(self):
        stats = summarize([])
        assert np.isnan(stats["median"])
