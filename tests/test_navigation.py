"""Tests for closed-loop AGV waypoint navigation."""

import numpy as np
import pytest

from repro.apps.navigation import WaypointNavigator, _update_displacement
from repro.core.config import RimConfig
from repro.core.streaming import MotionUpdate


class TestUpdateDisplacement:
    def _update(self, speed, heading, moving=None, fs=100.0):
        t = len(speed)
        return MotionUpdate(
            times=np.arange(t) / fs,
            speed=np.asarray(speed, dtype=float),
            heading=np.asarray(heading, dtype=float),
            moving=np.ones(t, dtype=bool) if moving is None else moving,
            block_distance=0.0,
            total_distance=0.0,
        )

    def test_straight_east(self):
        u = self._update([1.0] * 101, [0.0] * 101)
        d = _update_displacement(u)
        assert d[0] == pytest.approx(1.0, rel=1e-6)
        assert d[1] == pytest.approx(0.0, abs=1e-9)

    def test_heading_hold_through_nan(self):
        heading = [0.0] * 50 + [np.nan] * 51
        u = self._update([1.0] * 101, heading)
        d = _update_displacement(u)
        assert d[0] == pytest.approx(1.0, rel=1e-6)

    def test_static_zero(self):
        u = self._update([0.0] * 11, [np.nan] * 11, moving=np.zeros(11, dtype=bool))
        np.testing.assert_allclose(_update_displacement(u), 0.0)


class TestNavigator:
    @pytest.fixture(scope="class")
    def navigator(self, fast_sampler, hexagon):
        return WaypointNavigator(
            fast_sampler,
            hexagon,
            config=RimConfig(max_lag=50),
            rng=np.random.default_rng(3),
        )

    def test_reaches_single_waypoint(self, navigator):
        result = navigator.navigate(
            start=(10.0, 8.0), waypoints=[(12.0, 8.0)], max_steps=40
        )
        assert result.reached[0]
        assert result.arrival_errors[0] < 0.8

    def test_believed_tracks_truth(self, navigator):
        result = navigator.navigate(
            start=(10.0, 8.0), waypoints=[(12.0, 8.0)], max_steps=40
        )
        gap = np.linalg.norm(result.true_path[-1] - result.believed_path[-1])
        assert gap < 0.8

    def test_step_budget_respected(self, navigator):
        result = navigator.navigate(
            start=(10.0, 8.0), waypoints=[(50.0, 50.0)], max_steps=5
        )
        assert not result.reached[0]
        assert np.isnan(result.arrival_errors[0])
        assert result.true_path.shape[0] <= 6

    def test_paths_recorded(self, navigator):
        result = navigator.navigate(
            start=(10.0, 8.0), waypoints=[(11.0, 8.0)], max_steps=20
        )
        assert result.true_path.shape == result.believed_path.shape
        assert result.total_true_distance > 0.5
