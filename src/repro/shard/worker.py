"""Shard worker: one process, one :class:`~repro.serve.session.SessionManager`.

:func:`shard_worker_main` is the module-level entry point the router
spawns (picklable, so the ``spawn`` start method works).  It owns a
private ``SessionManager`` — and therefore private estimator state, a
private GIL, and a private :mod:`repro.obs` registry — and services one
request at a time off its pipe in FIFO order, so a round-trip's reply is
always the next record the router reads.

Two request families matter beyond plain session plumbing:

* **SYNC** drains every session recorder's in-memory tail to disk as a
  short chunk (``TraceWriter.flush(partial=True)``), establishing the
  durability barrier the failover bit-identity guarantee is anchored to:
  after a sync, even ``SIGKILL`` loses nothing that was offered before it.
* **ADOPT** resumes a dead shard's session from its ingest recording:
  replay the store (and any prior failover generations) through a
  :class:`~repro.store.checkpoint.CheckpointedReplayer` with the tail
  *unflushed*, transplant the replayed stream into a fresh session
  (:meth:`~repro.serve.session.ServeSession.adopt`), and keep recording
  into a new generation directory so a second failover can repeat the
  trick.
"""

from __future__ import annotations

import logging
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import obs
from repro.core.config import RimConfig
from repro.core.streaming import MotionUpdate
from repro.io import array_from_manifest
from repro.serve.session import ServeConfig, ServeSession, SessionManager
from repro.shard import messages as msg
from repro.store.checkpoint import CheckpointedReplayer
from repro.store.reader import TraceReader
from repro.store.writer import TraceWriter

logger = logging.getLogger(__name__)

# Short chunks bound what a SIGKILL can lose between syncs to < 1 s of
# tail at typical CSI rates, at a small file-count cost.
SHARD_CHUNK_SAMPLES = 64


@dataclass
class WorkerInit:
    """Everything a spawned worker needs (picklable, crosses exec).

    Attributes:
        shard_name: This worker's id (``shard-K``), used in logs/metrics.
        record_dir: Shared ingest-recording root (all shards write
            distinct per-session subdirectories of the same root, so any
            survivor can replay any victim's recording).  None disables
            recording — and with it, failover resume.
        rim_config: Default estimator config for this shard's sessions.
        serve_config: Default serving config for this shard's sessions.
        chunk_samples: Packets per recorded chunk file.
        enable_obs: Start the worker with :mod:`repro.obs` collection on
            (the router then aggregates SNAPSHOT deltas).
        log_level: Root ``repro`` logger level for the worker process.
    """

    shard_name: str
    record_dir: Optional[str] = None
    rim_config: Optional[RimConfig] = None
    serve_config: ServeConfig = field(default_factory=ServeConfig)
    chunk_samples: int = SHARD_CHUNK_SAMPLES
    enable_obs: bool = False
    log_level: int = logging.WARNING


def shard_worker_main(conn, init: WorkerInit) -> None:
    """Worker process entry point: serve shard requests until SHUTDOWN."""
    logging.getLogger("repro").setLevel(init.log_level)
    if threading.current_thread() is threading.main_thread():
        # The router coordinates shutdown; a terminal Ctrl-C must not
        # kill workers before the router drains and flushes them.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    # A forked worker inherits the parent's metric values; start from a
    # clean registry so SNAPSHOT deltas count only this shard's work.
    obs.reset()
    if init.enable_obs:
        obs.enable()
    else:
        obs.disable()
    worker = _ShardWorker(conn, init)
    worker.serve_forever()


class _ShardWorker:
    """The in-process half of one shard: manager + message loop."""

    def __init__(self, conn, init: WorkerInit):
        self.conn = conn
        self.init = init
        self.manager = SessionManager(
            rim_config=init.rim_config,
            serve_config=init.serve_config,
            record_dir=init.record_dir,
            record_chunk_samples=init.chunk_samples,
        )
        self._flushed: Dict[str, bool] = {}

    # -- loop ---------------------------------------------------------------

    def serve_forever(self) -> None:
        while True:
            try:
                raw = self.conn.recv_bytes()
            except (EOFError, OSError):
                # Router gone: nothing to reply to; make recordings
                # durable so a new router can still adopt our sessions.
                self._sync_all()
                break
            try:
                request = msg.unpack_message(raw, where=self.init.shard_name)
            except msg.ShardProtocolError as exc:
                logger.error("%s: dropping bad record: %s", self.init.shard_name, exc)
                continue
            if request.msg_type == msg.MSG_SHUTDOWN:
                self._handle_shutdown(request)
                break
            try:
                self._dispatch(request)
            except Exception as exc:  # reply, never die mid-protocol
                logger.exception(
                    "%s: %s %r failed", self.init.shard_name,
                    msg.msg_name(request.msg_type), request.name,
                )
                if not msg.is_fire_and_forget(request.msg_type):
                    self._reply(
                        msg.MSG_ERROR, request,
                        msg.pack_json(
                            {"error": str(exc), "kind": type(exc).__name__}
                        ),
                    )
        self.conn.close()

    def _reply(self, msg_type: int, request: msg.ShardMessage, payload: bytes) -> None:
        self.conn.send_bytes(
            msg.pack_message(msg_type, request.name, request.seq, payload)
        )

    def _ok(self, request: msg.ShardMessage, obj: Dict[str, Any]) -> None:
        self._reply(msg.MSG_OK, request, msg.pack_json(obj))

    def _dispatch(self, request: msg.ShardMessage) -> None:
        handler = {
            msg.MSG_PING: self._handle_ping,
            msg.MSG_CREATE: self._handle_create,
            msg.MSG_DATA: self._handle_data,
            msg.MSG_POLL: self._handle_poll,
            msg.MSG_FLUSH: self._handle_flush,
            msg.MSG_STATS: self._handle_stats,
            msg.MSG_SNAPSHOT: self._handle_snapshot,
            msg.MSG_SYNC: self._handle_sync,
            msg.MSG_ADOPT: self._handle_adopt,
            msg.MSG_NOTE: self._handle_note,
            msg.MSG_EVICT: self._handle_evict,
        }.get(request.msg_type)
        if handler is None:
            raise msg.ShardProtocolError(
                f"unexpected request {msg.msg_name(request.msg_type)}"
            )
        handler(request)

    # -- handlers -----------------------------------------------------------

    def _handle_ping(self, request: msg.ShardMessage) -> None:
        self._ok(
            request,
            {"shard": self.init.shard_name, "sessions": len(self.manager)},
        )

    def _handle_create(self, request: msg.ShardMessage) -> None:
        spec = request.json()
        self.manager.create(
            request.name,
            array_from_manifest(spec["array"]),
            float(spec["sampling_rate"]),
            carrier_wavelength=float(spec.get("carrier_wavelength", 0.0516)),
        )
        self._flushed[request.name] = False
        self._ok(request, {"shard": self.init.shard_name})

    def _handle_data(self, request: msg.ShardMessage) -> None:
        timestamp, packet = msg.unpack_data(request.payload)
        self.manager.push(request.name, packet, timestamp)

    def _handle_poll(self, request: msg.ShardMessage) -> None:
        updates = self.manager.poll(request.name)
        self._reply(msg.MSG_UPDATES, request, msg.pack_updates(updates))

    def _handle_flush(self, request: msg.ShardMessage) -> None:
        updates = self.manager.get(request.name).flush()
        self._flushed[request.name] = True
        self._reply(msg.MSG_UPDATES, request, msg.pack_updates(updates))

    def _handle_evict(self, request: msg.ShardMessage) -> None:
        updates = self.manager.evict(request.name)
        self._flushed.pop(request.name, None)
        self._reply(msg.MSG_UPDATES, request, msg.pack_updates(updates))

    def _handle_note(self, request: msg.ShardMessage) -> None:
        note = request.json()
        self.manager.get(request.name).note_repair(
            str(note["key"]), int(note.get("n", 1))
        )

    def _handle_stats(self, request: msg.ShardMessage) -> None:
        self._ok(
            request,
            {"shard": self.init.shard_name, "rows": self.manager.stats()},
        )

    def _handle_snapshot(self, request: msg.ShardMessage) -> None:
        self._ok(
            request,
            {"shard": self.init.shard_name, "metrics": obs.METRICS.snapshot()},
        )

    def _handle_sync(self, request: msg.ShardMessage) -> None:
        self._ok(request, {"synced": self._sync_all()})

    def _handle_shutdown(self, request: msg.ShardMessage) -> None:
        for name in self.manager.names():
            if not self._flushed.get(name, False):
                try:
                    self.manager.get(name).flush()
                except Exception:
                    logger.exception(
                        "%s: flush of %s failed at shutdown",
                        self.init.shard_name, name,
                    )
        self._ok(
            request,
            {"shard": self.init.shard_name, "rows": self.manager.stats()},
        )

    def _sync_all(self) -> int:
        synced = 0
        for name in self.manager.names():
            try:
                session = self.manager.get(name)
            except KeyError:
                continue
            if session.recorder is not None and not self._flushed.get(name, False):
                session.drain()  # record-on-ingest already ran; drain estimator
                session.recorder.flush(partial=True)
                synced += 1
        return synced

    # -- failover adoption --------------------------------------------------

    def _handle_adopt(self, request: msg.ShardMessage) -> None:
        spec = request.json()
        name = request.name
        stores = [Path(p) for p in spec["stores"]]
        skip_updates = int(spec.get("skip_updates", 0))
        generation = int(spec.get("generation", 1))
        live = [p for p in stores if (p / "manifest.json").exists()]
        if not live:
            # The victim died before recording anything durable; start the
            # session from scratch (nothing to lose: no packet survived).
            self.manager.create(
                name,
                array_from_manifest(spec["array"]),
                float(spec["sampling_rate"]),
                carrier_wavelength=float(spec.get("carrier_wavelength", 0.0516)),
            )
            self._flushed[name] = False
            self._ok(
                request,
                {"shard": self.init.shard_name, "n_ingested": 0,
                 "n_replayed_updates": 0, "n_queued": 0},
            )
            return

        reader = TraceReader(live[0], policy="repair")
        try:
            replayer = CheckpointedReplayer(
                reader,
                config=self.init.rim_config,
                block_seconds=self.init.serve_config.block_seconds,
            )
            # flush=False: the session keeps streaming after adoption; a
            # flush here would emit the tail block early and diverge
            # from an uninterrupted run.
            updates = replayer.run(flush=False)
            n_ingested = reader.n_samples
            last_time = replayer.state_dict()["last_time"]
            repairs: Dict[str, int] = {}
            updates, n_more, last_time = self._replay_generations(
                live[1:], replayer, updates, last_time, repairs
            )
            n_ingested += n_more

            recorder = None
            if self.init.record_dir is not None:
                recorder = TraceWriter(
                    Path(self.init.record_dir) / f"{name}@g{generation}",
                    reader.array,
                    carrier_wavelength=reader.carrier_wavelength,
                    chunk_samples=self.init.chunk_samples,
                    sampling_rate=reader.sampling_rate,
                )
            session = ServeSession(
                name,
                reader.array,
                reader.sampling_rate,
                rim_config=self.init.rim_config,
                serve_config=self.init.serve_config,
                carrier_wavelength=reader.carrier_wavelength,
                recorder=recorder,
            )
            n_queued = session.adopt(
                replayer.stream, n_ingested, updates, skip_updates
            )
            for key, value in repairs.items():
                session.note_repair(key, value)
            self.manager.register(session)
            self._flushed[name] = False
        finally:
            reader.close()
        logger.info(
            "%s adopted session %s: %d packets replayed, %d updates "
            "regenerated, %d queued (skip %d)",
            self.init.shard_name, name, n_ingested,
            len(updates), n_queued, skip_updates,
        )
        self._ok(
            request,
            {"shard": self.init.shard_name, "n_ingested": n_ingested,
             "n_replayed_updates": len(updates), "n_queued": n_queued},
        )

    def _replay_generations(
        self,
        stores: List[Path],
        replayer: CheckpointedReplayer,
        updates: List[MotionUpdate],
        last_time: Optional[float],
        repairs: Dict[str, int],
    ):
        """Continue the replayed stream through later failover generations."""
        updates = list(updates)
        n_extra = 0
        for root in stores:
            reader = TraceReader(root, policy="repair")
            try:
                for key, value in reader.report.repairs().items():
                    repairs[key] = repairs.get(key, 0) + value
                for record in reader.iter_chunks(last_time=last_time):
                    for key, value in record.repairs.items():
                        repairs[key] = repairs.get(key, 0) + value
                    for k in range(record.times.size):
                        update = replayer.stream.push(
                            record.data[k], float(record.times[k])
                        )
                        if update is not None:
                            updates.append(update)
                    if record.times.size:
                        last_time = float(record.times[-1])
                    n_extra += record.times.size
            finally:
                reader.close()
        return updates, n_extra, last_time
