"""Gesture detection and recognition (§6.3.2, Fig. 19).

A pointer-like unit with an L-shaped 3-antenna array senses out-and-back
hand gestures: the outward stroke aligns one antenna pair with one lag
sign, the return stroke flips the sign.  The recognizer looks for exactly
that signature in the RIM motion estimate — a movement episode whose
heading sequence contains a direction followed by (approximately) its
opposite — and classifies by the outward direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.rim import RimResult
from repro.eval.metrics import circular_mean
from repro.motionsim.gestures import GESTURES, gesture_direction_deg


@dataclass
class GestureDetection:
    """One recognized gesture.

    Attributes:
        gesture: Classified label ("left"/"right"/"up"/"down").
        outward_heading: Mean device-frame heading of the outward stroke.
        start_index, stop_index: Sample span of the movement episode.
    """

    gesture: str
    outward_heading: float
    start_index: int
    stop_index: int


class GestureRecognizer:
    """Classifies RIM motion estimates into the paper's 4-gesture set."""

    def __init__(
        self,
        max_direction_error_deg: float = 46.0,
        min_samples: int = 10,
        merge_gap_seconds: float = 0.4,
    ):
        """
        Args:
            max_direction_error_deg: Reject episodes whose outward heading
                is farther than this from every canonical gesture direction
                (false-trigger guard; the L-array resolves 4 directions at
                90° spacing, so 46° accepts everything it can express).
            min_samples: Minimum moving samples for a valid episode.
            merge_gap_seconds: Movement episodes separated by a pause
                shorter than this merge into one gesture — the hand stops
                for an instant at the out/back reversal, and splitting
                there would classify the return stroke as its own gesture.
        """
        self.max_direction_error_deg = max_direction_error_deg
        self.min_samples = min_samples
        self.merge_gap_seconds = merge_gap_seconds

    def recognize(self, result: RimResult) -> List[GestureDetection]:
        """Extract gestures from one RIM result.

        Returns:
            Detections in temporal order (empty when nothing qualifies).
        """
        moving = result.motion.moving
        heading = result.motion.heading
        times = result.motion.times
        fs = (
            (times.size - 1) / (times[-1] - times[0])
            if times.size > 1
            else 1.0
        )
        merge_gap = max(1, int(round(self.merge_gap_seconds * fs)))
        episodes = _merge_episodes(list(_episodes(moving)), merge_gap)

        detections: List[GestureDetection] = []
        for start, stop in episodes:
            if stop - start < self.min_samples:
                continue
            det = self._classify_episode(heading[start:stop], start, stop)
            if det is not None:
                detections.append(det)
        return detections

    def _classify_episode(
        self, heading: np.ndarray, start: int, stop: int
    ) -> Optional[GestureDetection]:
        finite = np.isfinite(heading)
        if finite.sum() < self.min_samples // 2:
            return None
        valid = heading[finite]

        # Split out/back strokes at a large heading jump (the reversal).
        # Among all >120° jumps, prefer the most *balanced* split: a single
        # glitched heading sample at the episode border also produces a
        # 180° jump, but it splits 1-vs-rest and must not win.
        diffs = np.abs(np.angle(np.exp(1j * np.diff(valid))))
        if diffs.size == 0:
            return None
        candidates = np.nonzero(diffs >= np.deg2rad(120.0))[0]
        if candidates.size == 0:
            return None  # no return stroke — not an out-and-back gesture
        splits = candidates + 1
        balance = np.minimum(splits, valid.size - splits)
        flip = int(splits[int(np.argmax(balance))])
        outward = circular_mean(valid[:flip])
        backward = circular_mean(valid[flip:])
        if not np.isfinite(outward) or not np.isfinite(backward):
            return None
        # Confidence gate: both strokes must be internally coherent.  In
        # hostile spots the heading flaps; better to miss (the user simply
        # repeats the gesture, §6.3.2) than to trigger the wrong action.
        for segment in (valid[:flip], valid[flip:]):
            resultant = np.abs(np.mean(np.exp(1j * segment)))
            if resultant < 0.55:
                return None
        opposition = np.abs(np.angle(np.exp(1j * (outward - backward - np.pi))))
        if opposition > np.deg2rad(60.0):
            return None

        label, err = _nearest_gesture(outward)
        if err > np.deg2rad(self.max_direction_error_deg):
            return None
        return GestureDetection(
            gesture=label, outward_heading=outward, start_index=start, stop_index=stop
        )


def _merge_episodes(episodes, max_gap: int):
    """Merge movement episodes separated by fewer than ``max_gap`` samples."""
    if not episodes:
        return []
    merged = [list(episodes[0])]
    for start, stop in episodes[1:]:
        if start - merged[-1][1] <= max_gap:
            merged[-1][1] = stop
        else:
            merged.append([start, stop])
    return [tuple(e) for e in merged]


def _episodes(moving: np.ndarray):
    """Yield (start, stop) spans of contiguous movement."""
    t = moving.size
    k = 0
    while k < t:
        if not moving[k]:
            k += 1
            continue
        start = k
        while k < t and moving[k]:
            k += 1
        yield start, k


def _nearest_gesture(heading: float):
    """Closest canonical gesture direction and the angular error to it."""
    best, best_err = None, np.inf
    for gesture in GESTURES:
        target = np.deg2rad(gesture_direction_deg(gesture))
        err = float(np.abs(np.angle(np.exp(1j * (heading - target)))))
        if err < best_err:
            best, best_err = gesture, err
    return best, best_err
