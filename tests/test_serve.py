"""Tests for the concurrent multi-session serving layer (repro.serve)."""

import threading

import numpy as np
import pytest

from repro import obs
from repro.core.config import RimConfig
from repro.core.streaming import StreamingRim
from repro.motionsim.profiles import line_trajectory
from repro.serve import (
    PUSH_ACCEPTED,
    PUSH_BLOCKED,
    PUSH_REJECTED,
    PUSH_SHED_OLDEST,
    ParallelRunner,
    ServeConfig,
    SessionManager,
    render_serve_table,
    run_serve_sim,
)


@pytest.fixture(scope="module")
def serve_traces(fast_sampler, three_antenna):
    """Three short receiver traces with distinct start points/headings."""
    spots = [((10.0, 8.0), 0.0), ((12.0, 9.0), 20.0), ((14.0, 10.0), -15.0)]
    traces = []
    for (spot, heading) in spots:
        traj = line_trajectory(spot, heading, 0.5, 1.5)
        traces.append(fast_sampler.sample(traj, three_antenna))
    return traces


def _packet():
    return np.ones((3, 2, 8), dtype=np.complex64)


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServeConfig(backpressure="explode")
        with pytest.raises(ValueError):
            ServeConfig(ttl_seconds=0.0)
        with pytest.raises(ValueError):
            ServeConfig(block_seconds=-1.0)


class TestBackpressure:
    """Each shed policy: statuses, counters, and a bounded queue."""

    def _manager(self, policy, capacity=4, block_seconds=10.0):
        cfg = ServeConfig(
            queue_capacity=capacity,
            backpressure=policy,
            block_seconds=block_seconds,
        )
        return SessionManager(serve_config=cfg)

    def test_drop_oldest_sheds_and_bounds_queue(self, three_antenna):
        mgr = self._manager("drop_oldest")
        s = mgr.create("a", three_antenna, 100.0)
        statuses = [mgr.push("a", _packet(), k / 100.0) for k in range(10)]
        assert statuses[:4] == [PUSH_ACCEPTED] * 4
        assert statuses[4:] == [PUSH_SHED_OLDEST] * 6
        assert s.queue_depth == 4
        assert s.n_shed == 6
        assert s.n_rejected == 0

    def test_drop_oldest_keeps_newest_packets(self, three_antenna):
        mgr = self._manager("drop_oldest")
        s = mgr.create("a", three_antenna, 100.0)
        for k in range(10):
            mgr.push("a", _packet(), k / 100.0)
        queued_times = [t for _, t, _ in s._queue]
        assert queued_times == [k / 100.0 for k in range(6, 10)]

    def test_reject_refuses_when_full(self, three_antenna):
        mgr = self._manager("reject")
        s = mgr.create("a", three_antenna, 100.0)
        statuses = [mgr.push("a", _packet(), k / 100.0) for k in range(7)]
        assert statuses == [PUSH_ACCEPTED] * 4 + [PUSH_REJECTED] * 3
        assert s.n_rejected == 3
        assert s.queue_depth == 4
        # Rejected packets are gone: the queue still holds the first four.
        assert [t for _, t, _ in s._queue] == [k / 100.0 for k in range(4)]

    def test_block_drains_through_the_estimator(self, three_antenna):
        # Small blocks so the drain actually processes full blocks.
        mgr = self._manager("block", capacity=8, block_seconds=0.1)
        s = mgr.create("a", three_antenna, 100.0)
        statuses = [mgr.push("a", _packet(), k / 100.0) for k in range(12)]
        assert statuses[8] == PUSH_BLOCKED
        assert s.n_blocked >= 1
        assert s.n_processed >= 8
        assert s.queue_depth <= 8
        assert s.block_wait_s >= 0.0

    def test_shed_counters_reach_health(self, fast_sampler, three_antenna):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 1.5)
        trace = fast_sampler.sample(traj, three_antenna)
        cfg = ServeConfig(
            queue_capacity=100, backpressure="drop_oldest", block_seconds=0.25
        )
        mgr = SessionManager(
            rim_config=RimConfig(max_lag=40), serve_config=cfg
        )
        mgr.create("rx", three_antenna, trace.sampling_rate,
                   carrier_wavelength=trace.carrier_wavelength)
        for k in range(trace.n_samples):
            mgr.push("rx", trace.data[k], float(trace.times[k]))
        updates = mgr.evict("rx")
        assert updates
        shed = sum(
            u.health.repairs.get("queue_shed_oldest", 0)
            for u in updates
            if u.health is not None
        )
        assert shed == trace.n_samples - 100


class TestSessionManager:
    def test_duplicate_create_rejected(self, three_antenna):
        mgr = SessionManager()
        mgr.create("a", three_antenna, 100.0)
        with pytest.raises(ValueError):
            mgr.create("a", three_antenna, 100.0)

    def test_unknown_session_raises(self, three_antenna):
        mgr = SessionManager()
        with pytest.raises(KeyError):
            mgr.push("ghost", _packet())
        with pytest.raises(KeyError):
            mgr.evict("ghost")

    def test_push_poll_matches_direct_stream(self, serve_traces):
        """The queue in front of the estimator must not change estimates."""
        trace = serve_traces[0]
        cfg = RimConfig(max_lag=50)
        direct = StreamingRim(
            trace.array, trace.sampling_rate, cfg, block_seconds=0.5,
            carrier_wavelength=trace.carrier_wavelength,
        )
        for k in range(trace.n_samples):
            direct.push(trace.data[k], float(trace.times[k]))
        direct.flush()

        mgr = SessionManager(rim_config=cfg, serve_config=ServeConfig(block_seconds=0.5))
        mgr.create("rx", trace.array, trace.sampling_rate,
                   carrier_wavelength=trace.carrier_wavelength)
        for k in range(trace.n_samples):
            mgr.push("rx", trace.data[k], float(trace.times[k]))
        updates = mgr.evict("rx")
        assert updates
        assert updates[-1].total_distance == direct.total_distance

    def test_ttl_eviction(self, three_antenna):
        now = [0.0]
        mgr = SessionManager(
            serve_config=ServeConfig(ttl_seconds=10.0),
            clock=lambda: now[0],
        )
        mgr.create("old", three_antenna, 100.0)
        mgr.create("fresh", three_antenna, 100.0)
        now[0] = 8.0
        mgr.push("fresh", _packet(), 0.0)  # touch one session
        now[0] = 15.0
        evicted = mgr.evict_idle()
        assert set(evicted) == {"old"}
        assert mgr.names() == ["fresh"]
        assert mgr.n_evicted == 1

    def test_create_runs_idle_eviction(self, three_antenna):
        now = [0.0]
        mgr = SessionManager(
            serve_config=ServeConfig(ttl_seconds=5.0),
            clock=lambda: now[0],
        )
        mgr.create("stale", three_antenna, 100.0)
        now[0] = 20.0
        mgr.create("new", three_antenna, 100.0)
        assert mgr.names() == ["new"]

    def test_serve_metrics_tagged_by_session(self, three_antenna):
        obs.reset()
        obs.enable()
        try:
            mgr = SessionManager(
                serve_config=ServeConfig(queue_capacity=2, backpressure="reject")
            )
            mgr.create("tagged", three_antenna, 100.0)
            for k in range(4):
                mgr.push("tagged", _packet(), k / 100.0)
            assert "serve.queue_depth{session=tagged}" in obs.METRICS
            assert "serve.rejected{session=tagged}" in obs.METRICS
            rejected = obs.METRICS.get("serve.rejected{session=tagged}")
            assert rejected.value == 2
        finally:
            obs.disable()
            obs.reset()


class TestParallelEquivalence:
    """Pool scheduling must never change per-session numbers."""

    def _run(self, traces, mode, n_workers):
        cfg = RimConfig(max_lag=50)
        runner = ParallelRunner(n_workers=n_workers, mode=mode)
        return runner.run(traces, rim_config=cfg, block_seconds=0.5)

    def test_thread_pool_matches_serial(self, serve_traces):
        serial = self._run(serve_traces, "serial", 1)
        one = self._run(serve_traces, "thread", 1)
        four = self._run(serve_traces, "thread", 4)
        for a, b, c in zip(serial, one, four):
            assert a.same_estimates(b)
            assert a.same_estimates(c)
            assert a.total_distance == b.total_distance == c.total_distance
            assert np.array_equal(a.heading, c.heading, equal_nan=True)
            assert np.array_equal(a.speed, c.speed)

    def test_process_pool_matches_serial(self, serve_traces):
        serial = self._run(serve_traces, "serial", 1)
        procs = self._run(serve_traces, "process", 2)
        for a, b in zip(serial, procs):
            assert a.same_estimates(b)

    def test_results_in_input_order(self, serve_traces):
        results = self._run(serve_traces, "thread", 4)
        assert [r.name for r in results] == ["rx00", "rx01", "rx02"]
        assert [r.n_samples for r in results] == [
            t.n_samples for t in serve_traces
        ]

    def test_health_flags_identical(self, serve_traces):
        serial = self._run(serve_traces, "serial", 1)
        threaded = self._run(serve_traces, "thread", 4)
        for a, b in zip(serial, threaded):
            assert a.degraded_blocks == b.degraded_blocks
            assert a.dead_chains == b.dead_chains
            assert a.repairs == b.repairs

    def test_invalid_runner_args(self):
        with pytest.raises(ValueError):
            ParallelRunner(mode="fiber")
        with pytest.raises(ValueError):
            ParallelRunner(n_workers=0)
        with pytest.raises(ValueError):
            ParallelRunner().run([], names=["a"])


class TestRunnerHonesty:
    """The runner reports the pool width that actually executed."""

    def _run(self, runner, traces):
        return runner.run(
            traces, rim_config=RimConfig(max_lag=50), block_seconds=0.5
        )

    def test_serial_mode_reports_one_worker(self, serve_traces):
        runner = ParallelRunner(n_workers=4, mode="serial")
        self._run(runner, serve_traces)
        assert runner.n_workers_effective == 1
        assert runner.fallback_reason == "serial mode requested"

    def test_thread_pool_reports_true_width(self, serve_traces):
        runner = ParallelRunner(n_workers=2, mode="thread")
        self._run(runner, serve_traces)
        assert runner.n_workers_effective == 2
        assert runner.fallback_reason is None

    def test_width_never_exceeds_job_count(self, serve_traces):
        runner = ParallelRunner(n_workers=8, mode="thread")
        self._run(runner, serve_traces)
        assert runner.n_workers_effective == len(serve_traces)

    def test_single_job_falls_back_with_reason(self, serve_traces):
        runner = ParallelRunner(n_workers=4, mode="thread")
        self._run(runner, serve_traces[:1])
        assert runner.n_workers_effective == 1
        assert runner.fallback_reason == "single job"

    def test_process_mode_caps_at_cpu_count(
        self, serve_traces, monkeypatch, caplog
    ):
        import logging

        import repro.serve.runner as runner_mod

        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 1)
        runner = ParallelRunner(n_workers=4, mode="process")
        with caplog.at_level(logging.INFO, logger="repro.serve.runner"):
            results = self._run(runner, serve_traces)
        assert runner.n_workers_effective == 1
        assert runner.fallback_reason == "host has 1 cpu"
        assert any(
            "falling back to serial execution" in rec.getMessage()
            for rec in caplog.records
        )
        serial = self._run(ParallelRunner(mode="serial"), serve_traces)
        for a, b in zip(serial, results):
            assert a.same_estimates(b)


class TestServeSim:
    def test_aggregate_and_table(self, serve_traces):
        receivers = [(f"rx{k:02d}", t) for k, t in enumerate(serve_traces)]
        result = run_serve_sim(
            n_workers=2,
            receivers=receivers,
            block_seconds=0.5,
            rim_config=RimConfig(max_lag=50),
        )
        agg = result["aggregate"]
        assert agg["n_sessions"] == 3
        assert agg["total_samples"] == sum(t.n_samples for t in serve_traces)
        assert agg["sessions_per_second"] > 0
        assert agg["samples_per_second"] > 0
        assert len(result["sessions"]) == 3
        assert all(row["updates"] > 0 for row in result["sessions"])
        table = render_serve_table(result)
        for name, _ in receivers:
            assert name in table
        assert "sessions/s" in table

    def test_reject_policy_surfaces_in_aggregate(self, serve_traces):
        receivers = [("rx00", serve_traces[0])]
        result = run_serve_sim(
            n_workers=1,
            receivers=receivers,
            backpressure="reject",
            queue_capacity=50,
            block_seconds=0.5,
            rim_config=RimConfig(max_lag=50),
        )
        assert result["aggregate"]["rejected"] > 0
        assert result["sessions"][0]["rejected"] > 0


class TestThreadedTracing:
    """Spans opened on worker threads must not corrupt each other."""

    def test_thread_local_span_stacks(self):
        obs.reset()
        obs.enable()
        try:
            barrier = threading.Barrier(2)

            def work(tag):
                barrier.wait()
                for _ in range(50):
                    with obs.span(f"outer.{tag}"):
                        with obs.span(f"inner.{tag}"):
                            pass

            threads = [
                threading.Thread(target=work, args=(t,)) for t in ("a", "b")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            roots = obs.TRACER.roots
            assert len(roots) == 100
            for root in roots:
                tag = root.name.split(".")[1]
                assert root.name == f"outer.{tag}"
                assert [c.name for c in root.children] == [f"inner.{tag}"]
        finally:
            obs.disable()
            obs.reset()
