"""Experiment-matrix executor: expand, run, aggregate.

:func:`run_matrix` expands a :class:`~repro.bench.spec.MatrixSpec` into
cells, runs each cell's warmup + measured repetitions through the
existing serving entry points, and folds the repetitions into one run
table with a fitted capacity model:

* ``shards == 0`` → :func:`repro.serve.simulate.run_serve_sim` (one
  in-process :class:`SessionManager`, ``spec.workers`` threads);
* ``shards >= 1`` → :func:`repro.shard.fleet.run_shard_sim` against a
  pre-created :class:`~repro.shard.router.ShardRouter` — pre-created so
  the fleet's delta-folded latency metrics can be snapshotted while the
  router is still alive;
* non-empty ``fault_plan`` → :func:`repro.net.loadgen.run_net_load`
  over a loopback server with deterministic wire faults.

Workloads are sampled once per session count from ``spec.seed``, so
every cell sweeping the same session count replays the identical
receivers — kernels, dtypes, and shard counts compare on identical
inputs.  The per-cell seed (:func:`~repro.bench.spec.cell_seed`) labels
each row for the digest.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.aggregate import (
    TABLE_SCHEMA,
    build_row,
    table_digest,
)
from repro.bench.capacity import capacity_models
from repro.bench.spec import (
    BenchError,
    Cell,
    MatrixSpec,
    cell_seed,
    expand_matrix,
    match_cell,
)

#: Histogram metric holding per-block serving latency (see repro.obs).
LATENCY_METRIC = "stream.block_latency_s"


def _rim_config(spec: MatrixSpec, cell: Cell):
    from repro.core.config import RimConfig

    # max_lag=60 matches the perf-baseline harness, so bench cells are
    # directly comparable with BENCH_perf.json numbers.
    return RimConfig(
        max_lag=60, kernel_backend=cell.kernel, kernel_dtype=cell.dtype
    )


def _latency_snapshot() -> Optional[Dict[str, Any]]:
    from repro import obs

    snap = obs.METRICS.snapshot().get(LATENCY_METRIC)
    if snap is None or snap.get("type") != "histogram" or not snap.get("count"):
        return None
    return snap


def _run_serve_cell(
    spec: MatrixSpec, cell: Cell, receivers, should_stop
) -> Dict[str, Any]:
    from repro.serve.simulate import run_serve_sim

    return run_serve_sim(
        receivers=receivers,
        n_workers=spec.workers,
        backpressure=cell.backpressure,
        queue_capacity=spec.queue_capacity,
        block_seconds=spec.block_seconds,
        rim_config=_rim_config(spec, cell),
        should_stop=should_stop,
    )


def _run_shard_cell(
    spec: MatrixSpec, cell: Cell, receivers, should_stop
) -> Dict[str, Any]:
    from repro.serve.session import ServeConfig
    from repro.shard.fleet import run_shard_sim
    from repro.shard.router import ShardRouter

    serve_config = ServeConfig(
        queue_capacity=spec.queue_capacity,
        backpressure=cell.backpressure,
        block_seconds=spec.block_seconds,
    )
    # Pre-create the router: run_shard_sim closes routers it owns, and a
    # closed router's metrics collector detaches before we could read
    # the fleet's latency histogram.  Caller-owned routers stay alive
    # until the finally below, so the snapshot sees the fleet's metrics.
    router = ShardRouter(
        cell.shards,
        rim_config=_rim_config(spec, cell),
        serve_config=serve_config,
    )
    try:
        result = run_shard_sim(
            receivers=receivers,
            backpressure=cell.backpressure,
            queue_capacity=spec.queue_capacity,
            block_seconds=spec.block_seconds,
            should_stop=should_stop,
            router=router,
        )
        result["latency"] = _latency_snapshot()
        return result
    finally:
        router.close()


def _run_net_cell(
    spec: MatrixSpec, cell: Cell, receivers, should_stop
) -> Dict[str, Any]:
    from repro.net.faults import NetFaultPlan
    from repro.net.loadgen import run_net_load
    from repro.serve.session import ServeConfig

    plan = NetFaultPlan.from_spec(cell.fault_plan)
    return run_net_load(
        receivers,
        fault_plan=plan,
        rim_config=_rim_config(spec, cell),
        serve_config=ServeConfig(
            queue_capacity=spec.queue_capacity,
            backpressure=cell.backpressure,
            block_seconds=spec.block_seconds,
        ),
        check_baseline=False,  # determinism is asserted across reps instead
        should_stop=should_stop,
    )


def _normalize(cell: Cell, result: Dict[str, Any]) -> Dict[str, Any]:
    """Fold one entry-point result into the uniform repetition record."""
    agg = result["aggregate"]
    sessions = result.get("sessions", [])
    wall = float(agg["wall_s"])
    n_sessions = int(agg["n_sessions"])
    total_samples = int(agg.get("total_samples", agg.get("n_samples", 0)))
    rate = agg.get("sessions_per_second")
    if rate is None:  # the net aggregate reports samples/s only
        rate = n_sessions / wall if wall > 0 else 0.0
    n_updates = sum(int(row.get("updates", 0)) for row in sessions)
    distance = agg.get("total_distance_m")
    if distance is None:
        distance = sum(float(row.get("distance_m", 0.0)) for row in sessions)
    health = {
        key: int(
            agg.get(key, sum(int(row.get(key, 0)) for row in sessions))
        )
        for key in ("blocked", "shed", "rejected", "degraded_blocks", "reconnects")
    }
    return {
        "wall_s": wall,
        "n_sessions": n_sessions,
        "total_samples": total_samples,
        "sessions_per_second": float(rate),
        "samples_per_second": float(agg["samples_per_second"]),
        "n_updates": n_updates,
        "total_distance_m": float(distance),
        "health": health,
        "latency": result.get("latency"),
    }


def run_cell(
    spec: MatrixSpec,
    cell: Cell,
    receivers,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Dict[str, Any]:
    """Run one repetition of one cell and normalize its record.

    Metrics are reset before and snapshotted after the run, so the
    latency histogram covers exactly this repetition.
    """
    from repro import obs

    was_enabled = obs.enabled()
    obs.reset()
    obs.enable()
    try:
        if cell.fault_plan:
            result = _run_net_cell(spec, cell, receivers, should_stop)
        elif cell.shards >= 1:
            result = _run_shard_cell(spec, cell, receivers, should_stop)
        else:
            result = _run_serve_cell(spec, cell, receivers, should_stop)
        if result.get("latency") is None:
            result["latency"] = _latency_snapshot()
    finally:
        if not was_enabled:
            obs.disable()
    return _normalize(cell, result)


def run_matrix(
    spec: MatrixSpec,
    filters: Optional[Sequence[Tuple[str, str]]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the full matrix and return the aggregated run-table payload.

    Args:
        spec: Validated matrix spec.
        filters: ``(key, value)`` pairs from
            :func:`~repro.bench.spec.parse_filters`; only matching cells
            run.
        should_stop: Polled between repetitions (and inside each run);
            returning True ends the sweep early with the rows finished
            so far.
        progress: Optional callback receiving one line per cell run
            (the CLI prints these).

    Returns:
        Payload dict: ``schema`` (:data:`TABLE_SCHEMA`), ``name``,
        ``spec``, ``filters``, ``n_cpus``, ``rows``, ``capacity``
        (fitted models per non-shard group), and the deterministic
        ``digest``.
    """
    import os

    from repro.serve.simulate import simulated_receivers

    cells = expand_matrix(spec)
    filters = list(filters or [])
    if filters:
        cells = [cell for cell in cells if match_cell(cell, filters)]
    if not cells:
        raise BenchError("matrix expands to zero cells after filtering")

    workloads: Dict[int, Any] = {}

    def workload(n_sessions: int):
        if n_sessions not in workloads:
            workloads[n_sessions] = simulated_receivers(
                n_sessions, seed=spec.seed, duration_s=spec.duration_s
            )
        return workloads[n_sessions]

    rows: List[Dict[str, Any]] = []
    stopped = False
    for k, cell in enumerate(cells):
        if should_stop is not None and should_stop():
            stopped = True
            break
        receivers = workload(cell.sessions)
        seed = cell_seed(spec.seed, cell.key)
        if progress is not None:
            progress(
                f"[{k + 1}/{len(cells)}] {cell.key} "
                f"(warmup {spec.warmup}, reps {spec.repetitions})"
            )
        for _ in range(spec.warmup):
            run_cell(spec, cell, receivers, should_stop=should_stop)
        reps = []
        for r in range(spec.repetitions):
            if should_stop is not None and should_stop():
                stopped = True
                break
            reps.append(run_cell(spec, cell, receivers, should_stop=should_stop))
            if spec.cooldown_s > 0 and r + 1 < spec.repetitions:
                time.sleep(spec.cooldown_s)
        if stopped and len(reps) < spec.repetitions:
            break  # a partially measured cell would skew its spread
        rows.append(build_row(cell, seed, reps))
        if spec.cooldown_s > 0 and k + 1 < len(cells):
            time.sleep(spec.cooldown_s)

    if not rows:
        raise BenchError("bench run stopped before any cell completed")
    return {
        "schema": TABLE_SCHEMA,
        "name": spec.name,
        "spec": spec.to_dict(),
        "filters": [f"{key}={value}" for key, value in filters],
        "n_cpus": os.cpu_count() or 1,
        "n_cells": len(rows),
        "repetitions": spec.repetitions,
        "stopped_early": stopped,
        "rows": rows,
        "capacity": capacity_models(rows),
        "digest": table_digest(rows),
    }
