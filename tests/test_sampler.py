"""Unit tests for the CSI sampler and trace container."""

import numpy as np
import pytest

from repro.channel.impairments import ImpairmentConfig
from repro.channel.sampler import CsiSampler, ap_antenna_positions
from repro.motionsim.profiles import line_trajectory, still_trajectory


class TestApAntennas:
    def test_count_and_center(self):
        pos = ap_antenna_positions((3.0, 4.0), n_tx=3, spacing=0.05)
        assert pos.shape == (3, 2)
        np.testing.assert_allclose(pos.mean(axis=0), [3.0, 4.0])

    def test_spacing(self):
        pos = ap_antenna_positions((0, 0), n_tx=2, spacing=0.04)
        assert np.linalg.norm(pos[1] - pos[0]) == pytest.approx(0.04)


class TestCsiTrace:
    def test_shapes(self, line_trace, three_antenna):
        assert line_trace.n_rx == 3
        assert line_trace.n_tx == 2
        assert line_trace.data.shape == (
            line_trace.n_samples,
            3,
            2,
            line_trace.n_subcarriers,
        )
        assert line_trace.times.shape == (line_trace.n_samples,)

    def test_sampling_rate(self, line_trace):
        assert line_trace.sampling_rate == pytest.approx(200.0, rel=1e-6)

    def test_carrier_wavelength(self, line_trace):
        assert line_trace.carrier_wavelength == pytest.approx(0.0516, abs=5e-4)

    def test_lost_mask_no_loss(self, line_trace):
        assert not line_trace.lost_mask().any()

    def test_downsample(self, line_trace):
        down = line_trace.downsample(4)
        assert down.n_samples == int(np.ceil(line_trace.n_samples / 4))
        assert down.sampling_rate == pytest.approx(50.0, rel=1e-6)
        np.testing.assert_array_equal(down.data, line_trace.data[::4])

    def test_downsample_invalid(self, line_trace):
        with pytest.raises(ValueError):
            line_trace.downsample(0)


class TestSampler:
    def test_clean_sampler_is_noiseless(self, clean_sampler, three_antenna):
        traj = still_trajectory((10.0, 8.0), 0.2)
        trace = clean_sampler.sample(traj, three_antenna)
        # Static and clean: every packet identical.
        np.testing.assert_allclose(trace.data[0], trace.data[-1], rtol=1e-5)

    def test_different_antennas_see_different_channels(self, clean_sampler, three_antenna):
        traj = still_trajectory((10.0, 8.0), 0.1)
        trace = clean_sampler.sample(traj, three_antenna)
        h0 = trace.data[0, 0, 0]
        h1 = trace.data[0, 1, 0]
        corr = np.abs(np.vdot(h0, h1)) ** 2 / (
            np.vdot(h0, h0).real * np.vdot(h1, h1).real
        )
        assert corr < 0.9

    def test_motion_changes_channel(self, clean_sampler, three_antenna):
        traj = line_trajectory((10.0, 8.0), 0.0, 0.5, 0.5)
        trace = clean_sampler.sample(traj, three_antenna)
        h_start = trace.data[0, 0, 0]
        h_end = trace.data[-1, 0, 0]
        corr = np.abs(np.vdot(h_start, h_end)) ** 2 / (
            np.vdot(h_start, h_start).real * np.vdot(h_end, h_end).real
        )
        assert corr < 0.7

    def test_retracing_antenna_sees_same_channel(self, clean_sampler, three_antenna):
        """The STAR principle (§3.1): the follower reproduces the leader's
        channel after traveling the separation distance."""
        speed = 0.5
        traj = line_trajectory((10.0, 8.0), 0.0, speed, 1.0)
        trace = clean_sampler.sample(traj, three_antenna)
        sep = three_antenna.separation(0, 1)
        lag = int(round(sep / speed * trace.sampling_rate))
        # Antenna 0 trails antenna 1 for motion along +x (antenna 1 ahead).
        h_follower = trace.data[lag, 0, 0]
        h_leader = trace.data[0, 1, 0]
        corr = np.abs(np.vdot(h_follower, h_leader)) ** 2 / (
            np.vdot(h_follower, h_follower).real * np.vdot(h_leader, h_leader).real
        )
        assert corr > 0.9

    def test_per_nic_loss_pattern(self, fast_channel):
        from repro.arrays.geometry import hexagonal_array

        rng = np.random.default_rng(5)
        sampler = CsiSampler(
            channel=fast_channel,
            tx_positions=ap_antenna_positions((1, 1), n_tx=2),
            impairments=ImpairmentConfig(snr_db=None, packet_loss_rate=0.3),
            rng=rng,
        )
        traj = still_trajectory((10.0, 8.0), 1.0)
        trace = sampler.sample(traj, hexagonal_array())
        lost = trace.lost_mask()
        # All antennas of one NIC lose the same packets.
        np.testing.assert_array_equal(lost[:, 0], lost[:, 1])
        np.testing.assert_array_equal(lost[:, 0], lost[:, 2])
        np.testing.assert_array_equal(lost[:, 3], lost[:, 5])
        # The two NICs lose independently (almost surely differ somewhere).
        assert (lost[:, 0] != lost[:, 3]).any()

    def test_tx_positions_validated(self, fast_channel):
        with pytest.raises(ValueError):
            CsiSampler(channel=fast_channel, tx_positions=np.zeros((2, 3)))
