"""Concurrent multi-session serving layer for streaming RIM.

The paper ships RIM as a single real-time stream on one device (§5,
§6.2.9); this package is the scale-out story: one process serving many
independent receivers at once.

* :class:`~repro.serve.session.SessionManager` owns many named
  :class:`~repro.core.streaming.StreamingRim` sessions — create / push /
  poll / evict, with TTL-based idle eviction.
* Each :class:`~repro.serve.session.ServeSession` fronts its estimator
  with a bounded ingest queue and an explicit backpressure policy
  (``"block"`` / ``"drop_oldest"`` / ``"reject"``); shed and reject
  counts surface in the session's per-block
  :class:`~repro.robustness.health.HealthReport`.
* :class:`~repro.serve.runner.ParallelRunner` fans a batch of traces
  across a worker pool (threads by default — the band-GEMM kernels
  release the GIL inside BLAS; processes as an opt-in) while preserving
  bit-identical per-session results versus serial execution.
* :func:`~repro.serve.simulate.run_serve_sim` replays N simulated
  receivers concurrently (the ``repro.cli serve-sim`` verb).

Concurrency contract: sessions are independent — different sessions may
be driven from different threads freely.  A single session is a
single-producer object: drive any one session from one thread at a time.
"""

from __future__ import annotations

from repro.serve.runner import ParallelRunner, SessionRunResult, replay_trace
from repro.serve.session import (
    BACKPRESSURE_POLICIES,
    PUSH_ACCEPTED,
    PUSH_BLOCKED,
    PUSH_REJECTED,
    PUSH_SHED_OLDEST,
    ServeConfig,
    ServeSession,
    SessionManager,
)
from repro.serve.simulate import (
    render_serve_table,
    run_serve_sim,
    simulated_receivers,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "PUSH_ACCEPTED",
    "PUSH_BLOCKED",
    "PUSH_REJECTED",
    "PUSH_SHED_OLDEST",
    "ParallelRunner",
    "ServeConfig",
    "ServeSession",
    "SessionManager",
    "SessionRunResult",
    "render_serve_table",
    "replay_trace",
    "run_serve_sim",
    "simulated_receivers",
]
