"""Closed-loop AGV waypoint navigation on RIM feedback.

The paper motivates RIM with industrial Automated Guided Vehicles
(§6.3.3): carts that translate in any direction *without turning*, which
blinds gyroscopes and magnetometers but is exactly RIM's sideway-move
regime.  This module closes the loop: a simulated AGV is steered purely by
RIM's streaming estimates — the controller never sees ground truth.

Per control period the navigator:

1. integrates the RIM speed/heading stream into an estimated pose,
2. aims at the next waypoint and commands the nearest array-resolvable
   direction,
3. the (noisy) actuators execute the command, new CSI is generated along
   the actual path, and the loop repeats.

The measured quantity is the *true* position error when the navigator
believes it reached each waypoint — an end-to-end figure no open-loop
experiment provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.channel.sampler import CsiSampler
from repro.core.config import RimConfig
from repro.core.streaming import StreamingRim
from repro.motionsim.profiles import line_trajectory


@dataclass
class NavigationResult:
    """Outcome of one navigation run.

    Attributes:
        reached: Per-waypoint: did the navigator declare arrival?
        arrival_errors: True distance to each waypoint at declared arrival
            (NaN where never reached).
        true_path: (N, 2) actual positions visited.
        believed_path: (N, 2) RIM-estimated positions.
        total_true_distance: Path length actually driven, meters.
    """

    reached: List[bool]
    arrival_errors: List[float]
    true_path: np.ndarray
    believed_path: np.ndarray
    total_true_distance: float


class WaypointNavigator:
    """Steers a simulated AGV to waypoints using only RIM feedback."""

    def __init__(
        self,
        sampler: CsiSampler,
        array: AntennaArray,
        speed: float = 0.5,
        control_seconds: float = 0.5,
        sampling_rate: float = 200.0,
        arrival_tolerance: float = 0.3,
        actuation_noise_deg: float = 2.0,
        config: Optional[RimConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sampler = sampler
        self.array = array
        self.speed = speed
        self.control_seconds = control_seconds
        self.sampling_rate = sampling_rate
        self.arrival_tolerance = arrival_tolerance
        self.actuation_noise = np.deg2rad(actuation_noise_deg)
        self.config = config or RimConfig(max_lag=60)
        self.rng = rng or np.random.default_rng()

    def navigate(
        self,
        start,
        waypoints: Sequence,
        max_steps: int = 120,
    ) -> NavigationResult:
        """Drive from ``start`` through ``waypoints`` on RIM feedback.

        Args:
            start: True (and known) initial position.
            waypoints: Targets to visit in order.
            max_steps: Control-period budget (prevents infinite loops when
                estimation drifts too far to ever "arrive").

        Returns:
            The :class:`NavigationResult`.
        """
        waypoints = [np.asarray(w, dtype=np.float64) for w in waypoints]
        true_pos = np.asarray(start, dtype=np.float64).copy()
        believed = true_pos.copy()
        clock = 0.0

        stream = StreamingRim(
            self.array,
            self.sampling_rate,
            self.config,
            block_seconds=self.control_seconds,
        )

        true_path = [true_pos.copy()]
        believed_path = [believed.copy()]
        reached = [False] * len(waypoints)
        arrival_errors = [float("nan")] * len(waypoints)
        total_distance = 0.0
        target_idx = 0

        for _ in range(max_steps):
            if target_idx >= len(waypoints):
                break
            target = waypoints[target_idx]

            # Aim from the *believed* pose — the controller has no truth.
            delta = target - believed
            command = float(np.arctan2(delta[1], delta[0]))

            # Noisy actuation, then CSI along the actual segment.
            actual_heading = command + self.rng.normal(0.0, self.actuation_noise)
            segment = line_trajectory(
                true_pos,
                np.rad2deg(actual_heading),
                self.speed,
                self.control_seconds,
                sampling_rate=self.sampling_rate,
            )
            trace = self.sampler.sample(segment, self.array)

            update = None
            for k in range(trace.n_samples - 1):  # drop the shared endpoint
                got = stream.push(trace.data[k], clock + trace.times[k])
                if got is not None:
                    update = got
            clock += self.control_seconds

            # Advance truth.
            step_vec = segment.positions[-1] - segment.positions[0]
            total_distance += float(np.linalg.norm(step_vec))
            true_pos = segment.positions[-1].copy()

            # Advance belief from the RIM stream.
            if update is not None:
                believed = believed + _update_displacement(update)

            true_path.append(true_pos.copy())
            believed_path.append(believed.copy())

            if np.linalg.norm(target - believed) <= self.arrival_tolerance:
                reached[target_idx] = True
                arrival_errors[target_idx] = float(np.linalg.norm(target - true_pos))
                target_idx += 1

        return NavigationResult(
            reached=reached,
            arrival_errors=arrival_errors,
            true_path=np.asarray(true_path),
            believed_path=np.asarray(believed_path),
            total_true_distance=total_distance,
        )


def _update_displacement(update) -> np.ndarray:
    """Displacement vector implied by one streaming MotionUpdate."""
    dt = np.diff(update.times, prepend=update.times[0])
    dt[0] = 0.0
    heading = update.heading.copy()
    # Hold the last resolved heading across unresolved samples.
    last = np.nan
    for k in range(heading.size):
        if np.isfinite(heading[k]):
            last = heading[k]
        else:
            heading[k] = last
    ok = update.moving & np.isfinite(update.speed) & np.isfinite(heading)
    vx = np.where(ok, update.speed * np.cos(heading), 0.0)
    vy = np.where(ok, update.speed * np.sin(heading), 0.0)
    return np.array([float(np.sum(vx * dt)), float(np.sum(vy * dt))])
