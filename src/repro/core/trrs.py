"""Time-Reversal Resonating Strength (TRRS): the paper's similarity metric.

TRRS quantifies the time-reversal focusing effect between two channel
snapshots (§3.2).  For Channel Impulse Responses h1, h2 (Eqn. 1):

    κ(h1, h2) = (max_i |(h1 * g2)[i]|)² / (⟨h1,h1⟩ ⟨g2,g2⟩)

with g2 the time-reversed conjugate of h2.  In frequency domain, for CFRs
H1, H2 (Eqn. 2):

    κ(H1, H2) = |H1ᴴ H2|² / (⟨H1,H1⟩ ⟨H2,H2⟩)

κ ∈ [0, 1] with κ = 1 iff H1 = c·H2 — which is what makes it immune to the
per-packet common phase of COTS CSI.  Eqn. 3 averages across TX antennas
(spatial diversity → larger effective bandwidth) without requiring the RX
chains to be synchronized; Eqn. 4 additionally averages a window of V
*virtual massive antennas* (consecutive snapshots), which is the key to
sub-centimeter alignment.
"""

from __future__ import annotations

import numpy as np


def trrs_cir(h1: np.ndarray, h2: np.ndarray) -> float:
    """TRRS between two channel impulse responses (Eqn. 1).

    Args:
        h1, h2: (T,) complex CIR tap vectors (equal length).

    Returns:
        κ(h1, h2) ∈ [0, 1].
    """
    h1 = np.asarray(h1, dtype=np.complex128).ravel()
    h2 = np.asarray(h2, dtype=np.complex128).ravel()
    if h1.shape != h2.shape:
        raise ValueError(f"CIR length mismatch: {h1.shape} vs {h2.shape}")
    g2 = np.conj(h2[::-1])
    conv = np.convolve(h1, g2)
    num = float(np.max(np.abs(conv)) ** 2)
    den = float(np.vdot(h1, h1).real * np.vdot(g2, g2).real)
    if den == 0.0:
        return 0.0
    return min(1.0, num / den)


def trrs_cfr(h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
    """TRRS between CFR vectors (Eqn. 2), broadcasting over leading axes.

    Args:
        h1, h2: (..., S) complex CFRs with broadcast-compatible shapes.

    Returns:
        (...) TRRS values in [0, 1]; NaN where either input has NaNs.
    """
    h1 = np.asarray(h1)
    h2 = np.asarray(h2)
    inner = (np.conj(h1) * h2).sum(axis=-1)
    p1 = (np.abs(h1) ** 2).sum(axis=-1)
    p2 = (np.abs(h2) ** 2).sum(axis=-1)
    den = p1 * p2
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.abs(inner) ** 2 / den
    # Zero-power vectors score 0; NaN inputs (lost packets) stay NaN.
    out = np.where(den > 0, out, np.where(np.isnan(den), np.nan, 0.0))
    out = np.minimum(out.real, 1.0)
    return out if np.ndim(out) else float(out)


def average_trrs(h_i: np.ndarray, h_j: np.ndarray) -> np.ndarray:
    """TX-averaged TRRS κ̄ (Eqn. 3).

    Args:
        h_i, h_j: (..., n_tx, S) multi-TX CFR snapshots.

    Returns:
        (...) TRRS averaged over the TX axis (NaN-propagating).
    """
    per_tx = trrs_cfr(h_i, h_j)
    return np.asarray(per_tx).mean(axis=-1)


def massive_trrs(p_i: np.ndarray, p_j: np.ndarray) -> float:
    """Virtual-massive-antenna TRRS (Eqn. 4) between two snapshot windows.

    Args:
        p_i, p_j: (V, n_tx, S) windows of consecutive CFR snapshots (the
            multipath profiles P_i, P_j of §3.2).

    Returns:
        The window-averaged TRRS (NaN snapshots are skipped).
    """
    p_i = np.asarray(p_i)
    p_j = np.asarray(p_j)
    if p_i.shape != p_j.shape:
        raise ValueError(f"profile shape mismatch: {p_i.shape} vs {p_j.shape}")
    values = average_trrs(p_i, p_j)
    if np.all(np.isnan(values)):
        return float("nan")
    return float(np.nanmean(values))


def normalized_inner_trrs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """TX-averaged TRRS of tone-normalized snapshots: mean_k |⟨a, b⟩|².

    The shared inner reduction of the einsum alignment kernels.  With
    inputs from :func:`normalize_csi`, Eqn. 3 collapses to a plain inner
    product per TX antenna; the reference per-pair kernel and the batched
    backend's gather kernel (:mod:`repro.perf.kernels`) reduce in this
    same order, so their outputs — including NaN propagation from lost
    packets — are bit-identical.  The batched backend's BLAS band kernel
    computes the same quantity via real GEMMs, identical NaN-for-NaN and
    within a few float64 ulps elsewhere.

    Args:
        a, b: (..., n_tx, S) unit-normalized CFR snapshots; any number of
            leading batch axes (time, pair, ...).

    Returns:
        (...) TRRS values averaged over the TX axis.
    """
    inner = np.einsum("...ks,...ks->...k", np.conj(a), b)
    return (np.abs(inner) ** 2).mean(axis=-1)


def normalize_csi(data: np.ndarray) -> np.ndarray:
    """Unit-normalize CFR vectors along the tone axis.

    With normalized inputs, TRRS reduces to |⟨H1, H2⟩|², which lets the
    alignment-matrix kernels use plain inner products.  All-NaN or
    zero-power vectors normalize to NaN.

    Always returns complex128: the alignment kernels accumulate thousands
    of products per cell, where float32 round-off would swamp the 1e-9
    cross-backend equivalence budget (complex64 buys no einsum speed in
    return).
    """
    data = np.asarray(data, dtype=np.complex128)
    # Σ|H[s]|² as one real dot product over the interleaved re/im view —
    # no hypot round-trip, no intermediate magnitude array.
    v = data.view(np.float64)
    power = np.sqrt(np.einsum("...s,...s->...", v, v))[..., None]
    with np.errstate(divide="ignore", invalid="ignore"):
        # One real reciprocal per vector instead of one per complex
        # element; numpy's complex-by-real divide is itself a reciprocal
        # multiply, so this is bit-identical to ``data / power``.
        out = data * (1.0 / power)
    bad = ~(power > 0)
    if bad.any():
        out[np.broadcast_to(bad, out.shape)] = np.nan
    return out


def trrs_series(a: np.ndarray, b: np.ndarray, lag: int) -> np.ndarray:
    """κ̄(A(t), B(t-lag)) for every valid t.

    Args:
        a, b: (T, n_tx, S) snapshot sequences for two antennas.
        lag: Sample lag applied to ``b`` (may be negative).

    Returns:
        (T,) TRRS values; entries without a valid partner are NaN.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"sequence shape mismatch: {a.shape} vs {b.shape}")
    t = a.shape[0]
    out = np.full(t, np.nan)
    if lag >= 0:
        if lag < t:
            out[lag:] = average_trrs(a[lag:], b[: t - lag])
    else:
        if -lag < t:
            out[: t + lag] = average_trrs(a[: t + lag], b[-lag:])
    return out
