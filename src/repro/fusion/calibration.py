"""Using RIM to calibrate inertial sensors (§7, "Fusing inertial sensors").

The paper proposes "applying RIM to calibrate inertial sensors".  Two
concrete calibrations implemented here:

* **Gyro bias from RIM stillness.**  RIM's movement detection (§4.1) is far
  more reliable than the IMU's own (Fig. 7); whenever RIM says the device
  is static, whatever the gyro reads *is* bias.  Averaging those readings
  (and tracking them over time) removes the dominant gyro error term.
* **Gyro scale from RIM rotations.**  When RIM measures an in-place
  rotation, the ratio of RIM's angle to the gyro's integrated angle
  estimates the gyro scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.rim import RimResult
from repro.imu.sensors import ImuReadings


@dataclass
class GyroCalibration:
    """Estimated gyroscope error parameters.

    Attributes:
        bias: Estimated constant bias, rad/s (NaN if no static samples).
        bias_std: Spread of the static readings (quality indicator).
        n_static_samples: Static samples the bias was estimated from.
        scale: Estimated scale factor from rotation comparison (1.0 when
            no rotation event was available).
    """

    bias: float
    bias_std: float
    n_static_samples: int
    scale: float = 1.0


def calibrate_gyro(
    imu: ImuReadings,
    rim_result: RimResult,
    min_static_seconds: float = 0.5,
) -> GyroCalibration:
    """Estimate gyro bias (and scale, when possible) using RIM as truth.

    Args:
        imu: Raw gyro readings over the trace.
        rim_result: RIM output for the same trace (shared time base).
        min_static_seconds: Minimum accumulated static time required for a
            bias estimate.

    Returns:
        The :class:`GyroCalibration`.
    """
    moving = np.interp(
        imu.times, rim_result.motion.times, rim_result.motion.moving.astype(float)
    ) > 0.5
    static = ~moving
    fs = (imu.times.size - 1) / max(1e-9, imu.times[-1] - imu.times[0])
    n_needed = int(round(min_static_seconds * fs))

    if static.sum() >= max(2, n_needed):
        readings = imu.gyro[static]
        bias = float(np.median(readings))
        bias_std = float(readings.std())
        n_static = int(static.sum())
    else:
        bias, bias_std, n_static = float("nan"), float("nan"), int(static.sum())

    scale = _scale_from_rotations(imu, rim_result, bias if np.isfinite(bias) else 0.0)
    return GyroCalibration(
        bias=bias, bias_std=bias_std, n_static_samples=n_static, scale=scale
    )


def apply_calibration(imu: ImuReadings, calibration: GyroCalibration) -> ImuReadings:
    """Return corrected readings: gyro' = (gyro - bias) / scale."""
    bias = calibration.bias if np.isfinite(calibration.bias) else 0.0
    scale = calibration.scale if calibration.scale > 0 else 1.0
    return ImuReadings(
        times=imu.times.copy(),
        accel=imu.accel.copy(),
        gyro=(imu.gyro - bias) / scale,
        mag_heading=imu.mag_heading.copy(),
    )


def _scale_from_rotations(
    imu: ImuReadings, rim_result: RimResult, bias: float
) -> float:
    """Gyro scale factor from RIM-measured rotation events."""
    dt = np.diff(imu.times, prepend=imu.times[0])
    dt[0] = 0.0
    ratios = []
    for event in rim_result.motion.rotations:
        t0 = rim_result.motion.times[event.start_index]
        t1 = rim_result.motion.times[min(event.stop_index, rim_result.motion.times.size - 1)]
        mask = (imu.times >= t0) & (imu.times <= t1)
        gyro_angle = float(np.sum((imu.gyro[mask] - bias) * dt[mask]))
        if abs(event.angle) > np.deg2rad(20.0) and abs(gyro_angle) > 1e-6:
            ratios.append(gyro_angle / event.angle)
    if not ratios:
        return 1.0
    return float(np.median(ratios))
