"""Unit tests for the fine-direction refinement internals."""

import numpy as np
import pytest

from repro.arrays.pairs import AntennaPair
from repro.core.alignment import AlignmentMatrix
from repro.core.finedirection import _heading_runs, refine_headings
from repro.core.pairs import GroupTrack
from repro.core.tracking import TrackedPath


def _track(axis_deg, quality_value, lag_sign=1, t=20):
    pair = AntennaPair(
        i=0, j=1, separation=0.0258, axis_angle=np.deg2rad(axis_deg)
    )
    lags = np.full(t, 10.0 * lag_sign)
    path = TrackedPath(
        lag_indices=np.full(t, 10, dtype=np.int64),
        lags=lags.astype(np.int64),
        refined_lags=lags,
        path_trrs=np.full(t, 0.8),
        score=1.0,
    )
    matrix = AlignmentMatrix(
        values=np.full((t, 21), 0.3),
        lags=np.arange(-10, 11),
        sampling_rate=100.0,
        pair=(0, 1),
    )
    return GroupTrack(
        pairs=[pair],
        matrix=matrix,
        path=path,
        quality=np.full(t, quality_value),
    )


class TestHeadingRuns:
    def test_single_run(self):
        choice = np.zeros(5, dtype=np.int64)
        heading = np.zeros(5)
        runs = list(_heading_runs(choice, heading))
        assert runs == [(0, 5)]

    def test_splits_on_group_change(self):
        choice = np.array([0, 0, 1, 1, 1])
        heading = np.zeros(5)
        runs = list(_heading_runs(choice, heading))
        assert runs == [(0, 2), (2, 5)]

    def test_skips_unassigned(self):
        choice = np.array([-1, 0, 0, -1])
        heading = np.array([np.nan, 0.0, 0.0, np.nan])
        runs = list(_heading_runs(choice, heading))
        assert runs == [(1, 3)]


class TestRefineHeadings:
    def test_silent_neighbor_keeps_grid(self):
        own = _track(0.0, quality_value=0.5)
        neighbor = _track(30.0, quality_value=0.0)
        t = 20
        choice = np.zeros(t, dtype=np.int64)
        base = np.zeros(t)
        out = refine_headings([own, neighbor], choice, base, floor=0.0)
        np.testing.assert_allclose(out, 0.0, atol=1e-9)

    def test_equal_qualities_give_midpoint(self):
        own = _track(0.0, quality_value=0.4)
        neighbor = _track(30.0, quality_value=0.4)
        t = 20
        choice = np.zeros(t, dtype=np.int64)
        base = np.zeros(t)
        out = refine_headings([own, neighbor], choice, base, floor=0.0)
        np.testing.assert_allclose(np.rad2deg(out), 15.0, atol=1e-6)

    def test_weight_proportional_to_neighbor_strength(self):
        own = _track(0.0, quality_value=0.6)
        neighbor = _track(30.0, quality_value=0.2)
        t = 20
        choice = np.zeros(t, dtype=np.int64)
        base = np.zeros(t)
        out = refine_headings([own, neighbor], choice, base, floor=0.0)
        np.testing.assert_allclose(np.rad2deg(out), 7.5, atol=1e-6)

    def test_neighbor_outside_sector_ignored(self):
        own = _track(0.0, quality_value=0.5)
        far = _track(90.0, quality_value=0.5)
        t = 20
        choice = np.zeros(t, dtype=np.int64)
        base = np.zeros(t)
        out = refine_headings([own, far], choice, base, floor=0.0)
        np.testing.assert_allclose(out, 0.0, atol=1e-9)

    def test_negative_lag_neighbor_uses_opposite_ray(self):
        own = _track(0.0, quality_value=0.5)
        # Axis at 150°, negative lag ⇒ active direction 150° − 180° = −30°.
        neighbor = _track(150.0, quality_value=0.5, lag_sign=-1)
        t = 20
        choice = np.zeros(t, dtype=np.int64)
        base = np.zeros(t)
        out = refine_headings([own, neighbor], choice, base, floor=0.0)
        np.testing.assert_allclose(np.rad2deg(out), -15.0, atol=1e-6)

    def test_floor_subtracted(self):
        own = _track(0.0, quality_value=0.5)
        weak = _track(30.0, quality_value=0.1)
        t = 20
        choice = np.zeros(t, dtype=np.int64)
        base = np.zeros(t)
        out = refine_headings([own, weak], choice, base, floor=0.1)
        # Neighbor at the floor contributes nothing.
        np.testing.assert_allclose(out, 0.0, atol=1e-9)

    def test_unassigned_samples_untouched(self):
        own = _track(0.0, quality_value=0.5)
        t = 20
        choice = np.full(t, -1, dtype=np.int64)
        base = np.full(t, np.nan)
        out = refine_headings([own], choice, base)
        assert np.isnan(out).all()
