"""Unit tests for the floorplan substrate."""

import numpy as np
import pytest

from repro.env.floorplan import Floorplan, Wall, empty_floorplan, office_floorplan


class TestWall:
    def test_valid_wall(self):
        wall = Wall((0, 0), (1, 0), attenuation=0.5)
        assert wall.attenuation == 0.5

    def test_invalid_attenuation(self):
        with pytest.raises(ValueError):
            Wall((0, 0), (1, 0), attenuation=0.0)
        with pytest.raises(ValueError):
            Wall((0, 0), (1, 0), attenuation=1.5)


class TestFloorplan:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Floorplan(width=0.0, height=5.0)

    def test_contains(self):
        plan = empty_floorplan(10, 8)
        inside = plan.contains([(5, 4), (11, 4), (5, -1)])
        np.testing.assert_array_equal(inside, [True, False, False])

    def test_empty_floorplan_has_los_everywhere(self):
        plan = empty_floorplan()
        assert plan.has_los((1, 1), (30, 25))

    def test_wall_blocks_los(self):
        plan = Floorplan(width=10, height=10, walls=[Wall((5, 0), (5, 10))])
        assert not plan.has_los((1, 5), (9, 5))
        assert plan.has_los((1, 1), (4, 9))

    def test_path_attenuation_no_walls(self):
        plan = empty_floorplan()
        att = plan.path_attenuation([(0, 0)], [(5, 5)])
        np.testing.assert_allclose(att, 1.0)

    def test_path_attenuation_one_wall(self):
        plan = Floorplan(
            width=10, height=10, walls=[Wall((5, 0), (5, 10), attenuation=0.5)]
        )
        att = plan.path_attenuation([(1, 5)], [(9, 5)])
        np.testing.assert_allclose(att, 0.5)

    def test_path_attenuation_stacks_multiplicatively(self):
        plan = Floorplan(
            width=10,
            height=10,
            walls=[
                Wall((3, 0), (3, 10), attenuation=0.5),
                Wall((6, 0), (6, 10), attenuation=0.4),
            ],
        )
        att = plan.path_attenuation([(1, 5)], [(9, 5)])
        np.testing.assert_allclose(att, 0.2)

    def test_segment_blocked_vectorized(self):
        plan = Floorplan(width=10, height=10, walls=[Wall((5, 0), (5, 10))])
        starts = np.array([(1, 5), (6, 5)], dtype=float)
        ends = np.array([(9, 5), (9, 5)], dtype=float)
        blocked = plan.segment_blocked(starts, ends)
        np.testing.assert_array_equal(blocked, [True, False])

    def test_wall_arrays_shapes(self):
        plan = office_floorplan()
        starts, ends, atten = plan.wall_arrays
        assert starts.shape == ends.shape
        assert starts.shape[0] == len(plan.walls)
        assert atten.shape == (len(plan.walls),)


class TestOfficeFloorplan:
    def test_dimensions_match_paper(self):
        plan = office_floorplan()
        assert plan.width == pytest.approx(36.5)
        assert plan.height == pytest.approx(28.0)

    def test_has_seven_ap_sites(self):
        plan = office_floorplan()
        assert sorted(plan.ap_sites) == list(range(7))

    def test_ap_sites_inside_floor(self):
        plan = office_floorplan()
        for pos in plan.ap_sites.values():
            assert plan.contains([pos])[0]

    def test_site_zero_is_corner(self):
        plan = office_floorplan()
        x, y = plan.ap_sites[0]
        assert x < plan.width * 0.1
        assert y > plan.height * 0.9

    def test_far_corner_is_nlos_from_opposite_corner(self):
        plan = office_floorplan()
        assert not plan.has_los(plan.ap_sites[0], (plan.width - 2, 2))

    def test_some_los_near_ap(self):
        plan = office_floorplan()
        ap = np.asarray(plan.ap_sites[0])
        assert plan.has_los(ap, ap + np.array([0.5, -0.5]))

    def test_walls_present(self):
        plan = office_floorplan()
        assert len(plan.walls) > 10
