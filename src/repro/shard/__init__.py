"""Multi-process scale-out: a shard fleet behind one SessionManager API.

``repro.serve`` runs every session in one process; this package spreads
them across N worker processes — one private
:class:`~repro.serve.session.SessionManager` (and GIL) per shard —
behind a :class:`~repro.shard.router.ShardRouter` that speaks the same
``create`` / ``push`` / ``poll`` / ``flush_all`` / ``stats`` surface.
Sessions land on shards by consistent hash of their name
(:mod:`repro.shard.ring`), CSI crosses the per-shard pipes in
CRC-protected binary records (:mod:`repro.shard.messages`, built on
:class:`repro.binfmt.HeaderCodec`), and a dead shard's sessions resume
bit-identically on survivors from their ingest recordings
(:mod:`repro.shard.worker`).  See ``docs/sharding.md``.
"""

from repro.shard.fleet import (
    MIN_LINEAR_EFFICIENCY,
    measure_shard_scaling,
    render_scaling_table,
    render_shard_table,
    run_shard_sim,
)
from repro.shard.messages import ShardProtocolError
from repro.shard.ring import HashRing
from repro.shard.router import ShardError, ShardRouter, ShardSessionProxy
from repro.shard.worker import SHARD_CHUNK_SAMPLES, WorkerInit, shard_worker_main

__all__ = [
    "HashRing",
    "MIN_LINEAR_EFFICIENCY",
    "SHARD_CHUNK_SAMPLES",
    "ShardError",
    "ShardProtocolError",
    "ShardRouter",
    "ShardSessionProxy",
    "WorkerInit",
    "measure_shard_scaling",
    "render_scaling_table",
    "render_shard_table",
    "run_shard_sim",
    "shard_worker_main",
]
