"""End-to-end telemetry pipeline: provenance, exporter, flight recorder.

Covers the PR-7 acceptance criteria:

* per-sample provenance breakdowns telescope exactly — the stage sum IS
  the end-to-end latency, on the in-process serve path and across the
  faulted network front-end (side-band TELEMETRY frames);
* the registry exports losslessly as JSONL snapshots and Prometheus-style
  text exposition, served over the stdlib HTTP endpoint, and ``obs-top``
  renders per-session rows from either source;
* the flight recorder keeps a bounded ring of events and dumps a
  schema-valid JSON artifact on protocol errors and shutdown;
* the live gauges (``serve.queue_depth``, ``net.retained_frames``) are
  refreshed by registry collectors at snapshot time.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.net import framing
from repro.obs.export import (
    parse_exposition,
    parse_metric_name,
    read_last_snapshot,
    render_dashboard,
    render_exposition,
    session_rows,
)
from repro.obs.flight import FlightRecorder, validate_flight_dump
from repro.obs.provenance import (
    BREAKDOWN_STAGES,
    PROV_HISTOGRAMS,
    SampleProvenance,
    block_breakdown,
    validate_breakdown,
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset()
    obs.FLIGHT.configure(None)
    yield
    obs.disable()
    obs.reset()
    obs.FLIGHT.configure(None)


def _serve_session(trace, name="rx00"):
    from repro.serve.session import ServeConfig, ServeSession

    from repro import RimConfig

    return ServeSession(
        name,
        trace.array,
        trace.sampling_rate,
        rim_config=RimConfig(max_lag=40),
        serve_config=ServeConfig(block_seconds=1.0),
        carrier_wavelength=trace.carrier_wavelength,
    )


# -- provenance breakdowns ------------------------------------------------


def test_breakdown_telescopes_exactly():
    prov = SampleProvenance("t0", created_s=1.0)
    prov.ingest_s = 1.25
    prov.dequeue_s = 1.5
    breakdown = block_breakdown(prov, 1.5, 1.9, 2.0, n_samples=7)
    validate_breakdown(breakdown)
    assert breakdown["trace_id"] == "t0"
    assert breakdown["n_samples"] == 7
    assert breakdown["e2e_s"] == sum(breakdown[k] for k in BREAKDOWN_STAGES)
    assert breakdown["wire_s"] == pytest.approx(0.25)
    assert breakdown["kernel_s"] == pytest.approx(0.4)


def test_breakdown_clamps_clock_skew():
    """A client clock ahead of the server must not produce negative stages."""
    prov = SampleProvenance("skew", created_s=100.0)
    prov.stamp_ingest()
    prov.stamp_dequeue()
    breakdown = block_breakdown(
        prov, prov.dequeue_s, prov.dequeue_s, prov.dequeue_s
    )
    validate_breakdown(breakdown)
    assert all(breakdown[k] >= 0.0 for k in BREAKDOWN_STAGES)


def test_validate_breakdown_rejects_bad_payloads():
    with pytest.raises(ValueError):
        validate_breakdown({"trace_id": "x", "e2e_s": 1.0})
    prov = SampleProvenance("x")
    prov.stamp_ingest()
    prov.stamp_dequeue()
    breakdown = block_breakdown(prov, prov.dequeue_s, prov.dequeue_s + 0.1, 0.0)
    breakdown["e2e_s"] += 0.5
    with pytest.raises(ValueError):
        validate_breakdown(breakdown)


def test_serve_path_stamps_every_update(line_trace):
    obs.enable()
    session = _serve_session(line_trace)
    for k in range(line_trace.n_samples):
        session.offer(line_trace.data[k], float(line_trace.times[k]))
        session.drain()
    updates = session.flush()
    assert updates
    for update in updates:
        breakdown = update.stats["provenance"]
        validate_breakdown(breakdown)
        assert breakdown["trace_id"].startswith("rx00:")
    snap = obs.METRICS.snapshot()
    for name in PROV_HISTOGRAMS:
        assert snap[name]["count"] == len(updates)


def test_provenance_absent_when_disabled(line_trace):
    session = _serve_session(line_trace)
    for k in range(line_trace.n_samples):
        session.offer(line_trace.data[k], float(line_trace.times[k]))
        session.drain()
    updates = session.flush()
    assert updates
    for update in updates:
        assert "provenance" not in (update.stats or {})


def test_provenance_never_perturbs_estimates(line_trace):
    """Tracing invariance extends to provenance stamping (tier-1 guard)."""

    def run():
        session = _serve_session(line_trace)
        for k in range(line_trace.n_samples):
            session.offer(line_trace.data[k], float(line_trace.times[k]))
            session.drain()
        return session.flush()

    baseline = run()
    obs.enable()
    traced = run()
    obs.disable()
    assert len(baseline) == len(traced)
    for a, b in zip(baseline, traced):
        assert a.speed.tobytes() == b.speed.tobytes()
        assert a.heading.tobytes() == b.heading.tobytes()
        assert a.times.tobytes() == b.times.tobytes()
        assert a.total_distance == b.total_distance


# -- wire telemetry frames ------------------------------------------------


def test_sample_telemetry_frame_round_trip():
    blob = framing.pack_sample_telemetry(3, 41, 12.75)
    frame = framing.unpack_frame(blob)
    assert frame.frame_type == framing.FRAME_TELEMETRY
    assert frame.seq == 41
    assert framing.unpack_sample_telemetry(frame.payload) == 12.75


def test_update_telemetry_frame_round_trip():
    breakdown = {"trace_id": "rx00:9", "e2e_s": 0.5}
    blob = framing.pack_update_telemetry(3, 2, breakdown)
    frame = framing.unpack_frame(blob)
    assert framing.unpack_update_telemetry(frame.payload) == breakdown


def test_telemetry_frame_rejects_malformed_payloads():
    with pytest.raises(framing.FrameError):
        framing.unpack_sample_telemetry(b"\x00" * 7)
    with pytest.raises(framing.FrameError):
        framing.unpack_update_telemetry(
            json.dumps({"provenance": 7}).encode("utf-8")
        )


def test_golden_frame_types_untouched():
    """TELEMETRY is purely additive: existing frame ids keep their values."""
    assert framing.FRAME_TELEMETRY == 11
    assert framing.FRAME_TELEMETRY in framing.FRAME_TYPES
    assert framing.FRAME_NAMES[framing.FRAME_TELEMETRY] == "TELEMETRY"


def test_faulted_wire_updates_carry_breakdowns():
    from repro.net import NetFaultPlan, run_net_load
    from repro.serve.simulate import simulated_receivers

    obs.enable()
    receivers = simulated_receivers(2, seed=3, duration_s=1.0)
    plan = NetFaultPlan(
        seed=7, drop_fraction=0.05, duplicate_fraction=0.05,
        corrupt_fraction=0.03,
    )
    result = run_net_load(receivers, fault_plan=plan, check_baseline=True)
    snap = obs.METRICS.snapshot()
    obs.disable()

    assert result["baseline_match"] is True
    n_updates = 0
    for updates in result["updates"].values():
        for update in updates:
            validate_breakdown(update.stats["provenance"])
            n_updates += 1
    assert n_updates > 0
    for name in PROV_HISTOGRAMS:
        assert snap[name]["count"] > 0


# -- live gauges ----------------------------------------------------------


def test_retained_frames_gauge_live_while_server_up():
    from repro.net.server import NetServer, NetServerConfig

    obs.enable()
    server = NetServer(config=NetServerConfig(port=0)).start()
    try:
        snap = obs.METRICS.snapshot()
        assert snap["net.retained_frames"]["value"] == 0
    finally:
        server.close()
    # Closing deregisters the collector; the snapshot must not fail.
    obs.METRICS.snapshot()


def test_queue_depth_gauge_refreshes_at_snapshot_time(line_trace):
    from repro.serve.session import SessionManager

    obs.enable()
    manager = SessionManager()
    manager.create(
        "rx00", line_trace.array, line_trace.sampling_rate,
        carrier_wavelength=line_trace.carrier_wavelength,
    )
    for k in range(5):
        manager.push("rx00", line_trace.data[k], float(line_trace.times[k]))
    snap = obs.METRICS.snapshot()
    assert snap["serve.queue_depth{session=rx00}"]["value"] == 5
    manager.get("rx00").drain()
    snap = obs.METRICS.snapshot()
    assert snap["serve.queue_depth{session=rx00}"]["value"] == 0


# -- exporter + exposition ------------------------------------------------


def _populate_registry():
    obs.enable()
    obs.add("serve.offered{session=rx00}", 40)
    obs.set_gauge("serve.queue_depth{session=rx00}", 2)
    obs.add("serve.repairs{session=rx00}", 3)
    for v in (0.01, 0.02, 0.04):
        obs.observe(
            "serve.block_latency_s{session=rx00}", v,
            bounds=obs.LATENCY_BOUNDS_S,
        )


def test_exporter_jsonl_round_trip(tmp_path):
    _populate_registry()
    path = tmp_path / "telemetry.jsonl"
    with obs.TelemetryExporter(path, interval_s=0.02):
        time.sleep(0.08)
    lines = path.read_text().strip().splitlines()
    assert len(lines) >= 2
    assert json.loads(lines[-1])["event"] == "final"
    snap = read_last_snapshot(path)
    assert snap["schema"] == obs.TELEMETRY_SCHEMA
    assert snap["metrics"]["serve.offered{session=rx00}"]["value"] == 40
    seqs = [json.loads(line)["seq"] for line in lines]
    assert seqs == sorted(seqs)


def test_exposition_round_trip():
    _populate_registry()
    text = render_exposition()
    families = parse_exposition(text)
    counters = families["rim_serve_offered_total"]
    assert counters["type"] == "counter"
    [(name, labels, value)] = counters["samples"]
    assert labels == {"session": "rx00"} and value == 40
    hist = families["rim_serve_block_latency_s"]
    assert hist["type"] == "histogram"
    counts = {
        labels["le"]: value
        for name, labels, value in hist["samples"]
        if name.endswith("_bucket")
    }
    assert counts["+Inf"] == 3


def test_parse_exposition_rejects_malformed():
    with pytest.raises(ValueError):
        parse_exposition("rim_orphan_metric 1\n")
    bad_hist = (
        "# TYPE rim_h histogram\n"
        'rim_h_bucket{le="0.1"} 5\n'
        'rim_h_bucket{le="+Inf"} 3\n'  # non-cumulative
        "rim_h_sum 1\nrim_h_count 3\n"
    )
    with pytest.raises(ValueError):
        parse_exposition(bad_hist)


def test_metric_name_label_parsing():
    assert parse_metric_name("serve.offered{session=rx00}") == (
        "serve.offered", {"session": "rx00"}
    )
    assert parse_metric_name("net.frames_rx") == ("net.frames_rx", {})


def test_http_endpoint_serves_all_paths():
    _populate_registry()
    with obs.MetricsHTTPServer() as server:
        text = urllib.request.urlopen(server.url + "/metrics").read().decode()
        families = parse_exposition(text)
        assert "rim_serve_offered_total" in families
        payload = json.loads(
            urllib.request.urlopen(server.url + "/metrics.json").read()
        )
        assert payload["schema"] == obs.TELEMETRY_SCHEMA
        flight = json.loads(
            urllib.request.urlopen(server.url + "/flight.json").read()
        )
        validate_flight_dump(flight)
        ok = urllib.request.urlopen(server.url + "/healthz").read()
        assert ok == b"ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(server.url + "/nope")


# -- obs-top dashboard ----------------------------------------------------


def test_session_rows_and_dashboard():
    _populate_registry()
    rows = session_rows(obs.METRICS.snapshot())
    assert [r["session"] for r in rows] == ["rx00"]
    row = rows[0]
    assert row["offered"] == 40
    assert row["queue_depth"] == 2
    assert row["repairs"] == 3
    assert 0.0 < row["p50_s"] <= row["p95_s"]
    table = render_dashboard(rows)
    assert "rx00" in table and "p95 ms" in table
    assert "(no per-session metrics yet)" in render_dashboard([])


def test_obs_top_cli_from_file_and_endpoint(tmp_path, capsys):
    from repro import cli

    _populate_registry()
    path = tmp_path / "telemetry.jsonl"
    obs.TelemetryExporter(path).start().stop()

    assert cli.main(["obs-top", "--file", str(path), "--once"]) == 0
    assert "rx00" in capsys.readouterr().out

    with obs.MetricsHTTPServer() as server:
        assert cli.main(["obs-top", "--endpoint", server.url, "--once"]) == 0
    assert "rx00" in capsys.readouterr().out

    # Exactly one source is required.
    assert cli.main(["obs-top", "--once"]) == 2


# -- flight recorder ------------------------------------------------------


def test_flight_recorder_ring_and_dump(tmp_path):
    recorder = FlightRecorder(capacity=4)
    for k in range(9):
        recorder.record("tick", "test", session="rx00", k=k)
    payload = recorder.payload("unit-test")
    validate_flight_dump(payload)
    assert len(payload["events"]) == 4
    assert [e["detail"]["k"] for e in payload["events"]] == [5, 6, 7, 8]
    path = tmp_path / "flight.json"
    recorder.dump("unit-test", path)
    validate_flight_dump(json.loads(path.read_text()))


def test_flight_auto_dump_budget(tmp_path):
    recorder = FlightRecorder(capacity=8, max_dumps=2)
    assert recorder.auto_dump("unconfigured") is None
    recorder.configure(tmp_path)
    recorder.record("x", "test")
    first = recorder.auto_dump("reason one!")
    second = recorder.auto_dump("reason-two")
    assert first is not None and first.exists()
    assert "reason-one" in first.name
    assert recorder.auto_dump("over-budget") is None
    assert len(list(tmp_path.glob("flight-*.json"))) == 2
    validate_flight_dump(json.loads(second.read_text()))


def test_validate_flight_dump_rejects_drift():
    recorder = FlightRecorder()
    recorder.record("x", "test")
    payload = recorder.payload("ok")
    bad = dict(payload, schema="rim-flight/v0")
    with pytest.raises(ValueError):
        validate_flight_dump(bad)
    with pytest.raises(ValueError):
        validate_flight_dump({"schema": payload["schema"]})


def test_protocol_error_dumps_flight_artifact(tmp_path):
    """DATA before HELLO is a protocol error: ERROR frame + flight dump."""
    from repro.net.server import NetServer, NetServerConfig

    obs.FLIGHT.configure(tmp_path)
    server = NetServer(config=NetServerConfig(port=0)).start()
    try:
        with socket.create_connection(("127.0.0.1", server.port), 5.0) as sock:
            payload = np.zeros(4, dtype=np.complex64).tobytes()
            sock.sendall(
                framing.pack_frame(framing.FRAME_DATA, 0, 0, payload)
            )
            sock.settimeout(5.0)
            deadline = time.time() + 5.0
            blob = b""
            while time.time() < deadline:
                try:
                    chunk = sock.recv(4096)
                except TimeoutError:
                    break
                if not chunk:
                    break
                blob += chunk
    finally:
        server.close()
    dumps = list(tmp_path.glob("flight-*protocol-error*.json"))
    assert dumps, "protocol error must produce a flight artifact"
    payload = json.loads(dumps[0].read_text())
    validate_flight_dump(payload)
    assert any(e["kind"] == "protocol_error" for e in payload["events"])


def test_graceful_shutdown_records_flight_event(tmp_path):
    from repro.shutdown import GracefulShutdown

    obs.FLIGHT.configure(tmp_path)
    with GracefulShutdown() as stop:
        stop.request_stop()
    dumps = list(tmp_path.glob("flight-*graceful-shutdown*.json"))
    assert dumps
    payload = json.loads(dumps[0].read_text())
    validate_flight_dump(payload)
    assert any(e["kind"] == "shutdown" for e in payload["events"])


# -- CLI telemetry flags --------------------------------------------------


def test_net_load_cli_writes_telemetry_artifacts(tmp_path, capsys):
    from repro import cli

    jsonl = tmp_path / "telemetry.jsonl"
    metrics_out = tmp_path / "metrics.txt"
    flight_dir = tmp_path / "flight"
    rc = cli.main([
        "net-load", "--sessions", "1", "--duration", "1.0",
        "--telemetry-jsonl", str(jsonl),
        "--metrics-out", str(metrics_out),
        "--flight-dir", str(flight_dir),
    ])
    assert rc == 0
    assert not obs.enabled(), "CLI must restore the obs state on exit"
    families = parse_exposition(metrics_out.read_text())
    for name in PROV_HISTOGRAMS:
        family = families["rim_" + name.replace(".", "_")]
        assert family["type"] == "histogram"
    snap = read_last_snapshot(jsonl)
    assert any(k.startswith("prov.") for k in snap["metrics"])
    dumps = list(flight_dir.glob("flight-*.json"))
    assert dumps
    validate_flight_dump(json.loads(dumps[0].read_text()))


def test_configure_logging_session_tag(capsys):
    import logging

    from repro.cli import _SessionTagFilter

    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s [%(session)s]: %(message)s")
    )
    handler.addFilter(_SessionTagFilter())
    logger = logging.getLogger("repro.test_telemetry")
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    try:
        logger.info("plain")
        logger.info("tagged", extra={"session": "rx07"})
    finally:
        logger.removeHandler(handler)
    err = capsys.readouterr().err
    assert "[-]: plain" in err
    assert "[rx07]: tagged" in err
