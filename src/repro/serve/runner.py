"""Fan a batch of traces across a worker pool, bit-identically.

:class:`ParallelRunner` replays each :class:`~repro.channel.sampler.CsiTrace`
through its own private :class:`~repro.core.streaming.StreamingRim`, so a
session never shares mutable state with its neighbors and the per-session
numbers are **bit-identical** no matter how the batch is scheduled
(serial, thread pool, or process pool — enforced by
``tests/test_serve.py``).

Threads are the default: the batched TRRS kernels spend their time in
BLAS band GEMMs and einsums, which release the GIL, so CPU-bound sessions
overlap on multi-core hosts without pickling anything.  The process pool
is an opt-in for workloads where the GIL-holding Python glue dominates;
it requires picklable traces (ours are plain dataclasses of arrays).
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.sampler import CsiTrace
from repro.core.config import RimConfig
from repro.core.streaming import StreamingRim

logger = logging.getLogger(__name__)

RUNNER_MODES = ("serial", "thread", "process")


@dataclass
class SessionRunResult:
    """Everything one replayed session produced (picklable, comparable).

    Attributes:
        name: Session id.
        n_samples: Packets pushed.
        n_blocks: Updates emitted (including the final flush).
        total_distance: Cumulative streamed distance, meters.
        times: Concatenated per-update timestamps.
        speed: Concatenated speed estimates, m/s.
        heading: Concatenated device-frame headings, radians.
        moving: Concatenated movement mask.
        block_distances: Per-update block distances.
        degraded_blocks: Updates whose health reported degradation.
        dead_chains: Union of dead-chain ids across all updates.
        repairs: Guard/serving repair counters summed across updates.
        wall_s: Wall-clock seconds this session's replay took.
    """

    name: str
    n_samples: int
    n_blocks: int
    total_distance: float
    times: np.ndarray
    speed: np.ndarray
    heading: np.ndarray
    moving: np.ndarray
    block_distances: np.ndarray
    degraded_blocks: int
    dead_chains: Tuple[int, ...]
    repairs: Dict[str, int]
    wall_s: float

    def same_estimates(self, other: "SessionRunResult") -> bool:
        """Bit-identical estimates and health flags versus ``other``."""
        return bool(
            self.total_distance == other.total_distance
            and np.array_equal(self.times, other.times)
            and np.array_equal(self.speed, other.speed)
            and np.array_equal(self.heading, other.heading, equal_nan=True)
            and np.array_equal(self.moving, other.moving)
            and np.array_equal(self.block_distances, other.block_distances)
            and self.degraded_blocks == other.degraded_blocks
            and self.dead_chains == other.dead_chains
            and self.repairs == other.repairs
        )


def replay_trace(
    name: str,
    trace: CsiTrace,
    rim_config: Optional[RimConfig] = None,
    block_seconds: float = 1.0,
) -> SessionRunResult:
    """Stream one trace through a fresh StreamingRim, packet by packet."""
    stream = StreamingRim(
        trace.array,
        trace.sampling_rate,
        rim_config,
        block_seconds=block_seconds,
        carrier_wavelength=trace.carrier_wavelength,
    )
    t0 = time.perf_counter()
    updates = []
    for k in range(trace.n_samples):
        update = stream.push(trace.data[k], float(trace.times[k]))
        if update is not None:
            updates.append(update)
    final = stream.flush()
    if final is not None:
        updates.append(final)
    wall = time.perf_counter() - t0

    repairs: Dict[str, int] = {}
    dead: set = set()
    degraded = 0
    for u in updates:
        if u.health is None:
            continue
        if u.health.degraded:
            degraded += 1
        dead.update(u.health.dead_chains)
        for key, value in u.health.repairs.items():
            repairs[key] = repairs.get(key, 0) + value
    if updates:
        times = np.concatenate([u.times for u in updates])
        speed = np.concatenate([u.speed for u in updates])
        heading = np.concatenate([u.heading for u in updates])
        moving = np.concatenate([u.moving for u in updates])
    else:
        times = speed = heading = np.zeros(0)
        moving = np.zeros(0, dtype=bool)
    return SessionRunResult(
        name=name,
        n_samples=trace.n_samples,
        n_blocks=len(updates),
        total_distance=stream.total_distance,
        times=times,
        speed=speed,
        heading=heading,
        moving=moving,
        block_distances=np.array([u.block_distance for u in updates]),
        degraded_blocks=degraded,
        dead_chains=tuple(sorted(dead)),
        repairs=repairs,
        wall_s=wall,
    )


def _replay_job(job: Tuple) -> SessionRunResult:
    """Module-level worker (picklable for the process pool)."""
    name, trace, rim_config, block_seconds = job
    return replay_trace(name, trace, rim_config, block_seconds)


class ParallelRunner:
    """Run many single-session replays over a worker pool.

    Args:
        n_workers: Pool width; defaults to ``os.cpu_count()``.  Ignored in
            ``"serial"`` mode.
        mode: ``"thread"`` (default), ``"process"`` (opt-in, picklable
            jobs), or ``"serial"`` (a plain loop — the equivalence
            baseline with zero pool overhead).

    After :meth:`run`, ``n_workers_effective`` reports how many workers
    could actually work in parallel on that batch (never more than the
    job count, and in process mode never more than the machine's cores —
    spawning processes a single-core host cannot schedule only adds
    pickling overhead).  When the answer is one, the runner executes
    serially and ``fallback_reason`` says why, instead of silently
    degrading behind pool machinery; the perf baseline records both so
    BENCH_perf.json cannot claim parallelism that never happened.
    """

    def __init__(self, n_workers: Optional[int] = None, mode: str = "thread"):
        if mode not in RUNNER_MODES:
            raise ValueError(f"mode must be one of {RUNNER_MODES}, got {mode!r}")
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.mode = mode
        self.n_workers_effective: Optional[int] = None
        self.fallback_reason: Optional[str] = None

    def _plan(self, n_jobs: int) -> Tuple[int, Optional[str]]:
        """Honest pool width for ``n_jobs`` + the reason when it is 1."""
        if self.mode == "serial":
            return 1, "serial mode requested"
        effective = min(self.n_workers, n_jobs)
        if self.mode == "process":
            n_cpus = os.cpu_count() or 1
            effective = min(effective, n_cpus)
            if effective <= 1:
                if n_jobs <= 1:
                    return 1, "single job"
                if n_cpus <= 1:
                    return 1, f"host has {n_cpus} cpu"
                return 1, "n_workers=1"
        elif effective <= 1:
            return 1, "single job" if n_jobs <= 1 else "n_workers=1"
        return effective, None

    def run(
        self,
        traces: Sequence[CsiTrace],
        names: Optional[Sequence[str]] = None,
        rim_config: Optional[RimConfig] = None,
        block_seconds: float = 1.0,
    ) -> List[SessionRunResult]:
        """Replay every trace; results come back in input order.

        Args:
            traces: One CsiTrace per session.
            names: Session ids (default ``rx00..``).
            rim_config: Estimator config shared by all sessions.
            block_seconds: Streaming emission cadence.
        """
        if names is None:
            names = [f"rx{k:02d}" for k in range(len(traces))]
        if len(names) != len(traces):
            raise ValueError(
                f"got {len(names)} names for {len(traces)} traces"
            )
        jobs = [
            (name, trace, rim_config, block_seconds)
            for name, trace in zip(names, traces)
        ]
        effective, reason = self._plan(len(jobs))
        self.n_workers_effective = effective
        self.fallback_reason = reason
        if effective <= 1:
            if self.mode != "serial":
                logger.info(
                    "%s pool falling back to serial execution (%s); "
                    "n_workers_effective=1",
                    self.mode, reason,
                )
            return [_replay_job(job) for job in jobs]
        if self.mode == "thread":
            with ThreadPoolExecutor(max_workers=effective) as pool:
                return list(pool.map(_replay_job, jobs))
        with ProcessPoolExecutor(max_workers=effective) as pool:
            return list(pool.map(_replay_job, jobs))
