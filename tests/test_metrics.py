"""Unit tests for evaluation metrics, reporting, and NaN helpers."""

import numpy as np
import pytest

from repro.eval.metrics import (
    cdf,
    circular_mean,
    detection_counts,
    distance_error,
    heading_error_deg,
    percentile_summary,
    synchronized_position_errors,
    trajectory_projection_errors,
)
from repro.eval.report import format_value, render_report
from repro.nanops import nanmax, nanmean, nanmedian


class TestScalarMetrics:
    def test_distance_error(self):
        assert distance_error(1.2, 1.0) == pytest.approx(0.2)
        assert distance_error(0.8, 1.0) == pytest.approx(0.2)

    def test_heading_error_wraps(self):
        assert heading_error_deg(np.deg2rad(170.0), -170.0) == pytest.approx(20.0)
        assert heading_error_deg(np.deg2rad(-5.0), 5.0) == pytest.approx(10.0)

    def test_heading_error_zero(self):
        assert heading_error_deg(np.deg2rad(45.0), 45.0) == pytest.approx(0.0)

    def test_circular_mean_wraps(self):
        angles = np.deg2rad([179.0, -179.0])
        assert abs(np.rad2deg(circular_mean(angles))) == pytest.approx(180.0, abs=0.1)

    def test_circular_mean_ignores_nan(self):
        angles = np.array([0.1, np.nan, 0.3])
        assert circular_mean(angles) == pytest.approx(0.2, abs=1e-6)

    def test_circular_mean_empty(self):
        assert np.isnan(circular_mean(np.array([np.nan])))


class TestCdfAndSummary:
    def test_cdf_monotone(self):
        out = cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(out["x"], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(out["p"], [1 / 3, 2 / 3, 1.0])

    def test_cdf_empty(self):
        out = cdf([])
        assert out["x"].size == 0

    def test_percentile_summary(self):
        s = percentile_summary([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s["median"] == 3.0
        assert s["max"] == 100.0
        assert s["mean"] == pytest.approx(22.0)

    def test_percentile_summary_ignores_nan(self):
        s = percentile_summary([1.0, np.nan, 3.0])
        assert s["median"] == pytest.approx(2.0)

    def test_percentile_summary_empty(self):
        s = percentile_summary([])
        assert np.isnan(s["median"])


class TestTrajectoryErrors:
    def test_point_on_path_zero_error(self):
        truth = np.array([(0, 0), (10, 0)], dtype=float)
        est = np.array([(5, 0)], dtype=float)
        np.testing.assert_allclose(trajectory_projection_errors(est, truth), 0.0)

    def test_offset_path(self):
        truth = np.array([(0, 0), (10, 0)], dtype=float)
        est = np.array([(5, 0.5), (2, -0.3)], dtype=float)
        np.testing.assert_allclose(
            trajectory_projection_errors(est, truth), [0.5, 0.3]
        )

    def test_multi_segment_takes_minimum(self):
        truth = np.array([(0, 0), (10, 0), (10, 10)], dtype=float)
        est = np.array([(10.4, 5.0)], dtype=float)
        np.testing.assert_allclose(trajectory_projection_errors(est, truth), [0.4])

    def test_single_point_truth(self):
        truth = np.array([(1.0, 1.0)])
        est = np.array([(4.0, 5.0)])
        np.testing.assert_allclose(trajectory_projection_errors(est, truth), [5.0])

    def test_synchronized_errors(self):
        a = np.array([(0, 0), (1, 1)], dtype=float)
        b = np.array([(0, 1), (1, 1)], dtype=float)
        np.testing.assert_allclose(synchronized_position_errors(a, b), [1.0, 0.0])

    def test_synchronized_shape_mismatch(self):
        with pytest.raises(ValueError):
            synchronized_position_errors(np.zeros((2, 2)), np.zeros((3, 2)))


class TestDetectionCounts:
    def test_all_correct(self):
        out = detection_counts([True, True], [True, True])
        assert out["detection_rate"] == 1.0
        assert out["miss_rate"] == 0.0

    def test_misses_counted(self):
        out = detection_counts([True, False, True, False], [True, False, True, False])
        assert out["detection_rate"] == 0.5
        assert out["miss_rate"] == 0.5

    def test_empty(self):
        out = detection_counts([], [])
        assert out["detection_rate"] == 0.0


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.123456) == "0.123"
        assert format_value({"a": 1.0}) == "{a=1}"
        assert format_value((1.0, 2.0)) == "(1, 2)"

    def test_render_contains_both_columns(self):
        result = {
            "measured": {"median_cm": 2.5},
            "paper": {"median_cm": 2.3, "note": "hello"},
        }
        text = render_report("Fig. X", result)
        assert "Fig. X" in text
        assert "2.3" in text
        assert "2.5" in text
        assert "hello" in text

    def test_render_handles_missing_paper_key(self):
        text = render_report("T", {"measured": {"only_measured": 1.0}, "paper": {}})
        assert "only_measured" in text


class TestNanOps:
    def test_nanmean_all_nan_silent(self, recwarn):
        out = nanmean(np.array([np.nan, np.nan]))
        assert np.isnan(out)
        assert len(recwarn) == 0

    def test_nanmedian_axis(self):
        x = np.array([[1.0, np.nan], [3.0, 5.0]])
        np.testing.assert_allclose(nanmedian(x, axis=0), [2.0, 5.0])

    def test_nanmax_mixed(self):
        x = np.array([np.nan, 2.0, 7.0])
        assert nanmax(x) == 7.0
