"""Vector-font letter strokes for the handwriting application (§6.3.1).

The paper demonstrates desk handwriting: a user moves the antenna array to
write letters ~20 cm tall; RIM reconstructs the strokes with ~2.4 cm mean
trajectory error (Fig. 18).  Letters here are single-stroke polylines in a
unit box (x, y ∈ [0, 1]), scaled and swept at constant pen speed.  Curved
glyphs are polygonal approximations with enough vertices to exercise RIM's
direction tracking on curved strokes.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.channel.constants import DEFAULT_SAMPLING_RATE
from repro.motionsim.profiles import polyline_trajectory
from repro.motionsim.trajectory import Trajectory


def _arc(cx, cy, r, start_deg, stop_deg, n=12):
    angles = np.deg2rad(np.linspace(start_deg, stop_deg, n))
    return [(cx + r * np.cos(a), cy + r * np.sin(a)) for a in angles]


# Single-stroke letter skeletons in the unit box.
_LETTERS: Dict[str, List] = {
    "C": _arc(0.55, 0.5, 0.45, 60, 300, 16),
    "I": [(0.5, 1.0), (0.5, 0.0)],
    "L": [(0.2, 1.0), (0.2, 0.0), (0.8, 0.0)],
    "M": [(0.1, 0.0), (0.1, 1.0), (0.5, 0.35), (0.9, 1.0), (0.9, 0.0)],
    "N": [(0.1, 0.0), (0.1, 1.0), (0.9, 0.0), (0.9, 1.0)],
    "O": _arc(0.5, 0.5, 0.45, 90, 450, 20),
    "R": (
        [(0.15, 0.0), (0.15, 1.0)]
        + _arc(0.15, 0.75, 0.25, 90, -90, 10)
        + [(0.15, 0.5), (0.85, 0.0)]
    ),
    "S": _arc(0.5, 0.75, 0.25, 90, 270, 10)[:-1] + _arc(0.5, 0.25, 0.25, 90, -90, 10),
    "U": [(0.15, 1.0), (0.15, 0.35)] + _arc(0.5, 0.35, 0.35, 180, 360, 10) + [(0.85, 1.0)],
    "V": [(0.1, 1.0), (0.5, 0.0), (0.9, 1.0)],
    "W": [(0.05, 1.0), (0.3, 0.0), (0.5, 0.65), (0.7, 0.0), (0.95, 1.0)],
    "Z": [(0.1, 1.0), (0.9, 1.0), (0.1, 0.0), (0.9, 0.0)],
}


def available_letters() -> List[str]:
    """Letters with a stroke definition."""
    return sorted(_LETTERS)


def letter_waypoints(letter: str, height: float = 0.2, origin=(0.0, 0.0)) -> np.ndarray:
    """Stroke waypoints of a letter scaled to ``height`` meters.

    Args:
        letter: One of :func:`available_letters` (case-insensitive).
        height: Letter height, meters (paper examples are ~20 cm).
        origin: World position of the letter box's lower-left corner.

    Returns:
        (N, 2) waypoints.
    """
    key = letter.upper()
    if key not in _LETTERS:
        raise ValueError(f"no stroke defined for {letter!r}; have {available_letters()}")
    pts = np.asarray(_LETTERS[key], dtype=np.float64)
    origin = np.asarray(origin, dtype=np.float64)
    return origin[None, :] + pts * height


def handwriting_trajectory(
    letter: str,
    origin=(0.0, 0.0),
    height: float = 0.2,
    pen_speed: float = 0.25,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
    orientation_deg: float = 0.0,
) -> Trajectory:
    """Pen trajectory writing one letter at constant stroke speed.

    Args:
        letter: Letter to write.
        origin: Lower-left corner of the letter box, world coordinates.
        height: Letter height, meters.
        pen_speed: Stroke speed, m/s (desk handwriting is slow).
        sampling_rate: CSI packet rate.
        orientation_deg: Fixed array orientation while writing.

    Returns:
        The pen :class:`Trajectory`.
    """
    waypoints = letter_waypoints(letter, height=height, origin=origin)
    return polyline_trajectory(
        waypoints, pen_speed, sampling_rate, orientation_deg=orientation_deg
    )


def word_trajectories(
    word: str,
    origin=(0.0, 0.0),
    height: float = 0.2,
    spacing: float = 0.08,
    pen_speed: float = 0.25,
    sampling_rate: float = DEFAULT_SAMPLING_RATE,
) -> List[Trajectory]:
    """One trajectory per letter of a word, spaced along x."""
    origin = np.asarray(origin, dtype=np.float64)
    advance = height * 0.9 + spacing
    out = []
    for k, letter in enumerate(word):
        letter_origin = origin + np.array([k * advance, 0.0])
        out.append(
            handwriting_trajectory(
                letter,
                origin=letter_origin,
                height=height,
                pen_speed=pen_speed,
                sampling_rate=sampling_rate,
            )
        )
    return out
