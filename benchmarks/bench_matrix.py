#!/usr/bin/env python
"""Experiment-matrix smoke driver: run a matrix, validate, gate (CI).

Runs a matrix spec through :func:`repro.bench.run_matrix`, writes the
run-table artifacts, validates the table schema and digest, checks the
committed ``BENCH_perf.json`` round-trips through the v9 perf validator,
and gates the table's reference cell against that baseline's capacity
section.  What CI's ``bench-matrix`` job runs on top of the equivalent
CLI verb (``python -m repro.cli bench run``) — this script adds the
schema-round-trip assertion the acceptance criteria name.

Usage::

    PYTHONPATH=src python benchmarks/bench_matrix.py \
        --matrix benchmarks/matrices/smoke.toml --repetitions 1 \
        --out /tmp/rim-bench --gate BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--matrix", required=True, metavar="PATH",
        help="matrix spec (.toml on python >= 3.11, .json anywhere)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write run_table.{json,md,csv} into DIR",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, metavar="N",
        help="override the spec's measured repetitions per cell",
    )
    parser.add_argument(
        "--filter", action="append", default=[], metavar="KEY=VALUE",
        help="only run matching cells (axis or cell=SUBSTRING; repeatable)",
    )
    parser.add_argument(
        "--gate", metavar="PATH", default=None,
        help="gate the reference cell against the perf baseline at PATH, "
        "after asserting PATH round-trips the v9 schema",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional regression for --gate (default 0.25)",
    )
    args = parser.parse_args(argv)

    from repro.bench import (
        gate_reference_cell,
        load_spec,
        parse_filters,
        render_bench_csv,
        render_bench_table,
        run_matrix,
        validate_run_table,
    )
    from repro.eval.perf import check_perf_regression, validate_perf_payload

    spec = load_spec(args.matrix)
    if args.repetitions is not None:
        spec.repetitions = args.repetitions
        spec.validate()
    payload = run_matrix(
        spec,
        filters=parse_filters(args.filter),
        progress=lambda line: print(line, file=sys.stderr),
    )
    validate_run_table(payload)
    print("run-table schema check: ok")
    print()
    print(render_bench_table(payload), end="")

    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        with open(out / "run_table.json", "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        (out / "run_table.md").write_text(
            render_bench_table(payload), encoding="utf-8"
        )
        (out / "run_table.csv").write_text(
            render_bench_csv(payload), encoding="utf-8"
        )
        print(f"wrote {out}/run_table.{{json,md,csv}}")

    if args.gate is not None:
        with open(args.gate, "r", encoding="utf-8") as fh:
            perf_payload = json.load(fh)
        # The committed baseline must itself be a valid v9 payload and
        # round-trip through the perf gate against itself (zero
        # regressions by construction) — the acceptance assertion that
        # schema v9 and check_perf_regression actually agree.
        validate_perf_payload(perf_payload)
        roundtrip = check_perf_regression(
            perf_payload, perf_payload, max_regression=args.max_regression
        )
        if roundtrip:
            print(
                f"{args.gate} does not round-trip its own gate:",
                file=sys.stderr,
            )
            for failure in roundtrip:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"perf baseline round-trip ({args.gate}): ok")
        failures = gate_reference_cell(
            payload, perf_payload, max_regression=args.max_regression
        )
        if failures:
            print(f"bench gate vs {args.gate}: FAIL", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(
            f"bench gate vs {args.gate}: ok (budget +{args.max_regression:.0%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
