"""Unit tests for the floorplan particle filter and fusion (§6.3.3)."""

import numpy as np
import pytest

from repro.env.floorplan import Floorplan, Wall, empty_floorplan
from repro.fusion.particle_filter import (
    ParticleFilter,
    ParticleFilterConfig,
    run_particle_filter,
)


class TestParticleFilter:
    def test_initial_estimate_near_start(self):
        pf = ParticleFilter(empty_floorplan(), (5.0, 5.0), rng=np.random.default_rng(0))
        est = pf.estimate()
        assert np.linalg.norm(est - np.array([5.0, 5.0])) < 0.3

    def test_tracks_straight_motion(self):
        rng = np.random.default_rng(1)
        pf = ParticleFilter(empty_floorplan(), (5.0, 5.0), rng=rng)
        for _ in range(20):
            est = pf.step(0.25, 0.0)
        assert est[0] == pytest.approx(10.0, abs=0.5)
        assert est[1] == pytest.approx(5.0, abs=0.5)

    def test_wall_prunes_hypotheses(self):
        """Particles trying to cross a wall die; the estimate respects it."""
        plan = Floorplan(
            width=20, height=10, walls=[Wall((10, 0), (10, 10))]
        )
        rng = np.random.default_rng(2)
        pf = ParticleFilter(plan, (8.0, 5.0), rng=rng)
        # Push straight at the wall; true motion stops at it.
        for _ in range(12):
            est = pf.step(0.3, 0.0)
        assert est[0] <= 10.1

    def test_weights_stay_normalized(self):
        rng = np.random.default_rng(3)
        pf = ParticleFilter(empty_floorplan(), (5.0, 5.0), rng=rng)
        for _ in range(10):
            pf.step(0.2, 0.3)
            assert pf.weights.sum() == pytest.approx(1.0, rel=1e-9)
            assert (pf.weights >= 0).all()

    def test_respawn_keeps_filter_alive(self):
        """Even when nearly all particles die, the filter keeps running."""
        plan = Floorplan(width=20, height=10, walls=[Wall((10, 0), (10, 10))])
        rng = np.random.default_rng(4)
        config = ParticleFilterConfig(n_particles=100)
        pf = ParticleFilter(plan, (9.7, 5.0), config=config, rng=rng)
        for _ in range(10):
            est = pf.step(0.5, 0.0)  # everyone is pushed into the wall
        assert np.isfinite(est).all()

    def test_heading_correction(self):
        """With walls forming a corridor, the PF corrects biased heading —
        the Fig. 21 mechanism."""
        corridor = Floorplan(
            width=30,
            height=10,
            walls=[Wall((0, 4.0), (30, 4.0)), Wall((0, 6.0), (30, 6.0))],
        )
        rng = np.random.default_rng(5)
        pf = ParticleFilter(corridor, (2.0, 5.0), rng=rng, initial_spread=0.1)
        biased_heading = np.deg2rad(8.0)  # gyro drift pushes into the wall
        for _ in range(40):
            est = pf.step(0.25, biased_heading)
        # Dead reckoning would exit the corridor (y = 5 + 10*sin(8°) ≈ 6.4).
        assert 4.0 <= est[1] <= 6.0
        assert est[0] > 8.0


class TestRunParticleFilter:
    def test_output_length(self):
        track = run_particle_filter(
            empty_floorplan(),
            (1.0, 1.0),
            np.full(10, 0.2),
            np.zeros(10),
            rng=np.random.default_rng(6),
        )
        assert track.shape == (11, 2)
        np.testing.assert_allclose(track[0], [1.0, 1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_particle_filter(
                empty_floorplan(), (0, 0), np.zeros(5), np.zeros(4)
            )
