"""Bench: Fig. 18 — desk handwriting (paper: 2.4 cm mean error)."""

from repro.eval.applications import run_fig18_handwriting
from repro.eval.report import print_report


def test_fig18_handwriting(benchmark, quick):
    result = benchmark.pedantic(
        run_fig18_handwriting, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 18 — handwriting", result)
    m = result["measured"]
    # Shape: letters reconstruct at centimeter-scale trajectory error.
    assert m["mean_error_cm"] < 10.0
