"""NaN-tolerant reductions that stay silent on all-NaN slices.

``np.nanmean``/``np.nanmedian`` emit RuntimeWarnings when a slice holds no
finite value; lost-packet columns make that a routine, expected condition
here, so these wrappers return NaN quietly instead.
"""

from __future__ import annotations

import warnings

import numpy as np


def nanmean(values: np.ndarray, axis=None) -> np.ndarray:
    """np.nanmean without the all-NaN RuntimeWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmean(values, axis=axis)


def nanmedian(values: np.ndarray, axis=None) -> np.ndarray:
    """np.nanmedian without the all-NaN RuntimeWarning.

    ``np.nanmedian`` compacts every slice through its NaN-stripping
    apply-along-axis machinery even when a slice holds no NaN at all.
    Lag-matrix slices here are usually clean (losses are bursty, not
    uniform), so clean slices are routed through the partition-based
    ``np.median`` instead and only NaN-carrying slices pay the slow
    path.  Both reductions sort the same values, so the split is
    bit-identical to calling ``np.nanmedian`` on everything.
    """
    values = np.asarray(values)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        if (
            not isinstance(axis, int)
            or values.dtype.kind != "f"
            or values.ndim < 1
            or values.size == 0
        ):
            return np.nanmedian(values, axis=axis)
        nan_slices = np.isnan(values).any(axis=axis)
        if not nan_slices.any():
            return np.median(values, axis=axis)
        if nan_slices.all():
            return np.nanmedian(values, axis=axis)
        rows = np.moveaxis(values, axis, -1).reshape(-1, values.shape[axis])
        dirty = nan_slices.ravel()
        out = np.empty(dirty.shape, dtype=values.dtype)
        out[~dirty] = np.median(rows[~dirty], axis=-1)
        out[dirty] = np.nanmedian(rows[dirty], axis=-1)
        return out.reshape(nan_slices.shape)


def nanmax(values: np.ndarray, axis=None) -> np.ndarray:
    """np.nanmax without the all-NaN RuntimeWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmax(values, axis=axis)
