"""Tests for the ASCII figure rendering helpers."""

import numpy as np
import pytest

from repro.eval.figures import ascii_bars, ascii_cdf, ascii_plot, render_result_figures


class TestAsciiPlot:
    def test_renders_points(self):
        out = ascii_plot([0, 1, 2], [0, 1, 4], width=20, height=6)
        assert "*" in out
        assert out.count("\n") >= 6

    def test_axis_annotations(self):
        out = ascii_plot([0, 10], [0, 5], x_label="lag", y_label="trrs")
        assert "lag" in out
        assert "trrs" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_plot([1, 2, 3], [5, 5, 5])
        assert "*" in out

    def test_empty_series(self):
        assert "no finite data" in ascii_plot([], [])

    def test_nan_filtered(self):
        out = ascii_plot([0, 1, np.nan], [0, np.nan, 1])
        assert "*" in out


class TestAsciiCdf:
    def test_monotone_staircase(self):
        out = ascii_cdf([1.0, 2.0, 3.0, 4.0])
        assert "CDF" in out

    def test_empty(self):
        assert "no finite data" in ascii_cdf([])


class TestAsciiBars:
    def test_bars_scale(self):
        out = ascii_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_values_printed(self):
        out = ascii_bars({"x": 3.14159})
        assert "3.14" in out

    def test_empty(self):
        assert "no finite data" in ascii_bars({})


class TestRenderResultFigures:
    def test_dict_metrics_become_bars(self):
        result = {"measured": {"median_by_v": {1: 3.0, 10: 1.0}}}
        out = render_result_figures("figX", result)
        assert "median_by_v" in out
        assert "#" in out

    def test_error_lists_become_cdfs(self):
        result = {"measured": {}, "cart_errors": [0.01, 0.02, 0.05, 0.08]}
        out = render_result_figures("fig11", result)
        assert "CDF" in out

    def test_nothing_figure_shaped(self):
        out = render_result_figures("figY", {"measured": {"scalar": 1.0}})
        assert "nothing figure-shaped" in out
