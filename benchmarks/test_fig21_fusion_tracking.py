"""Bench: Fig. 21 — RIM distance + gyro heading + particle filter."""

from repro.eval.applications import run_fig21_fusion_tracking
from repro.eval.report import print_report


def test_fig21_fusion_tracking(benchmark, quick):
    result = benchmark.pedantic(
        run_fig21_fusion_tracking, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Fig. 21 — RIM + inertial sensors + PF", result)
    m = result["measured"]
    # Shape: the fused tracker holds meter-scale accuracy over the floor,
    # and the floorplan particle filter does not hurt (usually helps).
    assert m["dead_reckoned_median_m"] < 3.0
    assert m["filtered_median_m"] < 3.0
    assert m["pf_improves"]
