"""Kernel-backend registry: how the pipeline picks its TRRS kernels.

The alignment hot path (§3.2/§4.2 — by far the dominant cost in
``BENCH_perf.json``) is served by interchangeable *kernel backends*:

* ``reference`` — the original per-pair loops of
  :func:`repro.core.alignment.alignment_matrix`.  Slow, simple, and the
  numerical oracle every other backend is tested against.
* ``batched`` — BLAS band GEMMs over a shared per-trace row store that
  reuses pre-screen rows across pipeline stages and (in streaming) the
  previous block's rows across blocks (:mod:`repro.perf.kernels`).

Selection order:

1. ``RimConfig.kernel_backend`` when it is not ``"auto"``;
2. the ``RIM_KERNEL`` environment variable when set;
3. the default, ``"batched"``.

Kernel *precision* resolves the same way through
:func:`resolve_kernel_dtype`: ``RimConfig.kernel_dtype`` >
``RIM_KERNEL_DTYPE`` > ``"float64"``.  The float32 mode is opt-in —
see ``docs/performance.md`` for its error budget.

Third parties can plug in additional backends with
:func:`register_backend`; the registry is consulted at ``Rim``
construction time, so an unknown name fails fast with the list of
available backends.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

RIM_KERNEL_ENV = "RIM_KERNEL"
RIM_KERNEL_DTYPE_ENV = "RIM_KERNEL_DTYPE"
DEFAULT_BACKEND = "batched"
DEFAULT_KERNEL_DTYPE = "float64"
KERNEL_DTYPES = ("float64", "float32")

_REGISTRY: Dict[str, Callable] = {}


def register_backend(name: str, factory: Callable) -> None:
    """Register a kernel backend under ``name``.

    Args:
        name: Backend identifier (what ``RimConfig.kernel_backend`` and
            ``RIM_KERNEL`` select).
        factory: ``factory(config) -> KernelBackend`` — called with the
            :class:`~repro.core.config.RimConfig` so backends can read
            knobs like ``kernel_threads``.
    """
    if not name or name == "auto":
        raise ValueError(f"invalid backend name {name!r}")
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Sorted names of all registered kernel backends."""
    return sorted(_REGISTRY)


def resolve_backend_name(config) -> str:
    """The backend name the given config resolves to (without building it)."""
    name = getattr(config, "kernel_backend", "auto")
    if name != "auto":
        return name
    return os.environ.get(RIM_KERNEL_ENV) or DEFAULT_BACKEND


def resolve_kernel_dtype(config) -> str:
    """The kernel precision the given config resolves to.

    ``RimConfig.kernel_dtype`` wins when not ``"auto"``, then the
    ``RIM_KERNEL_DTYPE`` environment variable, then ``"float64"``.

    Raises:
        ValueError: When the resolved name is not a supported precision.
    """
    name = getattr(config, "kernel_dtype", "auto")
    if name == "auto":
        name = os.environ.get(RIM_KERNEL_DTYPE_ENV) or DEFAULT_KERNEL_DTYPE
    if name not in KERNEL_DTYPES:
        raise ValueError(
            f"unknown kernel dtype {name!r}; supported: "
            f"{', '.join(KERNEL_DTYPES)} "
            f"(set RimConfig.kernel_dtype or ${RIM_KERNEL_DTYPE_ENV})"
        )
    return name


def get_backend(config):
    """Build the kernel backend selected by ``config`` (see module docs).

    Raises:
        ValueError: When the resolved name is not registered.
    """
    name = resolve_backend_name(config)
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())} "
            f"(set RimConfig.kernel_backend or ${RIM_KERNEL_ENV})"
        )
    return factory(config)
