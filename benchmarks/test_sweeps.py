"""Parameter sweeps quantifying the paper's scaling claims.

* §7 "Antenna array": more antennas ⇒ finer direction resolution.
* §3.2: "time-reversal focusing effects will be intensified with larger
  bandwidths" ⇒ distance accuracy vs channel bandwidth / tone count.
* §5/§6.2.9: real-time operation ⇒ streaming throughput vs packet rate.
"""

from repro.eval.extensions import (
    run_antenna_count_sweep,
    run_bandwidth_sweep,
    run_streaming_throughput,
)
from repro.eval.report import print_report


def test_sweep_antenna_count(benchmark, quick):
    result = benchmark.pedantic(
        run_antenna_count_sweep, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Sweep — heading error vs antenna count", result)
    errors = result["measured"]["mean_heading_error_deg_by_antennas"]
    ns = sorted(errors)
    assert errors[ns[-1]] <= errors[ns[0]] + 2.0


def test_sweep_bandwidth(benchmark, quick):
    result = benchmark.pedantic(
        run_bandwidth_sweep, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Sweep — distance error vs channel bandwidth", result)
    medians = result["measured"]["median_error_cm_by_channel"]
    # The system keeps working at every width; the widest channel is at
    # least as accurate as the narrowest.
    assert medians["40MHz/114"] <= medians["20MHz/56"] + 2.0
    assert all(v < 25.0 for v in medians.values())


def test_sweep_streaming_throughput(benchmark, quick):
    result = benchmark.pedantic(
        run_streaming_throughput, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    print_report("Sweep — streaming throughput", result)
    m = result["measured"]
    assert m["real_time_at_200hz"]
    assert m["streamed_vs_offline_gap_cm"] < 20.0
