"""Property-based tests (hypothesis) on core invariants.

These pin down the mathematical properties the paper's pipeline rests on:
TRRS bounds and invariances (Eqn. 2), DP optimality (Eqns. 6-8), the
NaN-aware moving average, and geometric identities of the arrays.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arrays.geometry import hexagonal_array, linear_array
from repro.arrays.pairs import _angle_diff, all_pairs, parallel_groups
from repro.core.alignment import AlignmentMatrix, nan_moving_average
from repro.core.tracking import track_peaks
from repro.core.trrs import normalize_csi, trrs_cfr
from repro.env.geometry2d import polyline_length, resample_polyline
from repro.eval.metrics import heading_error_deg

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def complex_vectors(n=8):
    return st.tuples(
        arrays(np.float64, (n,), elements=finite_floats),
        arrays(np.float64, (n,), elements=finite_floats),
    ).map(lambda ab: ab[0] + 1j * ab[1])


class TestTrrsProperties:
    @given(complex_vectors(), complex_vectors())
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, h1, h2):
        v = trrs_cfr(h1, h2)
        assert 0.0 <= v <= 1.0

    @given(complex_vectors(), complex_vectors())
    @settings(max_examples=100, deadline=None)
    def test_symmetric(self, h1, h2):
        assert trrs_cfr(h1, h2) == pytest.approx(trrs_cfr(h2, h1), abs=1e-9)

    @given(
        complex_vectors(),
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=-np.pi, max_value=np.pi),
    )
    @settings(max_examples=100, deadline=None)
    def test_scale_and_phase_invariance(self, h, mag, phase):
        if np.abs(h).sum() < 1e-6:
            return
        c = mag * np.exp(1j * phase)
        assert trrs_cfr(h, c * h) == pytest.approx(1.0, abs=1e-6)

    @given(complex_vectors())
    @settings(max_examples=50, deadline=None)
    def test_self_trrs_is_one(self, h):
        if np.abs(h).sum() < 1e-6:
            return
        assert trrs_cfr(h, h) == pytest.approx(1.0, abs=1e-9)

    @given(complex_vectors())
    @settings(max_examples=50, deadline=None)
    def test_normalize_unit_power(self, h):
        if np.abs(h).sum() < 1e-6:
            return
        n = normalize_csi(h)
        assert np.sum(np.abs(n) ** 2) == pytest.approx(1.0, rel=1e-9)


class TestMovingAverageProperties:
    @given(
        arrays(np.float64, (25,), elements=finite_floats),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=100, deadline=None)
    def test_within_minmax(self, x, window):
        out = nan_moving_average(x[:, None], window)[:, 0]
        assert (out >= x.min() - 1e-9).all()
        assert (out <= x.max() + 1e-9).all()

    @given(st.integers(min_value=1, max_value=9), st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_constant_fixed_point(self, window, value):
        x = np.full((20, 1), value)
        out = nan_moving_average(x, window)
        np.testing.assert_allclose(out, value, atol=1e-9)

    @given(arrays(np.float64, (15,), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_matches_nanmean_windows(self, x):
        out = nan_moving_average(x[:, None], 5)[:, 0]
        for k in range(2, 13):
            assert out[k] == pytest.approx(np.mean(x[k - 2 : k + 3]), rel=1e-9, abs=1e-9)


class TestDpOptimality:
    @given(
        arrays(
            np.float64,
            (6, 5),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_dp_matches_bruteforce(self, values):
        """The Bellman recursion finds the globally optimal path."""
        import itertools

        m = AlignmentMatrix(
            values=values, lags=np.arange(-2, 3), sampling_rate=100.0, pair=(0, 1)
        )
        omega = -1.5
        out = track_peaks(m, transition_weight=omega, refine=False)

        t, n_lags = values.shape

        def score(path):
            total = values[0, path[0]]
            for k in range(1, t):
                jump = abs(path[k] - path[k - 1]) / (n_lags - 1)
                total += values[k - 1, path[k - 1]] + values[k, path[k]] + omega * jump
            return total

        best = max(score(p) for p in itertools.product(range(n_lags), repeat=t))
        assert out.score == pytest.approx(best, abs=1e-9)


class TestGeometryProperties:
    @given(st.floats(min_value=-np.pi, max_value=np.pi), st.floats(min_value=-np.pi, max_value=np.pi))
    @settings(max_examples=100, deadline=None)
    def test_angle_diff_wrapped(self, a, b):
        d = _angle_diff(a, b)
        assert -np.pi - 1e-9 <= d <= np.pi + 1e-9
        assert np.cos(d) == pytest.approx(np.cos(a - b), abs=1e-9)

    @given(st.floats(min_value=-180, max_value=180), st.floats(min_value=-180, max_value=180))
    @settings(max_examples=100, deadline=None)
    def test_heading_error_range(self, est_deg, truth):
        err = heading_error_deg(np.deg2rad(est_deg), truth)
        assert 0.0 <= err <= 180.0

    @given(st.integers(min_value=2, max_value=8), st.floats(min_value=0.01, max_value=0.1))
    @settings(max_examples=30, deadline=None)
    def test_linear_array_pair_count(self, n, spacing):
        arr = linear_array(n, spacing)
        assert len(all_pairs(arr)) == n * (n - 1) // 2

    @given(st.floats(min_value=0.005, max_value=0.1))
    @settings(max_examples=30, deadline=None)
    def test_hexagon_parallel_groups_scale_invariant(self, spacing):
        groups = parallel_groups(hexagonal_array(spacing))
        assert sorted(len(g) for g in groups) == [1, 1, 1, 2, 2, 2, 2, 2, 2]

    @given(
        st.lists(
            st.tuples(finite_floats, finite_floats), min_size=2, max_size=8
        ),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_resample_preserves_endpoints_and_length(self, points, spacing):
        pts = np.asarray(points, dtype=float)
        if polyline_length(pts) < 1e-6:
            return
        out = resample_polyline(pts, spacing)
        np.testing.assert_allclose(out[0], pts[0], atol=1e-9)
        np.testing.assert_allclose(out[-1], pts[-1], atol=1e-9)
        # Resampling a polyline can only shorten it (chords of the path).
        assert polyline_length(out) <= polyline_length(pts) + 1e-6
