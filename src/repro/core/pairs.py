"""Aligned-pair detection (§4.3) and per-sample group selection.

RIM never knows a priori which antenna pair is retracing — that depends on
the (unknown) heading.  Detection runs in two steps:

* **Pre-detection** screens every pair cheaply (strided alignment matrix)
  and keeps only pairs whose matrices show prominent peaks most of the
  time; peak tracking runs on the survivors only.
* **Post-detection** scores each tracked path on continuity, TRRS level,
  and smoothness, and selects — per time sample, with hysteresis — the
  pair group most likely aligned.

Groups are the parallel-isometric pair groups of §4.2: members share the
alignment delay under translation, so their matrices are averaged before
tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arrays.pairs import AntennaPair
from repro.core.alignment import AlignmentMatrix, nan_moving_average
from repro.core.tracking import TrackedPath
from repro.nanops import nanmax, nanmedian


@dataclass
class GroupTrack:
    """A tracked (possibly averaged) pair group.

    Attributes:
        pairs: The parallel isometric pairs sharing this track.
        matrix: The (averaged) alignment matrix.
        path: The DP-tracked peak path.
        quality: (T,) smoothed per-sample path prominence — path TRRS minus
            the column median; near zero for unaligned pairs.
    """

    pairs: List[AntennaPair]
    matrix: AlignmentMatrix
    path: TrackedPath
    quality: np.ndarray

    @property
    def separation(self) -> float:
        return self.pairs[0].separation

    @property
    def axis_angle(self) -> float:
        return self.pairs[0].axis_angle


def peak_prominence_score(
    values: np.ndarray, moving: Optional[np.ndarray] = None
) -> float:
    """Pre-detection score of an alignment matrix (§4.3).

    Per row: the peak prominence max - median; the score is the mean over
    (moving) rows with enough finite lags.  Aligned pairs show prominent
    peaks "most of the time", unaligned pairs do not.
    """
    values = np.asarray(values, dtype=np.float64)
    finite_rows = np.isfinite(values).sum(axis=1) >= max(3, values.shape[1] // 4)
    rows = finite_rows if moving is None else (finite_rows & np.asarray(moving, bool))
    if not rows.any():
        return 0.0
    sel = values[rows]
    peak = nanmax(sel, axis=1)
    median = nanmedian(sel, axis=1)
    prom = peak - median
    prom = prom[np.isfinite(prom)]
    return float(prom.mean()) if prom.size else 0.0


def path_quality(
    matrix: AlignmentMatrix,
    path: TrackedPath,
    smoothing_window: int = 31,
) -> np.ndarray:
    """(T,) per-sample prominence of the tracked path (post-detection input).

    The raw per-sample quality is the path TRRS minus the column median
    (how much the tracked peak stands out of the lag clutter); it is then
    smoothed with a NaN-aware moving average.
    """
    values = matrix.values
    median = nanmedian(values, axis=1)
    raw = path.path_trrs - median
    raw = np.where(np.isfinite(raw), raw, 0.0)
    return nan_moving_average(raw[:, None], smoothing_window)[:, 0]


@dataclass
class PostCheck:
    """Aggregate post-detection statistics of one tracked group (§4.3)."""

    mean_path_trrs: float
    mean_prominence: float
    lag_jitter: float
    valid_fraction: float

    @property
    def accepted(self) -> bool:
        """Overall accept decision: prominent, reasonably smooth path."""
        return (
            self.mean_prominence > 0.08
            and self.valid_fraction > 0.5
            and self.lag_jitter < 10.0
        )


def post_check(
    matrix: AlignmentMatrix,
    path: TrackedPath,
    moving: Optional[np.ndarray] = None,
) -> PostCheck:
    """Score a tracked path on continuity, TRRS values, and smoothness."""
    sel = (
        np.asarray(moving, bool)
        if moving is not None
        else np.ones(matrix.n_samples, dtype=bool)
    )
    trrs = path.path_trrs[sel]
    finite = np.isfinite(trrs)
    mean_trrs = float(trrs[finite].mean()) if finite.any() else 0.0

    median = nanmedian(matrix.values, axis=1)
    prom = (path.path_trrs - median)[sel]
    prom = prom[np.isfinite(prom)]
    mean_prom = float(prom.mean()) if prom.size else 0.0

    lags = path.lags[sel]
    jitter = float(np.abs(np.diff(lags)).mean()) if lags.size > 1 else 0.0
    return PostCheck(
        mean_path_trrs=mean_trrs,
        mean_prominence=mean_prom,
        lag_jitter=jitter,
        valid_fraction=float(finite.mean()) if finite.size else 0.0,
    )


def select_group_per_sample(
    tracks: Sequence[GroupTrack],
    moving: np.ndarray,
    hysteresis: float = 0.02,
    min_quality: float = 0.01,
) -> np.ndarray:
    """Choose the aligned group for every moving sample, with hysteresis.

    Args:
        tracks: Candidate group tracks (post-detection survivors).
        moving: (T,) movement mask.
        hysteresis: A challenger group must beat the incumbent's quality by
            this margin to take over (prevents flapping near crossovers,
            e.g. at the corners of the Fig. 5 square).
        min_quality: Samples where even the best group is weaker than this
            get no assignment.

    Returns:
        (T,) int array: index into ``tracks`` or -1 when unassigned.
    """
    t = len(moving)
    choice = np.full(t, -1, dtype=np.int64)
    if not tracks:
        return choice
    quality = np.stack([trk.quality for trk in tracks], axis=0)
    quality = np.nan_to_num(quality, nan=0.0)

    current = -1
    for k in range(t):
        if not moving[k]:
            current = -1
            continue
        best = int(np.argmax(quality[:, k]))
        best_q = quality[best, k]
        if best_q < min_quality:
            current = -1
            continue
        if current < 0 or best == current:
            current = best
        elif best_q > quality[current, k] + hysteresis:
            current = best
        choice[k] = current
    return choice
