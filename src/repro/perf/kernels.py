"""TRRS kernel backends: the batched alignment hot path.

The alignment matrices of §3.2 dominate ``Rim.process`` wall time (see
``BENCH_perf.json``).  The serial path builds each pair's banded matrix
with one complex einsum per lag *per pair*; this module restructures the
work around a shared cell store and two batched kernels: contiguous row
runs are reduced by BLAS band GEMMs (the complex inner product split
into two real dgemms over interleaved re/im views), and scattered
strided rows are gathered per lag column and reduced with one einsum
across **all** requested pairs at once.

The batched backend additionally keeps a per-trace :class:`BaseRowStore`
of computed cells, which buys two kinds of reuse:

* the strided ``virtual_window=1`` rows computed by the pre-detection
  screen (§4.3) are *not* recomputed when the full tracking pass later
  needs the same pair at full resolution;
* :class:`~repro.core.streaming.StreamingRim` seeds the store with the
  previous block's rows (see :mod:`repro.perf.streamcache`), so only the
  cells involving newly pushed samples are evaluated per block.

Every backend must be numerically equivalent to ``reference``: NaN
propagation from lost packets is identical cell for cell, and values
agree within 1e-9 (the GEMM accumulation order differs from einsum's by
a few float64 ulps; the gather kernel is bit-identical).
``tests/test_kernel_backends.py`` enforces this on clean and
fault-injected traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.alignment import (
    AlignmentMatrix,
    alignment_matrix,
    nan_moving_average,
)


class KernelBackend:
    """Interface every kernel backend implements.

    A backend turns batched *pair-matrix requests* into
    :class:`~repro.core.alignment.AlignmentMatrix` lists.  One *store*
    (an opaque per-trace object from :meth:`make_store`) is threaded
    through all requests of a single ``Rim.process`` call so backends
    can reuse work across pipeline stages.
    """

    name = "abstract"

    def make_store(self, norm: np.ndarray, max_lag: int):
        """Per-trace state for one pipeline run over ``norm`` (T,R,K,S)."""
        raise NotImplementedError

    def matrices(
        self,
        store,
        pairs: Sequence,
        *,
        virtual_window: int,
        sampling_rate: float,
        time_stride: int = 1,
    ) -> List[AlignmentMatrix]:
        """Alignment matrices for ``pairs``, batched however the backend likes."""
        raise NotImplementedError

    def seed_store(self, store, cache, offset: int) -> None:
        """Pre-populate ``store`` from a cross-block cache (no-op by default)."""

    def export_store(self, store, cache, offset: int) -> None:
        """Publish ``store`` rows into a cross-block cache (no-op by default)."""


class ReferenceBackend(KernelBackend):
    """The original serial per-pair path — the numerical oracle.

    Delegates every pair to :func:`repro.core.alignment.alignment_matrix`
    exactly as the pipeline did before backends existed, including its
    per-pair ``alignment_matrix`` obs spans and work counters.  No reuse,
    no caching: what this backend computes is what every other backend
    must reproduce bit for bit.
    """

    name = "reference"

    class _Store:
        __slots__ = ("norm", "max_lag")

        def __init__(self, norm, max_lag):
            self.norm = norm
            self.max_lag = max_lag

    def make_store(self, norm, max_lag):
        return self._Store(norm, max_lag)

    def matrices(self, store, pairs, *, virtual_window, sampling_rate, time_stride=1):
        return [
            alignment_matrix(
                store.norm[:, p.i],
                store.norm[:, p.j],
                max_lag=store.max_lag,
                virtual_window=virtual_window,
                sampling_rate=sampling_rate,
                pair=(p.i, p.j),
                time_stride=time_stride,
                normalized=True,
            )
            for p in pairs
        ]


class BaseRowStore:
    """Per-trace store of computed base-TRRS cells for antenna pairs.

    For each ordered pair key ``(i, j)`` it holds a ``(T, 2W+1)`` value
    matrix (NaN where never computed or outside the lag band) and a
    boolean ``known`` mask of the same shape marking cells that have been
    evaluated.  Requests only compute cells that are requested, inside
    the band, and not yet known — which is what makes pre-screen rows,
    cross-stage rows, and cross-block seeded rows free.
    """

    def __init__(self, norm: np.ndarray, max_lag: int):
        self.norm = norm
        self.max_lag = int(max_lag)
        self.t = int(norm.shape[0])
        self.n_lags = 2 * self.max_lag + 1
        self.values: Dict[Tuple[int, int], np.ndarray] = {}
        self.known: Dict[Tuple[int, int], np.ndarray] = {}
        self._band: Optional[np.ndarray] = None
        self._real: Optional[np.ndarray] = None
        self._swap: Optional[np.ndarray] = None

    def entry(self, key: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
        """The (values, known) arrays of ``key``, created NaN/False on miss."""
        if key not in self.values:
            self.values[key] = np.full((self.t, self.n_lags), np.nan)
            self.known[key] = np.zeros((self.t, self.n_lags), dtype=bool)
        return self.values[key], self.known[key]

    def band(self) -> np.ndarray:
        """(T, 2W+1) mask of in-band cells: the partner sample t-l exists."""
        if self._band is None:
            partner = (
                np.arange(self.t)[:, None]
                - np.arange(-self.max_lag, self.max_lag + 1)[None, :]
            )
            self._band = (partner >= 0) & (partner < self.t)
        return self._band

    def real_views(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-antenna interleaved float64 stacks for the BLAS band kernel.

        Returns ``(real, swap)``, both ``(R, K, T, 2S)`` C-contiguous:
        ``real[a, k, t]`` is snapshot ``(t, a, k)`` as interleaved
        ``re, im`` float64 pairs, and ``swap`` holds ``im, -re``.  The
        complex inner product then falls out of two real GEMMs:
        ``Re⟨conj(x), y⟩ = x_f · y_f`` and ``Im⟨conj(x), y⟩ = x_f · y_swap``.
        """
        if self._real is None:
            stacked = np.ascontiguousarray(
                np.asarray(self.norm, dtype=np.complex128).transpose(1, 2, 0, 3)
            )
            real = stacked.view(np.float64)
            swap = np.empty_like(real)
            swap[..., 0::2] = real[..., 1::2]
            swap[..., 1::2] = -real[..., 0::2]
            self._real, self._swap = real, swap
        return self._real, self._swap


class BatchedBackend(KernelBackend):
    """Batched einsum kernels over a :class:`BaseRowStore`.

    Args:
        threads: Fan the per-lag columns out over a thread pool of this
            size (the einsum inner products release the GIL for the bulk
            of their work).  ``0``/``1`` means serial.
    """

    name = "batched"

    def __init__(self, threads: int = 0):
        self.threads = int(threads)

    def make_store(self, norm, max_lag):
        return BaseRowStore(norm, max_lag)

    def seed_store(self, store, cache, offset):
        cache.seed(store, offset)

    def export_store(self, store, cache, offset):
        cache.capture(store, offset)

    def matrices(self, store, pairs, *, virtual_window, sampling_rate, time_stride=1):
        pairs = list(pairs)
        if not pairs:
            return []
        t, n_lags, w = store.t, store.n_lags, store.max_lag
        with obs.span(
            "alignment_matrix",
            backend=self.name,
            n_pairs=len(pairs),
            shape=(t, n_lags),
            virtual_window=virtual_window,
            time_stride=time_stride,
        ):
            rows = np.arange(0, t, time_stride) if time_stride > 1 else None
            fresh_cells = _compute_cells(store, pairs, rows, self.threads)
            obs.add("alignment.matrices", len(pairs))
            obs.add("alignment.cells", fresh_cells)

            lags = np.arange(-w, w + 1)
            out = []
            for p in pairs:
                vals = store.values[(p.i, p.j)]
                if rows is not None:
                    # The store may know more rows than this strided request
                    # (seeded or computed by another stage); the reference
                    # semantics are "skipped rows are NaN", so mask them.
                    masked = np.full((t, n_lags), np.nan)
                    masked[rows] = vals[rows]
                    values = masked
                elif virtual_window > 1:
                    values = nan_moving_average(vals, virtual_window)
                else:
                    values = vals.copy()
                out.append(
                    AlignmentMatrix(
                        values=values,
                        lags=lags,
                        sampling_rate=sampling_rate,
                        pair=(p.i, p.j),
                    )
                )
            return out


_GEMM_CHUNK = 128  # rows per BLAS band job: B window (~B+2W rows) stays in cache
_MIN_GEMM_SPAN = 16  # narrower clusters fall back to the gather kernel
# The BLAS kernel is >10x cheaper per cell than the per-lag gather, so
# needed-row clusters separated by small gaps of already-known rows (the
# pre-screen's stride pattern) are merged and recomputed wholesale rather
# than handed to the gather kernel row by row.
_MERGE_GAP = 16


def _compute_cells(
    store: BaseRowStore,
    pairs: Sequence,
    rows: Optional[np.ndarray],
    threads: int,
) -> int:
    """Evaluate all requested-but-unknown cells for ``pairs``; count them.

    Rows with at least one unknown requested in-band cell are split into
    contiguous runs.  Long runs go to the BLAS band kernel: per pair and
    TX antenna, two real GEMMs against the ``[t-W, t+W]`` partner window
    produce the re/im inner products of every (row, lag) cell at once —
    dgemm turns the memory-bound per-lag reduction into a cache-blocked
    compute kernel several times faster than numpy's complex einsum.
    Scattered rows (strided pre-screens) are gathered per lag column and
    reduced with one einsum across all pairs.
    """
    t, n_lags, w = store.t, store.n_lags, store.max_lag
    keys = [(p.i, p.j) for p in pairs]
    entries = [store.entry(k) for k in keys]

    if rows is None:
        row_mask = np.ones(t, dtype=bool)
    else:
        row_mask = np.zeros(t, dtype=bool)
        row_mask[rows] = True

    known_all = entries[0][1].copy()
    for _, known in entries[1:]:
        known_all &= known

    needed = store.band() & ~known_all & row_mask[:, None]
    needed_rows = np.nonzero(needed.any(axis=1))[0]
    if needed_rows.size == 0:
        return 0
    fresh = int(needed.sum())

    splits = np.nonzero(np.diff(needed_rows) > _MERGE_GAP)[0] + 1
    clusters = np.split(needed_rows, splits)
    gemm_jobs: List[Tuple[int, int]] = []
    scattered_mask = np.zeros(t, dtype=bool)
    for cluster in clusters:
        span0, span1 = int(cluster[0]), int(cluster[-1]) + 1
        if span1 - span0 >= _MIN_GEMM_SPAN:
            for r0 in range(span0, span1, _GEMM_CHUNK):
                gemm_jobs.append((r0, min(span1, r0 + _GEMM_CHUNK)))
        else:
            scattered_mask[cluster] = True

    lags_arr = np.arange(-w, w + 1)
    if gemm_jobs:
        real, swap = store.real_views()

    def run_gemm(job: Tuple[int, int]) -> None:
        r0, r1 = job
        u0, u1 = max(0, r0 - w), min(t, r1 + w)
        nu = u1 - u0
        # C[r - r0, u - u0] maps to cell (r, lag) via u = r - lag.
        j_win = np.arange(r0, r1)[:, None] - lags_arr[None, :] - u0
        valid = (j_win >= 0) & (j_win < nu)
        jc = np.clip(j_win, 0, nu - 1)
        ridx = np.arange(r1 - r0)[:, None]
        n_k = real.shape[1]
        for (i, j), (values, known) in zip(keys, entries):
            acc = None
            for k in range(n_k):
                a = real[i, k, r0:r1]
                re = a @ real[j, k, u0:u1].T
                im = a @ swap[j, k, u0:u1].T
                mag = re * re + im * im
                band_vals = mag[ridx, jc]
                acc = band_vals if acc is None else acc + band_vals
            acc /= n_k
            np.copyto(values[r0:r1], np.where(valid, acc, np.nan))
            known[r0:r1] |= valid

    # Per-lag gather jobs for the scattered rows.
    i_idx = [k[0] for k in keys]
    j_idx = [k[1] for k in keys]
    einsum_jobs: List[Tuple[int, np.ndarray]] = []
    if scattered_mask.any():
        stack_i = np.conj(store.norm[:, i_idx].transpose(1, 0, 2, 3))
        for col in range(n_lags):
            rws = np.nonzero(needed[:, col] & scattered_mask)[0]
            if rws.size:
                einsum_jobs.append((col, rws))

    def run_einsum(job: Tuple[int, np.ndarray]) -> None:
        col, rws = job
        lag = col - w
        a = stack_i[:, rws].transpose(1, 0, 2, 3)  # (R, P, K, S)
        b = store.norm[np.ix_(rws - lag, j_idx)]
        inner = np.einsum("rpks,rpks->rpk", a, b)
        vals = (np.abs(inner) ** 2).mean(axis=-1)  # (R, P)
        for p_idx, (values, known) in enumerate(entries):
            values[rws, col] = vals[:, p_idx]
            known[rws, col] = True

    jobs = [(run_gemm, j) for j in gemm_jobs] + [
        (run_einsum, j) for j in einsum_jobs
    ]
    if threads > 1 and len(jobs) > 1:
        from concurrent.futures import ThreadPoolExecutor

        # GEMM jobs own disjoint row ranges and einsum jobs disjoint
        # (scattered-row, column) sets, so shared arrays are safe.
        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(lambda fj: fj[0](fj[1]), jobs))
    else:
        for fn, job in jobs:
            fn(job)
    return fresh
