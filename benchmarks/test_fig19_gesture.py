"""Bench: Fig. 19 — gesture detection and recognition.

Paper: 96.25% detection across 480 gestures (3 users × 4 gestures × 2
hands × 20 reps); all detected gestures classified correctly.  RIM_FULL=1
runs the full 480; the default runs a reduced but same-shape sweep.
"""

import os

from repro.eval.applications import run_fig19_gesture
from repro.eval.report import print_report


def test_fig19_gesture(benchmark, quick):
    reps = 20 if not quick else None
    result = benchmark.pedantic(
        run_fig19_gesture, kwargs={"quick": quick, "reps": reps}, rounds=1, iterations=1
    )
    print_report("Fig. 19 — gesture recognition", result)
    m = result["measured"]
    # Shape: high detection; detected gestures classify correctly.
    assert m["detection_rate"] > 0.7
    assert m["classification_accuracy"] > 0.9
